(* TPC-B-lite on epsilon-serializability: the paper's §2.1 consistency
   story made concrete.

   The classic TPC-B hierarchy — accounts roll up into tellers, tellers
   into a branch — is replicated across four sites under COMMU.  Every
   deposit is one update ET touching three counters:

       account += d;  teller += d;  branch += d

   Update ETs preserve the integrity constraint

       branch = Σ tellers = Σ accounts

   ("an U-ET preserves data consistency", §2.1), so at quiescence every
   replica satisfies it exactly.  Query ETs, however, read the three
   levels while deposits are still propagating:

   - an ε = 0 auditor waits out in-flight deposits and always sees the
     constraint hold;
   - an ε-budgeted dashboard reads through them and sees bounded
     violations — at most its inconsistency units' worth of in-flight
     deposits.

   Run with:  dune exec examples/tpcb_lite.exe *)

module Harness = Esr_replica.Harness
module Intf = Esr_replica.Intf
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Store = Esr_store.Store
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Prng = Esr_util.Prng

let n_sites = 4
let n_tellers = 3
let n_accounts = 9

let account i = Printf.sprintf "account-%d" i
let teller i = Printf.sprintf "teller-%d" i
let branch = "branch"

let all_keys =
  (branch :: List.init n_tellers teller) @ List.init n_accounts account

let int_of v = Option.value (Value.as_int v) ~default:0

(* Integrity constraint violation of one consistent snapshot: how far the
   rollups disagree. *)
let violation values =
  let get k = int_of (List.assoc k values) in
  let accounts = List.fold_left (fun acc i -> acc + get (account i)) 0 (List.init n_accounts Fun.id) in
  let tellers = List.fold_left (fun acc i -> acc + get (teller i)) 0 (List.init n_tellers Fun.id) in
  let b = get branch in
  abs (b - tellers) + abs (b - accounts)

let () =
  let wan =
    { Net.latency = Dist.Lognormal (3.6, 0.35); drop_probability = 0.01; duplicate_probability = 0.0 }
  in
  let h = Harness.create ~net_config:wan ~seed:404 ~sites:n_sites ~method_name:"COMMU" () in
  let engine = Harness.engine h in
  let prng = Prng.create 11 in

  (* 600 deposits over 30 virtual seconds. *)
  for i = 0 to 599 do
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i *. 50.0) (fun () ->
           let a = Prng.int prng n_accounts in
           let d = Prng.int_in prng (-50) 80 in
           Harness.submit_update h
             ~origin:(Prng.int prng n_sites)
             [
               Intf.Add (account a, d);
               Intf.Add (teller (a mod n_tellers), d);
               Intf.Add (branch, d);
             ]
             ignore))
  done;

  (* Auditors sample the whole hierarchy during the run. *)
  let strict_worst = ref 0 and eager_worst = ref 0 and eager_units = ref 0 in
  for i = 1 to 12 do
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i *. 2_400.0) (fun () ->
           let site = Prng.int prng n_sites in
           Harness.submit_query h ~site ~keys:all_keys ~epsilon:(Epsilon.Limit 0)
             (fun o ->
               let v = violation o.Intf.values in
               if v > !strict_worst then strict_worst := v);
           Harness.submit_query h ~site ~keys:all_keys ~epsilon:(Epsilon.Limit 6)
             (fun o ->
               let v = violation o.Intf.values in
               if v > !eager_worst then eager_worst := v;
               if o.Intf.charged > !eager_units then eager_units := o.Intf.charged)))
  done;

  let settled = Harness.settle h in
  Printf.printf "settled=%b converged=%b\n\n" settled (Harness.converged h);

  Printf.printf "mid-run auditors over 12 samples:\n";
  Printf.printf "  strict (eps=0):    worst constraint violation = %d\n" !strict_worst;
  Printf.printf "  eager  (eps<=6):   worst constraint violation = %d (max units %d)\n\n"
    !eager_worst !eager_units;

  (* At quiescence the constraint holds exactly at every replica. *)
  print_endline "at quiescence, every replica satisfies branch = sum(tellers) = sum(accounts):";
  for site = 0 to n_sites - 1 do
    let store = Harness.store h ~site in
    let get k = int_of (Store.get store k) in
    let accounts = List.fold_left (fun acc i -> acc + get (account i)) 0 (List.init n_accounts Fun.id) in
    let tellers = List.fold_left (fun acc i -> acc + get (teller i)) 0 (List.init n_tellers Fun.id) in
    Printf.printf "  site %d: branch=%-6d tellers=%-6d accounts=%-6d %s\n" site
      (get branch) tellers accounts
      (if get branch = tellers && tellers = accounts then "OK" else "VIOLATED")
  done
