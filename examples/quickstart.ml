(* Quickstart: five minutes with epsilon-serializability.

   We build a 3-replica system running the COMMU replica-control method,
   apply a few commutative updates, and read with different inconsistency
   budgets (epsilon).  Everything runs on a deterministic simulated
   network, so the output is reproducible.

   Run with:  dune exec examples/quickstart.exe *)

module Harness = Esr_replica.Harness
module Intf = Esr_replica.Intf
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Store = Esr_store.Store

let () =
  (* A replicated system = engine + network + method, wired by the
     harness.  Links carry 10ms of latency by default. *)
  let h = Harness.create ~seed:7 ~sites:3 ~method_name:"COMMU" () in

  (* Update ETs are expressed as intents; COMMU accepts commutative
     increments.  Updates commit locally and propagate asynchronously. *)
  Harness.submit_update h ~origin:0 [ Intf.Add ("balance", 100) ] (function
    | Intf.Committed { committed_at } ->
        Printf.printf "update 1 committed at t=%.1fms (locally, before propagation)\n"
          committed_at
    | Intf.Rejected reason -> Printf.printf "update 1 rejected: %s\n" reason);
  Harness.submit_update h ~origin:1 [ Intf.Add ("balance", -30) ] ignore;

  (* A query ET with an unlimited epsilon reads immediately — it may see
     none, one, or both updates, and is charged one inconsistency unit
     per in-flight update it can observe.  At site 1 the local withdrawal
     is still propagating, so the query is charged for reading through it. *)
  Harness.submit_query h ~site:1 ~keys:[ "balance" ] ~epsilon:Epsilon.Unlimited
    (fun o ->
      Printf.printf
        "eager query at t=%.1fms: balance=%s (charged %d inconsistency units)\n"
        o.Intf.served_at
        (Value.to_string (List.assoc "balance" o.Intf.values))
        o.Intf.charged);

  (* A query with epsilon = 0 demands strict serializability: it waits
     until the in-flight updates have completed everywhere. *)
  Harness.submit_query h ~site:0 ~keys:[ "balance" ] ~epsilon:(Epsilon.Limit 0)
    (fun o ->
      Printf.printf "strict query at t=%.1fms: balance=%s (charged %d, waited=%b)\n"
        o.Intf.served_at
        (Value.to_string (List.assoc "balance" o.Intf.values))
        o.Intf.charged o.Intf.consistent_path);

  (* Drain the simulation: deliver every MSet, run every retry. *)
  let settled = Harness.settle h in

  (* The paper's convergence guarantee: at quiescence all replicas hold
     the same (1SR) state. *)
  Printf.printf "settled=%b\n" settled;
  for site = 0 to 2 do
    Printf.printf "replica %d: balance=%s\n" site
      (Value.to_string (Store.get (Harness.store h ~site) "balance"))
  done;
  Printf.printf "replicas converged: %b\n" (Harness.converged h)
