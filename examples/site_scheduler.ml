(* Divergence control at a single site (paper §3.1–3.2, Tables 2 and 3).

   The Esr_dc.Scheduler interleaves the operations of concurrent ETs at
   one replica under a pluggable discipline.  This example walks one
   scenario through three disciplines:

   - standard 2PL: the query blocks behind the writer (serializable,
     slower);
   - Table 2 (ORDUP ETs): the query reads straight through the writer's
     W_U lock and is charged inconsistency units instead of waiting;
   - Table 3 (COMMU ETs): even the two writers interleave, because their
     increments commute.

   Run with:  dune exec examples/site_scheduler.exe *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Lock_table = Esr_cc.Lock_table
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Esr_check = Esr_core.Esr_check
module Scheduler = Esr_dc.Scheduler

let describe = function
  | Scheduler.Executed v -> Printf.sprintf "executed (sees %s)" (Value.to_string v)
  | Scheduler.Wait -> "BLOCKED (waits for the lock)"
  | Scheduler.Refused_epsilon -> "refused: inconsistency budget exhausted"
  | Scheduler.Refused_stale -> "refused: stale timestamp (ET aborted)"
  | Scheduler.Refused_deadlock -> "refused: deadlock (ET aborted)"

let scenario ~name table =
  Printf.printf "--- %s ---\n" name;
  let s = Scheduler.create ~discipline:(Scheduler.Two_phase table) (Store.create ()) in
  (* Writer 1 deposits 50 and stays uncommitted. *)
  let u1 = Scheduler.begin_et s ~kind:Et.Update () in
  Printf.printf "U1: Incr(acct, 50)   -> %s\n"
    (describe (Scheduler.submit s u1 ~key:"acct" (Op.Incr 50) ()));
  (* Writer 2 tries a concurrent deposit. *)
  let u2 = Scheduler.begin_et s ~kind:Et.Update () in
  Printf.printf "U2: Incr(acct, 25)   -> %s\n"
    (describe (Scheduler.submit s u2 ~key:"acct" (Op.Incr 25) ()));
  (* A dashboard query with a budget of one unit. *)
  let q = Scheduler.begin_et s ~kind:Et.Query ~epsilon:(Epsilon.Limit 2) () in
  Printf.printf "Q:  Read(acct)       -> %s (charged %d units)\n"
    (describe (Scheduler.submit s q ~key:"acct" Op.Read ()))
    (Scheduler.charged q);
  (* Wind everything down. *)
  Scheduler.commit s u1;
  (match Scheduler.status u2 with
  | Scheduler.Running | Scheduler.Waiting -> (
      try Scheduler.commit s u2 with Invalid_argument _ -> Scheduler.abort s u2)
  | Scheduler.Committed | Scheduler.Aborted -> ());
  (match Scheduler.status q with
  | Scheduler.Running -> Scheduler.commit s q
  | Scheduler.Waiting | Scheduler.Committed | Scheduler.Aborted -> ());
  let h = Scheduler.history s in
  Printf.printf "final acct = %s; committed history %S is ε-serial: %b\n\n"
    (Value.to_string (Store.get (Scheduler.store s) "acct"))
    (Esr_core.Hist.to_string h)
    (Esr_check.is_epsilon_serial ~mode:Esr_core.Conflict.Semantic h)

let () =
  scenario ~name:"standard 2PL (strictly serializable)" Lock_table.standard;
  scenario ~name:"Table 2: ORDUP ET locks (queries never block)" Lock_table.ordup;
  scenario ~name:"Table 3: COMMU ET locks (commuting writers interleave)"
    Lock_table.commu
