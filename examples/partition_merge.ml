(* Off-line partition-log merging vs ESR dynamic control (paper §5.3).

   Two bank branches are partitioned for a while.  Under optimistic-1SR
   replication each side keeps its own log, and at reconnection the logs
   must be merged: commutative deposits merge cleanly, timestamped
   address overwrites merge by latest-wins, but conflicting plain
   overwrites force the minority side's update ETs to be rolled back
   entirely.  An ESR method (COMMU) running the same deposits simply
   keeps executing through the partition and rolls back nothing.

   Run with:  dune exec examples/partition_merge.exe *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Et = Esr_core.Et
module Hist = Esr_core.Hist
module Logmerge = Esr_core.Logmerge
module Gtime = Esr_clock.Gtime

let act ~et ~key op = Et.action ~et ~key op

let () =
  (* What each side of the partition did while disconnected. *)
  let east =
    Hist.of_actions
      [
        act ~et:1 ~key:"acct-alice" (Op.Incr 100);
        act ~et:2 ~key:"acct-bob" (Op.Incr 40);
        act ~et:3 ~key:"branch-hours"
          (Op.Write (Value.str "9-17"));
        act ~et:4 ~key:"manager"
          (Op.Timed_write { ts = Gtime.make ~counter:12 ~site:0; value = Value.str "ann" });
      ]
  in
  let west =
    Hist.of_actions
      [
        act ~et:11 ~key:"acct-alice" (Op.Incr (-30));
        act ~et:12 ~key:"branch-hours"
          (Op.Write (Value.str "8-16"));
        act ~et:12 ~key:"acct-bob" (Op.Incr 5);
        act ~et:13 ~key:"manager"
          (Op.Timed_write { ts = Gtime.make ~counter:15 ~site:1; value = Value.str "bo" });
      ]
  in
  Printf.printf "east log:  %s\n" (Hist.to_string east);
  Printf.printf "west log:  %s\n\n" (Hist.to_string west);

  let m = Logmerge.merge ~majority:east ~minority:west in
  Printf.printf "merged:    %s\n" (Hist.to_string m.Logmerge.merged);
  Printf.printf "rolled-back minority ETs: %s\n"
    (String.concat ", " (List.map (Printf.sprintf "ET%d") m.Logmerge.rolled_back));
  Printf.printf "clean keys:    %s\n" (String.concat ", " m.Logmerge.clean_keys);
  Printf.printf "conflict keys: %s\n\n" (String.concat ", " m.Logmerge.conflict_keys);

  let s = Logmerge.apply m.Logmerge.merged in
  let show key = Printf.printf "  %-14s %s\n" key (Value.to_string (Store.get s key)) in
  print_endline "reconciled state:";
  show "acct-alice";
  show "acct-bob";
  show "branch-hours";
  show "manager";
  print_newline ();
  print_endline
    "note: west's ET12 was sacrificed wholesale — its conflicting hours\n\
     overwrite doomed its perfectly mergeable bob deposit too.  The ESR\n\
     methods avoid this entirely: COMMU would have executed both sides'\n\
     deposits through the partition (see examples/partition_demo.ml and\n\
     bench target e12_partition_merge), and ORDUP/RITU order or timestamp\n\
     the overwrites so nothing is ever rolled back."
