(* Network partition demo: asynchronous vs synchronous replica control
   when the network splits (paper §1 and §5.3).

   Four sites split 2+2 for two virtual seconds.  The same workload is
   run against COMMU (asynchronous, commutative increments) and 2PC
   (synchronous, write-all): the asynchronous method keeps committing on
   both sides of the split and converges after the heal, while the
   synchronous one can only commit when the partition heals (or its
   timeout aborts the attempt).

   Run with:  dune exec examples/partition_demo.exe *)

module Harness = Esr_replica.Harness
module Intf = Esr_replica.Intf
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Store = Esr_store.Store
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng

let run method_name =
  Printf.printf "=== %s ===\n" method_name;
  let config = { Intf.default_config with Intf.twopc_timeout = 20_000.0 } in
  let h = Harness.create ~config ~seed:3 ~sites:4 ~method_name () in
  let engine = Harness.engine h in
  let net = Harness.net h in
  let prng = Prng.create 17 in

  (* Partition [0,1] | [2,3] between t=1000 and t=3000. *)
  ignore
    (Engine.schedule_at engine ~time:1_000.0 (fun () ->
         Printf.printf "t=1000  --- network partitions: {0,1} | {2,3} ---\n";
         Net.partition net [ [ 0; 1 ]; [ 2; 3 ] ]));
  ignore
    (Engine.schedule_at engine ~time:3_000.0 (fun () ->
         Printf.printf "t=3000  --- network heals ---\n";
         Net.heal net));

  (* One deposit every 100ms from a random site, before, during, and
     after the partition. *)
  let in_window = ref 0 and committed_in_window = ref 0 in
  for i = 0 to 39 do
    let at = float_of_int i *. 100.0 in
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           let origin = Prng.int prng 4 in
           let submit_time = Engine.now engine in
           if submit_time >= 1_000.0 && submit_time < 3_000.0 then incr in_window;
           Harness.submit_update h ~origin [ Intf.Add ("counter", 1) ] (function
             | Intf.Committed { committed_at } ->
                 if committed_at >= 1_000.0 && committed_at < 3_000.0 then
                   incr committed_in_window
             | Intf.Rejected _ -> ())))
  done;

  (* A query on each side of the split, mid-partition.  Under 2PC a
     query can block behind a prepared writer's locks until the heal. *)
  List.iter
    (fun site ->
      ignore
        (Engine.schedule_at engine ~time:2_000.0 (fun () ->
             Harness.submit_query h ~site ~keys:[ "counter" ]
               ~epsilon:Epsilon.Unlimited (fun o ->
                 Printf.printf
                   "        query at site %d submitted t=2000, served t=%.0f: counter=%s\n"
                   site o.Intf.served_at
                   (Value.to_string (List.assoc "counter" o.Intf.values))))))
    [ 0; 3 ];

  let settled = Harness.settle h in
  Printf.printf "updates committed during the partition window: %d / %d\n"
    !committed_in_window !in_window;
  Printf.printf "after heal+drain: settled=%b converged=%b, counter at every site = %s\n\n"
    settled (Harness.converged h)
    (Value.to_string (Store.get (Harness.store h ~site:0) "counter"))

let () =
  run "COMMU";
  run "2PC"
