(* A replicated name service in the Grapevine / Clearinghouse style
   (paper §5.4), built on RITU with multiple versions (§3.3).

   Registrations are timestamped blind writes — the new binding does not
   depend on the old one — so replicas apply them in any order and
   converge by latest-timestamp-wins.  Lookups choose their side of the
   freshness/consistency dial:

   - stable lookups (epsilon = 0) read at the VTNC: the prefix of
     versions that can never be invalidated by a late-arriving update;
   - fresh lookups (epsilon >= 1) may read versions above the VTNC,
     paying one inconsistency unit per fresh read.

   Run with:  dune exec examples/directory_service.exe *)

module Harness = Esr_replica.Harness
module Intf = Esr_replica.Intf
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Mvstore = Esr_store.Mvstore
module Gtime = Esr_clock.Gtime
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Dist = Esr_util.Dist

let () =
  let wan =
    { Net.latency = Dist.Uniform (20.0, 80.0); drop_probability = 0.01; duplicate_probability = 0.0 }
  in
  let config = { Intf.default_config with Intf.ritu_mode = `Multi } in
  let h =
    Harness.create ~config ~net_config:wan ~seed:11 ~sites:4
      ~method_name:"RITU" ()
  in
  let engine = Harness.engine h in

  let register ~at ~site name addr =
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           Harness.submit_update h ~origin:site
             [ Intf.Set (name, Value.str addr) ]
             (function
               | Intf.Committed _ ->
                   Printf.printf "t=%5.0f  site %d registers %s -> %s\n" at site
                     name addr
               | Intf.Rejected r -> Printf.printf "rejected: %s\n" r)))
  in
  let lookup ~at ~site ~epsilon label name =
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           Harness.submit_query h ~site ~keys:[ name ] ~epsilon (fun o ->
               let shown =
                 match List.assoc name o.Intf.values with
                 | Value.Str s -> s
                 | Value.Int _ ->
                     (* No version is below the VTNC yet: origins that have
                        never spoken hold the stable prefix back — the
                        reason directory systems gossip heartbeats. *)
                     "(no stable binding yet)"
               in
               Printf.printf "t=%5.0f  site %d %s lookup %s = %s (units %d)\n"
                 (Engine.now engine) site label name shown o.Intf.charged)))
  in

  (* mailbox "calton" moves between hosts; lookups race the propagation *)
  register ~at:0.0 ~site:0 "calton" "host-a.cs.columbia.edu";
  register ~at:500.0 ~site:1 "avraham" "host-b.cs.columbia.edu";
  register ~at:1_000.0 ~site:2 "calton" "host-c.cs.columbia.edu";

  (* Right after the re-registration: a fresh lookup at the origin sees
     the new binding (charging a unit), a stable lookup reads the VTNC
     prefix. *)
  lookup ~at:1_010.0 ~site:2 ~epsilon:(Epsilon.Limit 1) "fresh " "calton";
  lookup ~at:1_010.0 ~site:2 ~epsilon:(Epsilon.Limit 0) "stable" "calton";

  (* After the system quiesces, fresh and stable lookups agree. *)
  lookup ~at:4_000.0 ~site:3 ~epsilon:(Epsilon.Limit 1) "fresh " "calton";
  lookup ~at:4_000.0 ~site:3 ~epsilon:(Epsilon.Limit 0) "stable" "calton";

  let settled = Harness.settle h in
  Printf.printf "\nsettled=%b converged=%b\n" settled (Harness.converged h);

  (* Show the version history a replica keeps. *)
  match Intf.boxed_mvstore (Harness.system h) ~site:3 with
  | None -> assert false
  | Some mv ->
      Printf.printf "version history of \"calton\" at site 3 (VTNC %s):\n"
        (Gtime.to_string (Mvstore.vtnc mv));
      List.iter
        (fun v ->
          Printf.printf "  @%s %s\n"
            (Gtime.to_string v.Mvstore.ts)
            (Value.to_string v.Mvstore.value))
        (Mvstore.versions mv "calton")
