(* Order pipeline with sagas and compensations (COMPE, paper §4).

   An order is a *saga*: a sequence of update ETs — reserve stock, record
   revenue, schedule shipping — each applied optimistically at every
   replica before the payment authorization decides.  Per §4.2, the
   lock-counters of every step stay up until the whole saga ends, so
   dashboards reading mid-saga get a conservative (upper-bound) charge
   for the saga's total potential inconsistency.

   A declined payment aborts the in-flight step, and the previously
   committed steps are *revoked*: compensated in reverse, using logical
   inverses where the log commutes and Time-Warp undo/redo where it does
   not (a periodic repricing multiplies, which commutes with nothing).

   Run with:  dune exec examples/saga_orders.exe *)

module Intf = Esr_replica.Intf
module Compe = Esr_replica.Compe
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Store = Esr_store.Store
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng

let () =
  let config =
    {
      Intf.default_config with
      Intf.compe_abort_probability = 0.15;  (* payment declines 15% of steps *)
      compe_decision_delay = 120.0;  (* authorization takes 120ms *)
    }
  in
  let engine = Engine.create () in
  let prng = Prng.create 8 in
  let net = Net.create engine ~sites:3 ~prng:(Prng.split prng) in
  let env = Intf.make_env ~config ~engine ~net ~prng () in
  let sys = Compe.create env in

  let shipped = ref 0 and declined = ref 0 in
  let expected = ref (0, 0, 0) in
  for i = 0 to 59 do
    let at = float_of_int i *. 120.0 in
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           let origin = Prng.int prng 3 in
           if i mod 15 = 14 then
             (* Repricing: a multiplicative ET that commutes with nothing. *)
             Compe.submit_update sys ~origin [ Intf.Mul ("target", 2) ] ignore
           else begin
             let amount = 10 + Prng.int prng 90 in
             Compe.submit_saga sys ~origin
               [
                 [ Intf.Add ("stock", -1) ];
                 [ Intf.Add ("revenue", amount) ];
                 [ Intf.Add ("shipments", 1) ];
               ]
               (function
                 | Intf.Committed _ ->
                     incr shipped;
                     let s, r, h = !expected in
                     expected := (s - 1, r + amount, h + 1)
                 | Intf.Rejected _ -> incr declined)
           end))
  done;

  (* Ops dashboards watch the counters while payments are pending;
     mid-saga reads are charged for every undecided or counter-held step
     they can observe. *)
  let max_units = ref 0 and total_units = ref 0 and n_queries = ref 0 in
  for i = 0 to 19 do
    ignore
      (Engine.schedule_at engine ~time:(float_of_int i *. 350.0) (fun () ->
           Compe.submit_query sys ~site:(Prng.int prng 3)
             ~keys:[ "stock"; "revenue" ] ~epsilon:(Epsilon.Limit 6) (fun o ->
               incr n_queries;
               total_units := !total_units + o.Intf.charged;
               if o.Intf.charged > !max_units then max_units := o.Intf.charged)))
  done;

  (* Drain the simulation to quiescence. *)
  let rec settle n =
    if n = 0 then false
    else begin
      Engine.run engine;
      if Compe.quiescent sys then true
      else begin
        Compe.flush sys;
        settle (n - 1)
      end
    end
  in
  let settled = settle 10 in

  Printf.printf "orders shipped: %d, declined: %d (settled=%b)\n" !shipped
    !declined settled;
  let s, r, h = !expected in
  let show key want =
    Printf.printf "  %-10s %6s (expected %6d)\n" key
      (Value.to_string (Store.get (Compe.store sys ~site:0) key))
      want
  in
  show "stock" s;
  show "revenue" r;
  show "shipments" h;
  Printf.printf "replicas converged: %b\n" (Compe.converged sys);
  Printf.printf
    "dashboards: %d reads, mean charge %.1f units, max %d (budget 6)\n\n"
    !n_queries
    (float_of_int !total_units /. float_of_int (max 1 !n_queries))
    !max_units;

  print_endline "compensation machinery used:";
  List.iter
    (fun (k, v) ->
      if
        List.mem k
          [
            "sagas"; "saga_aborts"; "revokes"; "aborts"; "fast_compensations";
            "full_rollbacks"; "replayed_ops"; "tainted_queries"; "forced_charges";
          ]
      then Printf.printf "  %-20s %.0f\n" k v)
    (Compe.stats sys)
