(* Bank branches with asynchronous replication (the paper's motivating
   style of application for COMMU, §3.2).

   Five branch offices fully replicate a set of accounts.  Deposits and
   withdrawals are commutative increments, so branches apply them in
   whatever order the WAN delivers.  Auditors run multi-account queries
   with different inconsistency budgets:

   - the "dashboard" auditor (epsilon = unlimited) wants an instant,
     possibly slightly stale figure;
   - the "regulator" auditor (epsilon = 0) insists on a strictly
     serializable answer and pays for it in waiting time.

   Run with:  dune exec examples/bank_accounts.exe *)

module Harness = Esr_replica.Harness
module Intf = Esr_replica.Intf
module Epsilon = Esr_core.Epsilon
module Value = Esr_store.Value
module Store = Esr_store.Store
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Prng = Esr_util.Prng
module Stats = Esr_util.Stats

let n_branches = 5
let accounts = [| "acct-alice"; "acct-bob"; "acct-carol"; "acct-dave" |]

let () =
  let wan =
    { Net.latency = Dist.Lognormal (3.6, 0.35); drop_probability = 0.01; duplicate_probability = 0.0 }
  in
  let h =
    Harness.create ~net_config:wan ~seed:2026 ~sites:n_branches
      ~method_name:"COMMU" ()
  in
  let engine = Harness.engine h in
  let prng = Prng.create 99 in

  (* 400 transfers over 20 virtual seconds, from random branches. *)
  let committed = ref 0 in
  let expected = Hashtbl.create 8 in
  for i = 0 to 399 do
    let at = float_of_int i *. 50.0 in
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           let branch = Prng.int prng n_branches in
           let account = Prng.choose prng accounts in
           let amount = Prng.int_in prng (-40) 60 in
           Hashtbl.replace expected account
             (Option.value (Hashtbl.find_opt expected account) ~default:0 + amount);
           Harness.submit_update h ~origin:branch
             [ Intf.Add (account, amount) ]
             (function Intf.Committed _ -> incr committed | Intf.Rejected _ -> ())))
  done;

  (* Two auditors sample total balances during the run. *)
  let dashboard_lat = Stats.create () and regulator_lat = Stats.create () in
  let dashboard_units = Stats.create () in
  let audit ~label ~epsilon ~lat ~units at =
    ignore
      (Engine.schedule_at engine ~time:at (fun () ->
           let t0 = Engine.now engine in
           Harness.submit_query h ~site:(Prng.int prng n_branches)
             ~keys:(Array.to_list accounts) ~epsilon (fun o ->
               Stats.add lat (o.Intf.served_at -. t0);
               Stats.add units (float_of_int o.Intf.charged);
               if at = 10_000.0 then
                 Printf.printf "%s audit at t=%.0fms: total=%d (charged %d units)\n"
                   label at
                   (List.fold_left
                      (fun acc (_, v) ->
                        acc + Option.value (Value.as_int v) ~default:0)
                      0 o.Intf.values)
                   o.Intf.charged)))
  in
  let regulator_units = Stats.create () in
  List.iter
    (fun at ->
      audit ~label:"dashboard" ~epsilon:Epsilon.Unlimited ~lat:dashboard_lat
        ~units:dashboard_units at;
      audit ~label:"regulator" ~epsilon:(Epsilon.Limit 0) ~lat:regulator_lat
        ~units:regulator_units at)
    [ 2_000.0; 6_000.0; 10_000.0; 14_000.0; 18_000.0 ];

  let settled = Harness.settle h in
  Printf.printf "\n%d/400 transfers committed; settled=%b\n" !committed settled;
  Printf.printf "dashboard audits: mean latency %.1fms, mean units %.1f\n"
    (Stats.mean dashboard_lat) (Stats.mean dashboard_units);
  Printf.printf "regulator audits: mean latency %.1fms, mean units %.1f\n"
    (Stats.mean regulator_lat) (Stats.mean regulator_units);

  (* Convergence: every branch agrees with the expected ledger. *)
  Printf.printf "\nfinal balances (branch 0) vs expected:\n";
  Array.iter
    (fun account ->
      let got = Store.get (Harness.store h ~site:0) account in
      let want = Option.value (Hashtbl.find_opt expected account) ~default:0 in
      Printf.printf "  %-12s %6s (expected %6d) %s\n" account
        (Value.to_string got) want
        (if Value.equal got (Value.int want) then "OK" else "MISMATCH"))
    accounts;
  Printf.printf "all branches converged: %b\n" (Harness.converged h)
