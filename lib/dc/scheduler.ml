module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Lock_table = Esr_cc.Lock_table
module Lock_mgr = Esr_cc.Lock_mgr
module Tso = Esr_cc.Tso
module Et = Esr_core.Et
module Hist = Esr_core.Hist
module Epsilon = Esr_core.Epsilon

type discipline = Two_phase of Lock_table.t | Timestamp_esr

type status = Running | Waiting | Committed | Aborted

type handle = {
  id : Et.id;
  kind : Et.kind;
  eps : Epsilon.counter;
  ts : int;  (* timestamp under Timestamp_esr *)
  mutable hstatus : status;
  mutable effects : (string * Op.t * Store.undo) list;  (* newest first *)
  mutable waiting_ops : int;
  mutable pending_aborts : (unit -> unit) list;
      (* callbacks of queued lock requests, notified if the ET dies *)
}

type op_outcome =
  | Executed of Value.t
  | Wait
  | Refused_stale
  | Refused_epsilon
  | Refused_deadlock

type counters = {
  committed : int;
  aborted : int;
  deadlock_aborts : int;
  stale_aborts : int;
  epsilon_refusals : int;
  charged_units : int;
}

type t = {
  store : Store.t;
  discipline : discipline;
  locks : Lock_mgr.t;  (* unused under Timestamp_esr *)
  tso : Tso.t;  (* unused under Two_phase *)
  mutable next_id : int;
  mutable next_ts : int;
  mutable exec_log : (handle * Et.action) list;  (* newest first *)
  live : (Et.id, handle) Hashtbl.t;
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_deadlock : int;
  mutable n_stale : int;
  mutable n_eps_refused : int;
  mutable n_charged : int;
}

let create ?(discipline = Two_phase Lock_table.standard) store =
  let table =
    match discipline with Two_phase table -> table | Timestamp_esr -> Lock_table.standard
  in
  {
    store;
    discipline;
    locks = Lock_mgr.create ~table ();
    tso = Tso.create ();
    next_id = 0;
    next_ts = 0;
    exec_log = [];
    live = Hashtbl.create 16;
    n_committed = 0;
    n_aborted = 0;
    n_deadlock = 0;
    n_stale = 0;
    n_eps_refused = 0;
    n_charged = 0;
  }

let store t = t.store

let begin_et t ~kind ?(epsilon = Epsilon.Unlimited) () =
  t.next_id <- t.next_id + 1;
  t.next_ts <- t.next_ts + 1;
  let handle =
    {
      id = t.next_id;
      kind;
      eps = Epsilon.create epsilon;
      ts = t.next_ts;
      hstatus = Running;
      effects = [];
      waiting_ops = 0;
      pending_aborts = [];
    }
  in
  Hashtbl.replace t.live handle.id handle;
  handle

let et_id h = h.id
let kind h = h.kind
let charged h = Epsilon.value h.eps
let status h = h.hstatus

let ensure_alive h =
  match h.hstatus with
  | Running | Waiting -> ()
  | Committed | Aborted ->
      invalid_arg
        (Printf.sprintf "Scheduler: ET%d is already finished" h.id)

(* Lock mode for an operation under the given table's vocabulary. *)
let lock_mode table ~kind op =
  let et_modes = List.mem Lock_table.R_q (Lock_table.modes table) in
  match (kind, Op.is_read op, et_modes) with
  | Et.Query, true, true -> Lock_table.R_q
  | Et.Query, true, false -> Lock_table.R
  | Et.Update, true, true -> Lock_table.R_u
  | Et.Update, true, false -> Lock_table.R
  | Et.Update, false, true -> Lock_table.W_u
  | Et.Update, false, false -> Lock_table.W
  | Et.Query, false, _ -> invalid_arg "Scheduler: query ETs may only read"

let execute t h ~key op =
  (match op with
  | Op.Read -> ()
  | Op.Write _ | Op.Incr _ | Op.Mult _ | Op.Div _ | Op.Timed_write _ | Op.Append _
    -> (
      match Store.apply t.store key op with
      | Ok undo -> h.effects <- (key, op, undo) :: h.effects
      | Error _ -> invalid_arg "Scheduler: operation failed to apply"));
  t.exec_log <- (h, Et.action ~et:h.id ~key op) :: t.exec_log;
  Store.get t.store key

let finish_abort t h =
  (* Undo newest-first.  Operations with a logical inverse are undone by
     applying it — essential under Table 3, where a commuting writer may
     have modified the object after us, so a before-image restore would
     erase its effect.  Operations without an inverse held an exclusive
     lock (nothing commutes with a plain write), so their before-image is
     still accurate. *)
  List.iter
    (fun (key, op, undo) ->
      match Op.inverse op with
      | Some inverse -> (
          match Store.apply t.store key inverse with
          | Ok _ -> ()
          | Error _ -> invalid_arg "Scheduler: inverse failed during abort")
      | None -> Store.rollback t.store undo)
    h.effects;
  h.effects <- [];
  Lock_mgr.release_all t.locks ~txn:h.id;
  h.hstatus <- Aborted;
  Hashtbl.remove t.live h.id;
  t.n_aborted <- t.n_aborted + 1;
  let pending = h.pending_aborts in
  h.pending_aborts <- [];
  List.iter (fun notify -> notify ()) pending

(* In ET-lock disciplines a query read is compatible with uncommitted
   update writers (Tables 2/3); the ESR price is one inconsistency unit
   per such writer whose dirty value the read may include. *)
let query_read_charge t h ~key =
  let writers =
    List.filter
      (fun (txn, mode) ->
        txn <> h.id && (mode = Lock_table.W_u || mode = Lock_table.W))
      (Lock_mgr.holders t.locks ~key)
  in
  let n = List.length writers in
  if n = 0 then true
  else if Epsilon.try_charge h.eps n then begin
    t.n_charged <- t.n_charged + n;
    true
  end
  else false

let submit_two_phase t h table ~key op ~k =
  if h.kind = Et.Query && not (Op.is_read op) then
    invalid_arg "Scheduler: query ETs may only read";
  let mode = lock_mode table ~kind:h.kind op in
  if h.kind = Et.Query && not (query_read_charge t h ~key) then begin
    t.n_eps_refused <- t.n_eps_refused + 1;
    Refused_epsilon
  end
  else begin
    let granted = ref false in
    let on_grant () =
      granted := true;
      if h.hstatus = Waiting || h.hstatus = Running then begin
        h.waiting_ops <- h.waiting_ops - 1;
        if h.waiting_ops = 0 && h.hstatus = Waiting then h.hstatus <- Running;
        let value = execute t h ~key op in
        k (Executed value)
      end
    in
    match Lock_mgr.acquire t.locks ~txn:h.id ~key ~mode ~op ~on_grant () with
    | Lock_mgr.Granted -> Executed (execute t h ~key op)
    | Lock_mgr.Blocked ->
        h.waiting_ops <- h.waiting_ops + 1;
        h.hstatus <- Waiting;
        h.pending_aborts <-
          (fun () -> if not !granted then k Refused_deadlock) :: h.pending_aborts;
        Wait
    | Lock_mgr.Deadlock ->
        t.n_deadlock <- t.n_deadlock + 1;
        finish_abort t h;
        Refused_deadlock
  end

let submit_tso t h ~key op =
  if h.kind = Et.Query && not (Op.is_read op) then
    invalid_arg "Scheduler: query ETs may only read";
  match (h.kind, Op.is_read op) with
  | Et.Query, _ -> (
      match Tso.check_query_read t.tso ~key ~ts:h.ts with
      | Tso.In_order -> Executed (execute t h ~key op)
      | Tso.Out_of_order ->
          if Epsilon.try_charge h.eps 1 then begin
            t.n_charged <- t.n_charged + 1;
            Executed (execute t h ~key op)
          end
          else begin
            t.n_eps_refused <- t.n_eps_refused + 1;
            Refused_epsilon
          end)
  | Et.Update, true -> (
      match Tso.check_update_read t.tso ~key ~ts:h.ts with
      | Tso.Accept -> Executed (execute t h ~key op)
      | Tso.Reject_stale ->
          t.n_stale <- t.n_stale + 1;
          finish_abort t h;
          Refused_stale)
  | Et.Update, false -> (
      match Tso.check_update_write t.tso ~key ~ts:h.ts with
      | Tso.Accept -> Executed (execute t h ~key op)
      | Tso.Reject_stale ->
          t.n_stale <- t.n_stale + 1;
          finish_abort t h;
          Refused_stale)

let submit t h ~key op ?(k = fun _ -> ()) () =
  ensure_alive h;
  match t.discipline with
  | Two_phase table -> submit_two_phase t h table ~key op ~k
  | Timestamp_esr -> submit_tso t h ~key op

let commit t h =
  ensure_alive h;
  if h.waiting_ops > 0 then
    invalid_arg (Printf.sprintf "Scheduler: ET%d still has waiting operations" h.id);
  h.hstatus <- Committed;
  Hashtbl.remove t.live h.id;
  Lock_mgr.release_all t.locks ~txn:h.id;
  t.n_committed <- t.n_committed + 1

let abort t h =
  ensure_alive h;
  finish_abort t h

let history t =
  t.exec_log
  |> List.filter (fun (h, _) -> h.hstatus = Committed)
  |> List.rev_map snd
  |> Hist.of_actions

let counters t =
  {
    committed = t.n_committed;
    aborted = t.n_aborted;
    deadlock_aborts = t.n_deadlock;
    stale_aborts = t.n_stale;
    epsilon_refusals = t.n_eps_refused;
    charged_units = t.n_charged;
  }
