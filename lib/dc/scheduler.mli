(** Divergence control: a site-local scheduler for interleaved ETs.

    The replica-control methods of {!Esr_replica} apply each MSet
    atomically, so their per-site histories interleave only between ETs.
    This module implements the finer-grained story of the paper's §3.1–
    3.2: several ETs submit their operations {e one at a time} against a
    single site, and a divergence-control discipline decides which
    interleavings are admissible:

    - [Two_phase table] — 2PL with a pluggable compatibility table:
      {!Esr_cc.Lock_table.standard} yields classic serializable
      execution, {!Esr_cc.Lock_table.ordup} implements the paper's
      Table 2 (query reads never block or be blocked),
      {!Esr_cc.Lock_table.commu} implements Table 3 (update/update
      conflicts soften to commutativity checks).  Locks are held to
      commit/abort (strict 2PL); deadlock victims abort and roll back.

    - [Timestamp_esr] — basic timestamp ordering with the paper's ESR
      extension: update operations are rejected (aborting the ET) when
      stale, while {e query} reads that would be rejected under strict
      TO may instead be admitted by charging the query's inconsistency
      counter, one unit per out-of-order read (§3.1's "the divergence
      control increments the inconsistency counter and decides whether
      to allow the read").

    The scheduler journals undo records, so aborted ETs leave no effect,
    and emits the execution history of committed ETs for the
    {!Esr_core.Esr_check} checker — the property tests close the loop by
    asserting that every schedule either discipline admits is
    ε-serializable. *)

type discipline =
  | Two_phase of Esr_cc.Lock_table.t
  | Timestamp_esr

type t

val create : ?discipline:discipline -> Esr_store.Store.t -> t
(** [discipline] defaults to [Two_phase Lock_table.standard]. *)

val store : t -> Esr_store.Store.t

type handle
(** One in-progress ET. *)

val begin_et :
  t -> kind:Esr_core.Et.kind -> ?epsilon:Esr_core.Epsilon.spec -> unit -> handle
(** [epsilon] (default [Unlimited]) is the inconsistency budget of a
    query ET under [Timestamp_esr]; update ETs ignore it. *)

val et_id : handle -> Esr_core.Et.id
val kind : handle -> Esr_core.Et.kind
val charged : handle -> int
(** Inconsistency units accumulated so far (query ETs). *)

type status = Running | Waiting | Committed | Aborted

val status : handle -> status

type op_outcome =
  | Executed of Esr_store.Value.t
      (** the value read (reads) or the post-state (updates) *)
  | Wait
      (** blocked on a lock; the callback passed to {!submit} fires when
          the operation eventually executes (or the ET aborts) *)
  | Refused_stale
      (** [Timestamp_esr]: the operation lost the timestamp race; the ET
          has been aborted and rolled back *)
  | Refused_epsilon
      (** query read denied: admitting it would exceed the ET's epsilon;
          the ET stays alive and may retry later or commit with what it
          has *)
  | Refused_deadlock
      (** [Two_phase]: waiting would deadlock; the ET has been aborted *)

val submit :
  t -> handle -> key:string -> Esr_store.Op.t ->
  ?k:(op_outcome -> unit) -> unit -> op_outcome
(** Submit the ET's next operation.  Query ETs may only submit reads
    (raises [Invalid_argument] otherwise).  When the immediate result is
    [Wait], the final outcome is delivered to [k] once the lock is
    granted (as [Executed _]) or the ET is aborted by a deadlock victim
    choice ([Refused_deadlock]). *)

val commit : t -> handle -> unit
(** Finish the ET: release its locks, keep its effects.  Raises
    [Invalid_argument] if it has operations still waiting. *)

val abort : t -> handle -> unit
(** Undo every effect of the ET (reverse order) and release its locks. *)

val history : t -> Esr_core.Hist.t
(** Execution history of {e committed} ETs only, in execution order —
    the log the ESR checker should accept. *)

type counters = {
  committed : int;
  aborted : int;
  deadlock_aborts : int;
  stale_aborts : int;
  epsilon_refusals : int;
  charged_units : int;
}

val counters : t -> counters
