type line = Row of string list | Separator

type t = { title : string; headers : string list; mutable lines : line list }

let create ~title ~headers = { title; headers; lines = [] }

let add_row t cells =
  let n_headers = List.length t.headers in
  let n_cells = List.length cells in
  if n_cells > n_headers then
    invalid_arg
      (Printf.sprintf "Tablefmt.add_row: %d cells for %d columns" n_cells
         n_headers);
  let padded =
    if n_cells = n_headers then cells
    else cells @ List.init (n_headers - n_cells) (fun _ -> "")
  in
  t.lines <- Row padded :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let render t =
  (* A trailing separator would double the closing rule; drop it. *)
  let rec drop_leading_separators = function
    | Separator :: rest -> drop_leading_separators rest
    | rows -> rows
  in
  let rows = List.rev (drop_leading_separators t.lines) in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Separator -> ()
    | Row cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad s w =
    let s = s ^ String.make (w - String.length s) ' ' in
    s
  in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad c widths.(i));
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  emit t.headers;
  rule ();
  List.iter (function Separator -> rule () | Row cells -> emit cells) rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.2f" f

let cell_int = string_of_int
let cell_bool b = if b then "yes" else "no"
