(** Minimal JSON reader (and writer helpers) for the formats this repo
    itself produces: trace JSONL lines, series dumps, and the bench
    trajectory file.  Not a general-purpose JSON library — exactly the
    subset our writers emit (finite numbers, ASCII escapes). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
(** @raise Parse_error with an offset-annotated message. *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** {2 Writer helpers} *)

val buf_add_escaped : Buffer.t -> string -> unit
(** Append [s] to [b] with JSON string escaping (no surrounding quotes). *)

val escape : string -> string

val float_repr : float -> string
(** Shortest decimal representation that parses back to the same float;
    non-finite values render as ["0"] (our virtual times and latencies
    are finite by construction). *)

val render : t -> string
(** Compact single-line serialization (inverse of {!parse} up to
    whitespace and number formatting). *)
