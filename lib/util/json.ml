(* Minimal JSON reader for the subset the repo's writers produce: the
   trace JSONL exporter, the series dump, and the bench trajectory file.
   Writers stay hand-rolled (each knows its own escaping and float
   canonicalization); this is the one shared parser they round-trip
   through, so the reader lives in [esr_util] below every consumer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | _ -> fail "bad escape");
          advance ();
          loop ()
      | c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((key, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Parse_error m -> Error m

(* --- accessors --- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_int = function Num v -> Some (int_of_float v) | _ -> None
let to_string = function Str v -> Some v | _ -> None
let to_bool = function Bool v -> Some v | _ -> None
let to_list = function Arr l -> Some l | _ -> None

(* --- string escaping shared by the writers --- *)

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  buf_add_escaped b s;
  Buffer.contents b

(* Shortest decimal representation that round-trips exactly; JSON numbers
   must not be "inf"/"nan" (callers only feed finite values, guarded). *)
let float_repr v =
  if not (Float.is_finite v) then "0"
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let rec buf_add_json b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
      (* Integral floats print without a fraction so counters round-trip
         as JSON integers. *)
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (float_repr v)
  | Str s ->
      Buffer.add_char b '"';
      buf_add_escaped b s;
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_json b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          buf_add_escaped b k;
          Buffer.add_string b "\":";
          buf_add_json b v)
        fields;
      Buffer.add_char b '}'

let render v =
  let b = Buffer.create 256 in
  buf_add_json b v;
  Buffer.contents b
