type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Normal of float * float
  | Lognormal of float * float
  | Pareto of float * float

let sample_normal prng mu sigma =
  (* Box–Muller; one draw per call keeps the stream deterministic. *)
  let u1 = max 1e-12 (Prng.float prng 1.0) in
  let u2 = Prng.float prng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let sample t prng =
  let v =
    match t with
    | Constant c -> c
    | Uniform (lo, hi) -> lo +. Prng.float prng (hi -. lo)
    | Exponential mean ->
        let u = max 1e-12 (Prng.float prng 1.0) in
        -.mean *. log u
    | Normal (mu, sigma) -> sample_normal prng mu sigma
    | Lognormal (mu, sigma) -> exp (sample_normal prng mu sigma)
    | Pareto (xm, alpha) ->
        let u = max 1e-12 (Prng.float prng 1.0) in
        xm /. (u ** (1.0 /. alpha))
  in
  Float.max 0.0 v

let mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Normal (mu, _) -> mu
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto (xm, alpha) ->
      if alpha <= 1.0 then infinity else alpha *. xm /. (alpha -. 1.0)

let pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%g)" c
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(mean=%g)" m
  | Normal (mu, sigma) -> Format.fprintf ppf "normal(%g,%g)" mu sigma
  | Lognormal (mu, sigma) -> Format.fprintf ppf "lognormal(%g,%g)" mu sigma
  | Pareto (xm, alpha) -> Format.fprintf ppf "pareto(%g,%g)" xm alpha

module Zipf = struct
  (* Inverse-CDF sampling over the precomputed cumulative weights.  O(log n)
     per sample, exact, and deterministic — preferable here to the usual
     rejection method because the key spaces are modest (<= 1e6). *)
  type gen = { cumulative : float array }

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n must be positive";
    let cumulative = Array.make n 0.0 in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      total := !total +. (1.0 /. (float_of_int (i + 1) ** theta));
      cumulative.(i) <- !total
    done;
    for i = 0 to n - 1 do
      cumulative.(i) <- cumulative.(i) /. !total
    done;
    { cumulative }

  let sample g prng =
    let u = Prng.float prng 1.0 in
    let n = Array.length g.cumulative in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if g.cumulative.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (n - 1)
end
