(** Sampling distributions used by workloads and the network model. *)

type t =
  | Constant of float  (** always the same value *)
  | Uniform of float * float  (** uniform in [\[lo, hi)] *)
  | Exponential of float  (** mean given; classic M/M queueing arrivals *)
  | Normal of float * float  (** mean, stddev; truncated at 0 *)
  | Lognormal of float * float
      (** [mu], [sigma] of the underlying normal; heavy-ish WAN tail *)
  | Pareto of float * float  (** scale [x_m], shape [alpha]; heavy tail *)

val sample : t -> Prng.t -> float
(** Draw one value.  All distributions are clamped to be non-negative since
    they model durations. *)

val mean : t -> float
(** Analytic mean (infinite Pareto means clamp to [infinity]). *)

val pp : Format.formatter -> t -> unit

(** Zipfian ranks for skewed key popularity. *)
module Zipf : sig
  type gen

  val create : n:int -> theta:float -> gen
  (** [create ~n ~theta] prepares a Zipf sampler over ranks [0..n-1].
      [theta = 0.] degenerates to uniform; typical hot-key skew is
      [theta = 0.99] as in YCSB. *)

  val sample : gen -> Prng.t -> int
end
