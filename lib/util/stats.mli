(** Descriptive statistics for experiment metrics. *)

type t
(** A mutable sample accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 on an empty accumulator. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** [infinity] on an empty accumulator. *)

val max : t -> float
(** [neg_infinity] on an empty accumulator. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  0 on an empty accumulator. *)

val median : t -> float
val values : t -> float array
(** Copy of the raw samples in insertion order. *)

val merge : t -> t -> t
(** Fresh accumulator holding both sample sets. *)

val summary : t -> string
(** One-line [n/mean/p50/p99/max] rendering for logs. *)

(** Fixed-bucket histogram (for staleness / error distributions). *)
module Histogram : sig
  type h

  val create : buckets:float array -> h
  (** [buckets] are the upper bounds of each bin, ascending; an implicit
      overflow bin catches the rest. *)

  val add : h -> float -> unit
  val counts : h -> int array
  (** Length = [Array.length buckets + 1]; last entry is the overflow bin. *)

  val total : h -> int
  val pp : Format.formatter -> h -> unit
end
