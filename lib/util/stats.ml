type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option;  (* cache invalidated by [add] *)
}

let create () =
  {
    data = Array.make 16 0.0;
    len = 0;
    sum = 0.0;
    sum_sq = 0.0;
    mn = infinity;
    mx = neg_infinity;
    sorted = None;
  }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let variance t =
  if t.len < 2 then 0.0
  else
    let m = mean t in
    Float.max 0.0 ((t.sum_sq /. float_of_int t.len) -. (m *. m))

let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.data 0 t.len in
      Array.sort compare s;
      t.sorted <- Some s;
      s

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    let s = sorted t in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then s.(lo)
    else
      let frac = rank -. float_of_int lo in
      s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median t = percentile t 50.0
let values t = Array.sub t.data 0 t.len

let merge a b =
  let t = create () in
  Array.iter (add t) (values a);
  Array.iter (add t) (values b);
  t

let summary t =
  Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" (count t)
    (mean t) (median t) (percentile t 99.0)
    (if t.len = 0 then 0.0 else max t)

module Histogram = struct
  type h = { bounds : float array; counts : int array; mutable n : int }

  let create ~buckets =
    let sorted_bounds = Array.copy buckets in
    Array.sort compare sorted_bounds;
    { bounds = sorted_bounds; counts = Array.make (Array.length buckets + 1) 0; n = 0 }

  let add h x =
    let rec find i =
      if i >= Array.length h.bounds then i
      else if x <= h.bounds.(i) then i
      else find (i + 1)
    in
    let i = find 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.n <- h.n + 1

  let counts h = Array.copy h.counts
  let total h = h.n

  let pp ppf h =
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun i c ->
        let label =
          if i < Array.length h.bounds then Printf.sprintf "<=%g" h.bounds.(i)
          else "overflow"
        in
        Format.fprintf ppf "%-10s %d@," label c)
      h.counts;
    Format.fprintf ppf "@]"
end
