(** Deterministic, splittable pseudo-random number generator.

    All randomness in the simulator flows through this module so that every
    experiment is reproducible bit-for-bit from a single seed.  The generator
    is xoshiro256** seeded through splitmix64, following Blackman & Vigna.
    [split] derives an independent stream, which lets each simulated site,
    client, and network link own a private generator that does not perturb
    the others when call orders change. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t].  Streams obtained by successive splits are pairwise independent. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  Raises [Invalid_argument] on empty array. *)
