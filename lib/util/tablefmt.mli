(** Fixed-width ASCII table rendering for the bench harness.

    Every table/figure reproduced from the paper is printed through this
    module so the output stays uniform and diffable. *)

type t

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val cell_float : float -> string
(** Canonical float formatting ("%.2f", trailing-zero trimmed). *)

val cell_int : int -> string
val cell_bool : bool -> string
(** "yes" / "no". *)
