(** Workload specifications.

    A workload is an open-loop arrival process of update and query ETs
    over a keyspace with configurable skew.  The operation [profile]
    matches the restriction of the method under test — the paper's
    methods deliberately accept different operation classes, so
    cross-method experiments use profiles of equivalent shape (same
    rates, sizes, and key-popularity) built from the intents each method
    admits. *)

module Epsilon = Esr_core.Epsilon

type profile =
  | Additive  (** commutative increments: ORDUP, COMMU, COMPE, 2PC *)
  | Blind_set  (** timestamped overwrites: RITU, QUORUM, ORDUP, 2PC *)
  | Mixed_arith of float
      (** additive with the given fraction of multiplicative ETs — the
          §4.1 compensation mix for COMPE *)

let profile_to_string = function
  | Additive -> "additive"
  | Blind_set -> "blind-set"
  | Mixed_arith f -> Printf.sprintf "mixed-arith(%.0f%% mul)" (100. *. f)

type t = {
  duration : float;  (** virtual ms of arrivals *)
  update_rate : float;  (** update ETs per virtual ms, whole system *)
  query_rate : float;
  n_keys : int;
  zipf_theta : float;  (** 0.0 = uniform key popularity *)
  ops_per_update : int;
  keys_per_query : int;
  epsilon : Epsilon.spec;  (** inconsistency budget per query ET *)
  profile : profile;
}

let default =
  {
    duration = 2_000.0;
    update_rate = 0.05;
    query_rate = 0.05;
    n_keys = 32;
    zipf_theta = 0.6;
    ops_per_update = 2;
    keys_per_query = 2;
    epsilon = Epsilon.Unlimited;
    profile = Additive;
  }

let pp ppf s =
  Format.fprintf ppf
    "dur=%.0fms up=%.3f/ms q=%.3f/ms keys=%d theta=%.2f ops/u=%d keys/q=%d \
     eps=%a profile=%s"
    s.duration s.update_rate s.query_rate s.n_keys s.zipf_theta
    s.ops_per_update s.keys_per_query Epsilon.pp_spec s.epsilon
    (profile_to_string s.profile)
