(** Scenario driver: runs one workload against one replica-control method
    on a fresh simulated system and collects the metrics the experiment
    tables report. *)

module Prng = Esr_util.Prng
module Dist = Esr_util.Dist
module Stats = Esr_util.Stats
module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Value = Esr_store.Value
module Epsilon = Esr_core.Epsilon
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Obs = Esr_obs.Obs
module Series = Esr_obs.Series

type partition_spec = {
  p_start : float;  (** virtual ms at which the network splits *)
  p_end : float;  (** virtual ms at which it heals *)
  groups : int list list;
}

type window_counts = {
  w_updates_submitted : int;
  w_updates_committed : int;
  w_queries_submitted : int;
  w_queries_served : int;
}

type result = {
  method_name : string;
  sites : int;
  spec : Spec.t;
  submitted_updates : int;
  committed : int;
  rejected : int;
  submitted_queries : int;
  served : int;
  update_latency : Stats.t;
  query_latency : Stats.t;
  charged : Stats.t;  (** inconsistency units per served query *)
  value_error : Stats.t;  (** distance to the committed-prefix oracle *)
  fallback_queries : int;  (** served via the consistent/waiting path *)
  settled : bool;
  converged : bool;
  quiesce_time : float;  (** virtual time once fully drained *)
  window : window_counts option;
  method_stats : (string * float) list;
  net_counters : Net.counters;
}

let throughput r =
  if r.quiesce_time <= 0.0 then 0.0
  else float_of_int r.committed /. r.quiesce_time *. 1000.0
(* committed update ETs per virtual second *)

let key_name rank = Printf.sprintf "k%03d" rank

(* The generators sit on the per-op hot path, so the key-name strings are
   pre-built once per run ([key_cache]) instead of sprintf'd per sample,
   and distinct-key sampling uses a small scratch set instead of scanning
   the accumulator list per attempt.  The PRNG call sequence is identical
   to the naive version, so workloads are unchanged bit-for-bit. *)

let make_key_cache n = Array.init n key_name

let gen_intents prng zipf ~key_cache ~scratch (spec : Spec.t) =
  let pick_key () = key_cache.(Dist.Zipf.sample zipf prng) in
  let distinct_keys n =
    (* Sampling may repeat under heavy skew; retry a few times, then
       accept the repeat (methods tolerate duplicate keys in one ET). *)
    Hashtbl.reset scratch;
    let rec grow acc remaining attempts =
      if remaining = 0 then acc
      else
        let k = pick_key () in
        if Hashtbl.mem scratch k && attempts < 8 then
          grow acc remaining (attempts + 1)
        else begin
          Hashtbl.replace scratch k ();
          grow (k :: acc) (remaining - 1) 0
        end
    in
    grow [] n 0
  in
  let keys = distinct_keys spec.Spec.ops_per_update in
  match spec.Spec.profile with
  | Spec.Additive -> List.map (fun k -> Intf.Add (k, 1 + Prng.int prng 10)) keys
  | Spec.Blind_set ->
      List.map (fun k -> Intf.Set (k, Value.Int (Prng.int prng 1000))) keys
  | Spec.Mixed_arith mul_fraction ->
      if Prng.bernoulli prng mul_fraction then
        List.map (fun k -> Intf.Mul (k, 2)) keys
      else List.map (fun k -> Intf.Add (k, 1 + Prng.int prng 10)) keys

let gen_query_keys prng zipf ~key_cache (spec : Spec.t) =
  List.init spec.Spec.keys_per_query (fun _ ->
      key_cache.(Dist.Zipf.sample zipf prng))
  |> List.sort_uniq String.compare

let run ?(seed = 42) ?config ?net_config ?partition ?faults ?flush_every
    ?sharding ?obs ?checkpoint ?audit ~sites ~method_name (spec : Spec.t) =
  let engine_hint =
    (* Expected arrivals; each spawns a handful of network events. *)
    let arrivals =
      (spec.Spec.update_rate +. spec.Spec.query_rate) *. spec.Spec.duration
    in
    Stdlib.max 64 (4 * int_of_float arrivals)
  in
  let harness =
    Harness.create ?config ?net_config ?sharding ?obs ?checkpoint ~seed
      ~store_hint:spec.Spec.n_keys ~engine_hint ~sites ~method_name ()
  in
  (* The auditor taps the trace stream before anything runs, and before
     arming the series so its [audit/] columns freeze in. *)
  (match audit with
  | None -> ()
  | Some a -> Harness.attach_audit harness a);
  let sharding = (Harness.env harness).Intf.sharding in
  let keyspace = (Harness.env harness).Intf.keyspace in
  let full = Esr_store.Sharding.is_full sharding in
  let engine = Harness.engine harness in
  let net = Harness.net harness in
  let prng = Prng.create (seed * 7919) in
  let zipf = Dist.Zipf.create ~n:spec.Spec.n_keys ~theta:spec.Spec.zipf_theta in
  let key_cache = make_key_cache spec.Spec.n_keys in
  let scratch = Hashtbl.create 16 in
  let oracle = Oracle.create ~size:spec.Spec.n_keys () in
  (* Derived series probes that need the workload's oracle: distance of
     each replica to the committed-prefix state, i.e. the divergence the
     paper's epsilon bounds are about.  Registered before arming so the
     columns freeze with everything in place. *)
  let series = (Harness.obs harness).Obs.series in
  if Series.on series then begin
    let metric =
      match spec.Spec.profile with
      | Spec.Blind_set -> `Mismatch
      | Spec.Additive | Spec.Mixed_arith _ -> `Distance
    in
    let oracle_stats () =
      let worst = ref 0.0 and sum = ref 0.0 in
      for site = 0 to sites - 1 do
        let d =
          Oracle.error ~metric oracle
            (Esr_store.Store.snapshot (Harness.store harness ~site))
        in
        worst := Float.max !worst d;
        sum := !sum +. d
      done;
      (!worst, !sum /. float_of_int sites)
    in
    Series.probe series ~name:"esr/oracle_max" (fun () -> fst (oracle_stats ()));
    Series.probe series ~name:"esr/oracle_mean" (fun () -> snd (oracle_stats ()))
  end;
  Harness.arm_series harness ~until:spec.Spec.duration;
  Harness.arm_checkpoints harness ~until:spec.Spec.duration;
  (* mutable tallies *)
  let submitted_updates = ref 0 and committed = ref 0 and rejected = ref 0 in
  let submitted_queries = ref 0 and served = ref 0 in
  let fallback_queries = ref 0 in
  let update_latency = Stats.create () in
  let query_latency = Stats.create () in
  let charged = Stats.create () in
  let value_error = Stats.create () in
  let w_us = ref 0 and w_uc = ref 0 and w_qs = ref 0 and w_qv = ref 0 in
  let in_window time =
    match partition with
    | None -> false
    | Some p -> time >= p.p_start && time < p.p_end
  in
  (* Periodic protocol flushes (watermark heartbeats): lets decentralized
     ordering (ORDUP Lamport mode) and VTNC advancement (RITU multi) make
     progress during the run instead of only at settle time. *)
  (match flush_every with
  | None -> ()
  | Some period ->
      if period <= 0.0 then invalid_arg "Scenario.run: flush_every must be positive";
      let t = ref period in
      while !t < spec.Spec.duration do
        ignore
          (Engine.schedule_at engine ~time:!t (fun () ->
               Esr_replica.Intf.boxed_flush (Harness.system harness)));
        t := !t +. period
      done);
  (* failure injection *)
  (match partition with
  | None -> ()
  | Some p ->
      ignore
        (Engine.schedule_at engine ~time:p.p_start (fun () ->
             Net.partition net p.groups));
      ignore
        (Engine.schedule_at engine ~time:p.p_end (fun () -> Net.heal net)));
  (match faults with
  | None -> ()
  | Some schedule -> Harness.inject_faults harness schedule);
  (* open-loop arrivals *)
  let schedule_arrivals ~rate ~fire =
    if rate > 0.0 then begin
      let t = ref 0.0 in
      let mean_gap = 1.0 /. rate in
      let gap_prng = Prng.split prng in
      while !t < spec.Spec.duration do
        t := !t +. Dist.sample (Dist.Exponential mean_gap) gap_prng;
        if !t < spec.Spec.duration then
          ignore (Engine.schedule_at engine ~time:!t fire)
      done
    end
  in
  schedule_arrivals ~rate:spec.Spec.update_rate ~fire:(fun () ->
      incr submitted_updates;
      let submit_time = Engine.now engine in
      if in_window submit_time then incr w_us;
      let origin = Prng.int prng sites in
      let intents = gen_intents prng zipf ~key_cache ~scratch spec in
      Harness.submit_update harness ~origin intents (function
        | Intf.Committed { committed_at } ->
            incr committed;
            if in_window committed_at then incr w_uc;
            Stats.add update_latency (committed_at -. submit_time);
            Oracle.apply oracle intents
        | Intf.Rejected _ -> incr rejected));
  schedule_arrivals ~rate:spec.Spec.query_rate ~fire:(fun () ->
      incr submitted_queries;
      (* Harness query ids are dense from 0 in submission order, so the
         id this submit will get is the tally before it. *)
      let q = !submitted_queries - 1 in
      let submit_time = Engine.now engine in
      if in_window submit_time then incr w_qs;
      let site = Prng.int prng sites in
      let keys = gen_query_keys prng zipf ~key_cache spec in
      (* Under partial replication, re-home the query onto a replica of
         its first key's shard.  The drawn site seeds a deterministic
         pick ([route_site]), so the PRNG call sequence — and therefore
         the whole workload — is unchanged bit-for-bit vs. full
         replication. *)
      let site =
        if full then site
        else
          match keys with
          | [] -> site
          | k :: _ ->
              Esr_store.Sharding.route_site sharding
                ~id:(Esr_store.Keyspace.find keyspace k)
                ~site
      in
      Harness.submit_query harness ~site ~keys ~epsilon:spec.Spec.epsilon
        (fun outcome ->
          incr served;
          if in_window outcome.Intf.served_at then incr w_qv;
          Stats.add query_latency (outcome.Intf.served_at -. submit_time);
          Stats.add charged (float_of_int outcome.Intf.charged);
          let metric =
            match spec.Spec.profile with
            | Spec.Blind_set -> `Mismatch
            | Spec.Additive | Spec.Mixed_arith _ -> `Distance
          in
          let distance = Oracle.error ~metric oracle outcome.Intf.values in
          Stats.add value_error distance;
          (match audit with
          | None -> ()
          | Some a -> Esr_obs.Audit.note_oracle a ~q ~distance);
          if outcome.Intf.consistent_path then incr fallback_queries));
  let settled = Harness.settle harness in
  {
    method_name;
    sites;
    spec;
    submitted_updates = !submitted_updates;
    committed = !committed;
    rejected = !rejected;
    submitted_queries = !submitted_queries;
    served = !served;
    update_latency;
    query_latency;
    charged;
    value_error;
    fallback_queries = !fallback_queries;
    settled;
    converged = Harness.converged harness;
    quiesce_time = Engine.now engine;
    window =
      Option.map
        (fun _ ->
          {
            w_updates_submitted = !w_us;
            w_updates_committed = !w_uc;
            w_queries_submitted = !w_qs;
            w_queries_served = !w_qv;
          })
        partition;
    method_stats = Harness.stats_alist harness;
    net_counters = Net.counters net;
  }

let method_stat r name = List.assoc_opt name r.method_stats

let pp_summary ppf r =
  Format.fprintf ppf
    "%s sites=%d committed=%d/%d rejected=%d served=%d/%d up-lat(p50)=%.1f \
     q-lat(p50)=%.1f charged(max)=%.0f err(mean)=%.2f conv=%b"
    r.method_name r.sites r.committed r.submitted_updates r.rejected r.served
    r.submitted_queries
    (Stats.median r.update_latency)
    (Stats.median r.query_latency)
    (if Stats.count r.charged = 0 then 0.0 else Stats.max r.charged)
    (Stats.mean r.value_error) r.converged
