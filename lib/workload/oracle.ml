(** Committed-prefix oracle: the value every key "should" have if all
    updates committed so far were visible instantly.

    Intents are applied to the oracle at commit-callback time, so a
    query's value error — the distance between what it read and the
    oracle at serve time — measures the staleness the asynchronous
    propagation exposed.  The epsilon *units* guarantee is checked
    separately against the charge counters; the oracle gives the
    complementary value-level view reported by experiment E2. *)

module Value = Esr_store.Value
module Intf = Esr_replica.Intf

type t = (string, Value.t) Hashtbl.t

let create ?(size = 64) () = Hashtbl.create (Stdlib.max 1 size)

let get t key = Option.value (Hashtbl.find_opt t key) ~default:Value.zero

let apply_intent t intent =
  let key = Intf.intent_key intent in
  let current = get t key in
  let next =
    match (intent, current) with
    | Intf.Set (_, v), _ -> v
    | Intf.Add (_, d), Value.Int i -> Value.Int (i + d)
    | Intf.Mul (_, f), Value.Int i -> Value.Int (i * f)
    | (Intf.Add _ | Intf.Mul _), Value.Str _ ->
        invalid_arg "Oracle: arithmetic intent on string value"
  in
  Hashtbl.replace t key next

let apply t intents = List.iter (apply_intent t) intents

(** Distance between a query answer and the oracle, summed over the keys
    read.  [`Distance] takes the absolute numeric difference (meaningful
    for additive workloads, where it counts missed increments);
    [`Mismatch] counts 0/1 per key (meaningful for blind overwrites,
    where any stale value is simply "one version behind"). *)
let error ?(metric = `Distance) t values =
  List.fold_left
    (fun acc (key, read) ->
      let expected = get t key in
      let delta =
        match (metric, read, expected) with
        | `Distance, Value.Int a, Value.Int b -> float_of_int (abs (a - b))
        | `Distance, a, b | `Mismatch, a, b ->
            if Value.equal a b then 0.0 else 1.0
      in
      acc +. delta)
    0.0 values
