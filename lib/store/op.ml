module Gtime = Esr_clock.Gtime

type t =
  | Read
  | Write of Value.t
  | Incr of int
  | Mult of int
  | Div of int
  | Timed_write of { ts : Gtime.t; value : Value.t }
  | Append of { ts : Gtime.t; value : Value.t }

let is_read = function
  | Read -> true
  | Write _ | Incr _ | Mult _ | Div _ | Timed_write _ | Append _ -> false

let is_update op = not (is_read op)

(* Commutativity classes: additive deltas commute among themselves,
   multiplicative ops among themselves, latest-wins blind writes among
   themselves (the final state is determined by the max timestamp), and
   version appends among themselves (set union).  Everything else conflicts
   conservatively. *)
let commutes a b =
  match (a, b) with
  | Read, Read -> true
  | Incr _, Incr _ -> true
  | (Mult _ | Div _), (Mult _ | Div _) -> true
  | Timed_write _, Timed_write _ -> true
  | Append _, Append _ -> true
  | ( (Read | Write _ | Incr _ | Mult _ | Div _ | Timed_write _ | Append _),
      (Read | Write _ | Incr _ | Mult _ | Div _ | Timed_write _ | Append _) ) ->
      false

let read_independent = function
  | Timed_write _ | Append _ -> true
  | Read | Write _ | Incr _ | Mult _ | Div _ -> false

let inverse = function
  | Incr d -> Some (Incr (-d))
  | Mult k -> Some (Div k)
  | Div k -> Some (Mult k)
  | Append { ts; value = _ } ->
      (* Compensating an append deletes that version; encoded as appending
         nothing is impossible, so the store exposes remove_version and
         COMPE uses it directly.  No value-level inverse. *)
      ignore ts;
      None
  | Read | Write _ | Timed_write _ -> None

let compensatable = function
  | Read -> false
  | Write _ | Incr _ | Mult _ | Div _ | Timed_write _ | Append _ -> true

type apply_error = Type_mismatch of string | Division_error of string

let apply_value op value =
  match (op, value) with
  | Read, v -> Ok v
  | Write v, _ -> Ok v
  | Incr d, Value.Int i -> Ok (Value.Int (i + d))
  | Incr _, Value.Str _ -> Error (Type_mismatch "Incr on string value")
  | Mult k, Value.Int i -> Ok (Value.Int (i * k))
  | Mult _, Value.Str _ -> Error (Type_mismatch "Mult on string value")
  | Div 0, Value.Int _ -> Error (Division_error "Div by zero")
  | Div k, Value.Int i ->
      if i mod k <> 0 then
        Error (Division_error (Printf.sprintf "%d not divisible by %d" i k))
      else Ok (Value.Int (i / k))
  | Div _, Value.Str _ -> Error (Type_mismatch "Div on string value")
  | Timed_write { value = v; _ }, _ -> Ok v
  | Append { value = v; _ }, _ -> Ok v

let pp ppf = function
  | Read -> Format.fprintf ppf "R"
  | Write v -> Format.fprintf ppf "W(%a)" Value.pp v
  | Incr d -> Format.fprintf ppf "Inc(%d)" d
  | Mult k -> Format.fprintf ppf "Mul(%d)" k
  | Div k -> Format.fprintf ppf "Div(%d)" k
  | Timed_write { ts; value } ->
      Format.fprintf ppf "TW@%a(%a)" Gtime.pp ts Value.pp value
  | Append { ts; value } ->
      Format.fprintf ppf "App@%a(%a)" Gtime.pp ts Value.pp value

let to_string op = Format.asprintf "%a" pp op
