module Gtime = Esr_clock.Gtime

type key = string

type version = { ts : Gtime.t; value : Value.t }

(* Version lists live in a flat array indexed by interned key id
   (newest first).  [touched] distinguishes a key whose versions were
   all removed (still listed by [keys], as the hash-table representation
   did) from one never written. *)
type t = {
  ks : Keyspace.t;
  mutable vers : version list array;
  mutable touched : bool array;
  mutable vtnc : Gtime.t;
}

let create ?(size = 64) ?keyspace () =
  let ks =
    match keyspace with
    | Some ks -> ks
    | None -> Keyspace.create ~hint:size ()
  in
  let n = Stdlib.max 1 (Stdlib.max size (Keyspace.size ks)) in
  { ks; vers = Array.make n []; touched = Array.make n false; vtnc = Gtime.zero }

let ensure_slot t id =
  let n = Array.length t.vers in
  if id >= n then begin
    let cap = Stdlib.max (id + 1) (2 * n) in
    let vers = Array.make cap [] and touched = Array.make cap false in
    Array.blit t.vers 0 vers 0 n;
    Array.blit t.touched 0 touched 0 n;
    t.vers <- vers;
    t.touched <- touched
  end

(* [find] rather than [intern]: reads on never-written keys must not
   grow the keyspace. *)
let slot t key =
  let id = Keyspace.find t.ks key in
  if id < 0 || id >= Array.length t.vers then -1 else id

(* Insert keeping newest-first order; duplicates (same ts) rejected. *)
let append t key ~ts value =
  let id = Keyspace.intern t.ks key in
  ensure_slot t id;
  t.touched.(id) <- true;
  let rec insert = function
    | [] -> Some [ { ts; value } ]
    | v :: rest as all ->
        let c = Gtime.compare ts v.ts in
        if c > 0 then Some ({ ts; value } :: all)
        else if c = 0 then None
        else Option.map (fun inserted -> v :: inserted) (insert rest)
  in
  match insert t.vers.(id) with
  | Some updated ->
      t.vers.(id) <- updated;
      true
  | None -> false

let remove_version t key ~ts =
  let id = slot t key in
  if id < 0 then false
  else begin
    let before = List.length t.vers.(id) in
    t.vers.(id) <- List.filter (fun v -> not (Gtime.equal v.ts ts)) t.vers.(id);
    List.length t.vers.(id) < before
  end

let vtnc t = t.vtnc

let advance_vtnc t ts = if Gtime.compare ts t.vtnc > 0 then t.vtnc <- ts

let read_at t key ~as_of =
  let id = slot t key in
  if id < 0 then None
  else List.find_opt (fun v -> Gtime.compare v.ts as_of <= 0) t.vers.(id)

let read_visible t key = read_at t key ~as_of:t.vtnc

let read_latest t key =
  let id = slot t key in
  if id < 0 then None
  else match t.vers.(id) with [] -> None | newest :: _ -> Some newest

let versions_above_vtnc t key =
  let id = slot t key in
  if id < 0 then 0
  else
    List.length
      (List.filter (fun v -> Gtime.compare v.ts t.vtnc > 0) t.vers.(id))

let versions t key =
  let id = slot t key in
  if id < 0 then [] else List.rev t.vers.(id)

let keys t =
  let acc = ref [] in
  let n = Stdlib.min (Array.length t.vers) (Keyspace.size t.ks) in
  for id = 0 to n - 1 do
    if t.touched.(id) then acc := Keyspace.name t.ks id :: !acc
  done;
  List.sort String.compare !acc

let copy t =
  {
    ks = t.ks;
    vers = Array.copy t.vers;
    touched = Array.copy t.touched;
    vtnc = t.vtnc;
  }

let equal a b =
  let same_versions k =
    let va = versions a k and vb = versions b k in
    List.length va = List.length vb
    && List.for_all2
         (fun x y -> Gtime.equal x.ts y.ts && Value.equal x.value y.value)
         va vb
  in
  let all = List.sort_uniq String.compare (keys a @ keys b) in
  List.for_all same_versions all

let pp ppf t =
  Format.fprintf ppf "@[<v>vtnc=%a@," Gtime.pp t.vtnc;
  List.iter
    (fun k ->
      Format.fprintf ppf "%s:" k;
      List.iter
        (fun v -> Format.fprintf ppf " %a=%a" Gtime.pp v.ts Value.pp v.value)
        (versions t k);
      Format.fprintf ppf "@,")
    (keys t);
  Format.fprintf ppf "@]"
