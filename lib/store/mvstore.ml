module Gtime = Esr_clock.Gtime

type key = string

type version = { ts : Gtime.t; value : Value.t }

type t = {
  table : (key, version list ref) Hashtbl.t;  (* newest first *)
  mutable vtnc : Gtime.t;
}

let create () = { table = Hashtbl.create 64; vtnc = Gtime.zero }

let versions_ref t key =
  match Hashtbl.find_opt t.table key with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.table key r;
      r

(* Insert keeping newest-first order; duplicates (same ts) rejected. *)
let append t key ~ts value =
  let r = versions_ref t key in
  let rec insert = function
    | [] -> Some [ { ts; value } ]
    | v :: rest as all ->
        let c = Gtime.compare ts v.ts in
        if c > 0 then Some ({ ts; value } :: all)
        else if c = 0 then None
        else Option.map (fun inserted -> v :: inserted) (insert rest)
  in
  match insert !r with
  | Some updated ->
      r := updated;
      true
  | None -> false

let remove_version t key ~ts =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some r ->
      let before = List.length !r in
      r := List.filter (fun v -> not (Gtime.equal v.ts ts)) !r;
      List.length !r < before

let vtnc t = t.vtnc

let advance_vtnc t ts = if Gtime.compare ts t.vtnc > 0 then t.vtnc <- ts

let read_at t key ~as_of =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some r -> List.find_opt (fun v -> Gtime.compare v.ts as_of <= 0) !r

let read_visible t key = read_at t key ~as_of:t.vtnc

let read_latest t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some r -> ( match !r with [] -> None | newest :: _ -> Some newest)

let versions_above_vtnc t key =
  match Hashtbl.find_opt t.table key with
  | None -> 0
  | Some r ->
      List.length (List.filter (fun v -> Gtime.compare v.ts t.vtnc > 0) !r)

let versions t key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some r -> List.rev !r

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort String.compare

let equal a b =
  let same_versions k =
    let va = versions a k and vb = versions b k in
    List.length va = List.length vb
    && List.for_all2
         (fun x y -> Gtime.equal x.ts y.ts && Value.equal x.value y.value)
         va vb
  in
  let all = List.sort_uniq String.compare (keys a @ keys b) in
  List.for_all same_versions all

let pp ppf t =
  Format.fprintf ppf "@[<v>vtnc=%a@," Gtime.pp t.vtnc;
  List.iter
    (fun k ->
      Format.fprintf ppf "%s:" k;
      List.iter
        (fun v -> Format.fprintf ppf " %a=%a" Gtime.pp v.ts Value.pp v.value)
        (versions t k);
      Format.fprintf ppf "@,")
    (keys t);
  Format.fprintf ppf "@]"
