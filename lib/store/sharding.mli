(** Keyspace sharding and deterministic replica placement.

    The partial-replication discipline (Sutra & Shapiro): a key belongs
    to exactly one shard ([shard_of_id] over the run-wide {!Keyspace}
    interner ids), and each shard is replicated at a fixed set of sites
    chosen by a deterministic placement policy.  Methods route MSets and
    propagation only to the sites replicating the touched shards, cutting
    fanout from O(sites) to O(replication factor).

    The [All] policy — or any policy with [factor = sites] — replicates
    every shard everywhere and is the default in {!Esr_replica.Intf.env};
    it must be (and is tested to be) byte-identical to the historical
    full-replication behaviour.  Placement is a pure function of
    [(sites, shards, factor, policy)], so every site agrees on every
    replica set without coordination. *)

type policy =
  | All  (** every site replicates every shard (historical behaviour) *)
  | Ring  (** shard s lives at [factor] consecutive sites from [s mod sites] *)
  | Hash  (** shard s lives at [factor] sites picked by a splitmix hash *)

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

type t

val create : ?policy:policy -> ?shards:int -> ?factor:int -> sites:int -> unit -> t
(** [shards] defaults to [sites] (1 for [All]); [factor] defaults to
    [sites] for [All] and [min 3 sites] otherwise.  Raises
    [Invalid_argument] when [sites < 1], [shards < 1] or [factor] is
    outside [1 .. sites]. *)

val full : sites:int -> t
(** [create ~policy:All ~sites ()] — today's replicate-everywhere map. *)

val sites : t -> int
val shards : t -> int
val factor : t -> int
val policy : t -> policy

val is_full : t -> bool
(** Every shard is replicated at every site ([factor = sites]).  Methods
    use this to keep the historical broadcast path — and its exact
    payload sharing — when sharding is effectively off. *)

val shard_of_id : t -> int -> int
(** Shard of an interned key id: [id mod shards].  Allocation-free.
    Negative ids (a key never interned) map to shard 0. *)

val replicas : t -> int -> int array
(** Replica sites of a shard, strictly ascending.  The array is owned by
    [t]; callers must not mutate it. *)

val replicates : t -> site:int -> shard:int -> bool
(** O(1) membership test. *)

val replicates_id : t -> site:int -> id:int -> bool
(** [replicates] of the id's shard.  Allocation-free. *)

val route_site : t -> id:int -> site:int -> int
(** [site] when it replicates [id]'s shard; otherwise a deterministic
    replica of that shard ([site mod factor]-th).  Identity when
    [is_full].  Used to re-home queries onto an interested replica
    without consuming randomness. *)

val converged : t -> keyspace:Keyspace.t -> store:(int -> Store.t) -> bool
(** Shard-aware replica equality: for every interned key, all sites
    replicating its shard hold the same value (absent reads
    {!Value.zero}).  With [is_full] this coincides with pairwise
    {!Store.equal} across all sites. *)

val divergent_replicas : t -> keyspace:Keyspace.t -> store:(int -> Store.t) -> int
(** Number of sites holding, for some key they replicate, a value that
    differs from the lowest-numbered replica of that key's shard.  With
    [is_full] this is the historical "sites differing from site 0"
    count. *)

(** Zero-allocation destination-set cursor: accumulates the union of the
    replica sets of an MSet's shards, using epoch-stamped scratch arrays
    so [reset] is O(1) and nothing is allocated after [cursor].  [iter]
    visits sites in ascending order — the same order
    {!Esr_squeue.Squeue.broadcast} sends in, which is what keeps the
    [factor = sites] configuration byte-identical to the historical
    broadcast. *)
module Dests : sig
  type sharding := t
  type t

  val cursor : sharding -> t
  (** One per system (or per call site); reusable via [reset]. *)

  val reset : t -> unit
  val add_shard : t -> int -> unit
  val add_id : t -> int -> unit
  (** Add the replica set of the id's shard. *)

  val add_site : t -> int -> unit
  (** Force one site in (e.g. an uninterested origin that must still see
      its own decision). *)

  val mem : t -> int -> bool
  val count : t -> int
  val iter : t -> (int -> unit) -> unit
  (** Ascending site order. *)
end

val pp : Format.formatter -> t -> unit
