(* String <-> dense int id interner shared by every replica of a run.

   Interning happens once at ET submission; after that the apply and
   propagate paths work on immediate ints, so per-op store access costs
   one array load instead of a string hash.  The table only grows —
   ids are never recycled — which is what makes it safe to share one
   keyspace across all sites of a simulation. *)

type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* id -> name; first [n] slots live *)
  mutable n : int;
}

let create ?(hint = 64) () =
  let hint = Stdlib.max 1 hint in
  { ids = Hashtbl.create hint; names = Array.make hint ""; n = 0 }

let size t = t.n

(* [find] returns -1 for unknown names instead of an option so the read
   path stays allocation-free. *)
let find t name =
  match Hashtbl.find t.ids name with id -> id | exception Not_found -> -1

let mem t name = find t name >= 0

let intern t name =
  match Hashtbl.find t.ids name with
  | id -> id
  | exception Not_found ->
      let id = t.n in
      if id = Array.length t.names then begin
        let bigger = Array.make (Stdlib.max 8 (2 * id)) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- name;
      t.n <- id + 1;
      Hashtbl.replace t.ids name id;
      id

let name t id =
  if id < 0 || id >= t.n then invalid_arg "Keyspace.name: id out of range";
  t.names.(id)

let iter t f =
  for id = 0 to t.n - 1 do
    f id t.names.(id)
  done
