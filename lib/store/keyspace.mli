(** String [<->] dense int id interner.

    One keyspace is shared by every replica store of a run (created in
    [Intf.make_env] from the workload's keyspace hint), so a key's id is
    stable across sites and the apply path can address flat arrays
    instead of hashing strings.  Ids are dense, assigned in first-intern
    order, and never recycled. *)

type t

val create : ?hint:int -> unit -> t
(** [hint] pre-sizes the table (default 64); pass the workload keyspace
    size so interning never rehashes mid-run. *)

val intern : t -> string -> int
(** Id for [name], assigning the next dense id on first sight. *)

val find : t -> string -> int
(** Id for [name], or [-1] when it was never interned.  Allocation-free
    (no option), for the read path. *)

val mem : t -> string -> bool

val name : t -> int -> string
(** Inverse of {!intern}.  Raises [Invalid_argument] on an id that was
    never assigned. *)

val size : t -> int
(** Number of interned keys; valid ids are [0 .. size - 1]. *)

val iter : t -> (int -> string -> unit) -> unit
(** [iter t f] calls [f id name] in id (= first-intern) order. *)
