type t = Int of int | Str of string

let int i = Int i
let str s = Str s
let zero = Int 0
let as_int = function Int i -> Some i | Str _ -> None

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let pp ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Str s -> Format.fprintf ppf "%S" s

let to_string = function Int i -> string_of_int i | Str s -> s
