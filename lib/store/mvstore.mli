(** Multiversion store with VTNC visibility (paper §3.3).

    Each key holds an append-only list of immutable versions ordered by
    global timestamp.  Visibility follows the Modular Synchronization
    Method: a *visible transaction number counter* (VTNC) marks the prefix
    of versions that are stable — no active or future transaction can
    create a version at or below it.  SR queries read at the VTNC; an
    epsilon query may read versions *above* the VTNC, paying one unit of
    inconsistency per such read (enforced by the caller's inconsistency
    counter, see {!Esr_core.Epsilon}). *)

type key = string

type version = { ts : Esr_clock.Gtime.t; value : Value.t }

type t

val create : ?size:int -> ?keyspace:Keyspace.t -> unit -> t
(** [size] pre-sizes the version array (default 64); [keyspace] shares
    the run-wide interner so version slots align with the flat single-
    version store. *)

val append : t -> key -> ts:Esr_clock.Gtime.t -> Value.t -> bool
(** Insert a version.  Returns [false] (no-op) if a version with that
    timestamp already exists — appends are idempotent, which makes RITU
    multiversion MSets safely retryable. *)

val remove_version : t -> key -> ts:Esr_clock.Gtime.t -> bool
(** COMPE compensation for an append (§4.2: "multiple versions can support
    compensation by deleting the version").  [false] if absent. *)

val vtnc : t -> Esr_clock.Gtime.t
val advance_vtnc : t -> Esr_clock.Gtime.t -> unit
(** Monotone: attempts to move the VTNC backwards are ignored. *)

val read_at : t -> key -> as_of:Esr_clock.Gtime.t -> version option
(** Latest version with [ts <= as_of]; [None] when no such version (the
    key reads as unwritten). *)

val read_visible : t -> key -> version option
(** [read_at] the current VTNC — the strictly consistent read. *)

val read_latest : t -> key -> version option
(** Newest version regardless of VTNC — the maximally fresh, maximally
    inconsistent read. *)

val versions_above_vtnc : t -> key -> int
(** How many versions a freshest read would see beyond the stable prefix
    (each one costs a unit of query inconsistency). *)

val versions : t -> key -> version list
(** All versions, oldest first. *)

val keys : t -> key list

val copy : t -> t
(** Snapshot sharing the keyspace and the (immutable) version lists; the
    slot arrays are fresh, so later appends to either side never show
    through.  O(keyspace). *)

val equal : t -> t -> bool
(** Same keys with identical version lists. *)

val pp : Format.formatter -> t -> unit
