(** Operations as first-class values with semantic metadata.

    Replica control methods differ precisely in which *properties* of
    operations they exploit (Table 1's "kind of restriction" row):

    - COMMU requires {!commutes};
    - RITU requires {!read_independent} (timestamped blind writes);
    - COMPE requires {!compensatable} (a logical {!inverse}, or a recorded
      before-value for physical undo);
    - ORDUP requires nothing of the operations and restricts delivery
      order instead.

    Making the metadata executable is what lets the bench harness *derive*
    Tables 1 and 3 from the implementation rather than hard-coding them. *)

type t =
  | Read
  | Write of Value.t  (** plain overwrite — neither commutative nor blind-timestamped *)
  | Incr of int  (** commutative delta; the paper's [Inc(x, d)] *)
  | Mult of int  (** commutative (multiplicatively); the paper's [Mul(x, k)] *)
  | Div of int  (** exact inverse of [Mult]; the paper's [Div(x, k)] *)
  | Timed_write of { ts : Esr_clock.Gtime.t; value : Value.t }
      (** RITU blind write; latest timestamp wins, older ones are ignored *)
  | Append of { ts : Esr_clock.Gtime.t; value : Value.t }
      (** RITU multiversion: add an immutable version *)

val is_read : t -> bool
val is_update : t -> bool

val commutes : t -> t -> bool
(** Executable commutativity relation: [commutes a b] iff applying [a]
    then [b] always yields the same state as [b] then [a].  Conservative
    (false when in doubt).  Reads commute with reads. *)

val read_independent : t -> bool
(** True when the operation's effect does not depend on the current value
    (a "blind write" in the paper's §3.3 sense). *)

val inverse : t -> t option
(** Logical compensation where one exists ([Incr d ↦ Incr (-d)],
    [Mult k ↦ Div k], …).  [Write]/[Timed_write] return [None]: undoing
    them needs the recorded before-value (paper §4.2: "to rollback RITU
    with overwrite we must also record the value being overwritten"). *)

val compensatable : t -> bool
(** The operation can run under COMPE: it has a logical inverse or its
    undo information can be journaled (true for everything but [Read],
    which needs no compensation). *)

type apply_error =
  | Type_mismatch of string  (** e.g. [Incr] on a [Str] *)
  | Division_error of string  (** [Div] by zero or non-exact *)

val apply_value : t -> Value.t -> (Value.t, apply_error) result
(** Pure state transition for value-level operations.  [Read] leaves the
    value unchanged.  [Timed_write]/[Append] are store-level (they consult
    timestamps/version lists) and here behave like their value part, which
    is what the store uses after deciding the timestamp comparison. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
