(* Keyspace sharding and deterministic replica placement.

   Placement is a pure function of (sites, shards, factor, policy): every
   site derives the same shard -> replica-set map locally, so interest
   routing needs no coordination traffic.  Replica arrays are strictly
   ascending, and the [Dests] cursor iterates sites in ascending order,
   because that is the order [Squeue.broadcast] sends in — the invariance
   property (factor = sites is byte-identical to full replication) leans
   on both. *)

type policy = All | Ring | Hash

let policy_to_string = function All -> "all" | Ring -> "ring" | Hash -> "hash"

let policy_of_string = function
  | "all" -> Ok All
  | "ring" -> Ok Ring
  | "hash" -> Ok Hash
  | s -> Error (Printf.sprintf "unknown placement policy %S (all|ring|hash)" s)

type t = {
  sites : int;
  shards : int;
  factor : int;
  policy : policy;
  replicas : int array array;  (* shard -> ascending replica sites *)
  member : bool array;  (* (shard * sites + site) membership bitmap *)
}

(* SplitMix64 finalizer: deterministic, well-mixed site choice for the
   Hash policy without touching any PRNG stream the simulation uses. *)
let mix64 x =
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let hash_site ~sites ~shard ~probe =
  let h = mix64 (Int64.of_int ((shard * 0x10001) + (probe * 0x3d) + 1)) in
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int sites))

let place ~policy ~sites ~shards ~factor =
  let member = Array.make (shards * sites) false in
  let replicas =
    Array.init shards (fun shard ->
        let chosen = Array.make factor (-1) in
        let taken = Array.make sites false in
        (match policy with
        | All ->
            for j = 0 to factor - 1 do
              chosen.(j) <- j;
              taken.(j) <- true
            done
        | Ring ->
            for j = 0 to factor - 1 do
              let s = (shard + j) mod sites in
              chosen.(j) <- s;
              taken.(s) <- true
            done
        | Hash ->
            let probe = ref 0 in
            for j = 0 to factor - 1 do
              let rec pick () =
                let s = hash_site ~sites ~shard ~probe:!probe in
                incr probe;
                if taken.(s) then pick () else s
              in
              let s = pick () in
              chosen.(j) <- s;
              taken.(s) <- true
            done);
        Array.sort compare chosen;
        Array.iter (fun s -> member.((shard * sites) + s) <- true) chosen;
        chosen)
  in
  (replicas, member)

let create ?(policy = All) ?shards ?factor ~sites () =
  if sites < 1 then invalid_arg "Sharding.create: sites < 1";
  let factor =
    match factor with
    | Some f -> f
    | None -> ( match policy with All -> sites | Ring | Hash -> Stdlib.min 3 sites)
  in
  if factor < 1 || factor > sites then
    invalid_arg
      (Printf.sprintf "Sharding.create: factor %d outside 1..%d" factor sites);
  let shards =
    match shards with
    | Some s -> s
    | None -> ( match policy with All -> 1 | Ring | Hash -> sites)
  in
  if shards < 1 then invalid_arg "Sharding.create: shards < 1";
  (* factor = sites replicates everywhere no matter the policy; collapse
     to the All layout so [is_full] configurations share one code path
     (and one replica array per shard). *)
  let policy = if factor >= sites then All else policy in
  let replicas, member = place ~policy ~sites ~shards ~factor in
  { sites; shards; factor; policy; replicas; member }

let full ~sites = create ~policy:All ~sites ()

let sites t = t.sites
let shards t = t.shards
let factor t = t.factor
let policy t = t.policy
let is_full t = t.factor >= t.sites

let shard_of_id t id =
  if id <= 0 || t.shards = 1 then 0 else id mod t.shards

let replicas t shard = t.replicas.(shard)

let replicates t ~site ~shard = t.member.((shard * t.sites) + site)

let replicates_id t ~site ~id = replicates t ~site ~shard:(shard_of_id t id)

let route_site t ~id ~site =
  if replicates_id t ~site ~id then site
  else
    let reps = t.replicas.(shard_of_id t id) in
    reps.(site mod Array.length reps)

let converged t ~keyspace ~store =
  let n = Keyspace.size keyspace in
  let ok = ref true in
  let id = ref 0 in
  while !ok && !id < n do
    let reps = t.replicas.(shard_of_id t !id) in
    let v0 = Store.get_id (store reps.(0)) !id in
    let i = ref 1 in
    while !ok && !i < Array.length reps do
      if not (Value.equal v0 (Store.get_id (store reps.(!i)) !id)) then
        ok := false;
      incr i
    done;
    incr id
  done;
  !ok

let divergent_replicas t ~keyspace ~store =
  let n_keys = Keyspace.size keyspace in
  let diverged = Array.make t.sites false in
  for id = 0 to n_keys - 1 do
    let reps = t.replicas.(shard_of_id t id) in
    let v0 = Store.get_id (store reps.(0)) id in
    for i = 1 to Array.length reps - 1 do
      let s = reps.(i) in
      if (not diverged.(s)) && not (Value.equal v0 (Store.get_id (store s) id))
      then diverged.(s) <- true
    done
  done;
  let n = ref 0 in
  Array.iter (fun d -> if d then incr n) diverged;
  !n

module Dests = struct
  type sharding = t

  type t = {
    sh : sharding;
    stamp : int array;  (* stamp.(site) = epoch  <=>  site is in the set *)
    mutable epoch : int;
    mutable n : int;
  }

  let cursor sh = { sh; stamp = Array.make sh.sites 0; epoch = 0; n = 0 }

  let reset c =
    c.epoch <- c.epoch + 1;
    c.n <- 0

  let add_site c site =
    if c.stamp.(site) <> c.epoch then begin
      c.stamp.(site) <- c.epoch;
      c.n <- c.n + 1
    end

  let add_shard c shard =
    let reps = c.sh.replicas.(shard) in
    for i = 0 to Array.length reps - 1 do
      add_site c reps.(i)
    done

  let add_id c id = add_shard c (shard_of_id c.sh id)
  let mem c site = c.stamp.(site) = c.epoch
  let count c = c.n

  let iter c f =
    let seen = ref 0 in
    let site = ref 0 in
    while !seen < c.n do
      if c.stamp.(!site) = c.epoch then begin
        incr seen;
        f !site
      end;
      incr site
    done
end

let pp ppf t =
  Format.fprintf ppf "sharding{policy=%s shards=%d factor=%d sites=%d}"
    (policy_to_string t.policy) t.shards t.factor t.sites
