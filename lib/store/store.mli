(** Single-version keyed object store — one replica's local state.

    Each key holds a {!Value.t} plus the timestamp of the last RITU blind
    write, so [Timed_write] implements latest-writer-wins ("an RITU update
    trying to overwrite a newer version is ignored", §3.3).

    Keys are interned into dense int ids through a {!Keyspace} (shared by
    every replica of a run); cells live in a flat array indexed by id, so
    the id-based accessors cost an array load instead of a string hash.
    The string API is a thin wrapper and observationally unchanged.

    [apply] returns an {!undo} record; COMPE journals these to support
    physical rollback of operations that have no logical inverse.  The
    [_unit] variants skip the undo record (and its [Ok] box) for the
    methods that discard it — the hot apply path. *)

type key = string

type undo = {
  key : key;
  before : Value.t;
  before_ts : Esr_clock.Gtime.t;
  applied : bool;  (** false when a stale [Timed_write] was ignored *)
}

type t

val create : ?size:int -> ?keyspace:Keyspace.t -> unit -> t
(** [size] pre-sizes the cell array (default 64); workload drivers pass
    the keyspace size so replicas never resize mid-run.  [keyspace]
    shares an interner across stores (all replicas of a run use the one
    in [Intf.env]); omitted, the store gets a private one. *)

val keyspace : t -> Keyspace.t

val intern : t -> key -> int
(** Dense id for [key] in this store's keyspace (assigned on first use). *)

val mem : t -> key -> bool

val get : t -> key -> Value.t
(** Missing keys read as {!Value.zero} — object creation is implicit, as
    in the paper's counter examples. *)

val get_ts : t -> key -> Esr_clock.Gtime.t

val set : t -> key -> Value.t -> unit
(** Raw assignment, bypassing operation semantics (used for rollback). *)

val set_with_ts : t -> key -> Value.t -> Esr_clock.Gtime.t -> unit

val apply : t -> key -> Op.t -> (undo, Op.apply_error) result
(** Apply one operation.  [Timed_write] compares timestamps; a stale write
    is a successful no-op with [applied = false]. *)

val apply_unit : t -> key -> Op.t -> (unit, Op.apply_error) result
(** [apply] without the undo record: the success path returns a static
    [Ok ()] and allocates only the new value's box. *)

val mem_id : t -> int -> bool
val get_id : t -> int -> Value.t
val get_ts_id : t -> int -> Esr_clock.Gtime.t
val set_id : t -> int -> Value.t -> unit
val set_with_ts_id : t -> int -> Value.t -> Esr_clock.Gtime.t -> unit
val apply_id : t -> int -> Op.t -> (undo, Op.apply_error) result

val apply_id_unit : t -> int -> Op.t -> (unit, Op.apply_error) result
(** Allocation-free apply by interned id — the propagate path of the
    async methods. *)

val rollback : t -> undo -> unit
(** Restore the before-image recorded by [apply]. *)

val keys : t -> key list
(** Sorted, for deterministic iteration. *)

val snapshot : t -> (key * Value.t) list
(** Sorted association list of all keys — the basis of replica
    state-equality checks. *)

val equal : t -> t -> bool
(** Value equality over all keys (keys missing on one side compare as
    {!Value.zero}).  O(keyspace) array walk when both stores share a
    keyspace; name-based comparison otherwise. *)

val copy : t -> t
(** Fresh cells, shared keyspace. *)

val pp : Format.formatter -> t -> unit

val live_words : t -> int
(** Heap words reachable from this store's cell image — the array, the
    cells, boxed values and timestamps — excluding the shared keyspace
    (cells never reference key names), so per-site figures add up without
    double counting.  O(live image) walk; meant for resource probes at
    sampling cadence, not hot paths. *)
