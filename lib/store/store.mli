(** Single-version keyed object store — one replica's local state.

    Each key holds a {!Value.t} plus the timestamp of the last RITU blind
    write, so [Timed_write] implements latest-writer-wins ("an RITU update
    trying to overwrite a newer version is ignored", §3.3).

    [apply] returns an {!undo} record; COMPE journals these to support
    physical rollback of operations that have no logical inverse. *)

type key = string

type undo = {
  key : key;
  before : Value.t;
  before_ts : Esr_clock.Gtime.t;
  applied : bool;  (** false when a stale [Timed_write] was ignored *)
}

type t

val create : ?size:int -> unit -> t
(** [size] pre-sizes the hash table (default 64); workload drivers pass
    the keyspace size so replicas never rehash mid-run. *)

val mem : t -> key -> bool

val get : t -> key -> Value.t
(** Missing keys read as {!Value.zero} — object creation is implicit, as
    in the paper's counter examples. *)

val get_ts : t -> key -> Esr_clock.Gtime.t

val set : t -> key -> Value.t -> unit
(** Raw assignment, bypassing operation semantics (used for rollback). *)

val set_with_ts : t -> key -> Value.t -> Esr_clock.Gtime.t -> unit

val apply : t -> key -> Op.t -> (undo, Op.apply_error) result
(** Apply one operation.  [Timed_write] compares timestamps; a stale write
    is a successful no-op with [applied = false]. *)

val rollback : t -> undo -> unit
(** Restore the before-image recorded by [apply]. *)

val keys : t -> key list
(** Sorted, for deterministic iteration. *)

val snapshot : t -> (key * Value.t) list
(** Sorted association list of all keys — the basis of replica
    state-equality checks. *)

val equal : t -> t -> bool
(** Value equality over all keys (keys missing on one side compare as
    {!Value.zero}). *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
