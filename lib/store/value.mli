(** Object values.

    The paper's example domains need integers (bank balances, the Inc/Mul
    compensation example of §4.1) and opaque strings (directory entries à
    la Grapevine/Clearinghouse). *)

type t = Int of int | Str of string

val int : int -> t
val str : string -> t
val zero : t

val as_int : t -> int option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
