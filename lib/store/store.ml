module Gtime = Esr_clock.Gtime

type key = string

type cell = { mutable value : Value.t; mutable ts : Gtime.t }

type undo = { key : key; before : Value.t; before_ts : Gtime.t; applied : bool }

type t = (key, cell) Hashtbl.t

let create ?(size = 64) () = Hashtbl.create (Stdlib.max 1 size)

let mem t key = Hashtbl.mem t key

let cell t key =
  match Hashtbl.find_opt t key with
  | Some c -> c
  | None ->
      let c = { value = Value.zero; ts = Gtime.zero } in
      Hashtbl.replace t key c;
      c

let get t key =
  match Hashtbl.find_opt t key with Some c -> c.value | None -> Value.zero

let get_ts t key =
  match Hashtbl.find_opt t key with Some c -> c.ts | None -> Gtime.zero

let set t key value = (cell t key).value <- value

let set_with_ts t key value ts =
  let c = cell t key in
  c.value <- value;
  c.ts <- ts

let apply t key op =
  let c = cell t key in
  let undo = { key; before = c.value; before_ts = c.ts; applied = true } in
  match op with
  | Op.Timed_write { ts; value } ->
      if Gtime.compare ts c.ts > 0 then begin
        c.value <- value;
        c.ts <- ts;
        Ok undo
      end
      else Ok { undo with applied = false }
  | Op.Read -> Ok { undo with applied = false }
  | Op.Write _ | Op.Incr _ | Op.Mult _ | Op.Div _ | Op.Append _ -> (
      match Op.apply_value op c.value with
      | Ok v ->
          c.value <- v;
          Ok undo
      | Error e -> Error e)

let rollback t undo =
  let c = cell t undo.key in
  if undo.applied then begin
    c.value <- undo.before;
    c.ts <- undo.before_ts
  end

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let snapshot t =
  (* Single traversal: collect (key, value) pairs directly instead of
     listing keys and then re-looking each one up. *)
  Hashtbl.fold (fun k c acc -> (k, c.value) :: acc) t []
  |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)

let equal a b =
  (* One pass over each table, no intermediate sorted key lists: keys
     missing on one side still compare as [Value.zero]. *)
  let covers x y =
    try
      Hashtbl.iter
        (fun k c ->
          let other =
            match Hashtbl.find_opt y k with
            | Some cy -> cy.value
            | None -> Value.zero
          in
          if not (Value.equal c.value other) then raise Exit)
        x;
      true
    with Exit -> false
  in
  covers a b
  && (* keys only in b must read as zero in a *)
  (try
     Hashtbl.iter
       (fun k c ->
         if (not (Hashtbl.mem a k)) && not (Value.equal c.value Value.zero)
         then raise Exit)
       b;
     true
   with Exit -> false)

let copy t =
  let fresh = create () in
  Hashtbl.iter (fun k c -> Hashtbl.replace fresh k { value = c.value; ts = c.ts }) t;
  fresh

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s = %a@," k Value.pp v)
    (snapshot t);
  Format.fprintf ppf "@]"
