module Gtime = Esr_clock.Gtime

type key = string

type cell = { mutable value : Value.t; mutable ts : Gtime.t }

type undo = { key : key; before : Value.t; before_ts : Gtime.t; applied : bool }

(* Cells live in a flat array indexed by interned key id.  Slots that
   were never written hold the shared [absent] sentinel — it is never
   mutated; the first write to a key swaps in a fresh cell.  Since the
   sentinel reads as [Value.zero]/[Gtime.zero], the get path needs no
   presence test at all. *)
let absent = { value = Value.zero; ts = Gtime.zero }

type t = { ks : Keyspace.t; mutable cells : cell array }

let create ?(size = 64) ?keyspace () =
  let ks =
    match keyspace with
    | Some ks -> ks
    | None -> Keyspace.create ~hint:size ()
  in
  let n = Stdlib.max 1 (Stdlib.max size (Keyspace.size ks)) in
  { ks; cells = Array.make n absent }

let keyspace t = t.ks
let intern t key = Keyspace.intern t.ks key

(* A shared keyspace can outgrow this store's array (another replica
   interned new keys); grow lazily on first touch. *)
let ensure_slot t id =
  let n = Array.length t.cells in
  if id >= n then begin
    let bigger = Array.make (Stdlib.max (id + 1) (2 * n)) absent in
    Array.blit t.cells 0 bigger 0 n;
    t.cells <- bigger
  end

let cell_id t id =
  ensure_slot t id;
  let c = Array.unsafe_get t.cells id in
  if c == absent then begin
    let c = { value = Value.zero; ts = Gtime.zero } in
    Array.unsafe_set t.cells id c;
    c
  end
  else c

let cell t key = cell_id t (Keyspace.intern t.ks key)

let mem_id t id =
  id >= 0 && id < Array.length t.cells && t.cells.(id) != absent

let mem t key = mem_id t (Keyspace.find t.ks key)

let get_id t id =
  if id < 0 || id >= Array.length t.cells then Value.zero
  else (Array.unsafe_get t.cells id).value

let get t key = get_id t (Keyspace.find t.ks key)

let get_ts_id t id =
  if id < 0 || id >= Array.length t.cells then Gtime.zero
  else (Array.unsafe_get t.cells id).ts

let get_ts t key = get_ts_id t (Keyspace.find t.ks key)

let set_id t id value = (cell_id t id).value <- value
let set t key value = (cell t key).value <- value

let set_with_ts_id t id value ts =
  let c = cell_id t id in
  c.value <- value;
  c.ts <- ts

let set_with_ts t key value ts = set_with_ts_id t (intern t key) value ts

let apply_cell c key op =
  let undo = { key; before = c.value; before_ts = c.ts; applied = true } in
  match op with
  | Op.Timed_write { ts; value } ->
      if Gtime.compare ts c.ts > 0 then begin
        c.value <- value;
        c.ts <- ts;
        Ok undo
      end
      else Ok { undo with applied = false }
  | Op.Read -> Ok { undo with applied = false }
  | Op.Write _ | Op.Incr _ | Op.Mult _ | Op.Div _ | Op.Append _ -> (
      match Op.apply_value op c.value with
      | Ok v ->
          c.value <- v;
          Ok undo
      | Error e -> Error e)

let apply t key op = apply_cell (cell t key) key op
let apply_id t id op = apply_cell (cell_id t id) (Keyspace.name t.ks id) op

(* Undo-free apply for callers that discard the before-image (the common
   case: every method but COMPE).  [Ok ()] is a static constant, so the
   success path allocates only when the new value itself is boxed. *)
let ok_unit : (unit, Op.apply_error) result = Ok ()

let apply_cell_unit c op =
  match op with
  | Op.Read -> ok_unit
  | Op.Write v ->
      c.value <- v;
      ok_unit
  | Op.Incr d -> (
      match c.value with
      | Value.Int i ->
          c.value <- Value.Int (i + d);
          ok_unit
      | Value.Str _ -> Error (Op.Type_mismatch "Incr on string value"))
  | Op.Mult k -> (
      match c.value with
      | Value.Int i ->
          c.value <- Value.Int (i * k);
          ok_unit
      | Value.Str _ -> Error (Op.Type_mismatch "Mult on string value"))
  | Op.Div k -> (
      match (k, c.value) with
      | 0, Value.Int _ -> Error (Op.Division_error "Div by zero")
      | _, Value.Int i ->
          if i mod k <> 0 then
            Error
              (Op.Division_error
                 (Printf.sprintf "%d not divisible by %d" i k))
          else begin
            c.value <- Value.Int (i / k);
            ok_unit
          end
      | _, Value.Str _ -> Error (Op.Type_mismatch "Div on string value"))
  | Op.Timed_write { ts; value } ->
      if Gtime.compare ts c.ts > 0 then begin
        c.value <- value;
        c.ts <- ts
      end;
      ok_unit
  | Op.Append { value = v; _ } ->
      c.value <- v;
      ok_unit

let apply_unit t key op = apply_cell_unit (cell t key) op
let apply_id_unit t id op = apply_cell_unit (cell_id t id) op

let rollback t undo =
  let c = cell t undo.key in
  if undo.applied then begin
    c.value <- undo.before;
    c.ts <- undo.before_ts
  end

let fold_present t f acc =
  let acc = ref acc in
  let n = Stdlib.min (Array.length t.cells) (Keyspace.size t.ks) in
  for id = 0 to n - 1 do
    let c = t.cells.(id) in
    if c != absent then acc := f id c !acc
  done;
  !acc

let keys t =
  fold_present t (fun id _ acc -> Keyspace.name t.ks id :: acc) []
  |> List.sort String.compare

let snapshot t =
  fold_present t (fun id c acc -> (Keyspace.name t.ks id, c.value) :: acc) []
  |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)

let equal a b =
  if a.ks == b.ks then begin
    (* Shared keyspace: a key has the same slot in both stores, so one
       index-wise pass suffices (absent slots read [Value.zero]). *)
    let la = Array.length a.cells and lb = Array.length b.cells in
    let n = Stdlib.max la lb in
    let rec go i =
      i >= n
      || Value.equal
           (if i < la then a.cells.(i).value else Value.zero)
           (if i < lb then b.cells.(i).value else Value.zero)
         && go (i + 1)
    in
    go 0
  end
  else
    (* Distinct keyspaces: fall back to name-based comparison; keys
       missing on one side still compare as [Value.zero]. *)
    let covers x y =
      List.for_all (fun (k, v) -> Value.equal v (get y k)) (snapshot x)
    in
    covers a b && covers b a

let copy t =
  let fresh = { ks = t.ks; cells = Array.make (Array.length t.cells) absent } in
  ignore
    (fold_present t
       (fun id c () -> fresh.cells.(id) <- { value = c.value; ts = c.ts })
       ());
  fresh

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s = %a@," k Value.pp v)
    (snapshot t);
  Format.fprintf ppf "@]"

let live_words t = Obj.reachable_words (Obj.repr t.cells)
