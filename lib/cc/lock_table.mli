(** Lock compatibility tables.

    The paper extends standard 2PL with three ET lock classes — [R_u]
    (read by an update ET), [W_u] (write by an update ET), [R_q] (read by
    a query ET) — and gives one compatibility matrix per replica-control
    method: Table 2 for ORDUP and Table 3 for COMMU.  This module encodes
    each matrix as a value so the bench harness can print the tables
    straight out of the implementation, and so {!Lock_mgr} can be
    instantiated with any of them. *)

type mode =
  | R  (** plain read (standard 2PL) *)
  | W  (** plain write (standard 2PL) *)
  | R_u  (** read lock held by an update ET *)
  | W_u  (** write lock held by an update ET *)
  | R_q  (** read lock held by a query ET *)

val mode_to_string : mode -> string
val pp_mode : Format.formatter -> mode -> unit

type verdict =
  | Compatible  (** "OK" in the paper's tables *)
  | Conflict  (** blank in the paper's tables *)
  | If_commutes
      (** "Comm" in Table 3: compatible exactly when the two operations
          commute ({!Esr_store.Op.commutes}) *)

val verdict_to_string : verdict -> string

type t

val name : t -> string
val modes : t -> mode list
(** The lock classes this table is defined over, in display order. *)

val check : t -> held:mode -> requested:mode -> verdict
(** Raises [Invalid_argument] on a mode outside [modes t]. *)

val resolve :
  t -> held:mode * Esr_store.Op.t option -> requested:mode * Esr_store.Op.t option -> bool
(** [check] with [If_commutes] discharged against the actual operations;
    missing operations make [If_commutes] a conflict (conservative). *)

val standard : t
(** Classic 2PL: R/R compatible, everything else conflicts. *)

val ordup : t
(** Paper Table 2.  Query reads are compatible with everything; update
    locks conflict unless both are reads. *)

val commu : t
(** Paper Table 3.  As Table 2, but update/update conflicts soften to
    [If_commutes]. *)

val all : t list
