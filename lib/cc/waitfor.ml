type t = { edges : (int, (int, unit) Hashtbl.t) Hashtbl.t }

let create () = { edges = Hashtbl.create 32 }

let successors t node =
  match Hashtbl.find_opt t.edges node with
  | Some set -> set
  | None ->
      let set = Hashtbl.create 4 in
      Hashtbl.replace t.edges node set;
      set

let reachable t ~src ~dst =
  let visited = Hashtbl.create 16 in
  let rec walk node =
    if node = dst then true
    else if Hashtbl.mem visited node then false
    else begin
      Hashtbl.replace visited node ();
      match Hashtbl.find_opt t.edges node with
      | None -> false
      | Some set -> Hashtbl.fold (fun next () found -> found || walk next) set false
    end
  in
  walk src

let add_edge t ~waiter ~holder =
  if waiter = holder then false
  else if reachable t ~src:holder ~dst:waiter then false
  else begin
    Hashtbl.replace (successors t waiter) holder ();
    true
  end

let remove_edges_from t ~waiter = Hashtbl.remove t.edges waiter

let remove_node t node =
  Hashtbl.remove t.edges node;
  Hashtbl.iter (fun _ set -> Hashtbl.remove set node) t.edges

let waits_on t ~waiter =
  match Hashtbl.find_opt t.edges waiter with
  | None -> []
  | Some set -> Hashtbl.fold (fun n () acc -> n :: acc) set [] |> List.sort compare
