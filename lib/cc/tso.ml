type stamps = { mutable read : int; mutable write : int }

type t = (string, stamps) Hashtbl.t

let create () = Hashtbl.create 64

let stamps t key =
  match Hashtbl.find_opt t key with
  | Some s -> s
  | None ->
      let s = { read = 0; write = 0 } in
      Hashtbl.replace t key s;
      s

type update_decision = Accept | Reject_stale

let check_update_read t ~key ~ts =
  let s = stamps t key in
  if ts < s.write then Reject_stale
  else begin
    if ts > s.read then s.read <- ts;
    Accept
  end

let check_update_write t ~key ~ts =
  let s = stamps t key in
  if ts < s.read || ts < s.write then Reject_stale
  else begin
    s.write <- ts;
    Accept
  end

type query_read = In_order | Out_of_order

let check_query_read t ~key ~ts =
  let s = stamps t key in
  if ts < s.write then Out_of_order else In_order

let read_ts t ~key = (stamps t key).read
let write_ts t ~key = (stamps t key).write
