(** Basic timestamp-ordering scheduler with the paper's ESR extension.

    §3.1: "In case of basic timestamps … each object maintains the
    timestamp of the latest access.  In an SR execution, out-of-order
    reads are either rejected or cause an abort of a write.  In an ESR
    execution, the divergence control increments the inconsistency
    counter and decides whether to allow the read depending on the
    specified divergence limit."

    Updates are checked strictly (Thomas-write-rule-free basic TO);
    query reads report whether they are out of order so the caller's
    epsilon accounting can decide to admit them anyway. *)

type t

val create : unit -> t

type update_decision =
  | Accept
  | Reject_stale  (** the operation's timestamp is older than a processed conflicting one *)

val check_update_read : t -> key:string -> ts:int -> update_decision
(** Read by an update ET: rejected if a younger write was processed. *)

val check_update_write : t -> key:string -> ts:int -> update_decision
(** Write by an update ET: rejected if a younger read or write was
    processed.  Accepting records the write timestamp. *)

type query_read = In_order | Out_of_order
(** Out-of-order = the read would have been rejected under strict TO;
    admitting it costs one unit of query inconsistency. *)

val check_query_read : t -> key:string -> ts:int -> query_read
(** Never mutates scheduler state: query ETs do not constrain updates. *)

val read_ts : t -> key:string -> int
val write_ts : t -> key:string -> int
