type t = {
  counts : (string, int) Hashtbl.t;
  weights : (string, float) Hashtbl.t;
}

let create ?(hint = 64) () =
  let hint = Stdlib.max 1 hint in
  { counts = Hashtbl.create hint; weights = Hashtbl.create hint }

let count t key = Option.value (Hashtbl.find_opt t.counts key) ~default:0

let incr t key =
  let n = count t key + 1 in
  Hashtbl.replace t.counts key n;
  n

let decr t key =
  let n = count t key in
  if n <= 0 then invalid_arg (Printf.sprintf "Lock_counter.decr: %s is zero" key);
  if n = 1 then Hashtbl.remove t.counts key else Hashtbl.replace t.counts key (n - 1);
  n - 1

let total_nonzero t = Hashtbl.length t.counts

let would_exceed t key ~limit = count t key + 1 > limit

let weight t key = Option.value (Hashtbl.find_opt t.weights key) ~default:0.0

let add_weight t key w =
  let updated = weight t key +. Float.abs w in
  Hashtbl.replace t.weights key updated;
  updated

let remove_weight t key w =
  let updated = Float.max 0.0 (weight t key -. Float.abs w) in
  if updated = 0.0 then Hashtbl.remove t.weights key
  else Hashtbl.replace t.weights key updated;
  updated

let weight_would_exceed t key ~added ~limit =
  weight t key +. Float.abs added > limit +. 1e-9
