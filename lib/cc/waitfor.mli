(** Wait-for graph with cycle detection, used for deadlock detection in
    {!Lock_mgr} and exposed for direct testing. *)

type t

val create : unit -> t

val add_edge : t -> waiter:int -> holder:int -> bool
(** [add_edge t ~waiter ~holder] records that [waiter] waits on [holder].
    Returns [false] — and does {e not} add the edge — when doing so would
    close a cycle (i.e. the edge would cause a deadlock).  Self-edges are
    rejected the same way. *)

val remove_edges_from : t -> waiter:int -> unit
val remove_node : t -> int -> unit
(** Drop the node and every edge touching it. *)

val waits_on : t -> waiter:int -> int list
val reachable : t -> src:int -> dst:int -> bool
(** Transitive reachability along wait edges. *)
