(** Per-object lock-counters for COMMU divergence bounding (§3.2).

    "When updating an object, the update ET increments the object
    lock-counter by one … at the end of execution all the lock-counters
    are decremented.  Each lock-counter different from zero means a
    certain degree of inconsistency added to the query ET."

    The counter value on a key is exactly the number of update ETs whose
    effects on that key a query might observe mid-flight — the query-side
    inconsistency charge.  An update-side limit turns the counter into
    back-pressure: an update that would push a counter past the limit must
    wait or abort. *)

type t

val create : ?hint:int -> unit -> t
(** [hint] pre-sizes the counter tables (default 64) so heavy workloads
    never rehash mid-run. *)

val incr : t -> string -> int
(** Returns the new count. *)

val decr : t -> string -> int
(** Raises [Invalid_argument] on a key whose count is already zero. *)

val count : t -> string -> int
val total_nonzero : t -> int
(** Number of keys with a non-zero counter. *)

val would_exceed : t -> string -> limit:int -> bool
(** [would_exceed t key ~limit] iff [incr] would push the counter
    strictly above [limit]. *)

(** {2 Weighted accounting}

    Alongside the operation count, a counter can carry the *magnitude* of
    pending change per object — the "data value changed asynchronously"
    spatial-consistency criterion of the paper's §5.1 (Sheth &
    Rusinkiewicz; Barbará & Garcia-Molina's arithmetic constraints).
    Weights are maintained independently of {!incr}/{!decr}. *)

val add_weight : t -> string -> float -> float
(** [add_weight t key w] adds [|w|] and returns the new pending weight. *)

val remove_weight : t -> string -> float -> float
(** Removes [|w|]; clamps at zero (floating-point dust is forgiven). *)

val weight : t -> string -> float
(** Pending weight of a key (0 when untouched). *)

val weight_would_exceed : t -> string -> added:float -> limit:float -> bool
(** Whether adding [|added|] would push the key's weight strictly above
    [limit]. *)
