module Op = Esr_store.Op

type mode = R | W | R_u | W_u | R_q

let mode_to_string = function
  | R -> "R"
  | W -> "W"
  | R_u -> "RU"
  | W_u -> "WU"
  | R_q -> "RQ"

let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

type verdict = Compatible | Conflict | If_commutes

let verdict_to_string = function
  | Compatible -> "OK"
  | Conflict -> ""
  | If_commutes -> "Comm"

type t = {
  name : string;
  modes : mode list;
  check : held:mode -> requested:mode -> verdict;
}

let name t = t.name
let modes t = t.modes

let ensure_mode t m =
  if not (List.mem m t.modes) then
    invalid_arg
      (Printf.sprintf "Lock_table.%s: mode %s not in table" t.name
         (mode_to_string m))

let check t ~held ~requested =
  ensure_mode t held;
  ensure_mode t requested;
  t.check ~held ~requested

let resolve t ~held:(held_mode, held_op) ~requested:(req_mode, req_op) =
  match check t ~held:held_mode ~requested:req_mode with
  | Compatible -> true
  | Conflict -> false
  | If_commutes -> (
      match (held_op, req_op) with
      | Some a, Some b -> Op.commutes a b
      | None, _ | _, None -> false)

let standard =
  {
    name = "standard-2pl";
    modes = [ R; W ];
    check =
      (fun ~held ~requested ->
        match (held, requested) with
        | R, R -> Compatible
        | (R | W | R_u | W_u | R_q), (R | W | R_u | W_u | R_q) -> Conflict);
  }

(* Paper Table 2: 2PL compatibility for ORDUP ETs.  Query read locks (RQ)
   never block and are never blocked; update locks follow standard 2PL. *)
let ordup =
  {
    name = "ordup";
    modes = [ R_u; W_u; R_q ];
    check =
      (fun ~held ~requested ->
        match (held, requested) with
        | R_q, _ | _, R_q -> Compatible
        | R_u, R_u -> Compatible
        | (R_u | W_u), (R_u | W_u) -> Conflict
        | (R | W), _ | _, (R | W) -> Conflict);
  }

(* Paper Table 3: as Table 2, but update/update entries involving a write
   soften to "compatible when the operations commute". *)
let commu =
  {
    name = "commu";
    modes = [ R_u; W_u; R_q ];
    check =
      (fun ~held ~requested ->
        match (held, requested) with
        | R_q, _ | _, R_q -> Compatible
        | R_u, R_u -> Compatible
        | R_u, W_u | W_u, R_u | W_u, W_u -> If_commutes
        | (R | W), _ | _, (R | W) -> Conflict);
  }

let all = [ standard; ordup; commu ]
