module Op = Esr_store.Op

type request = {
  txn : int;
  mode : Lock_table.mode;
  op : Op.t option;
  on_grant : unit -> unit;
}

type key_state = { mutable holders : request list; mutable queue : request list }

type counters = { granted : int; blocked : int; deadlocks : int }

type t = {
  table : Lock_table.t;
  keys : (string, key_state) Hashtbl.t;
  waitfor : Waitfor.t;
  mutable n_granted : int;
  mutable n_blocked : int;
  mutable n_deadlocks : int;
}

let create ?(table = Lock_table.standard) () =
  {
    table;
    keys = Hashtbl.create 64;
    waitfor = Waitfor.create ();
    n_granted = 0;
    n_blocked = 0;
    n_deadlocks = 0;
  }

let table t = t.table

type outcome = Granted | Blocked | Deadlock

let key_state t key =
  match Hashtbl.find_opt t.keys key with
  | Some s -> s
  | None ->
      let s = { holders = []; queue = [] } in
      Hashtbl.replace t.keys key s;
      s

let compatible t ~held ~requested =
  Lock_table.resolve t.table
    ~held:(held.mode, held.op)
    ~requested:(requested.mode, requested.op)

(* A request can run iff it is compatible with every holder owned by a
   different transaction. *)
let admissible t state request =
  List.for_all
    (fun held -> held.txn = request.txn || compatible t ~held ~requested:request)
    state.holders

(* Transactions blocking [request]: incompatible holders plus incompatible
   earlier waiters (FIFO order is part of the wait). *)
let blockers t state request =
  let holding =
    List.filter
      (fun held -> held.txn <> request.txn && not (compatible t ~held ~requested:request))
      state.holders
  in
  let queued =
    List.filter
      (fun waiting ->
        waiting.txn <> request.txn
        && not (compatible t ~held:waiting ~requested:request))
      state.queue
  in
  List.sort_uniq compare (List.map (fun r -> r.txn) (holding @ queued))

let acquire t ~txn ~key ~mode ?op ?(on_grant = fun () -> ()) () =
  let state = key_state t key in
  let request = { txn; mode; op; on_grant } in
  let already_queued = List.exists (fun r -> r.txn = txn) state.queue in
  (* A request compatible with every holder may still have to respect the
     FIFO queue — except when it is also compatible with every waiter, in
     which case letting it through can block nobody (this is what makes
     R_q locks of Tables 2/3 truly never wait). *)
  let jumps_queue =
    state.queue = []
    || List.for_all
         (fun waiting ->
           waiting.txn = txn
           || (compatible t ~held:waiting ~requested:request
              && compatible t ~held:request ~requested:waiting))
         state.queue
  in
  if (not already_queued) && jumps_queue && admissible t state request then begin
    state.holders <- state.holders @ [ request ];
    t.n_granted <- t.n_granted + 1;
    Granted
  end
  else begin
    let blocking = blockers t state request in
    (* Try to install all wait edges; roll back and refuse on a cycle. *)
    let rec install added = function
      | [] -> Ok ()
      | holder :: rest ->
          if Waitfor.add_edge t.waitfor ~waiter:txn ~holder then
            install (holder :: added) rest
          else Error added
    in
    match install [] blocking with
    | Ok () ->
        state.queue <- state.queue @ [ request ];
        t.n_blocked <- t.n_blocked + 1;
        Blocked
    | Error _added ->
        (* Clear any edges we just added (and any stale ones): the caller
           aborts, so all its waits are void. *)
        Waitfor.remove_edges_from t.waitfor ~waiter:txn;
        t.n_deadlocks <- t.n_deadlocks + 1;
        Deadlock
  end

(* Grant the longest admissible FIFO prefix of the queue. *)
let pump t state =
  let rec loop () =
    match state.queue with
    | [] -> ()
    | next :: rest ->
        if admissible t state next then begin
          state.queue <- rest;
          state.holders <- state.holders @ [ next ];
          Waitfor.remove_edges_from t.waitfor ~waiter:next.txn;
          t.n_granted <- t.n_granted + 1;
          next.on_grant ();
          loop ()
        end
  in
  loop ()

let release_all t ~txn =
  Waitfor.remove_node t.waitfor txn;
  Hashtbl.iter
    (fun _ state ->
      let had = List.exists (fun r -> r.txn = txn) state.holders in
      state.holders <- List.filter (fun r -> r.txn <> txn) state.holders;
      state.queue <- List.filter (fun r -> r.txn <> txn) state.queue;
      if had || state.queue <> [] then pump t state)
    t.keys

let holds t ~txn ~key =
  match Hashtbl.find_opt t.keys key with
  | None -> false
  | Some state -> List.exists (fun r -> r.txn = txn) state.holders

let holders t ~key =
  match Hashtbl.find_opt t.keys key with
  | None -> []
  | Some state -> List.map (fun r -> (r.txn, r.mode)) state.holders

let queue_length t ~key =
  match Hashtbl.find_opt t.keys key with
  | None -> 0
  | Some state -> List.length state.queue

let counters t =
  { granted = t.n_granted; blocked = t.n_blocked; deadlocks = t.n_deadlocks }
