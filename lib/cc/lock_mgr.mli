(** Lock manager parameterised by a {!Lock_table}.

    This is the site-local divergence control engine: instantiate it with
    {!Lock_table.standard} for a classic 2PL scheduler, with
    {!Lock_table.ordup} or {!Lock_table.commu} for the paper's ET
    disciplines.  Commutativity-conditional entries ([If_commutes]) are
    discharged against the actual operations carried by the requests.

    Requests are granted FIFO per key (no starvation).  Deadlocks are
    detected eagerly on a wait-for graph; the requester whose wait would
    close a cycle is rejected ([Deadlock]) and is expected to abort. *)

type t

val create : ?table:Lock_table.t -> unit -> t
(** [table] defaults to {!Lock_table.standard}. *)

val table : t -> Lock_table.t

type outcome =
  | Granted
  | Blocked  (** queued; [on_grant] fires when the lock is acquired *)
  | Deadlock  (** refused — waiting would create a deadlock cycle *)

val acquire :
  t ->
  txn:int ->
  key:string ->
  mode:Lock_table.mode ->
  ?op:Esr_store.Op.t ->
  ?on_grant:(unit -> unit) ->
  unit ->
  outcome
(** A transaction's own locks never conflict with its new requests. *)

val release_all : t -> txn:int -> unit
(** Drop all locks held by [txn], cancel its queued requests, and grant
    any now-compatible waiters (their [on_grant] callbacks run inside this
    call, in FIFO order). *)

val holds : t -> txn:int -> key:string -> bool
val holders : t -> key:string -> (int * Lock_table.mode) list
val queue_length : t -> key:string -> int

type counters = { granted : int; blocked : int; deadlocks : int }

val counters : t -> counters
