(** QUASI — quasi-copies baseline (Alonso, Barbará & Garcia-Molina,
    discussed in the paper's §5.2 "Read-only Redundancy").

    All updates execute at a single primary site under local 1SR; the
    other replicas hold *quasi-copies* that the primary refreshes
    according to a coherency ("closeness") condition:

    - [`Immediate]: push every update as it commits;
    - [`Periodic tau]: push the dirty keys every [tau] ms;
    - [`Drift alpha]: push a key once its value drifts more than [alpha]
      from the last propagated image (the arithmetic closeness predicate
      of quasi-copies).

    Queries read the local quasi-copy free of charge — inconsistency is
    governed by the closeness spec, not by per-query counters — except
    that a query with [epsilon = Limit 0] is routed to the primary for a
    strictly serializable answer (one round trip), mirroring the
    quasi-copies option of consulting the central copy.

    This is a *comparator*, not one of the paper's replica-control
    methods: it shows what §5.2 contrasts ESR against — all updates 1SR
    at a primary, inconsistency only from propagation lag, and no
    per-query inconsistency dial. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

let primary = 0

type msg =
  | Do_update of { et : Et.id; ops : (string * Op.t) list; origin : int }
  | Update_done of { et : Et.id }
  | Refresh of { key : string; value : Value.t; version : int }
  | Do_query of { qid : int; keys : string list; origin : int }
  | Query_reply of { qid : int; values : (string * Value.t) list }

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] *)
  mutable hist : Hist.t;  (* the durable log *)
  versions : (string, int) Hashtbl.t;
      (* refresh versions seen — durable, written with the data *)
  mutable down : bool;
}

(* A strict query waiting on the primary's reply; the wait context is
   volatile at the querying site. *)
type pending_query = {
  q_origin : int;
  q_notify : (string * Value.t) list -> unit;
  q_fail : unit -> unit;
}

type t = {
  env : Intf.env;
  full : bool;  (* replication factor = sites: historical broadcast path *)
  dests : Sharding.Dests.t;  (* reusable routing cursor (refresh path) *)
  sites : site array;
  fabric : msg Squeue.t;
  refresh : [ `Immediate | `Periodic of float | `Drift of float ];
  (* primary-side propagation state *)
  last_pushed : (string, Value.t) Hashtbl.t;
  mutable dirty : string list;
  mutable timer_armed : bool;
  mutable next_version : int;
  outcomes : (Et.id, int * (Intf.update_outcome -> unit)) Hashtbl.t;
      (* origin site and commit callback — volatile origin-side state *)
  query_replies : (int, pending_query) Hashtbl.t;
  mutable next_qid : int;
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_refreshes : int;
  mutable n_primary_reads : int;
}

let meta =
  {
    Intf.name = "QUASI";
    family = Intf.Synchronous;
    restriction = "primary-copy updates";
    async_propagation = "Query only";
    sorting_time = "at primary";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let value_drift a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Float.abs (float_of_int (x - y))
  | a, b -> if Value.equal a b then 0.0 else infinity

let push_key t key =
  let p = t.sites.(primary) in
  let value = Store.get p.store key in
  Hashtbl.replace t.last_pushed key value;
  t.next_version <- t.next_version + 1;
  t.n_refreshes <- t.n_refreshes + 1;
  (* Refresh pushes are QUASI's update propagation: only the sites keeping
     a quasi-copy of the key's shard need them. *)
  let propagate () =
    let msg = Refresh { key; value; version = t.next_version } in
    if t.full then Squeue.broadcast t.fabric ~src:primary msg
    else begin
      let c = t.dests in
      Sharding.Dests.reset c;
      Sharding.Dests.add_id c (Keyspace.find t.env.Intf.keyspace key);
      Squeue.multicast t.fabric ~src:primary ~dests:c msg
    end
  in
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    propagate ();
    Prof.record prof ~site:primary Prof.Propagate ~t0 ~a0
  end
  else propagate ()

let rec arm_timer t tau =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    ignore
      (Engine.schedule t.env.engine ~delay:tau (fun () ->
           t.timer_armed <- false;
           let dirty = List.sort_uniq String.compare t.dirty in
           t.dirty <- [];
           List.iter (push_key t) dirty;
           (* Re-arm only while there is still work: keeps the event
              queue drainable at quiescence. *)
           if t.dirty <> [] then arm_timer t tau))
  end

let after_primary_update t keys =
  match t.refresh with
  | `Immediate -> List.iter (push_key t) (List.sort_uniq String.compare keys)
  | `Periodic tau ->
      t.dirty <- keys @ t.dirty;
      arm_timer t tau
  | `Drift alpha ->
      List.iter
        (fun key ->
          let current = Store.get t.sites.(primary).store key in
          let last =
            Option.value (Hashtbl.find_opt t.last_pushed key) ~default:Value.zero
          in
          if value_drift current last > alpha then push_key t key)
        keys

let rec receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Do_update { et; ops; origin } ->
      (* Only the primary processes updates, serially: local 1SR. *)
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_applied
             { et; site = site_id; n_ops = List.length ops; order = None });
      let apply () =
        List.iter
          (fun (key, op) ->
            (match Store.apply_unit site.store key op with
            | Ok () -> ()
            | Error _ -> invalid_arg "QUASI: op failed at primary");
            log_action site ~et ~key op)
          ops
      in
      let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
      if Prof.on prof then begin
        let t0 = Prof.start prof in
        let a0 = Prof.alloc0 prof in
        apply ();
        Prof.record prof ~site:site_id Prof.Apply ~t0 ~a0
      end
      else apply ();
      after_primary_update t (List.map fst ops);
      let reply = Update_done { et } in
      if origin = site_id then receive t ~site:origin reply
      else Squeue.send t.fabric ~src:site_id ~dst:origin reply
  | Update_done { et } -> (
      match Hashtbl.find_opt t.outcomes et with
      | Some (_, notify) ->
          Hashtbl.remove t.outcomes et;
          notify (Intf.Committed { committed_at = Engine.now t.env.engine })
      | None -> ())
  | Refresh { key; value; version } ->
      let seen = Option.value (Hashtbl.find_opt site.versions key) ~default:0 in
      if version > seen then begin
        Hashtbl.replace site.versions key version;
        Store.set site.store key value;
        log_action site ~et:(t.env.Intf.next_et ()) ~key (Op.Write value)
      end
  | Do_query { qid; keys; origin } ->
      let query_et = t.env.Intf.next_et () in
      let values =
        List.map
          (fun key ->
            log_action site ~et:query_et ~key Op.Read;
            (key, Store.get site.store key))
          keys
      in
      let reply = Query_reply { qid; values } in
      if origin = site_id then receive t ~site:origin reply
      else Squeue.send t.fabric ~src:site_id ~dst:origin reply
  | Query_reply { qid; values } -> (
      match Hashtbl.find_opt t.query_replies qid with
      | Some pq ->
          Hashtbl.remove t.query_replies qid;
          pq.q_notify values
      | None -> ())

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 versions = Hashtbl.create (Stdlib.max 32 env.Intf.store_hint);
                 down = false;
               });
         fabric;
         refresh = env.Intf.config.Intf.quasi_refresh;
         last_pushed = Hashtbl.create (Stdlib.max 32 env.Intf.store_hint);
         dirty = [];
         timer_armed = false;
         next_version = 0;
         outcomes = Hashtbl.create 32;
         query_replies = Hashtbl.create 32;
         next_qid = 0;
         n_updates = 0;
         n_queries = 0;
         n_refreshes = 0;
         n_primary_reads = 0;
       })
  in
  Lazy.force t

let intent_to_op = function
  | Intf.Set (k, v) -> (k, Op.Write v)
  | Intf.Add (k, d) -> (k, Op.Incr d)
  | Intf.Mul (k, f) -> (k, Op.Mult f)

let submit_update t ~origin intents k =
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else if intents = [] then k (Intf.Rejected "empty update ET")
  else begin
    t.n_updates <- t.n_updates + 1;
    let et = t.env.Intf.next_et () in
    let ops = List.map intent_to_op intents in
    let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
    if Trace.on trace then
      Trace.emit trace ~time:(Engine.now t.env.engine)
        (Trace.Mset_enqueued
           {
             et;
             origin;
             n_ops = List.length ops;
             keys = List.map fst ops;
           });
    Hashtbl.replace t.outcomes et (origin, k);
    let msg = Do_update { et; ops; origin } in
    if origin = primary then receive t ~site:primary msg
    else Squeue.send t.fabric ~src:origin ~dst:primary msg
  end

let submit_query t ~site:site_id ~keys ~epsilon k =
  t.n_queries <- t.n_queries + 1;
  let started_at = Engine.now t.env.engine in
  let finish ~consistent values =
    k
      {
        Intf.values;
        charged = 0;
        forced = 0;
        consistent_path = consistent;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  let local_degraded () =
    (* Graceful failure: answer from the last local image, flagged
       degraded (nothing is logged — the site is not executing). *)
    finish ~consistent:false
      (List.map (fun key -> (key, Store.get t.sites.(site_id).store key)) keys)
  in
  let strict = epsilon = Epsilon.Limit 0 in
  if t.sites.(site_id).down then local_degraded ()
  else if strict && site_id <> primary then begin
    (* Consult the central copy, as quasi-copies applications do when the
       local copy is not close enough. *)
    t.n_primary_reads <- t.n_primary_reads + 1;
    t.next_qid <- t.next_qid + 1;
    let qid = t.next_qid in
    Hashtbl.replace t.query_replies qid
      {
        q_origin = site_id;
        q_notify = finish ~consistent:true;
        q_fail = local_degraded;
      };
    Squeue.send t.fabric ~src:site_id ~dst:primary
      (Do_query { qid; keys; origin = site_id })
  end
  else begin
    let site = t.sites.(site_id) in
    let query_et = t.env.Intf.next_et () in
    let values =
      List.map
        (fun key ->
          log_action site ~et:query_et ~key Op.Read;
          (key, Store.get site.store key))
        keys
    in
    finish ~consistent:(site_id = primary) values
  end

let flush t =
  (* Push everything outstanding so quasi-copies converge at quiescence. *)
  let dirty = List.sort_uniq String.compare t.dirty in
  t.dirty <- [];
  List.iter (push_key t) dirty;
  match t.refresh with
  | `Drift _ ->
      (* Keys within the drift band were never pushed; final flush
         reconciles them. *)
      List.iter
        (fun key ->
          let current = Store.get t.sites.(primary).store key in
          let last =
            Option.value (Hashtbl.find_opt t.last_pushed key) ~default:Value.zero
          in
          if not (Value.equal current last) then push_key t key)
        (Store.keys t.sites.(primary).store)
  | `Immediate | `Periodic _ -> ()

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* Strict queries from this site waiting on the primary's reply: the
       wait context is volatile — answer degraded from the local image. *)
    let my_queries =
      Hashtbl.fold
        (fun qid pq acc -> if pq.q_origin = site_id then (qid, pq) :: acc else acc)
        t.query_replies []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter (fun (qid, _) -> Hashtbl.remove t.query_replies qid) my_queries;
    List.iter (fun (_, pq) -> pq.q_fail ()) my_queries;
    (* Updates submitted here still waiting on Update_done: the origin-side
       callback is volatile, so the client sees a rejection even though the
       primary may have (or will have) applied the ET. *)
    let my_updates =
      Hashtbl.fold
        (fun et (origin, notify) acc ->
          if origin = site_id then (et, notify) :: acc else acc)
        t.outcomes []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter (fun (et, _) -> Hashtbl.remove t.outcomes et) my_updates;
    List.iter
      (fun (_, notify) -> notify (Intf.Rejected "origin site crashed"))
      my_updates;
    (* The primary's propagation bookkeeping (dirty set, last-pushed
       images) is volatile; recovery re-pushes everything instead. *)
    let buffered =
      if site_id = primary then begin
        let n = List.length (List.sort_uniq String.compare t.dirty) in
        t.dirty <- [];
        Hashtbl.reset t.last_pushed;
        n
      end
      else 0
    in
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered ~queries_failed:(List.length my_queries)
      ~updates_rejected:(List.length my_updates) ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist;
    if site_id = primary then
      (* Anti-entropy resync: with the dirty/last-pushed bookkeeping lost,
         re-push the whole image so quasi-copies re-converge and the
         closeness predicate restarts from a known state. *)
      List.iter (push_key t)
        (List.sort String.compare (Store.keys site.store))
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let backlog t =
  Hashtbl.length t.outcomes + Hashtbl.length t.query_replies
  + List.length t.dirty

let quiescent t =
  Hashtbl.length t.outcomes = 0
  && Hashtbl.length t.query_replies = 0
  && t.dirty = []
  &&
  match t.refresh with
  | `Drift _ ->
      List.for_all
        (fun key ->
          Value.equal
            (Store.get t.sites.(primary).store key)
            (Option.value (Hashtbl.find_opt t.last_pushed key) ~default:Value.zero))
        (Store.keys t.sites.(primary).store)
  | `Immediate | `Periodic _ -> true

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  let reference = t.sites.(primary).store in
  if t.full then
    Array.for_all (fun site -> Store.equal site.store reference) t.sites
  else begin
    (* The primary's copy is the master; each quasi-copy must agree with
       it on exactly the keys (shards) it replicates. *)
    let sh = t.env.Intf.sharding in
    let n = Keyspace.size t.env.Intf.keyspace in
    let ok = ref true in
    let id = ref 0 in
    while !ok && !id < n do
      let v = Store.get_id reference !id in
      let reps = Sharding.replicas sh (Sharding.shard_of_id sh !id) in
      for i = 0 to Array.length reps - 1 do
        let s = reps.(i) in
        if
          !ok && s <> primary
          && not (Value.equal (Store.get_id t.sites.(s).store !id) v)
        then ok := false
      done;
      incr id
    done;
    !ok
  end

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("refreshes", float_of_int t.n_refreshes);
    ("primary_reads", float_of_int t.n_primary_reads);
  ]

(* Refresh versions live with the data; there is no receipt journal, so
   the WAL fields stay zero. *)
let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.no_resources with
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
