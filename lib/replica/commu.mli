(** COMMU — commutative operations (paper §3.2).

    Update MSets contain only mutually commutative operations, so
    replicas apply them in any arrival order and still converge.
    Divergence bounding uses per-object lock-counters over each update's
    in-flight window (apply → global completion); queries are charged the
    counters they read through, wait when their epsilon is exhausted, and
    with [epsilon = Limit 0] take an atomic all-keys-quiet snapshot.
    Optional update-side limits ([commu_update_limit] on the operation
    count, [commu_value_limit] on the pending |delta|, §3.2/§5.1) give
    back-pressure with a Wait or Abort policy. *)

type t

val meta : Intf.meta
val create : Intf.env -> t

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val flush : t -> unit

val on_crash : t -> site:int -> unit
(** Volatile state at the site is lost: wait contexts fail degraded,
    buffered work is dropped, and in-doubt coordination this site led is
    presumed aborted.  Durable state (the log and protocol journals)
    survives.  Idempotent while the site stays down. *)

val on_recover : t -> site:int -> unit
(** Rebuild the volatile image by replaying the durable log, re-ingest
    journaled protocol state, and resume.  Idempotent while up. *)

val checkpoint : t -> site:int -> unit
(** Asynchronous checkpoint cut at the site (see {!Checkpoint.cut}):
    snapshot the image, truncate the durable log, and reclaim journal
    records behind the watermark.  No-op when the run does not
    checkpoint or the site is down. *)

val quiescent : t -> bool
val backlog : t -> int
val store : t -> site:int -> Esr_store.Store.t
val mvstore : t -> site:int -> Esr_store.Mvstore.t option
val history : t -> site:int -> Esr_core.Hist.t
val converged : t -> bool
val stats : t -> (string * float) list

val resources : t -> site:int -> Intf.resources
(** Per-site durable/volatile footprint.  COMMU keeps no receipt journal,
    so the WAL fields are zero. *)
