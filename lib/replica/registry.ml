(** Registry of every replica-control method, async and synchronous.

    The bench harness derives the paper's Table 1 from [metas]; the
    workload driver instantiates systems by name through [make]. *)

let modules : (module Intf.S) list =
  [
    (module Ordup);
    (module Commu);
    (module Ritu);
    (module Compe);
    (module Twopc);
    (module Quorum);
    (module Quasi);
  ]

let asynchronous = [ "ORDUP"; "COMMU"; "RITU"; "COMPE" ]
let synchronous = [ "2PC"; "QUORUM"; "QUASI" ]

let metas = List.map (fun (module M : Intf.S) -> M.meta) modules

let names = List.map (fun (m : Intf.meta) -> m.Intf.name) metas

let find name =
  List.find_opt
    (fun (module M : Intf.S) ->
      String.lowercase_ascii M.meta.Intf.name = String.lowercase_ascii name)
    modules

let make ~name env =
  match find name with
  | Some (module M : Intf.S) ->
      let sys = M.create env in
      (* Mirror the method's stats list into the metrics registry as
         group "method" gauges, in the method's own order, so
         [Metrics.alist ~group:"method"] reproduces [M.stats] exactly. *)
      List.iter
        (fun (stat_name, _) ->
          Esr_obs.Metrics.gauge_fn env.Intf.obs.Esr_obs.Obs.metrics
            ~group:"method" stat_name (fun () ->
              match List.assoc_opt stat_name (M.stats sys) with
              | Some v -> v
              | None -> 0.0))
        (M.stats sys);
      Intf.B ((module M), sys)
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.make: unknown method %S (known: %s)" name
           (String.concat ", " names))
