(** Registry of every replica-control method, async and synchronous.

    The bench harness derives the paper's Table 1 from [metas]; the
    workload driver instantiates systems by name through [make]. *)

let modules : (module Intf.S) list =
  [
    (module Ordup);
    (module Commu);
    (module Ritu);
    (module Compe);
    (module Twopc);
    (module Quorum);
    (module Quasi);
  ]

let asynchronous = [ "ORDUP"; "COMMU"; "RITU"; "COMPE" ]
let synchronous = [ "2PC"; "QUORUM"; "QUASI" ]

let metas = List.map (fun (module M : Intf.S) -> M.meta) modules

let names = List.map (fun (m : Intf.meta) -> m.Intf.name) metas

let find name =
  List.find_opt
    (fun (module M : Intf.S) ->
      String.lowercase_ascii M.meta.Intf.name = String.lowercase_ascii name)
    modules

let make ~name env =
  match find name with
  | Some (module M : Intf.S) -> Intf.B ((module M), M.create env)
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.make: unknown method %S (known: %s)" name
           (String.concat ", " names))
