(** Registry of every replica-control method.

    The bench harness derives the paper's Table 1 from {!metas}; drivers
    instantiate systems by name through {!make}. *)

val modules : (module Intf.S) list
(** The four asynchronous methods (ORDUP, COMMU, RITU, COMPE) followed by
    the two synchronous baselines (2PC, QUORUM). *)

val asynchronous : string list
(** Names of the paper's methods. *)

val synchronous : string list
(** Names of the baseline comparators. *)

val metas : Intf.meta list
(** Table 1 rows, in {!modules} order. *)

val names : string list

val find : string -> (module Intf.S) option
(** Case-insensitive lookup. *)

val make : name:string -> Intf.env -> Intf.boxed
(** Instantiate a replicated system.  Raises [Invalid_argument] for an
    unknown name (the message lists the known ones). *)
