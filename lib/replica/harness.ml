(** Replicated-system harness: wires an engine, a network, and one
    replica-control method together, and knows how to drive the system to
    quiescence (the state in which the paper's convergence guarantee is
    stated: "replicas converge to the same 1SR value when the update
    MSets queued at individual sites are processed"). *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng

type t = {
  engine : Engine.t;
  net : Net.t;
  env : Intf.env;
  system : Intf.boxed;
  seed : int;
}

let create ?(config = Intf.default_config) ?net_config ?(seed = 42)
    ?store_hint ?engine_hint ~sites ~method_name () =
  let engine = Engine.create ?hint:engine_hint () in
  let prng = Prng.create seed in
  let net_prng = Prng.split prng in
  let net = Net.create ?config:net_config engine ~sites ~prng:net_prng in
  let env = Intf.make_env ~config ?store_hint ~engine ~net ~prng () in
  let system = Registry.make ~name:method_name env in
  { engine; net; env; system; seed }

let engine t = t.engine
let net t = t.net
let env t = t.env
let system t = t.system

let now t = Engine.now t.engine

let run_for t duration = Engine.run ~until:(now t +. duration) t.engine

(** Drain everything: repeatedly run the event loop and flush the method
    until both the engine and the protocol report quiescence.  Returns
    [false] if [max_rounds] flush rounds were not enough (e.g. a network
    partition is still in force). *)
let settle ?(max_rounds = 10) t =
  let rec loop rounds =
    if rounds = 0 then false
    else begin
      Engine.run t.engine;
      if Intf.boxed_quiescent t.system then true
      else begin
        Intf.boxed_flush t.system;
        loop (rounds - 1)
      end
    end
  in
  Intf.boxed_flush t.system;
  loop max_rounds

let converged t = Intf.boxed_converged t.system

(** All per-site states equal and the protocol quiescent — the paper's
    convergence property, checked exactly. *)
let check_convergence t =
  if not (settle t) then Error "system did not reach quiescence"
  else if not (converged t) then Error "replicas diverge at quiescence"
  else Ok ()

let submit_update t ~origin intents k =
  Intf.boxed_submit_update t.system ~origin intents k

let submit_query t ~site ~keys ~epsilon k =
  Intf.boxed_submit_query t.system ~site ~keys ~epsilon k

let store t ~site = Intf.boxed_store t.system ~site
let history t ~site = Intf.boxed_history t.system ~site
let stats t = Intf.boxed_stats t.system
