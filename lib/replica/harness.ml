(** Replicated-system harness: wires an engine, a network, and one
    replica-control method together, and knows how to drive the system to
    quiescence (the state in which the paper's convergence guarantee is
    stated: "replicas converge to the same 1SR value when the update
    MSets queued at individual sites are processed"). *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng
module Obs = Esr_obs.Obs
module Trace = Esr_obs.Trace
module Metrics = Esr_obs.Metrics
module Series = Esr_obs.Series
module Value = Esr_store.Value
module Sharding = Esr_store.Sharding

type t = {
  engine : Engine.t;
  net : Net.t;
  env : Intf.env;
  system : Intf.boxed;
  seed : int;
  obs : Obs.t;
  (* Harness-level lifecycle sequence numbers.  ET ids are allocated
     inside the methods (and rejections can fire before one exists), so
     lifecycle trace events carry these instead. *)
  mutable next_u : int;
  mutable next_q : int;
  updates_submitted : Metrics.counter;
  updates_committed : Metrics.counter;
  updates_rejected : Metrics.counter;
  queries_submitted : Metrics.counter;
  queries_served : Metrics.counter;
  flush_rounds : Metrics.counter;
  commit_latency : Metrics.histogram;
  query_charged : Metrics.histogram;
  (* Epsilon budget across the run's limited-class queries: inconsistency
     units actually charged vs. the cumulative limit granted.  Updated
     only when the series is armed (zero-cost otherwise); read by the
     [esr/eps_*] probes. *)
  eps_consumed : float ref;
  eps_limit : float ref;
}

let create ?(config = Intf.default_config) ?net_config ?(seed = 42)
    ?store_hint ?engine_hint ?sharding ?obs ?checkpoint ~sites ~method_name () =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let engine = Engine.create ?hint:engine_hint () in
  let prng = Prng.create seed in
  let net_prng = Prng.split prng in
  let net = Net.create ?config:net_config ~obs engine ~sites ~prng:net_prng in
  let env =
    Intf.make_env ~config ?store_hint ?sharding ~obs ?checkpoint ~engine ~net
      ~prng ()
  in
  let sharding = env.Intf.sharding in
  let keyspace = env.Intf.keyspace in
  (* Probes below only consult the shard map when replication is partial:
     under full replication the literal historical comparisons run, so
     every gauge and series value is byte-identical to the unsharded
     build. *)
  let full = Sharding.is_full sharding in
  Engine.set_prof engine obs.Obs.prof;
  let m = obs.Obs.metrics in
  let g name f = Metrics.gauge_fn m ~group:"engine" name f in
  g "scheduled" (fun () -> float_of_int (Engine.scheduled engine));
  g "fired" (fun () -> float_of_int (Engine.processed engine));
  g "cancelled" (fun () -> float_of_int (Engine.cancelled engine));
  g "pending" (fun () -> float_of_int (Engine.pending engine));
  let system = Registry.make ~name:method_name env in
  let t =
    {
      engine;
      net;
      env;
      system;
      seed;
      obs;
      next_u = 0;
      next_q = 0;
      updates_submitted = Metrics.counter m ~group:"harness" "updates_submitted";
      updates_committed = Metrics.counter m ~group:"harness" "updates_committed";
      updates_rejected = Metrics.counter m ~group:"harness" "updates_rejected";
      queries_submitted = Metrics.counter m ~group:"harness" "queries_submitted";
      queries_served = Metrics.counter m ~group:"harness" "queries_served";
      flush_rounds = Metrics.counter m ~group:"harness" "flush_rounds";
      commit_latency =
        Metrics.histogram m ~group:"harness"
          ~buckets:[ 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. ]
          "commit_latency_ms";
      query_charged =
        Metrics.histogram m ~group:"harness"
          ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50. ]
          "query_charged";
      eps_consumed = ref 0.0;
      eps_limit = ref 0.0;
    }
  in
  (* Per-site resource probes (group ["res"]): pure reads of each
     replica's durable/volatile footprint, evaluated only at snapshot
     time.  Through the series registry binding they become [res/...]
     columns, which is what the soak experiment and the report's
     resources panel chart. *)
  for site = 0 to sites - 1 do
    let rg name f =
      Metrics.gauge_fn m ~group:"res" ~site name (fun () ->
          float_of_int (f (Intf.boxed_resources t.system ~site)))
    in
    rg "log_entries" (fun r -> r.Intf.log_entries);
    rg "log_bytes" (fun r -> r.Intf.log_bytes);
    rg "wal_entries" (fun r -> r.Intf.wal_entries);
    rg "wal_appended" (fun r -> r.Intf.wal_appended);
    rg "wal_high_water" (fun r -> r.Intf.wal_high_water);
    rg "journal_depth" (fun r -> r.Intf.journal_depth);
    rg "journal_enqueued" (fun r -> r.Intf.journal_enqueued);
    rg "store_words" (fun r -> r.Intf.store_words)
  done;
  (* Checkpoint gauges (group ["ckpt"], [ckpt/] series columns): only
     registered when the run checkpoints, so a checkpoint-off run's
     metrics snapshot — and therefore every report and series dump — is
     byte-identical to before this group existed. *)
  (match env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      for site = 0 to sites - 1 do
        let cg name f =
          Metrics.gauge_fn m ~group:"ckpt" ~site name (fun () ->
              float_of_int (f c ~site))
        in
        cg "cuts" Checkpoint.cuts;
        cg "truncated_log" Checkpoint.truncated_log;
        cg "truncated_journal" Checkpoint.truncated_journal;
        cg "baseline" Checkpoint.baseline;
        cg "tail_replays" Checkpoint.tail_replays;
        cg "last_tail" Checkpoint.last_tail;
        cg "max_tail" Checkpoint.max_tail
      done);
  Metrics.gauge_fn m ~group:"harness" "divergent_sites" (fun () ->
      if full then begin
        let s0 = Intf.boxed_store t.system ~site:0 in
        let n = ref 0 in
        for site = 1 to sites - 1 do
          if not (Intf.Store.equal s0 (Intf.boxed_store t.system ~site)) then
            incr n
        done;
        float_of_int !n
      end
      else
        float_of_int
          (Sharding.divergent_replicas sharding ~keyspace ~store:(fun site ->
               Intf.boxed_store t.system ~site)));
  let series = obs.Obs.series in
  if Series.on series then begin
    (* Derived ESR probes (the ["esr/"] prefix is what the report charts
       pick up).  All pure reads of replica state on the sampling path —
       nothing here can perturb the simulation. *)
    let vdist a b =
      match (a, b) with
      | Value.Int x, Value.Int y -> float_of_int (abs (x - y))
      | a, b -> if Value.equal a b then 0.0 else 1.0
    in
    (* Per-key replica spread: for each key anywhere in the system, the
       largest pairwise distance between copies at the sites replicating
       that key's shard (max - min for integer domains).  Under full
       replication every site replicates every shard, so the pair set is
       the historical all-pairs loop. *)
    let spread_stats () =
      let keys = Hashtbl.create 64 in
      for site = 0 to sites - 1 do
        List.iter
          (fun k -> Hashtbl.replace keys k ())
          (Intf.Store.keys (Intf.boxed_store t.system ~site))
      done;
      let n_keys = ref 0 and divergent = ref 0 in
      let s_max = ref 0.0 and s_sum = ref 0.0 in
      Hashtbl.iter
        (fun k () ->
          incr n_keys;
          let spread = ref 0.0 in
          (if full then
             for a = 0 to sites - 1 do
               for b = a + 1 to sites - 1 do
                 let va = Intf.Store.get (Intf.boxed_store t.system ~site:a) k in
                 let vb = Intf.Store.get (Intf.boxed_store t.system ~site:b) k in
                 spread := Float.max !spread (vdist va vb)
               done
             done
           else begin
             let reps =
               Sharding.replicas sharding
                 (Sharding.shard_of_id sharding (Esr_store.Keyspace.find keyspace k))
             in
             let n = Array.length reps in
             for a = 0 to n - 1 do
               for b = a + 1 to n - 1 do
                 let va =
                   Intf.Store.get (Intf.boxed_store t.system ~site:reps.(a)) k
                 in
                 let vb =
                   Intf.Store.get (Intf.boxed_store t.system ~site:reps.(b)) k
                 in
                 spread := Float.max !spread (vdist va vb)
               done
             done
           end);
          if !spread > 0.0 then incr divergent;
          s_max := Float.max !s_max !spread;
          s_sum := !s_sum +. !spread)
        keys;
      let mean = if !n_keys = 0 then 0.0 else !s_sum /. float_of_int !n_keys in
      (!s_max, mean, !divergent)
    in
    Series.probe series ~name:"esr/spread_max" (fun () ->
        let m, _, _ = spread_stats () in
        m);
    Series.probe series ~name:"esr/spread_mean" (fun () ->
        let _, m, _ = spread_stats () in
        m);
    Series.probe series ~name:"esr/divergent_keys" (fun () ->
        let _, _, d = spread_stats () in
        float_of_int d);
    (* Outstanding update ETs: submitted, no outcome yet — the harness
       view of the MSet backlog still working through the fabric. *)
    Series.probe series ~name:"esr/backlog" (fun () ->
        Metrics.value t.updates_submitted
        -. Metrics.value t.updates_committed
        -. Metrics.value t.updates_rejected);
    Series.probe series ~name:"esr/eps_consumed" (fun () -> !(t.eps_consumed));
    Series.probe series ~name:"esr/eps_limit" (fun () -> !(t.eps_limit));
    (* Convergence lag: virtual ms since all replicas last held equal
       state (0 while converged).  [last_equal] advances only at sample
       points, so the lag is an upper bound at the sampling cadence. *)
    let last_equal = ref 0.0 in
    Series.probe series ~name:"esr/conv_lag" (fun () ->
        let t_now = Engine.now engine in
        let equal = ref true in
        (if full then begin
           let s0 = Intf.boxed_store t.system ~site:0 in
           for site = 1 to sites - 1 do
             if
               !equal
               && not (Intf.Store.equal s0 (Intf.boxed_store t.system ~site))
             then equal := false
           done
         end
         else
           equal :=
             Sharding.converged sharding ~keyspace ~store:(fun site ->
                 Intf.boxed_store t.system ~site));
        if !equal then begin
          last_equal := t_now;
          0.0
        end
        else t_now -. !last_equal);
    Series.probe series ~name:"esr/sites_down" (fun () ->
        float_of_int (List.length (Net.down_sites net)));
    (* The running method's own view of its outstanding work. *)
    Series.probe series ~name:"esr/method_backlog" (fun () ->
        float_of_int (Intf.boxed_backlog t.system))
  end;
  t

let engine t = t.engine
let net t = t.net
let env t = t.env
let system t = t.system
let obs t = t.obs

let now t = Engine.now t.engine

let run_for t duration = Engine.run ~until:(now t +. duration) t.engine

let sample_series t = Series.sample t.obs.Obs.series ~time:(now t)

(* Tap the auditor into the run: it sees every trace record as it is
   emitted (immune to ring eviction) and registers its [audit/] gauges.
   Must run before {!arm_series} so the columns freeze into the series;
   requires tracing on, since a disabled sink refuses taps. *)
let attach_audit t (a : Esr_obs.Audit.t) =
  Esr_obs.Audit.bind_metrics a t.obs.Obs.metrics;
  Trace.attach t.obs.Obs.trace (Esr_obs.Audit.feed a)

(* Pre-schedule sampling ticks on the engine at the series cadence, from
   the current virtual time up to [until].  Pre-scheduling (rather than a
   self-rescheduling event) keeps [Engine.run]'s drain semantics intact:
   the sampler never generates work past the horizon. *)
let arm_series t ~until =
  let series = t.obs.Obs.series in
  if Series.on series then begin
    let period = Series.interval series in
    let time = ref (now t +. period) in
    while !time <= until do
      let at = !time in
      ignore (Engine.schedule_at t.engine ~time:at (fun () -> sample_series t));
      time := at +. period
    done
  end

(* Pre-schedule checkpoint cuts at every multiple of the interval through
   [until], mirroring {!arm_series}: pre-scheduling keeps [Engine.run]'s
   drain semantics (no work generated past the horizon).  Each tick cuts
   every site at the same virtual instant — one consistent system-wide
   cut per tick.  No-op when the run does not checkpoint. *)
let arm_checkpoints t ~until =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let period = Checkpoint.interval c in
      let sites = t.env.Intf.sites in
      let time = ref (now t +. period) in
      while !time <= until do
        let at = !time in
        ignore
          (Engine.schedule_at t.engine ~time:at (fun () ->
               for site = 0 to sites - 1 do
                 Intf.boxed_checkpoint t.system ~site
               done));
        time := at +. period
      done

let inject_faults t schedule =
  let checkpoint =
    Option.map Checkpoint.interval t.env.Intf.checkpoint
  in
  match
    Esr_fault.Schedule.validate ?checkpoint ~sites:t.env.Intf.sites schedule
  with
  | Error msg -> invalid_arg ("Harness.inject_faults: " ^ msg)
  | Ok () ->
      let series = t.obs.Obs.series in
      let annotate =
        if Series.on series then
          Some (fun ~time label -> Series.annotate series ~time label)
        else None
      in
      Esr_fault.Schedule.inject ?annotate t.engine t.net schedule
        ~on_crash:(fun site -> Intf.boxed_on_crash t.system ~site)
        ~on_recover:(fun site -> Intf.boxed_on_recover t.system ~site)

type stuck_reason =
  | Sites_down of int list
  | Partitioned of int list list
  | Protocol_stalled of { rounds : int }

type settle_outcome = Drained | Stuck of stuck_reason

let stuck_reason_to_string = function
  | Sites_down sites ->
      Printf.sprintf "sites still crashed: %s"
        (String.concat ", " (List.map string_of_int sites))
  | Partitioned groups ->
      Printf.sprintf "network partitioned: %s"
        (String.concat " | "
           (List.map
              (fun g -> String.concat " " (List.map string_of_int g))
              groups))
  | Protocol_stalled { rounds } ->
      Printf.sprintf "protocol not quiescent after %d flush rounds" rounds

(** Drain everything: repeatedly run the event loop and flush the method
    until both the engine and the protocol report quiescence.  When
    [max_rounds] flush rounds are not enough, the diagnostic says why the
    system cannot drain: a crashed site or a standing partition keeps
    stable-queue backlogs pinned, otherwise the protocol itself stalled. *)
let settle_result ?(max_rounds = 10) t =
  let trace = t.obs.Obs.trace in
  let round = ref 0 in
  let flush () =
    Metrics.incr t.flush_rounds;
    if Trace.on trace then
      Trace.emit trace ~time:(now t) (Trace.Flush_round { round = !round });
    incr round;
    Intf.boxed_flush t.system
  in
  let rec loop rounds =
    if rounds = 0 then
      let reason =
        match Net.down_sites t.net with
        | _ :: _ as down -> Sites_down down
        | [] ->
            if Net.partitioned t.net then Partitioned (Net.partition_groups t.net)
            else Protocol_stalled { rounds = max_rounds }
      in
      Stuck reason
    else begin
      Engine.run t.engine;
      (* One series row per drain round: this is where divergence decays
         toward zero, which is exactly the tail the report charts. *)
      if Series.on t.obs.Obs.series then sample_series t;
      if Intf.boxed_quiescent t.system then Drained
      else begin
        flush ();
        loop (rounds - 1)
      end
    end
  in
  flush ();
  loop max_rounds

(** Bool-compat wrapper over {!settle_result}. *)
let settle ?max_rounds t =
  match settle_result ?max_rounds t with Drained -> true | Stuck _ -> false

let run_with_faults ?max_rounds t ~schedule ~workload =
  inject_faults t schedule;
  workload t;
  (* Run at least past the schedule's last step so an all-clear schedule
     really is all clear before we try to drain. *)
  Engine.run ~until:(Esr_fault.Schedule.clear_time schedule) t.engine;
  settle_result ?max_rounds t

let converged t =
  let ok = Intf.boxed_converged t.system in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then Trace.emit trace ~time:(now t) (Trace.Converged { ok });
  ok

(** All per-site states equal and the protocol quiescent — the paper's
    convergence property, checked exactly. *)
let check_convergence t =
  match settle_result t with
  | Stuck reason ->
      Error
        (Printf.sprintf "system did not reach quiescence (%s)"
           (stuck_reason_to_string reason))
  | Drained ->
      if not (converged t) then Error "replicas diverge at quiescence" else Ok ()

let submit_update t ~origin intents k =
  let u = t.next_u in
  t.next_u <- u + 1;
  Metrics.incr t.updates_submitted;
  let start = now t in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:start
      (Trace.Update_begin { u; origin; n_ops = List.length intents });
  Intf.boxed_submit_update t.system ~origin intents (fun outcome ->
      (match outcome with
      | Intf.Committed { committed_at } ->
          Metrics.incr t.updates_committed;
          let latency = committed_at -. start in
          Metrics.observe t.commit_latency latency;
          if Trace.on trace then
            Trace.emit trace ~time:committed_at
              (Trace.Update_committed { u; origin; latency })
      | Intf.Rejected reason ->
          Metrics.incr t.updates_rejected;
          if Trace.on trace then
            Trace.emit trace ~time:(now t)
              (Trace.Update_rejected { u; origin; reason }));
      k outcome)

let submit_query t ~site ~keys ~epsilon k =
  let q = t.next_q in
  t.next_q <- q + 1;
  Metrics.incr t.queries_submitted;
  let eps =
    match (epsilon : Esr_core.Epsilon.spec) with
    | Esr_core.Epsilon.Unlimited -> None
    | Esr_core.Epsilon.Limit n -> Some n
  in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(now t)
      (Trace.Query_begin { q; site; n_keys = List.length keys; epsilon = eps });
  Intf.boxed_submit_query t.system ~site ~keys ~epsilon (fun outcome ->
      Metrics.incr t.queries_served;
      Metrics.observe t.query_charged (float_of_int outcome.Intf.charged);
      (if Series.on t.obs.Obs.series then
         match eps with
         | Some limit ->
             t.eps_consumed := !(t.eps_consumed) +. float_of_int outcome.Intf.charged;
             t.eps_limit := !(t.eps_limit) +. float_of_int limit
         | None -> ());
      if Trace.on trace then
        Trace.emit trace ~time:outcome.Intf.served_at
          (Trace.Query_served
             {
               q;
               site;
               charged = outcome.Intf.charged;
               forced = outcome.Intf.forced;
               epsilon = eps;
               consistent_path = outcome.Intf.consistent_path;
               latency = outcome.Intf.served_at -. outcome.Intf.started_at;
             });
      k outcome)

let store t ~site = Intf.boxed_store t.system ~site
let history t ~site = Intf.boxed_history t.system ~site

let stats t = Metrics.snapshot t.obs.Obs.metrics

let stats_alist t = Metrics.alist ~group:"method" t.obs.Obs.metrics
