(** Replicated-system harness: wires an engine, a network, and one
    replica-control method together, and knows how to drive the system to
    quiescence (the state in which the paper's convergence guarantee is
    stated: "replicas converge to the same 1SR value when the update
    MSets queued at individual sites are processed"). *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng
module Obs = Esr_obs.Obs
module Trace = Esr_obs.Trace
module Metrics = Esr_obs.Metrics

type t = {
  engine : Engine.t;
  net : Net.t;
  env : Intf.env;
  system : Intf.boxed;
  seed : int;
  obs : Obs.t;
  (* Harness-level lifecycle sequence numbers.  ET ids are allocated
     inside the methods (and rejections can fire before one exists), so
     lifecycle trace events carry these instead. *)
  mutable next_u : int;
  mutable next_q : int;
  updates_submitted : Metrics.counter;
  updates_committed : Metrics.counter;
  updates_rejected : Metrics.counter;
  queries_submitted : Metrics.counter;
  queries_served : Metrics.counter;
  flush_rounds : Metrics.counter;
  commit_latency : Metrics.histogram;
  query_charged : Metrics.histogram;
}

let create ?(config = Intf.default_config) ?net_config ?(seed = 42)
    ?store_hint ?engine_hint ?obs ~sites ~method_name () =
  let obs = match obs with Some o -> o | None -> Obs.default () in
  let engine = Engine.create ?hint:engine_hint () in
  let prng = Prng.create seed in
  let net_prng = Prng.split prng in
  let net = Net.create ?config:net_config ~obs engine ~sites ~prng:net_prng in
  let env = Intf.make_env ~config ?store_hint ~obs ~engine ~net ~prng () in
  let m = obs.Obs.metrics in
  let g name f = Metrics.gauge_fn m ~group:"engine" name f in
  g "scheduled" (fun () -> float_of_int (Engine.scheduled engine));
  g "fired" (fun () -> float_of_int (Engine.processed engine));
  g "cancelled" (fun () -> float_of_int (Engine.cancelled engine));
  g "pending" (fun () -> float_of_int (Engine.pending engine));
  let system = Registry.make ~name:method_name env in
  let t =
    {
      engine;
      net;
      env;
      system;
      seed;
      obs;
      next_u = 0;
      next_q = 0;
      updates_submitted = Metrics.counter m ~group:"harness" "updates_submitted";
      updates_committed = Metrics.counter m ~group:"harness" "updates_committed";
      updates_rejected = Metrics.counter m ~group:"harness" "updates_rejected";
      queries_submitted = Metrics.counter m ~group:"harness" "queries_submitted";
      queries_served = Metrics.counter m ~group:"harness" "queries_served";
      flush_rounds = Metrics.counter m ~group:"harness" "flush_rounds";
      commit_latency =
        Metrics.histogram m ~group:"harness"
          ~buckets:[ 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000. ]
          "commit_latency_ms";
      query_charged =
        Metrics.histogram m ~group:"harness"
          ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50. ]
          "query_charged";
    }
  in
  Metrics.gauge_fn m ~group:"harness" "divergent_sites" (fun () ->
      let s0 = Intf.boxed_store t.system ~site:0 in
      let n = ref 0 in
      for site = 1 to sites - 1 do
        if not (Intf.Store.equal s0 (Intf.boxed_store t.system ~site)) then
          incr n
      done;
      float_of_int !n);
  t

let engine t = t.engine
let net t = t.net
let env t = t.env
let system t = t.system
let obs t = t.obs

let now t = Engine.now t.engine

let run_for t duration = Engine.run ~until:(now t +. duration) t.engine

let inject_faults t schedule =
  match Esr_fault.Schedule.validate ~sites:t.env.Intf.sites schedule with
  | Error msg -> invalid_arg ("Harness.inject_faults: " ^ msg)
  | Ok () ->
      Esr_fault.Schedule.inject t.engine t.net schedule
        ~on_crash:(fun site -> Intf.boxed_on_crash t.system ~site)
        ~on_recover:(fun site -> Intf.boxed_on_recover t.system ~site)

type stuck_reason =
  | Sites_down of int list
  | Partitioned of int list list
  | Protocol_stalled of { rounds : int }

type settle_outcome = Drained | Stuck of stuck_reason

let stuck_reason_to_string = function
  | Sites_down sites ->
      Printf.sprintf "sites still crashed: %s"
        (String.concat ", " (List.map string_of_int sites))
  | Partitioned groups ->
      Printf.sprintf "network partitioned: %s"
        (String.concat " | "
           (List.map
              (fun g -> String.concat " " (List.map string_of_int g))
              groups))
  | Protocol_stalled { rounds } ->
      Printf.sprintf "protocol not quiescent after %d flush rounds" rounds

(** Drain everything: repeatedly run the event loop and flush the method
    until both the engine and the protocol report quiescence.  When
    [max_rounds] flush rounds are not enough, the diagnostic says why the
    system cannot drain: a crashed site or a standing partition keeps
    stable-queue backlogs pinned, otherwise the protocol itself stalled. *)
let settle_result ?(max_rounds = 10) t =
  let trace = t.obs.Obs.trace in
  let round = ref 0 in
  let flush () =
    Metrics.incr t.flush_rounds;
    if Trace.on trace then
      Trace.emit trace ~time:(now t) (Trace.Flush_round { round = !round });
    incr round;
    Intf.boxed_flush t.system
  in
  let rec loop rounds =
    if rounds = 0 then
      let reason =
        match Net.down_sites t.net with
        | _ :: _ as down -> Sites_down down
        | [] ->
            if Net.partitioned t.net then Partitioned (Net.partition_groups t.net)
            else Protocol_stalled { rounds = max_rounds }
      in
      Stuck reason
    else begin
      Engine.run t.engine;
      if Intf.boxed_quiescent t.system then Drained
      else begin
        flush ();
        loop (rounds - 1)
      end
    end
  in
  flush ();
  loop max_rounds

(** Bool-compat wrapper over {!settle_result}. *)
let settle ?max_rounds t =
  match settle_result ?max_rounds t with Drained -> true | Stuck _ -> false

let run_with_faults ?max_rounds t ~schedule ~workload =
  inject_faults t schedule;
  workload t;
  (* Run at least past the schedule's last step so an all-clear schedule
     really is all clear before we try to drain. *)
  Engine.run ~until:(Esr_fault.Schedule.clear_time schedule) t.engine;
  settle_result ?max_rounds t

let converged t =
  let ok = Intf.boxed_converged t.system in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then Trace.emit trace ~time:(now t) (Trace.Converged { ok });
  ok

(** All per-site states equal and the protocol quiescent — the paper's
    convergence property, checked exactly. *)
let check_convergence t =
  match settle_result t with
  | Stuck reason ->
      Error
        (Printf.sprintf "system did not reach quiescence (%s)"
           (stuck_reason_to_string reason))
  | Drained ->
      if not (converged t) then Error "replicas diverge at quiescence" else Ok ()

let submit_update t ~origin intents k =
  let u = t.next_u in
  t.next_u <- u + 1;
  Metrics.incr t.updates_submitted;
  let start = now t in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:start
      (Trace.Update_begin { u; origin; n_ops = List.length intents });
  Intf.boxed_submit_update t.system ~origin intents (fun outcome ->
      (match outcome with
      | Intf.Committed { committed_at } ->
          Metrics.incr t.updates_committed;
          let latency = committed_at -. start in
          Metrics.observe t.commit_latency latency;
          if Trace.on trace then
            Trace.emit trace ~time:committed_at
              (Trace.Update_committed { u; origin; latency })
      | Intf.Rejected reason ->
          Metrics.incr t.updates_rejected;
          if Trace.on trace then
            Trace.emit trace ~time:(now t)
              (Trace.Update_rejected { u; origin; reason }));
      k outcome)

let submit_query t ~site ~keys ~epsilon k =
  let q = t.next_q in
  t.next_q <- q + 1;
  Metrics.incr t.queries_submitted;
  let eps =
    match (epsilon : Esr_core.Epsilon.spec) with
    | Esr_core.Epsilon.Unlimited -> None
    | Esr_core.Epsilon.Limit n -> Some n
  in
  let trace = t.obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(now t)
      (Trace.Query_begin { q; site; n_keys = List.length keys; epsilon = eps });
  Intf.boxed_submit_query t.system ~site ~keys ~epsilon (fun outcome ->
      Metrics.incr t.queries_served;
      Metrics.observe t.query_charged (float_of_int outcome.Intf.charged);
      if Trace.on trace then
        Trace.emit trace ~time:outcome.Intf.served_at
          (Trace.Query_served
             {
               q;
               site;
               charged = outcome.Intf.charged;
               epsilon = eps;
               consistent_path = outcome.Intf.consistent_path;
               latency = outcome.Intf.served_at -. outcome.Intf.started_at;
             });
      k outcome)

let store t ~site = Intf.boxed_store t.system ~site
let history t ~site = Intf.boxed_history t.system ~site

let stats t = Metrics.snapshot t.obs.Obs.metrics

let stats_alist t = Metrics.alist ~group:"method" t.obs.Obs.metrics
