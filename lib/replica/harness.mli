(** Replicated-system harness.

    Wires an engine, a network, and one replica-control method together,
    and knows how to drive the whole system to quiescence — the state in
    which the paper's convergence guarantee applies ("replicas converge
    to the same 1SR value when the update MSets queued at individual
    sites are processed").

    The harness owns the run's observability bundle ({!Esr_obs.Obs.t}):
    every layer below it (engine, network, stable queues, the method)
    registers its counters in the bundle's metrics registry, and — when
    tracing is enabled — records events into its trace sink keyed on
    virtual time.  Update and query lifecycles are traced here, wrapping
    the submitted callbacks. *)

type t

val create :
  ?config:Intf.config ->
  ?net_config:Esr_sim.Net.config ->
  ?seed:int ->
  ?store_hint:int ->
  ?engine_hint:int ->
  ?obs:Esr_obs.Obs.t ->
  sites:int ->
  method_name:string ->
  unit ->
  t
(** Build a fresh simulated system.  [seed] (default 42) makes the whole
    run deterministic.  [method_name] is resolved by {!Registry.make}.
    [store_hint] (expected keyspace size) and [engine_hint] (expected
    event volume) pre-size the per-site stores and the event heap.
    [obs] supplies the observability bundle; by default a fresh one is
    created with tracing set from {!Esr_obs.Obs.set_default_tracing}
    (normally off, which makes instrumentation zero-cost). *)

val engine : t -> Esr_sim.Engine.t
val net : t -> Esr_sim.Net.t
val env : t -> Intf.env
val system : t -> Intf.boxed
val obs : t -> Esr_obs.Obs.t
val now : t -> float

val run_for : t -> float -> unit
(** Advance virtual time by the given number of milliseconds. *)

val settle : ?max_rounds:int -> t -> bool
(** Drain everything: alternate running the event loop and flushing the
    method until both the transport and the protocol are quiescent.
    [false] when [max_rounds] (default 10) flush rounds were not enough —
    e.g. a partition is still in force. *)

val converged : t -> bool
(** All replicas hold equal state. *)

val check_convergence : t -> (unit, string) result
(** [settle] then [converged], with a diagnostic on failure. *)

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val store : t -> site:int -> Esr_store.Store.t
val history : t -> site:int -> Esr_core.Hist.t

val stats : t -> Esr_obs.Metrics.entry list
(** Typed snapshot of the whole metrics registry: method counters
    (group ["method"]), network fates (["net"]), stable-queue transport
    (["squeue"]), engine totals (["engine"]) and harness lifecycle
    counters/histograms (["harness"]). *)

val stats_alist : t -> (string * float) list
(** The method's own counters as the historical [(name, value)] list —
    exactly what [Intf.S.stats] returns for the running method. *)
