(** Replicated-system harness.

    Wires an engine, a network, and one replica-control method together,
    and knows how to drive the whole system to quiescence — the state in
    which the paper's convergence guarantee applies ("replicas converge
    to the same 1SR value when the update MSets queued at individual
    sites are processed").

    The harness owns the run's observability bundle ({!Esr_obs.Obs.t}):
    every layer below it (engine, network, stable queues, the method)
    registers its counters in the bundle's metrics registry, and — when
    tracing is enabled — records events into its trace sink keyed on
    virtual time.  Update and query lifecycles are traced here, wrapping
    the submitted callbacks. *)

type t

val create :
  ?config:Intf.config ->
  ?net_config:Esr_sim.Net.config ->
  ?seed:int ->
  ?store_hint:int ->
  ?engine_hint:int ->
  ?sharding:Esr_store.Sharding.t ->
  ?obs:Esr_obs.Obs.t ->
  ?checkpoint:Checkpoint.config ->
  sites:int ->
  method_name:string ->
  unit ->
  t
(** Build a fresh simulated system.  [seed] (default 42) makes the whole
    run deterministic.  [method_name] is resolved by {!Registry.make}.
    [store_hint] (expected keyspace size) and [engine_hint] (expected
    event volume) pre-size the per-site stores and the event heap.
    [sharding] selects a partial-replication map (default: full
    replication, {!Esr_store.Sharding.full}); it must be sized for
    [sites].  Under partial replication the divergence probes and the
    convergence oracle compare a site only on the keys it replicates.
    [obs] supplies the observability bundle; by default a fresh one is
    created with tracing set from {!Esr_obs.Obs.set_default_tracing}
    (normally off, which makes instrumentation zero-cost).
    [checkpoint] enables asynchronous checkpointing (DESIGN.md §12): cuts
    are taken at the configured cadence once {!arm_checkpoints} arms
    them, per-site [ckpt/] gauges are registered, and crash recovery
    replays checkpoint + tail.  Omitted (the default), no checkpoint
    state exists and behaviour is byte-identical to earlier builds. *)

val engine : t -> Esr_sim.Engine.t
val net : t -> Esr_sim.Net.t
val env : t -> Intf.env
val system : t -> Intf.boxed
val obs : t -> Esr_obs.Obs.t
val now : t -> float

val run_for : t -> float -> unit
(** Advance virtual time by the given number of milliseconds. *)

val sample_series : t -> unit
(** Append one row to the bundle's {!Esr_obs.Series} at the current
    virtual time (no-op when the series is disabled). *)

val attach_audit : t -> Esr_obs.Audit.t -> unit
(** Tap the auditor into this run's trace sink and bind its [audit/]
    instruments to the registry.  Call after {!create} and before
    {!arm_series} (so the audit columns freeze into the series); the
    trace must be enabled.  Never called on unaudited runs, keeping
    their output byte-identical. *)

val arm_series : t -> until:float -> unit
(** Pre-schedule sampling ticks at the series cadence from now through
    [until].  Pre-scheduling keeps [Engine.run]'s drain semantics: the
    sampler generates no work past the horizon.  {!settle_result}
    additionally samples once per drain round, which captures the
    divergence decay after the workload ends.  No-op when disabled. *)

val arm_checkpoints : t -> until:float -> unit
(** Pre-schedule checkpoint cuts at every multiple of the checkpoint
    interval from now through [until] — one consistent system-wide cut
    per tick, every site cut at the same virtual instant (each via
    {!Intf.S.checkpoint}).  Mirrors {!arm_series}: pre-scheduling keeps
    [Engine.run]'s drain semantics.  No-op when the harness was created
    without [?checkpoint]. *)

val inject_faults : t -> Esr_fault.Schedule.t -> unit
(** Arm a fault schedule on the engine before (or while) driving the
    workload: crashes wipe the method's volatile state at the target
    site ({!Intf.S.on_crash}), recoveries replay the durable log and
    catch up ({!Intf.S.on_recover}); partitions and heals act on the
    network alone.  Raises [Invalid_argument] if the schedule references
    a site outside this system, or — when the run checkpoints — if a
    crash lands on the exact virtual time of a checkpoint cut
    ({!Esr_fault.Schedule.validate}). *)

(** Why {!settle_result} could not drain the system. *)
type stuck_reason =
  | Sites_down of int list  (** crashed sites pin their stable-queue backlog *)
  | Partitioned of int list list  (** standing partition groups *)
  | Protocol_stalled of { rounds : int }
      (** network whole, yet the method is still not quiescent *)

type settle_outcome = Drained | Stuck of stuck_reason

val stuck_reason_to_string : stuck_reason -> string

val settle_result : ?max_rounds:int -> t -> settle_outcome
(** Drain everything: alternate running the event loop and flushing the
    method until both the transport and the protocol are quiescent.
    [Stuck reason] when [max_rounds] (default 10) flush rounds were not
    enough, saying why — a crashed site, a standing partition, or a stall
    in the protocol itself. *)

val settle : ?max_rounds:int -> t -> bool
(** Bool-compat wrapper over {!settle_result}: [true] iff [Drained]. *)

val run_with_faults :
  ?max_rounds:int ->
  t ->
  schedule:Esr_fault.Schedule.t ->
  workload:(t -> unit) ->
  settle_outcome
(** [inject_faults], run [workload t] (which typically submits updates
    and queries on a virtual-time clock), advance the engine past the
    schedule's {!Esr_fault.Schedule.clear_time}, then {!settle_result}.
    For an all-clear schedule a correct method must yield [Drained] with
    {!converged} [= true] afterwards. *)

val converged : t -> bool
(** All replicas hold equal state. *)

val check_convergence : t -> (unit, string) result
(** [settle_result] then [converged]; the error string carries the
    {!stuck_reason} when the system cannot drain. *)

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val store : t -> site:int -> Esr_store.Store.t
val history : t -> site:int -> Esr_core.Hist.t

val stats : t -> Esr_obs.Metrics.entry list
(** Typed snapshot of the whole metrics registry: method counters
    (group ["method"]), network fates (["net"]), stable-queue transport
    (["squeue"]), engine totals (["engine"]) and harness lifecycle
    counters/histograms (["harness"]). *)

val stats_alist : t -> (string * float) list
(** The method's own counters as the historical [(name, value)] list —
    exactly what [Intf.S.stats] returns for the running method. *)
