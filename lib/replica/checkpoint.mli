(** Asynchronous per-site checkpoints with log/journal truncation
    (DESIGN.md §12).

    At a configured virtual-time cadence, each site snapshots its
    materialized image at a consistent cut — without pausing traffic —
    and truncates the durable Hist log behind it; the method's checkpoint
    hook additionally reclaims stable-queue dedup records behind the
    per-stream delivery watermark and (COMPE) decided undo-journal
    entries.  Crash recovery then replays checkpoint + tail instead of
    the full log.

    The cut is consistent because the simulation is single-threaded in
    virtual time and every method maintains
    [site.store = Logmerge.apply site.hist] between engine events; MSets
    in flight at the cut are retained in the receipt/sender journals,
    which are only truncated behind consumed positions.  Snapshots are
    private copies and recovery re-copies them before folding the tail,
    so repeated crashes (including during a checkpoint) recover from the
    same pristine image. *)

type config = {
  interval : float;  (** virtual ms between cuts; must be positive *)
  retain : int;  (** snapshots kept per site (>= 1); recovery uses the newest *)
}

val default_retain : int
(** 2: the newest snapshot plus one predecessor. *)

type t

val create : ?obs:Esr_obs.Obs.t -> sites:int -> config -> t
(** Fresh checkpoint state for [sites] sites.  [obs] supplies the trace
    sink for [Checkpoint_cut] events (default: a disabled bundle).
    Raises [Invalid_argument] on a non-positive interval or [retain < 1]. *)

val config : t -> config
val interval : t -> float

val cut :
  t ->
  engine:Esr_sim.Engine.t ->
  site:int ->
  ?mv:Esr_store.Mvstore.t ->
  store:Esr_store.Store.t ->
  hist:Esr_core.Hist.t ->
  reclaimed:int ->
  unit ->
  Esr_core.Hist.t
(** Take a cut for [site]: copy [store] (and [mv] when the method keeps a
    version store), absorb all of [hist] into the snapshot, account
    [reclaimed] journal records collected by the caller, emit a
    [Checkpoint_cut] trace event, and return the truncated log — the new
    (empty) tail the caller must install as the site's Hist.  Call only
    from an engine-event boundary with the site up, so the image/log
    invariant holds. *)

val base : t -> site:int -> Esr_store.Store.t option
(** A {e fresh copy} of the newest snapshot image, ready to fold the log
    tail onto — [None] before the first cut (recovery falls back to
    full-log replay from scratch). *)

val base_mv : t -> site:int -> Esr_store.Mvstore.t option
(** Companion multiversion image, for RITU-multiversion recovery. *)

val note_tail_replay : t -> site:int -> len:int -> unit
(** Record that a recovery replayed a tail of [len] log entries (feeds
    the [ckpt/last_tail] and [ckpt/max_tail] gauges and the bounded-
    replay acceptance check of E18). *)

(** {2 Per-site stats — pure reads, sampled by the [ckpt/] gauges} *)

val cuts : t -> site:int -> int
(** Checkpoints taken. *)

val truncated_log : t -> site:int -> int
(** Cumulative Hist entries absorbed into snapshots. *)

val truncated_journal : t -> site:int -> int
(** Cumulative journal records reclaimed at this site's cuts. *)

val tail_replays : t -> site:int -> int

val last_tail : t -> site:int -> int
(** Length of the most recent tail replay. *)

val max_tail : t -> site:int -> int

val retained : t -> site:int -> int
(** Snapshots currently held (<= [retain]). *)

val baseline : t -> site:int -> int
(** Cumulative log entries absorbed through the {e newest} snapshot: the
    newest snapshot's log position in entries since the start of the
    run.  0 before the first cut. *)
