(** COMPE — compensation-based backward replica control (paper §4).

    Update MSets are applied *optimistically*, before the global update
    commits.  A later global abort triggers compensation.  Following
    §4.2's framing, MSets execute in a global order (ORDUP-style
    sequencer tickets), and the compensation strategy depends on
    operation semantics:

    - {b fast path}: if every operation of the aborted MSet has a logical
      inverse and commutes with everything applied after it, the inverses
      are applied directly ("the system can simply apply the compensation
      without any overhead");
    - {b full rollback}: otherwise the tail of the log is undone
      physically (recorded before-images, reverse order) back to the
      aborted MSet, the MSet is discarded, and the rest of the log is
      replayed — the Time Warp undo/redo of §4.1.

    Queries are charged through per-object lock-counters covering the
    *undecided window* of each update (provisional apply → global
    decision).  Compensations that land after a query finished cannot be
    charged to it any more — the paper's "much harder for the query ETs
    that have just finished" problem; such queries are counted as
    {e tainted} and reported by experiment E5.  Compensations hitting a
    query still in flight force-charge its counter, possibly beyond its
    epsilon (also reported). *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Sequencer = Esr_clock.Sequencer
module Lock_counter = Esr_cc.Lock_counter
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Prng = Esr_util.Prng
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

type mset = {
  et : Et.id;
  ticket : int;
  ops : (string * Op.t) list;
  origin : int;
  saga : int option;  (* saga id when this MSet is one saga step *)
}

type msg =
  | Provisional of mset
  | Decide of { et : Et.id; commit : bool }
  | Revoke of { et : Et.id }
      (** compensate an already-committed saga step (saga backward recovery) *)
  | Saga_end of { sid : int }
      (** the saga completed: release its deferred lock-counters *)

type entry = {
  e_et : Et.id;
  e_ops : (string * Op.t) list;
  e_saga : int option;
  mutable e_undos : Store.undo list;  (* reverse application order *)
  mutable e_decided : bool;
}

type active_query = {
  aq_keys : string list;
  mutable aq_observed : Et.id list;
      (* undecided update ETs whose effects were included in the values
         this query has read so far *)
  aq_eps : Epsilon.counter;
  mutable aq_forced : int;
  mutable aq_killed : bool;  (* the site crashed mid-query: finish degraded *)
}

type done_query = { dq_observed : Et.id list; mutable dq_tainted : bool }

(* A parked continuation: [resume] when the counters drain, [fail] when
   the site crashes and the volatile wait context is lost. *)
type parked = { resume : unit -> unit; fail : unit -> unit }

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] *)
  mutable hist : Hist.t;  (* the durable log *)
  mutable last_exec : int;
  buffer : (int, mset) Hashtbl.t;
  mutable log : entry list;
      (* newest first.  This is COMPE's undo/redo journal (the Time Warp
         log of §4.1): durable, like [hist] — the before-image chains ARE
         the recovery log. *)
  counters : Lock_counter.t;
  early : (Et.id, bool) Hashtbl.t;  (* decision arrived before execution *)
  mutable parked_queries : parked list;
  mutable active : active_query list;
  mutable completed : done_query list;
  saga_held : (int, string list ref) Hashtbl.t;
      (* per saga: keys whose counter decrement is deferred to saga end
         (paper 4.2: "maintain the lock-counter value throughout a saga") *)
  pending_revokes : (Et.id, unit) Hashtbl.t;
      (* revokes that overtook the step's own commit decision *)
  ended_sagas : (int, unit) Hashtbl.t;
      (* Saga_end may overtake a step's commit decision: late steps of an
         ended saga release their counters immediately *)
  mutable down : bool;
}

(* A globally undecided update ET, indexed so a crash of its origin (the
   coordinator) can force a presumed-abort decision before the timer. *)
type decision = {
  d_origin : int;
  mutable d_done : bool;
  d_apply : commit:bool -> unit;
}

type t = {
  env : Intf.env;
  full : bool;  (* replication factor = sites: historical broadcast path *)
  dests : Sharding.Dests.t;  (* reusable routing cursor (launch path) *)
  sequencer : Sequencer.t;
  site_issued : int array;
      (* per-site dense ticket streams under partial replication — the
         same interest-ordered sequencer as ordup.ml *)
  prng : Prng.t;
  sites : site array;
  fabric : msg Squeue.t;
  outcomes : (Et.id, Intf.update_outcome -> unit) Hashtbl.t;
  wal : (Et.id, mset) Recovery.Wal.t;  (* durable MSet receipt journal *)
  decisions : (Et.id, decision) Hashtbl.t;
  mutable deferred_local : (int * msg) list;
      (* a site's own coordinator records (decisions, revokes) landing
         while it is down; replayed — in order — at recovery.  Newest
         first. *)
  mutable undecided : int;  (* globally undecided update ETs *)
  mutable next_saga : int;
  mutable sagas_active : int;
  mutable n_sagas : int;
  mutable n_saga_aborts : int;
  mutable n_revokes : int;
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_aborts : int;
  mutable n_fast : int;
  mutable n_full : int;
  mutable n_skips : int;  (* aborted before execution *)
  mutable n_replayed_ops : int;
  mutable rollback_depth_total : int;
  mutable n_tainted : int;
  mutable n_forced : int;
  mutable n_query_waits : int;
}

let meta =
  {
    Intf.name = "COMPE";
    family = Intf.Backward;
    restriction = "operation value";
    async_propagation = "Query & Update";
    sorting_time = "N/A";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let wake_queries site =
  let waiting = List.rev site.parked_queries in
  site.parked_queries <- [];
  List.iter (fun p -> p.resume ()) waiting

(* --- compensation machinery --- *)

let entry_keys entry = List.map fst entry.e_ops

let apply_entry_ops site entry =
  let undos =
    List.fold_left
      (fun acc (key, op) ->
        match Store.apply site.store key op with
        | Ok undo -> undo :: acc
        | Error _ -> invalid_arg "COMPE: op failed to apply")
      [] entry.e_ops
  in
  entry.e_undos <- undos

let fast_path_possible aborted later =
  List.for_all (fun (_, op) -> Op.inverse op <> None) aborted.e_ops
  && List.for_all
       (fun entry ->
         List.for_all
           (fun (_, later_op) ->
             List.for_all
               (fun (_, aborted_op) -> Op.commutes later_op aborted_op)
               aborted.e_ops)
           entry.e_ops)
       later

let trace_compensation t site et kind =
  let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(Engine.now t.env.engine)
      (Trace.Compensation_fired { et; site = site.id; kind })

let compensate_fast t site aborted =
  t.n_fast <- t.n_fast + 1;
  trace_compensation t site aborted.e_et `Fast;
  let comp_et = t.env.Intf.next_et () in
  let inverse_ops =
    List.rev_map
      (fun (key, op) ->
        match Op.inverse op with
        | Some inv -> (key, inv)
        | None -> assert false)
      aborted.e_ops
  in
  (* The compensation is itself a (pre-decided) log entry: every store
     mutation must live in the log, or a later full rollback's
     before-images would silently erase the compensation's effect when it
     rewinds and replays the tail. *)
  let entry =
    {
      e_et = comp_et;
      e_ops = inverse_ops;
      e_saga = None;
      e_undos = [];
      e_decided = true;
    }
  in
  apply_entry_ops site entry;
  site.log <- entry :: site.log;
  List.iter (fun (key, inv) -> log_action site ~et:comp_et ~key inv) inverse_ops

let compensate_full t site aborted later =
  t.n_full <- t.n_full + 1;
  trace_compensation t site aborted.e_et `Full;
  t.rollback_depth_total <- t.rollback_depth_total + List.length later;
  (* Undo the log tail physically, newest first, then the aborted entry. *)
  List.iter
    (fun entry -> List.iter (Store.rollback site.store) entry.e_undos)
    later;
  List.iter (Store.rollback site.store) aborted.e_undos;
  (* Replay the tail in original order, refreshing undo images. *)
  List.iter
    (fun entry ->
      apply_entry_ops site entry;
      t.n_replayed_ops <- t.n_replayed_ops + List.length entry.e_ops)
    (List.rev later);
  (* Log the repair as a compensation ET writing the restored values. *)
  let comp_et = t.env.Intf.next_et () in
  List.iter
    (fun key -> log_action site ~et:comp_et ~key (Op.Write (Store.get site.store key)))
    (List.sort_uniq String.compare (entry_keys aborted))

(* The compensation of [et] contaminates exactly the queries that read a
   value including [et]'s provisional effect.  Queries still in flight are
   force-charged (possibly beyond their epsilon — the §4.2 hazard); queries
   that already finished can only be counted as tainted. *)
let taint_and_force t site et =
  List.iter
    (fun dq ->
      if (not dq.dq_tainted) && List.mem et dq.dq_observed then begin
        dq.dq_tainted <- true;
        t.n_tainted <- t.n_tainted + 1
      end)
    site.completed;
  List.iter
    (fun aq ->
      if List.mem et aq.aq_observed then begin
        Epsilon.charge_forced aq.aq_eps 1;
        aq.aq_forced <- aq.aq_forced + 1;
        t.n_forced <- t.n_forced + 1
      end)
    site.active

(* Undecided update ETs whose effect on [key] is included in its current
   value — what an epsilon charge for reading [key] actually buys. *)
let undecided_on site key =
  List.filter_map
    (fun entry ->
      if (not entry.e_decided) && List.exists (fun (k, _) -> String.equal k key) entry.e_ops
      then Some entry.e_et
      else None)
    site.log

let rec process_decision t site et ~commit =
  (* Find the executed entry; absent means the decision overtook the
     provisional — stash it for execution time. *)
  let rec split acc = function
    | [] -> None
    | entry :: rest when entry.e_et = et -> Some (List.rev acc, entry, rest)
    | entry :: rest -> split (entry :: acc) rest
  in
  match split [] site.log with
  | None -> Hashtbl.replace site.early et commit
  | Some (later, entry, older) ->
      if entry.e_decided then ()
      else begin
        entry.e_decided <- true;
        (match (commit, entry.e_saga) with
        | true, Some sid when not (Hashtbl.mem site.ended_sagas sid) ->
            (* Saga step: the paper's conservative accounting keeps the
               lock-counters up until the whole saga ends. *)
            let held =
              match Hashtbl.find_opt site.saga_held sid with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.replace site.saga_held sid r;
                  r
            in
            held := entry_keys entry @ !held
        | true, Some _ | true, None | false, _ ->
            List.iter (fun key -> ignore (Lock_counter.decr site.counters key))
              (entry_keys entry));
        if not commit then begin
          if fast_path_possible entry later then
            (* The aborted entry stays in the log and the inverse entry
               joins it: the log mirrors the store's mutation history
               (net effect zero), which keeps every before-image chain
               used by later full rollbacks accurate. *)
            compensate_fast t site entry
          else begin
            (* Physical removal: the entry's effect is rewound out of the
               store, so it leaves the log too. *)
            compensate_full t site entry later;
            site.log <- later @ older
          end;
          taint_and_force t site et
        end;
        wake_queries site;
        if Hashtbl.mem site.pending_revokes et then begin
          Hashtbl.remove site.pending_revokes et;
          revoke t site et
        end
      end

(* Compensate an already-committed saga step and release its deferred
   counters.  A revoke that arrives before the step's own commit decision
   is stashed and replayed once the decision lands. *)
and revoke t site et =
  let rec split acc = function
    | [] -> None
    | entry :: rest when entry.e_et = et -> Some (List.rev acc, entry, rest)
    | entry :: rest -> split (entry :: acc) rest
  in
  match split [] site.log with
  | None -> Hashtbl.replace site.pending_revokes et ()
  | Some (later, entry, older) ->
      if not entry.e_decided then Hashtbl.replace site.pending_revokes et ()
      else begin
        t.n_revokes <- t.n_revokes + 1;
        trace_compensation t site et `Revoke;
        if fast_path_possible entry later then compensate_fast t site entry
        else begin
          compensate_full t site entry later;
          site.log <- later @ older
        end;
        (* Release this step's deferred counters. *)
        (match entry.e_saga with
        | Some sid -> (
            match Hashtbl.find_opt site.saga_held sid with
            | Some held ->
                List.iter
                  (fun key ->
                    if List.mem key !held then begin
                      held := remove_first key !held;
                      ignore (Lock_counter.decr site.counters key)
                    end)
                  (entry_keys entry)
            | None -> ())
        | None -> ());
        taint_and_force t site et;
        wake_queries site
      end

and remove_first key = function
  | [] -> []
  | head :: rest -> if String.equal head key then rest else head :: remove_first key rest

let execute_inner t site mset =
  Recovery.Wal.consume t.wal ~site:site.id ~key:mset.et;
  match Hashtbl.find_opt site.early mset.et with
  | Some false ->
      (* Aborted before it ever executed here: skip entirely. *)
      Hashtbl.remove site.early mset.et;
      t.n_skips <- t.n_skips + 1
  | (Some true | None) as early ->
      (* Union routing delivers the whole MSet to every interested site;
         each site executes (and counter-covers, and may later compensate)
         only the shards it replicates. *)
      let ops =
        if t.full then mset.ops
        else
          List.filter
            (fun (key, _) ->
              Sharding.replicates_id t.env.Intf.sharding ~site:site.id
                ~id:(Keyspace.find t.env.Intf.keyspace key))
            mset.ops
      in
      let entry =
        {
          e_et = mset.et;
          e_ops = ops;
          e_saga = mset.saga;
          e_undos = [];
          e_decided = false;
        }
      in
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_applied
             { et = mset.et; site = site.id; n_ops = List.length ops; order = None });
      apply_entry_ops site entry;
      List.iter
        (fun (key, op) ->
          ignore (Lock_counter.incr site.counters key);
          log_action site ~et:mset.et ~key op)
        ops;
      site.log <- entry :: site.log;
      (match early with
      | Some true ->
          Hashtbl.remove site.early mset.et;
          process_decision t site mset.et ~commit:true
      | Some false | None -> ())

let execute t site mset =
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    execute_inner t site mset;
    Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
  end
  else execute_inner t site mset

let rec drain t site =
  match Hashtbl.find_opt site.buffer (site.last_exec + 1) with
  | None -> ()
  | Some mset ->
      Hashtbl.remove site.buffer (site.last_exec + 1);
      site.last_exec <- site.last_exec + 1;
      execute t site mset;
      drain t site

let saga_end t site sid =
  Hashtbl.replace site.ended_sagas sid ();
  (match Hashtbl.find_opt site.saga_held sid with
  | Some held ->
      List.iter (fun key -> ignore (Lock_counter.decr site.counters key)) !held;
      Hashtbl.remove site.saga_held sid
  | None -> ());
  wake_queries site;
  ignore t

let receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Provisional mset ->
      (* Journal the receipt before it enters the volatile order buffer
         (see ordup.ml: the transport has acked it, so the journal holds
         the only durable copy until execution logs it). *)
      Recovery.Wal.append t.wal ~site:site_id ~key:mset.et mset;
      Hashtbl.replace site.buffer mset.ticket mset;
      drain t site
  | Decide { et; commit } -> process_decision t site et ~commit
  | Revoke { et } -> revoke t site et
  | Saga_end { sid } -> saga_end t site sid

(* Local (origin-side) copies bypass the network; while the origin is
   down they are stashed as its durable coordinator records and replayed
   at recovery. *)
let local_receive t ~site msg =
  if t.sites.(site).down then t.deferred_local <- (site, msg) :: t.deferred_local
  else receive t ~site msg

(* Coordinator-record fan-out (Decide / Revoke): every site under full
   replication, only the launch-time participant set otherwise.  The
   origin's copy bypasses the network in both cases. *)
let fan_coord t ~origin parts msg =
  match parts with
  | None ->
      Squeue.broadcast t.fabric ~src:origin msg;
      local_receive t ~site:origin msg
  | Some arr ->
      let has_origin = ref false in
      Array.iter
        (fun dst ->
          if dst = origin then has_origin := true
          else Squeue.send t.fabric ~src:origin ~dst msg)
        arr;
      if !has_origin then local_receive t ~site:origin msg

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         sequencer = Sequencer.create ();
         site_issued = Array.make env.Intf.sites 0;
         prng = Prng.split env.Intf.prng;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 last_exec = 0;
                 buffer = Hashtbl.create 32;
                 log = [];
                 counters = Lock_counter.create ~hint:env.Intf.store_hint ();
                 early = Hashtbl.create 8;
                 parked_queries = [];
                 active = [];
                 completed = [];
                 saga_held = Hashtbl.create 8;
                 pending_revokes = Hashtbl.create 8;
                 ended_sagas = Hashtbl.create 8;
                 down = false;
               });
         fabric;
         outcomes = Hashtbl.create 32;
         wal =
           Recovery.Wal.create ~prof:env.Intf.obs.Esr_obs.Obs.prof
             ~hint:env.Intf.store_hint ~sites:env.Intf.sites ();
         decisions = Hashtbl.create 32;
         deferred_local = [];
         undecided = 0;
         next_saga = 0;
         sagas_active = 0;
         n_sagas = 0;
         n_saga_aborts = 0;
         n_revokes = 0;
         n_updates = 0;
         n_queries = 0;
         n_aborts = 0;
         n_fast = 0;
         n_full = 0;
         n_skips = 0;
         n_replayed_ops = 0;
         rollback_depth_total = 0;
         n_tainted = 0;
         n_forced = 0;
         n_query_waits = 0;
       })
  in
  Lazy.force t

let intent_to_op = function
  | Intf.Set (k, v) -> (k, Op.Write v)
  | Intf.Add (k, d) -> (k, Op.Incr d)
  | Intf.Mul (k, f) -> (k, Op.Mult f)

(* Launch one update ET (or saga step): apply optimistically everywhere,
   then simulate the global commit/abort decision after a coordination
   delay ("the system may start running MSets before the global update is
   committed", Sec 4.1). *)
let launch_step t ~origin ~saga ops ~on_decision =
  let et = t.env.Intf.next_et () in
  let parts =
    if t.full then None
    else begin
      (* Participants: the union of the touched shards' replica sets
         (keys interned here so every later lookup agrees on the shard). *)
      let c = t.dests in
      Sharding.Dests.reset c;
      List.iter
        (fun (key, _) ->
          Sharding.Dests.add_id c (Keyspace.intern t.env.Intf.keyspace key))
        ops;
      let arr = Array.make (Sharding.Dests.count c) 0 in
      let i = ref 0 in
      Sharding.Dests.iter c (fun s ->
          arr.(!i) <- s;
          incr i);
      Some arr
    end
  in
  let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(Engine.now t.env.engine)
      (Trace.Mset_enqueued
         {
           et;
           origin;
           n_ops = List.length ops;
           keys = List.map fst ops;
         });
  t.undecided <- t.undecided + 1;
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  (match parts with
  | None ->
      let ticket = Sequencer.next t.sequencer in
      let mset = { et; ticket; ops; origin; saga } in
      if Prof.on prof then begin
        let t0 = Prof.start prof in
        let a0 = Prof.alloc0 prof in
        Squeue.broadcast t.fabric ~src:origin (Provisional mset);
        Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
      end
      else Squeue.broadcast t.fabric ~src:origin (Provisional mset);
      receive t ~site:origin (Provisional mset)
  | Some arr ->
      (* Per-site dense tickets, assigned in one atomic step (ordup.ml). *)
      let local = ref None in
      let propagate () =
        Array.iter
          (fun dst ->
            t.site_issued.(dst) <- t.site_issued.(dst) + 1;
            let m = { et; ticket = t.site_issued.(dst); ops; origin; saga } in
            if dst = origin then local := Some m
            else Squeue.send t.fabric ~src:origin ~dst (Provisional m))
          arr
      in
      if Prof.on prof then begin
        let t0 = Prof.start prof in
        let a0 = Prof.alloc0 prof in
        propagate ();
        Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
      end
      else propagate ();
      (match !local with
      | Some m -> receive t ~site:origin (Provisional m)
      | None -> ()));
  let config = t.env.Intf.config in
  let d_apply ~commit =
    if not commit then t.n_aborts <- t.n_aborts + 1;
    t.undecided <- t.undecided - 1;
    (* If the origin is down, the stable queue holds the fan-out and the
       local copy is stashed as a coordinator record for replay. *)
    fan_coord t ~origin parts (Decide { et; commit });
    on_decision ~et ~commit
  in
  let d = { d_origin = origin; d_done = false; d_apply } in
  Hashtbl.replace t.decisions et d;
  ignore
    (Engine.schedule t.env.engine ~delay:config.Intf.compe_decision_delay
       (fun () ->
         if not d.d_done then begin
           d.d_done <- true;
           Hashtbl.remove t.decisions et;
           let commit =
             not (Prng.bernoulli t.prng config.Intf.compe_abort_probability)
           in
           d_apply ~commit
         end));
  (et, parts)

let submit_update t ~origin intents k =
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else if intents = [] then k (Intf.Rejected "empty update ET")
  else begin
    t.n_updates <- t.n_updates + 1;
    let ops = List.map intent_to_op intents in
    (* Every op must be compensatable: a logical inverse or a journaled
       before-image (all our updates qualify; reads need none). *)
    ignore
      (launch_step t ~origin ~saga:None ops ~on_decision:(fun ~et:_ ~commit ->
           if commit then
             k (Intf.Committed { committed_at = Engine.now t.env.engine })
           else k (Intf.Rejected "global update aborted")))
  end

(* A saga (Garcia-Molina & Salem, cited by Sec 4.2): a sequence of update
   ETs executed one after another.  Each step commits optimistically, but
   its lock-counters stay up until the entire saga ends, giving queries a
   conservative upper bound on the saga's total potential inconsistency.
   If a step's global decision is an abort, every previously committed
   step is revoked (compensated) in reverse order and the saga fails. *)
let submit_saga t ~origin steps k =
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else if steps = [] || List.exists (fun intents -> intents = []) steps then
    k (Intf.Rejected "saga with an empty step")
  else begin
    t.n_sagas <- t.n_sagas + 1;
    t.sagas_active <- t.sagas_active + 1;
    t.next_saga <- t.next_saga + 1;
    let sid = t.next_saga in
    let finish outcome =
      t.sagas_active <- t.sagas_active - 1;
      k outcome
    in
    let rec run_step step_index committed = function
      | [] ->
          (* All steps committed: release the deferred counters at every
             site that executed a step. *)
          (if t.full then begin
             Squeue.broadcast t.fabric ~src:origin (Saga_end { sid });
             local_receive t ~site:origin (Saga_end { sid })
           end
           else begin
             let seen = Array.make t.env.Intf.sites false in
             List.iter
               (fun (_, parts) ->
                 match parts with
                 | Some arr -> Array.iter (fun s -> seen.(s) <- true) arr
                 | None -> ())
               committed;
             for dst = 0 to t.env.Intf.sites - 1 do
               if seen.(dst) && dst <> origin then
                 Squeue.send t.fabric ~src:origin ~dst (Saga_end { sid })
             done;
             if seen.(origin) then local_receive t ~site:origin (Saga_end { sid })
           end);
          finish (Intf.Committed { committed_at = Engine.now t.env.engine })
      | intents :: rest ->
          t.n_updates <- t.n_updates + 1;
          let ops = List.map intent_to_op intents in
          let step_parts = ref None in
          let _, parts =
            launch_step t ~origin ~saga:(Some sid) ops
              ~on_decision:(fun ~et ~commit ->
                if commit then
                  run_step (step_index + 1) ((et, !step_parts) :: committed) rest
                else begin
                  (* Backward recovery: compensate the committed prefix,
                     newest first, at exactly the sites that executed it. *)
                  t.n_saga_aborts <- t.n_saga_aborts + 1;
                  List.iter
                    (fun (prev_et, prev_parts) ->
                      fan_coord t ~origin prev_parts (Revoke { et = prev_et }))
                    committed;
                  finish
                    (Intf.Rejected
                       (Printf.sprintf "saga aborted at step %d" step_index))
                end)
          in
          step_parts := parts
    in
    run_step 1 [] steps
  end

let submit_query t ~site:site_id ~keys ~epsilon k =
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let et = t.env.Intf.next_et () in
  let eps = Epsilon.create epsilon in
  let started_at = Engine.now t.env.engine in
  let degraded ?(forced = 0) vs =
    k
      {
        Intf.values = vs;
        charged = Epsilon.value eps;
        forced;
        consistent_path = false;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  if site.down then
    (* Graceful failure: a crashed site answers from its last image,
       flagged degraded. *)
    degraded (List.map (fun key -> (key, Store.get site.store key)) keys)
  else begin
  let aq =
    {
      aq_keys = keys;
      aq_observed = [];
      aq_eps = eps;
      aq_forced = 0;
      aq_killed = false;
    }
  in
  site.active <- aq :: site.active;
  let waited = ref false in
  let values = ref [] in
  let fail_degraded vs =
    site.active <- List.filter (fun a -> a != aq) site.active;
    degraded ~forced:aq.aq_forced vs
  in
  (* Strict queries take an atomic snapshot once every key is free of
     undecided provisional updates (see the same reasoning in commu.ml). *)
  if epsilon = Epsilon.Limit 0 then begin
    let rec strict_attempt () =
      if List.for_all (fun key -> Lock_counter.count site.counters key = 0) keys
      then begin
        let snapshot =
          List.map
            (fun key ->
              log_action site ~et ~key Op.Read;
              (key, Store.get site.store key))
            keys
        in
        site.active <- List.filter (fun a -> a != aq) site.active;
        site.completed <-
          { dq_observed = aq.aq_observed; dq_tainted = false } :: site.completed;
        k
          {
            Intf.values = snapshot;
            charged = Epsilon.value eps;
            forced = aq.aq_forced;
            consistent_path = !waited;
            started_at;
            served_at = Engine.now t.env.engine;
          }
      end
      else begin
        waited := true;
        t.n_query_waits <- t.n_query_waits + 1;
        site.parked_queries <-
          {
            resume = strict_attempt;
            fail =
              (fun () ->
                fail_degraded
                  (List.map (fun key -> (key, Store.get site.store key)) keys));
          }
          :: site.parked_queries
      end
    in
    strict_attempt ()
  end
  else
  let rec step remaining =
    if aq.aq_killed then
      (* Crash mid-query: serve what was gathered, degraded.  The query
         skips the completed list — its outcome already reports the
         inconsistency. *)
      degraded ~forced:aq.aq_forced (List.rev !values)
    else
    match remaining with
    | [] ->
        site.active <- List.filter (fun a -> a != aq) site.active;
        site.completed <-
          { dq_observed = aq.aq_observed; dq_tainted = false } :: site.completed;
        k
          {
            Intf.values = List.rev !values;
            charged = Epsilon.value eps;
            forced = aq.aq_forced;
            consistent_path = !waited;
            started_at;
            served_at = Engine.now t.env.engine;
          }
    | key :: rest ->
        let pending = Lock_counter.count site.counters key in
        let admissible = pending = 0 || Epsilon.try_charge eps pending in
        if admissible then begin
          log_action site ~et ~key Op.Read;
          aq.aq_observed <-
            List.sort_uniq Int.compare (undecided_on site key @ aq.aq_observed);
          values := (key, Store.get site.store key) :: !values;
          if rest = [] then step []
          else
            ignore
              (Engine.schedule t.env.engine
                 ~delay:t.env.Intf.config.Intf.query_step_delay (fun () ->
                   step rest))
        end
        else begin
          waited := true;
          t.n_query_waits <- t.n_query_waits + 1;
          site.parked_queries <-
            {
              resume = (fun () -> step remaining);
              fail = (fun () -> fail_degraded (List.rev !values));
            }
            :: site.parked_queries
        end
  in
  step keys
  end

let flush _ = ()

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* Durable: [hist], the undo/redo journal ([site.log]), the
       lock-counters and decision-bookkeeping tables (early / revokes /
       saga holds) — all coordinator-log state.  Volatile: the order
       buffer (receipt-journaled in [t.wal]), wait contexts, and the
       store image. *)
    let buffered = Hashtbl.length site.buffer in
    Hashtbl.reset site.buffer;
    let parked = site.parked_queries in
    site.parked_queries <- [];
    List.iter (fun p -> p.fail ()) parked;
    let killed = List.length site.active in
    List.iter (fun aq -> aq.aq_killed <- true) site.active;
    site.active <- [];
    (* The crashed site was the coordinator of its undecided update ETs:
       presumed abort.  The abort records reach the remotes through the
       stable queue (now, if reachable) and this site at replay time. *)
    let orphaned =
      Hashtbl.fold
        (fun et d acc ->
          if d.d_origin = site_id && not d.d_done then (et, d) :: acc else acc)
        t.decisions []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (et, d) ->
        d.d_done <- true;
        Hashtbl.remove t.decisions et;
        d.d_apply ~commit:false)
      orphaned;
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered
      ~queries_failed:(List.length parked + killed)
      ~updates_rejected:(List.length orphaned) ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    (* Rebuild the store image from the durable log (every mutation —
       provisional applies, compensations, rollback repairs — is logged,
       so the replay lands exactly on the pre-crash image the journal's
       before-image chains describe)... *)
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist;
    (* ...re-ingest journaled-but-unexecuted provisional MSets... *)
    List.iter
      (fun mset -> Hashtbl.replace site.buffer mset.ticket mset)
      (Recovery.Wal.entries t.wal ~site:site_id);
    drain t site;
    (* ...and replay the site's own coordinator records that landed while
       it was down, in arrival order. *)
    let mine, others =
      List.partition (fun (s, _) -> s = site_id) (List.rev t.deferred_local)
    in
    t.deferred_local <- List.rev others;
    List.iter (fun (_, msg) -> receive t ~site:site_id msg) mine;
    wake_queries site
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let dedup = Squeue.gc_site t.fabric ~site:site_id in
        (* The Time Warp undo/redo journal is reclaimable behind the
           oldest undecided entry: a full rollback only ever rewinds from
           an undecided entry forward, so decided entries older than every
           undecided one can never be rewound again.  In the newest-first
           list that is the maximal all-decided suffix.  After pruning,
           the before-image chains describe mutations since the cut; the
           checkpoint image anchors them. *)
        let keep, prunable =
          let rec split = function
            | [] -> ([], [])
            | e :: rest ->
                let keep, prunable = split rest in
                if keep = [] && e.e_decided then ([], e :: prunable)
                else (e :: keep, prunable)
          in
          split site.log
        in
        site.log <- keep;
        let reclaimed = dedup + List.length prunable in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let quiescent t =
  t.undecided = 0 && t.sagas_active = 0 && t.deferred_local = []
  && Array.for_all
       (fun site ->
         Hashtbl.length site.buffer = 0
         && Hashtbl.length site.early = 0
         && Hashtbl.length site.pending_revokes = 0
         && site.parked_queries = []
         && Lock_counter.total_nonzero site.counters = 0)
       t.sites

let backlog t =
  Array.fold_left
    (fun acc site ->
      acc + Hashtbl.length site.buffer + Hashtbl.length site.early
      + Hashtbl.length site.pending_revokes
      + List.length site.parked_queries)
    (t.undecided + t.sagas_active + List.length t.deferred_local)
    t.sites

let store t ~site = t.sites.(site).store

(* Introspection for tests: the site's remaining log entries (oldest
   first).  Invariant: folding the entries' operations over an empty
   store reproduces the site's current store exactly — every store
   mutation is a log entry, which is what keeps the before-image chains
   used by full rollback accurate. *)
let log_entries t ~site =
  List.rev_map (fun e -> (e.e_et, e.e_decided, e.e_ops)) t.sites.(site).log
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  if t.full then
    let reference = t.sites.(0).store in
    Array.for_all (fun site -> Store.equal site.store reference) t.sites
  else
    Sharding.converged t.env.Intf.sharding ~keyspace:t.env.Intf.keyspace
      ~store:(fun site -> t.sites.(site).store)

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("aborts", float_of_int t.n_aborts);
    ("fast_compensations", float_of_int t.n_fast);
    ("full_rollbacks", float_of_int t.n_full);
    ("skipped_aborts", float_of_int t.n_skips);
    ("replayed_ops", float_of_int t.n_replayed_ops);
    ("rollback_depth_total", float_of_int t.rollback_depth_total);
    ("tainted_queries", float_of_int t.n_tainted);
    ("forced_charges", float_of_int t.n_forced);
    ("query_waits", float_of_int t.n_query_waits);
    ("sagas", float_of_int t.n_sagas);
    ("saga_aborts", float_of_int t.n_saga_aborts);
    ("revokes", float_of_int t.n_revokes);
  ]

let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    wal_entries = Recovery.Wal.size t.wal ~site:site_id;
    wal_appended = Recovery.Wal.appended t.wal ~site:site_id;
    wal_high_water = Recovery.Wal.high_water t.wal ~site:site_id;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
