(** TWOPC — synchronous 1SR baseline: read-one/write-all with two-phase
    commit and strict 2PL at every replica.

    This is the "traditional coherency control" the paper positions
    against (§2.4): every update ET is a distributed transaction that
    write-locks all copies and runs a commit agreement protocol, so its
    latency includes two WAN round trips plus lock waits, and a network
    partition blocks updates entirely (prepared participants keep their
    locks until the coordinator's decision gets through).  Queries lock
    and read the local copy only (read-one), so they stay available — but
    they block behind prepared writers on hot keys.

    Update ETs first serialize at a global lock service on site 0
    (primary-site 2PL in the Alsberg–Day style), acquiring their keys in
    sorted order — a total acquisition order in one lock space, so
    update/update deadlocks cannot form even across sites.  Participant
    W-locks can still collide with local query R-locks; those local
    deadlocks are detected, making the participant vote no (the update
    aborts and is reported [Rejected]) or the query retry.  A coordinator
    timeout (presumed abort) is the backstop for partitions.

    Coordinator failure is not modelled (sites only partition in the
    experiments); decisions are always eventually delivered by the stable
    queues, so participants never block forever once connectivity
    returns. *)

module Op = Esr_store.Op
module Store = Esr_store.Store
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Lock_table = Esr_cc.Lock_table
module Lock_mgr = Esr_cc.Lock_mgr
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

type msg =
  | Lock_req of { et : Et.id; keys : string list; coordinator : int }
      (** global-lock acquisition at the lock-service site (site 0) *)
  | Lock_granted of { et : Et.id }
  | Prepare of { et : Et.id; ops : (string * Op.t) list; coordinator : int }
  | Vote of { et : Et.id; yes : bool }
  | Decision of { et : Et.id; commit : bool; coordinator : int }
  | Done of { et : Et.id }

type coord_state = {
  c_et : Et.id;
  c_site : int;  (* the coordinator's site id *)
  c_ops : (string * Op.t) list;
  c_parts : int array option;
      (* participant sites (ascending) under partial replication: the
         union of the touched shards' replica sets; [None] = every site
         (full replication, the historical write-all) *)
  mutable c_votes : int;  (* votes still awaited *)
  mutable c_acks : int;  (* completion acks still awaited *)
  mutable c_aborted : bool;
  mutable c_decided : bool;
  c_notify : Intf.update_outcome -> unit;
}

(* A query waiting on local locks; its lock-queue continuation is
   volatile, so a crash fails it degraded and cancels the request. *)
type waiting_q = {
  mutable wq_et : Et.id;  (* the current attempt's lock-space txn id *)
  mutable wq_done : bool;
  wq_fail : unit -> unit;
}

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] *)
  mutable hist : Hist.t;  (* the durable log *)
  locks : Lock_mgr.t;
      (* prepared W-locks are durable (classic prepared-state-in-the-WAL);
         query R-requests are cancelled at crash, so the table never holds
         volatile state across an outage *)
  prepared : (Et.id, (string * Op.t) list) Hashtbl.t;  (* durable *)
  aborted : (Et.id, unit) Hashtbl.t;
      (* aborts decided while this site's prepare was still waiting for
         locks: when the late grant finally lands, release immediately *)
  mutable waiting : waiting_q list;
  mutable down : bool;
}

type t = {
  env : Intf.env;
  full : bool;  (* replication factor = sites: historical write-all path *)
  dests : Sharding.Dests.t;  (* reusable routing cursor (submit path) *)
  sites : site array;
  fabric : msg Squeue.t;
  coords : (Et.id, coord_state) Hashtbl.t;
  mutable deferred_local : (int * msg) list;
      (* a site's own 2PC records landing while it is down (same-site
         shortcut messages); replayed in order at recovery.  Newest
         first. *)
  global_locks : Lock_mgr.t;
      (* the lock service at site 0: serializes update ETs globally, in
         sorted key order, so update/update distributed deadlocks cannot
         form (primary-site 2PL à la Alsberg–Day) *)
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_aborted : int;
  mutable n_lock_waits : int;
}

let meta =
  {
    Intf.name = "2PC";
    family = Intf.Synchronous;
    restriction = "atomic commitment";
    async_propagation = "None";
    sorting_time = "at commit";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

(* Acquire [requests] one at a time on [locks]; [fail] runs on a deadlock
   refusal (locks already granted to [txn] are released). *)
let acquire_all t locks ~txn requests ~ok ~fail =
  let rec next = function
    | [] -> ok ()
    | (key, mode, op) :: rest -> (
        let continue () = next rest in
        match Lock_mgr.acquire locks ~txn ~key ~mode ?op ~on_grant:continue () with
        | Lock_mgr.Granted -> continue ()
        | Lock_mgr.Blocked -> t.n_lock_waits <- t.n_lock_waits + 1
        | Lock_mgr.Deadlock ->
            Lock_mgr.release_all locks ~txn;
            fail ())
  in
  next requests

let rec receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Lock_req { et; keys; coordinator } ->
      (* Global locks are acquired in sorted key order with FIFO queues:
         a total acquisition order over a single lock space admits no
         cycles among update ETs. *)
      let requests =
        List.map
          (fun key -> (key, Lock_table.W, None))
          (List.sort_uniq String.compare keys)
      in
      acquire_all t t.global_locks ~txn:et requests
        ~ok:(fun () -> post t ~src:site_id ~dst:coordinator (Lock_granted { et }))
        ~fail:(fun () ->
          (* Cannot happen with ordered acquisition, but stay safe. *)
          post t ~src:site_id ~dst:coordinator (Vote { et; yes = false }))
  | Lock_granted { et } -> (
      match Hashtbl.find_opt t.coords et with
      | None -> ()
      | Some coord ->
          if not coord.c_decided then begin
            (* Phase 1 proper: prepare at every participant, coordinator
               included when it participates.  The fan-out is 2PC's update
               propagation, so it carries the Propagate profiling phase. *)
            let fan_out () =
              match coord.c_parts with
              | None ->
                  for dst = 0 to Array.length t.sites - 1 do
                    post t ~src:coord.c_site ~dst
                      (Prepare { et; ops = coord.c_ops; coordinator = coord.c_site })
                  done
              | Some parts ->
                  Array.iter
                    (fun dst ->
                      post t ~src:coord.c_site ~dst
                        (Prepare
                           { et; ops = coord.c_ops; coordinator = coord.c_site }))
                    parts
            in
            let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
            if Prof.on prof then begin
              let t0 = Prof.start prof in
              let a0 = Prof.alloc0 prof in
              fan_out ();
              Prof.record prof ~site:coord.c_site Prof.Propagate ~t0 ~a0
            end
            else fan_out ()
          end)
  | Prepare { et; ops; coordinator } ->
      (* A participant locks, logs and applies only the ops of the shards
         it replicates (it joined the union for at least one of them). *)
      let ops =
        if t.full then ops
        else
          List.filter
            (fun (key, _) ->
              Sharding.replicates_id t.env.Intf.sharding ~site:site_id
                ~id:(Keyspace.find t.env.Intf.keyspace key))
            ops
      in
      let requests =
        List.map (fun (key, op) -> (key, Lock_table.W, Some op)) ops
      in
      acquire_all t site.locks ~txn:et requests
        ~ok:(fun () ->
          if Hashtbl.mem site.aborted et then begin
            (* The coordinator gave up (timeout) while we were waiting for
               locks; drop them right away. *)
            Hashtbl.remove site.aborted et;
            Lock_mgr.release_all site.locks ~txn:et
          end
          else begin
            Hashtbl.replace site.prepared et ops;
            post t ~src:site_id ~dst:coordinator (Vote { et; yes = true })
          end)
        ~fail:(fun () ->
          post t ~src:site_id ~dst:coordinator (Vote { et; yes = false }))
  | Vote { et; yes } -> coordinator_vote t et yes
  | Decision { et; commit; coordinator } ->
      (* The lock service lives at site 0: any decision ends the update
         ET's global locks (release also cancels a still-queued request). *)
      if site_id = 0 then Lock_mgr.release_all t.global_locks ~txn:et;
      (match Hashtbl.find_opt site.prepared et with
      | None ->
          (* Either we voted no (nothing held) or our prepare is still
             queued on locks; tombstone aborts so the late grant releases. *)
          if not commit then Hashtbl.replace site.aborted et ()
      | Some ops ->
          Hashtbl.remove site.prepared et;
          if commit then begin
            let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
            if Trace.on trace then
              Trace.emit trace ~time:(Engine.now t.env.engine)
                (Trace.Mset_applied
                   { et; site = site.id; n_ops = List.length ops; order = None });
            let apply () =
              List.iter
                (fun (key, op) ->
                  (match Store.apply_unit site.store key op with
                  | Ok () -> ()
                  | Error _ -> invalid_arg "2PC: op failed to apply");
                  log_action site ~et ~key op)
                ops
            in
            let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
            if Prof.on prof then begin
              let t0 = Prof.start prof in
              let a0 = Prof.alloc0 prof in
              apply ();
              Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
            end
            else apply ()
          end;
          Lock_mgr.release_all site.locks ~txn:et);
      post t ~src:site_id ~dst:coordinator (Done { et })
  | Done { et } -> coordinator_done t et

(* Same-site messages shortcut the network (a site talking to itself);
   while the site is down they are stashed as durable records and
   replayed at recovery, mirroring what the stable queue does for remote
   traffic. *)
and post t ~src ~dst msg =
  if src = dst then
    if t.sites.(dst).down then
      t.deferred_local <- (dst, msg) :: t.deferred_local
    else receive t ~site:dst msg
  else Squeue.send t.fabric ~src ~dst msg

and coordinator_vote t et yes =
  match Hashtbl.find_opt t.coords et with
  | None -> ()
  | Some coord ->
      if coord.c_decided then ()
      else begin
        if not yes then coord.c_aborted <- true;
        coord.c_votes <- coord.c_votes - 1;
        if coord.c_votes = 0 then begin
          coord.c_decided <- true;
          let commit = not coord.c_aborted in
          if commit then
            coord.c_notify
              (Intf.Committed { committed_at = Engine.now t.env.engine })
          else begin
            t.n_aborted <- t.n_aborted + 1;
            coord.c_notify (Intf.Rejected "2PC: aborted (deadlock vote)")
          end;
          (* Phase 2: route the decision to every participant. *)
          send_decision t coord ~commit
        end
      end

(* Decisions go to every participant — plus the lock service at site 0,
   which must release the ET's global locks even when it replicates none
   of the touched shards. *)
and send_decision t coord ~commit =
  let msg dst =
    post t ~src:coord.c_site ~dst
      (Decision { et = coord.c_et; commit; coordinator = coord.c_site })
  in
  match coord.c_parts with
  | None ->
      for dst = 0 to Array.length t.sites - 1 do
        msg dst
      done
  | Some parts ->
      if Array.length parts = 0 || parts.(0) <> 0 then msg 0;
      Array.iter msg parts

and coordinator_done t et =
  match Hashtbl.find_opt t.coords et with
  | None -> ()
  | Some coord ->
      coord.c_acks <- coord.c_acks - 1;
      if coord.c_acks = 0 then Hashtbl.remove t.coords et

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 locks = Lock_mgr.create ~table:Lock_table.standard ();
                 prepared = Hashtbl.create 16;
                 aborted = Hashtbl.create 16;
                 waiting = [];
                 down = false;
               });
         fabric;
         coords = Hashtbl.create 32;
         deferred_local = [];
         global_locks = Lock_mgr.create ~table:Lock_table.standard ();
         n_updates = 0;
         n_queries = 0;
         n_aborted = 0;
         n_lock_waits = 0;
       })
  in
  Lazy.force t

let intent_to_op = function
  | Intf.Set (k, v) -> (k, Op.Write v)
  | Intf.Add (k, d) -> (k, Op.Incr d)
  | Intf.Mul (k, f) -> (k, Op.Mult f)

let submit_update t ~origin intents notify =
  if t.sites.(origin).down then notify (Intf.Rejected "origin site down")
  else if intents = [] then notify (Intf.Rejected "empty update ET")
  else begin
    t.n_updates <- t.n_updates + 1;
    let et = t.env.Intf.next_et () in
    let ops = List.map intent_to_op intents in
    let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
    if Trace.on trace then
      Trace.emit trace ~time:(Engine.now t.env.engine)
        (Trace.Mset_enqueued
           {
             et;
             origin;
             n_ops = List.length ops;
             keys = List.map fst ops;
           });
    let n = t.env.Intf.sites in
    let parts =
      if t.full then None
      else begin
        (* Participants: the union of the touched shards' replica sets
           (keys interned here so every later lookup agrees on the shard). *)
        let c = t.dests in
        Sharding.Dests.reset c;
        List.iter
          (fun (key, _) ->
            Sharding.Dests.add_id c (Keyspace.intern t.env.Intf.keyspace key))
          ops;
        let arr = Array.make (Sharding.Dests.count c) 0 in
        let i = ref 0 in
        Sharding.Dests.iter c (fun s ->
            arr.(!i) <- s;
            incr i);
        Some arr
      end
    in
    let votes = match parts with None -> n | Some p -> Array.length p in
    let acks =
      match parts with
      | None -> n
      | Some p ->
          (* Every participant acks its decision, and so does the lock
             service at site 0 when it is not itself a participant. *)
          Array.length p + (if Array.length p > 0 && p.(0) = 0 then 0 else 1)
    in
    let coord =
      {
        c_et = et;
        c_site = origin;
        c_ops = ops;
        c_parts = parts;
        c_votes = votes;
        c_acks = acks;
        c_aborted = false;
        c_decided = false;
        c_notify = notify;
      }
    in
    Hashtbl.replace t.coords et coord;
    (* Phase 0: serialize against other update ETs at the lock service;
       the prepares fan out once the global locks are granted. *)
    post t ~src:origin ~dst:0 (Lock_req { et; keys = List.map fst ops; coordinator = origin });
    (* Presumed abort on timeout: covers distributed deadlocks (no global
       wait-for graph exists) and partitions that outlast patience. *)
    ignore
      (Engine.schedule t.env.engine ~delay:t.env.Intf.config.Intf.twopc_timeout
         (fun () ->
           if not coord.c_decided then begin
             coord.c_decided <- true;
             t.n_aborted <- t.n_aborted + 1;
             coord.c_notify (Intf.Rejected "2PC: aborted (timeout)");
             send_decision t coord ~commit:false
           end))
  end

let submit_query t ~site:site_id ~keys ~epsilon k =
  ignore epsilon;
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let started_at = Engine.now t.env.engine in
  let degraded () =
    (* Graceful failure: a crashed site answers from its last image,
       flagged degraded (2PC's normal path is always consistent). *)
    k
      {
        Intf.values = List.map (fun key -> (key, Store.get site.store key)) keys;
        charged = 0;
        forced = 0;
        consistent_path = false;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  if site.down then degraded ()
  else begin
    let rec attempt wq =
      if wq.wq_done then ()
      else begin
        let et = t.env.Intf.next_et () in
        wq.wq_et <- et;
        let requests = List.map (fun key -> (key, Lock_table.R, None)) keys in
        acquire_all t site.locks ~txn:et requests
          ~ok:(fun () ->
            if wq.wq_done then Lock_mgr.release_all site.locks ~txn:et
            else begin
              wq.wq_done <- true;
              site.waiting <- List.filter (fun w -> w != wq) site.waiting;
              let values =
                List.map
                  (fun key ->
                    log_action site ~et ~key Op.Read;
                    (key, Store.get site.store key))
                  keys
              in
              Lock_mgr.release_all site.locks ~txn:et;
              k
                {
                  Intf.values;
                  charged = 0;
                  forced = 0;
                  consistent_path = true;
                  started_at;
                  served_at = Engine.now t.env.engine;
                }
            end)
          ~fail:(fun () ->
            (* Deadlocked against prepared writers: retry after a beat. *)
            ignore (Engine.schedule t.env.engine ~delay:5.0 (fun () -> attempt wq)))
      end
    in
    let rec wq =
      {
        wq_et = 0;  (* set by [attempt] before the first acquisition *)
        wq_done = false;
        wq_fail =
          (fun () ->
            (* Cancel the (possibly queued) lock request so the dead
               query never blocks writers, then answer degraded. *)
            Lock_mgr.release_all site.locks ~txn:wq.wq_et;
            degraded ());
      }
    in
    site.waiting <- wq :: site.waiting;
    attempt wq
  end

let flush _ = ()

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* Prepared transactions survive (prepared-state-in-the-WAL keeps
       their W-locks held — the classic 2PC blocking window); what dies
       is the volatile wait contexts: queries queued on locks fail
       degraded and their requests are cancelled. *)
    let waiting = site.waiting in
    site.waiting <- [];
    List.iter
      (fun wq ->
        if not wq.wq_done then begin
          wq.wq_done <- true;
          wq.wq_fail ()
        end)
      waiting;
    (* The crashed site was the coordinator of its undecided update ETs:
       presumed abort.  Remote participants learn the abort once the
       stable queue reaches them; the local record is replayed at
       recovery. *)
    let orphaned =
      Hashtbl.fold
        (fun et coord acc ->
          if coord.c_site = site_id && not coord.c_decided then
            (et, coord) :: acc
          else acc)
        t.coords []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (_, coord) ->
        coord.c_decided <- true;
        t.n_aborted <- t.n_aborted + 1;
        coord.c_notify (Intf.Rejected "2PC: aborted (origin site crashed)");
        send_decision t coord ~commit:false)
      orphaned;
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered:0 ~queries_failed:(List.length waiting)
      ~updates_rejected:(List.length orphaned) ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist;
    (* Replay the site's own 2PC records that landed while it was down. *)
    let mine, others =
      List.partition (fun (s, _) -> s = site_id) (List.rev t.deferred_local)
    in
    t.deferred_local <- List.rev others;
    List.iter (fun (_, msg) -> receive t ~site:site_id msg) mine
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let quiescent t = Hashtbl.length t.coords = 0 && t.deferred_local = []
let backlog t = Hashtbl.length t.coords + List.length t.deferred_local

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  if t.full then
    let reference = t.sites.(0).store in
    Array.for_all (fun site -> Store.equal site.store reference) t.sites
  else
    Sharding.converged t.env.Intf.sharding ~keyspace:t.env.Intf.keyspace
      ~store:(fun site -> t.sites.(site).store)

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("aborted", float_of_int t.n_aborted);
    ("lock_waits", float_of_int t.n_lock_waits);
  ]

(* 2PC's durable protocol state is the prepared table, not a receipt
   journal, so the WAL fields stay zero. *)
let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.no_resources with
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
