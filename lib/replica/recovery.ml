(** Shared crash-recovery machinery for the replica-control methods.

    The fault model (DESIGN.md §7) splits a site's state in two:

    - {e durable}: the per-site operation log ({!Esr_core.Hist.t} — the
      write-ahead journal every method already maintains), the stable
      queue journals, and the receipt journal of order-buffered MSets
      ({!Wal});
    - {e volatile}: the materialized store image (a page cache over the
      log), order buffers, parked and active queries, and un-notified
      origin-side outcome callbacks.

    A crash drops the volatile half; {!replay_store} rebuilds the store
    image by replaying the durable log (traced as [Recovery_replay]), and
    each method re-ingests its unconsumed {!Wal} records to rebuild its
    order buffers before the stable-queue backlog resumes delivery. *)

module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof
module Hist = Esr_core.Hist

let emit_replay ~(obs : Esr_obs.Obs.t) ~engine ~site ~n_actions =
  let trace = obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace
      ~time:(Esr_sim.Engine.now engine)
      (Trace.Recovery_replay { site; n_actions })

let replay_store ?base ?keyspace ?size ~obs ~engine ~site hist =
  let prof = obs.Esr_obs.Obs.prof in
  let store =
    if Prof.on prof then begin
      let t0 = Prof.start prof in
      let a0 = Prof.alloc0 prof in
      let store = Esr_core.Logmerge.apply ?base ?keyspace ?size hist in
      Prof.record prof ~site Prof.Replay ~t0 ~a0;
      store
    end
    else Esr_core.Logmerge.apply ?base ?keyspace ?size hist
  in
  emit_replay ~obs ~engine ~site ~n_actions:(Hist.length hist);
  store

(* Checkpoint-aware site-image replay: start from a fresh copy of the
   site's newest snapshot when the run checkpoints (folding only the log
   tail), or from scratch otherwise, and record the tail length for the
   [ckpt/] gauges.  With [ckpt = None] this is exactly the historical
   {!replay_store}. *)
let replay_site ?ckpt ?keyspace ?size ~obs ~engine ~site hist =
  match ckpt with
  | None -> replay_store ?keyspace ?size ~obs ~engine ~site hist
  | Some c ->
      let base = Checkpoint.base c ~site in
      let store = replay_store ?base ?keyspace ?size ~obs ~engine ~site hist in
      Checkpoint.note_tail_replay c ~site ~len:(Hist.length hist);
      store

let emit_volatile_dropped ~(obs : Esr_obs.Obs.t) ~engine ~site ~buffered
    ~queries_failed ~updates_rejected ~log =
  let trace = obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace
      ~time:(Esr_sim.Engine.now engine)
      (Trace.Volatile_dropped { site; buffered; queries_failed; updates_rejected; log })

(** Per-site durable receipt journal.  A record is appended when the
    transport hands a message up (before it enters any volatile buffer)
    and consumed — by the caller's key — when the method applies it to the
    durable log; recovery re-ingests whatever is left, in receipt order. *)
module Wal = struct
  type 'a entry = { seq : int; record : 'a }

  type ('k, 'a) t = {
    journals : ('k, 'a entry) Hashtbl.t array;  (* per site *)
    mutable next_seq : int;
    appended_by : int array;  (* cumulative per-site appends, monotone *)
    high_water_by : int array;  (* peak simultaneous records per site *)
    prof : Prof.t;
  }

  let create ?(prof = Prof.disabled) ?(hint = 16) ~sites () =
    (* [hint] scales the per-site tables with the workload (the run's
       store hint) instead of the historical fixed 16: at the million-op
       tier a journal holding thousands of in-flight MSets would
       otherwise rehash repeatedly during bursts. *)
    let hint = Stdlib.max 16 hint in
    {
      journals = Array.init sites (fun _ -> Hashtbl.create hint);
      next_seq = 0;
      appended_by = Array.make sites 0;
      high_water_by = Array.make sites 0;
      prof;
    }

  let append t ~site ~key record =
    let prof = t.prof in
    let profiling = Prof.on prof in
    let t0 = if profiling then Prof.start prof else 0.0 in
    let a0 = if profiling then Prof.alloc0 prof else 0.0 in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.appended_by.(site) <- t.appended_by.(site) + 1;
    Hashtbl.replace t.journals.(site) key { seq; record };
    let depth = Hashtbl.length t.journals.(site) in
    if depth > t.high_water_by.(site) then t.high_water_by.(site) <- depth;
    if profiling then Prof.record prof ~site Prof.Wal_append ~t0 ~a0

  let consume t ~site ~key = Hashtbl.remove t.journals.(site) key

  let entries t ~site =
    (* Receipt order: sequence numbers are globally increasing. *)
    Hashtbl.fold (fun _ e acc -> e :: acc) t.journals.(site) []
    |> List.sort (fun a b -> compare a.seq b.seq)
    |> List.map (fun e -> e.record)

  let size t ~site = Hashtbl.length t.journals.(site)

  let appended t ~site = t.appended_by.(site)

  let high_water t ~site = t.high_water_by.(site)
end
