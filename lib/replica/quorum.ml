(** QUORUM — synchronous baseline in the weighted-voting style
    (Gifford [15], simplified to version-number voting à la Thomas).

    Every copy carries a version number.  An update reads versions from a
    write quorum [w], picks [max+1], and writes value+version back to [w]
    sites; a query reads from a read quorum [r] and returns the
    highest-version value.  With [r + w > n] every read quorum intersects
    every write quorum, so queries always see the latest committed
    update.  Both operations cost at least one WAN round trip and stall
    whenever a quorum is unreachable — the availability/latency cost the
    paper's asynchronous methods avoid.

    Simplifications (documented in DESIGN.md): update ETs are single-key
    blind writes (no cross-key atomicity, hence no distributed locks);
    writes are broadcast to all sites but acknowledged by the quorum, so
    replicas converge once the stable queues drain. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace

type version = { v : int; writer : int }

let version_compare a b =
  match Int.compare a.v b.v with 0 -> Int.compare a.writer b.writer | c -> c

let version_zero = { v = 0; writer = -1 }

type msg =
  | Version_req of { rid : int; et : Et.id; key : string; requester : int }
  | Version_reply of { rid : int; key : string; version : version; value : Value.t }
  | Write_req of { wid : int; et : Et.id; key : string; value : Value.t; version : version }
  | Write_ack of { wid : int }

type read_round = {
  r_needed : int;
  mutable r_replies : int;
  mutable r_best : version * Value.t;
  r_done : version * Value.t -> unit;
}

type write_round = { w_needed : int; mutable w_acks : int; w_done : unit -> unit }

type site = {
  id : int;
  store : Store.t;
  versions : (string, version) Hashtbl.t;
  mutable hist : Hist.t;
}

type t = {
  env : Intf.env;
  sites : site array;
  fabric : msg Squeue.t;
  reads : (int, read_round) Hashtbl.t;
  writes : (int, write_round) Hashtbl.t;
  read_quorum : int;
  write_quorum : int;
  mutable next_round : int;
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_rejected : int;
}

let meta =
  {
    Intf.name = "QUORUM";
    family = Intf.Synchronous;
    restriction = "quorum intersection";
    async_propagation = "None";
    sorting_time = "at access";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let local_version site key =
  Option.value (Hashtbl.find_opt site.versions key) ~default:version_zero

let rec receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Version_req { rid; et; key; requester } ->
      log_action site ~et ~key Op.Read;
      post t ~src:site_id ~dst:requester
        (Version_reply
           { rid; key; version = local_version site key; value = Store.get site.store key })
  | Version_reply { rid; key = _; version; value } -> (
      match Hashtbl.find_opt t.reads rid with
      | None -> ()  (* straggler after the quorum completed *)
      | Some round ->
          round.r_replies <- round.r_replies + 1;
          let best_version, _ = round.r_best in
          if version_compare version best_version > 0 then
            round.r_best <- (version, value);
          if round.r_replies >= round.r_needed then begin
            Hashtbl.remove t.reads rid;
            round.r_done round.r_best
          end)
  | Write_req { wid; et; key; value; version } ->
      if version_compare version (local_version site key) > 0 then begin
        let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
        if Trace.on trace then
          Trace.emit trace ~time:(Engine.now t.env.engine)
            (Trace.Mset_applied { et; site = site.id; n_ops = 1 });
        Hashtbl.replace site.versions key version;
        Store.set site.store key value;
        log_action site ~et ~key (Op.Write value)
      end;
      (* Acks flow back to the writer regardless: the quorum counts
         participation, not freshness. *)
      post t ~src:site_id ~dst:version.writer (Write_ack { wid })
  | Write_ack { wid } -> (
      match Hashtbl.find_opt t.writes wid with
      | None -> ()
      | Some round ->
          round.w_acks <- round.w_acks + 1;
          if round.w_acks >= round.w_needed then begin
            Hashtbl.remove t.writes wid;
            round.w_done ()
          end)

and post t ~src ~dst msg =
  if src = dst then receive t ~site:dst msg
  else Squeue.send t.fabric ~src ~dst msg

let read_round t ~origin ~et ~key ~needed ~done_ =
  let rid = t.next_round in
  t.next_round <- rid + 1;
  Hashtbl.replace t.reads rid
    { r_needed = needed; r_replies = 0; r_best = (version_zero, Value.zero); r_done = done_ };
  for dst = 0 to t.env.Intf.sites - 1 do
    post t ~src:origin ~dst (Version_req { rid; et; key; requester = origin })
  done

let write_round t ~origin ~et ~key ~value ~version ~done_ =
  let wid = t.next_round in
  t.next_round <- wid + 1;
  Hashtbl.replace t.writes wid
    { w_needed = t.write_quorum; w_acks = 0; w_done = done_ };
  for dst = 0 to t.env.Intf.sites - 1 do
    post t ~src:origin ~dst (Write_req { wid; et; key; value; version })
  done

let create (env : Intf.env) =
  let n = env.Intf.sites in
  let majority = (n / 2) + 1 in
  let read_quorum = Option.value env.Intf.config.Intf.quorum_reads ~default:majority in
  let write_quorum = Option.value env.Intf.config.Intf.quorum_writes ~default:majority in
  if read_quorum + write_quorum <= n then
    invalid_arg "Quorum.create: r + w must exceed the number of sites";
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         sites =
           Array.init n (fun id ->
               {
                 id;
                 store = Store.create ~size:env.Intf.store_hint ();
                 versions = Hashtbl.create 32;
                 hist = Hist.empty;
               });
         fabric;
         reads = Hashtbl.create 32;
         writes = Hashtbl.create 32;
         read_quorum;
         write_quorum;
         next_round = 0;
         n_updates = 0;
         n_queries = 0;
         n_rejected = 0;
       })
  in
  Lazy.force t

let submit_update t ~origin intents notify =
  match intents with
  | [ Intf.Set (key, value) ] ->
      t.n_updates <- t.n_updates + 1;
      let et = t.env.Intf.next_et () in
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_enqueued { et; origin; n_ops = 1 });
      (* Round 1: learn the highest version from a write quorum. *)
      read_round t ~origin ~et ~key ~needed:t.write_quorum
        ~done_:(fun (best_version, _) ->
          let version = { v = best_version.v + 1; writer = origin } in
          (* Round 2: install value+version at a write quorum. *)
          write_round t ~origin ~et ~key ~value ~version ~done_:(fun () ->
              notify (Intf.Committed { committed_at = Engine.now t.env.engine })))
  | [] -> notify (Intf.Rejected "empty update ET")
  | [ (Intf.Add _ | Intf.Mul _) ] ->
      t.n_rejected <- t.n_rejected + 1;
      notify
        (Intf.Rejected
           "QUORUM: read-modify-write intents need distributed locking; \
            only single-key Set is supported")
  | _ :: _ :: _ ->
      t.n_rejected <- t.n_rejected + 1;
      notify (Intf.Rejected "QUORUM: multi-key update ETs are not atomic here")

let submit_query t ~site:site_id ~keys ~epsilon k =
  ignore epsilon;
  t.n_queries <- t.n_queries + 1;
  let et = t.env.Intf.next_et () in
  let started_at = Engine.now t.env.engine in
  let total = List.length keys in
  let collected = ref [] in
  let finished = ref 0 in
  List.iter
    (fun key ->
      read_round t ~origin:site_id ~et ~key ~needed:t.read_quorum
        ~done_:(fun (_, value) ->
          collected := (key, value) :: !collected;
          incr finished;
          if !finished = total then
            k
              {
                Intf.values =
                  List.sort (fun (a, _) (b, _) -> String.compare a b) !collected;
                charged = 0;
                consistent_path = true;
                started_at;
                served_at = Engine.now t.env.engine;
              }))
    keys

let flush _ = ()

let quiescent t = Hashtbl.length t.reads = 0 && Hashtbl.length t.writes = 0

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  let reference = t.sites.(0).store in
  Array.for_all (fun site -> Store.equal site.store reference) t.sites

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("rejected", float_of_int t.n_rejected);
  ]
