(** QUORUM — synchronous baseline in the weighted-voting style
    (Gifford [15], simplified to version-number voting à la Thomas).

    Every copy carries a version number.  An update reads versions from a
    write quorum [w], picks [max+1], and writes value+version back to [w]
    sites; a query reads from a read quorum [r] and returns the
    highest-version value.  With [r + w > n] every read quorum intersects
    every write quorum, so queries always see the latest committed
    update.  Both operations cost at least one WAN round trip and stall
    whenever a quorum is unreachable — the availability/latency cost the
    paper's asynchronous methods avoid.

    Simplifications (documented in DESIGN.md): update ETs are single-key
    blind writes (no cross-key atomicity, hence no distributed locks);
    writes are broadcast to all sites but acknowledged by the quorum, so
    replicas converge once the stable queues drain. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

type version = { v : int; writer : int; seq : int }
(* [seq] is a per-system unique stamp: two rounds that read the same stale
   version (their version reads stalled across the same partition or crash
   window) produce the same [v] — and with one origin, the same [writer].
   Without a total order every copy keeps whichever write arrives first
   and the replicas diverge. *)

let version_compare a b =
  match Int.compare a.v b.v with
  | 0 -> (
      match Int.compare a.writer b.writer with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

let version_zero = { v = 0; writer = -1; seq = -1 }

type msg =
  | Version_req of { rid : int; et : Et.id; key : string; requester : int }
  | Version_reply of { rid : int; key : string; version : version; value : Value.t }
  | Write_req of { wid : int; et : Et.id; key : string; value : Value.t; version : version }
  | Write_ack of { wid : int }

type read_round = {
  r_origin : int;  (* requester site: the round dies with it *)
  r_needed : int;
  mutable r_replies : int;
  mutable r_best : version * Value.t;
  r_done : version * Value.t -> unit;
  r_fail : unit -> bool;
      (* origin crashed: degrade/reject the client; true when this call
         actually notified it (a multi-key query fails only once) *)
  r_update : bool;  (* version round of an update (vs a query read) *)
}

type write_round = {
  w_origin : int;
  w_needed : int;
  mutable w_acks : int;
  w_done : unit -> unit;
  w_fail : unit -> bool;
}

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] *)
  versions : (string, version) Hashtbl.t;
      (* durable: version numbers live with the data, written atomically
         with each install *)
  mutable hist : Hist.t;  (* the durable log *)
  mutable down : bool;
}

type t = {
  env : Intf.env;
  full : bool;  (* replication factor = sites: historical broadcast path *)
  sites : site array;
  fabric : msg Squeue.t;
  reads : (int, read_round) Hashtbl.t;
  writes : (int, write_round) Hashtbl.t;
  read_quorum : int;
  write_quorum : int;
  mutable next_round : int;
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_rejected : int;
}

let meta =
  {
    Intf.name = "QUORUM";
    family = Intf.Synchronous;
    restriction = "quorum intersection";
    async_propagation = "None";
    sorting_time = "at access";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let local_version site key =
  Option.value (Hashtbl.find_opt site.versions key) ~default:version_zero

let rec receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Version_req { rid; et; key; requester } ->
      log_action site ~et ~key Op.Read;
      post t ~src:site_id ~dst:requester
        (Version_reply
           { rid; key; version = local_version site key; value = Store.get site.store key })
  | Version_reply { rid; key = _; version; value } -> (
      match Hashtbl.find_opt t.reads rid with
      | None -> ()  (* straggler after the quorum completed *)
      | Some round ->
          round.r_replies <- round.r_replies + 1;
          let best_version, _ = round.r_best in
          if version_compare version best_version > 0 then
            round.r_best <- (version, value);
          if round.r_replies >= round.r_needed then begin
            Hashtbl.remove t.reads rid;
            round.r_done round.r_best
          end)
  | Write_req { wid; et; key; value; version } ->
      if version_compare version (local_version site key) > 0 then begin
        let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
        if Trace.on trace then
          Trace.emit trace ~time:(Engine.now t.env.engine)
            (Trace.Mset_applied { et; site = site.id; n_ops = 1; order = None });
        let install () =
          Hashtbl.replace site.versions key version;
          Store.set site.store key value;
          log_action site ~et ~key (Op.Write value)
        in
        let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
        if Prof.on prof then begin
          let t0 = Prof.start prof in
          let a0 = Prof.alloc0 prof in
          install ();
          Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
        end
        else install ()
      end;
      (* Acks flow back to the writer regardless: the quorum counts
         participation, not freshness. *)
      post t ~src:site_id ~dst:version.writer (Write_ack { wid })
  | Write_ack { wid } -> (
      match Hashtbl.find_opt t.writes wid with
      | None -> ()
      | Some round ->
          round.w_acks <- round.w_acks + 1;
          if round.w_acks >= round.w_needed then begin
            Hashtbl.remove t.writes wid;
            round.w_done ()
          end)

and post t ~src ~dst msg =
  if src = dst then receive t ~site:dst msg
  else Squeue.send t.fabric ~src ~dst msg

(* Round fan-out: every site under full replication (the historical
   behaviour), only the key's replica set otherwise — quorums intersect
   within the replica set, not the whole system. *)
let fan_key t key f =
  if t.full then
    for dst = 0 to t.env.Intf.sites - 1 do
      f dst
    done
  else begin
    let sh = t.env.Intf.sharding in
    let reps =
      Sharding.replicas sh
        (Sharding.shard_of_id sh (Keyspace.find t.env.Intf.keyspace key))
    in
    for i = 0 to Array.length reps - 1 do
      f reps.(i)
    done
  end

let read_round t ~origin ~et ~key ~needed ~update ~done_ ~fail =
  let rid = t.next_round in
  t.next_round <- rid + 1;
  Hashtbl.replace t.reads rid
    {
      r_origin = origin;
      r_needed = needed;
      r_replies = 0;
      r_best = (version_zero, Value.zero);
      r_done = done_;
      r_fail = fail;
      r_update = update;
    };
  fan_key t key (fun dst ->
      post t ~src:origin ~dst (Version_req { rid; et; key; requester = origin }))

let write_round t ~origin ~et ~key ~value ~version ~done_ ~fail =
  let wid = t.next_round in
  t.next_round <- wid + 1;
  Hashtbl.replace t.writes wid
    {
      w_origin = origin;
      w_needed = t.write_quorum;
      w_acks = 0;
      w_done = done_;
      w_fail = fail;
    };
  (* The write fan-out is QUORUM's update propagation. *)
  let fan_out () =
    fan_key t key (fun dst ->
        post t ~src:origin ~dst (Write_req { wid; et; key; value; version }))
  in
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    fan_out ();
    Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
  end
  else fan_out ()

let create (env : Intf.env) =
  let n = env.Intf.sites in
  (* Under partial replication, quorums live inside each key's replica
     set: intersection must hold among the [factor] copies, not among all
     sites.  With factor = sites this is exactly the historical rule. *)
  let copies = Sharding.factor env.Intf.sharding in
  let majority = (copies / 2) + 1 in
  let read_quorum = Option.value env.Intf.config.Intf.quorum_reads ~default:majority in
  let write_quorum = Option.value env.Intf.config.Intf.quorum_writes ~default:majority in
  if read_quorum + write_quorum <= copies then
    invalid_arg "Quorum.create: r + w must exceed the number of copies";
  if read_quorum > copies || write_quorum > copies then
    invalid_arg "Quorum.create: a quorum cannot exceed the replication factor";
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         full = Sharding.is_full env.Intf.sharding;
         sites =
           Array.init n (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 versions = Hashtbl.create (Stdlib.max 32 env.Intf.store_hint);
                 hist = Hist.empty;
                 down = false;
               });
         fabric;
         reads = Hashtbl.create 32;
         writes = Hashtbl.create 32;
         read_quorum;
         write_quorum;
         next_round = 0;
         n_updates = 0;
         n_queries = 0;
         n_rejected = 0;
       })
  in
  Lazy.force t

let submit_update t ~origin intents notify =
  match intents with
  | _ when t.sites.(origin).down -> notify (Intf.Rejected "origin site down")
  | [ Intf.Set (key, value) ] ->
      t.n_updates <- t.n_updates + 1;
      (* Pin the key's shard before routing: both rounds and every later
         access must agree on the replica set. *)
      if not t.full then ignore (Keyspace.intern t.env.Intf.keyspace key);
      let et = t.env.Intf.next_et () in
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_enqueued { et; origin; n_ops = 1; keys = [ key ] });
      let fail () =
        (* The outcome is uncertain (a quorum may still install the write)
           but the coordinating site is gone: report rejection. *)
        notify (Intf.Rejected "origin site crashed");
        true
      in
      (* Round 1: learn the highest version from a write quorum. *)
      read_round t ~origin ~et ~key ~needed:t.write_quorum ~update:true ~fail
        ~done_:(fun (best_version, _) ->
          let seq = t.next_round in
          t.next_round <- seq + 1;
          let version = { v = best_version.v + 1; writer = origin; seq } in
          (* Round 2: install value+version at a write quorum. *)
          write_round t ~origin ~et ~key ~value ~version ~fail
            ~done_:(fun () ->
              notify (Intf.Committed { committed_at = Engine.now t.env.engine })))
  | [] -> notify (Intf.Rejected "empty update ET")
  | [ (Intf.Add _ | Intf.Mul _) ] ->
      t.n_rejected <- t.n_rejected + 1;
      notify
        (Intf.Rejected
           "QUORUM: read-modify-write intents need distributed locking; \
            only single-key Set is supported")
  | _ :: _ :: _ ->
      t.n_rejected <- t.n_rejected + 1;
      notify (Intf.Rejected "QUORUM: multi-key update ETs are not atomic here")

let submit_query t ~site:site_id ~keys ~epsilon k =
  ignore epsilon;
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let et = t.env.Intf.next_et () in
  let started_at = Engine.now t.env.engine in
  let degraded () =
    (* Graceful failure: answer from the local image, flagged degraded
       (the quorum guarantee needs a live coordinating site). *)
    k
      {
        Intf.values = List.map (fun key -> (key, Store.get site.store key)) keys;
        charged = 0;
        forced = 0;
        consistent_path = false;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  if site.down then degraded ()
  else begin
    let total = List.length keys in
    let collected = ref [] in
    let finished = ref 0 in
    let failed = ref false in
    let fail () =
      (* One fail per query, even though each key ran its own round. *)
      if !failed then false
      else begin
        failed := true;
        degraded ();
        true
      end
    in
    List.iter
      (fun key ->
        read_round t ~origin:site_id ~et ~key ~needed:t.read_quorum ~update:false
          ~fail
          ~done_:(fun (_, value) ->
            collected := (key, value) :: !collected;
            incr finished;
            if !finished = total && not !failed then
              k
                {
                  Intf.values =
                    List.sort (fun (a, _) (b, _) -> String.compare a b) !collected;
                  charged = 0;
                  forced = 0;
                  consistent_path = true;
                  started_at;
                  served_at = Engine.now t.env.engine;
                }))
      keys
  end

let flush _ = ()

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* The rounds this site coordinates are volatile: queries answer
       degraded, updates report rejection (their writes may still land at
       a quorum — the classic uncertain outcome).  Straggler replies
       arriving after recovery find no round and are ignored. *)
    let my_reads =
      Hashtbl.fold
        (fun rid r acc -> if r.r_origin = site_id then (rid, r) :: acc else acc)
        t.reads []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    and my_writes =
      Hashtbl.fold
        (fun wid w acc -> if w.w_origin = site_id then (wid, w) :: acc else acc)
        t.writes []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let queries_failed = ref 0 and updates_rejected = ref 0 in
    List.iter
      (fun (rid, r) ->
        Hashtbl.remove t.reads rid;
        if r.r_fail () then
          if r.r_update then incr updates_rejected else incr queries_failed)
      my_reads;
    List.iter
      (fun (wid, w) ->
        Hashtbl.remove t.writes wid;
        if w.w_fail () then incr updates_rejected)
      my_writes;
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered:0 ~queries_failed:!queries_failed
      ~updates_rejected:!updates_rejected ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let quiescent t = Hashtbl.length t.reads = 0 && Hashtbl.length t.writes = 0
let backlog t = Hashtbl.length t.reads + Hashtbl.length t.writes

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  if t.full then
    let reference = t.sites.(0).store in
    Array.for_all (fun site -> Store.equal site.store reference) t.sites
  else
    Sharding.converged t.env.Intf.sharding ~keyspace:t.env.Intf.keyspace
      ~store:(fun site -> t.sites.(site).store)

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("rejected", float_of_int t.n_rejected);
  ]

(* Versions live with the data; there is no receipt journal, so the WAL
   fields stay zero. *)
let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.no_resources with
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
