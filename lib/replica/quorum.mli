(** QUORUM — synchronous baseline in the weighted-voting style
    (Gifford, simplified to version-number voting): updates read versions
    from a write quorum and install max+1 at a write quorum; queries read
    a read quorum and return the highest version.  Single-key blind
    writes only (documented in DESIGN.md). *)

type t

val meta : Intf.meta
val create : Intf.env -> t

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val flush : t -> unit

val on_crash : t -> site:int -> unit
(** Volatile state at the site is lost: wait contexts fail degraded,
    buffered work is dropped, and in-doubt coordination this site led is
    presumed aborted.  Durable state (the log and protocol journals)
    survives.  Idempotent while the site stays down. *)

val on_recover : t -> site:int -> unit
(** Rebuild the volatile image by replaying the durable log, re-ingest
    journaled protocol state, and resume.  Idempotent while up. *)

val checkpoint : t -> site:int -> unit
(** Asynchronous checkpoint cut at the site (see {!Checkpoint.cut}):
    snapshot the image, truncate the durable log, and reclaim journal
    records behind the watermark.  No-op when the run does not
    checkpoint or the site is down. *)

val quiescent : t -> bool
val backlog : t -> int
val store : t -> site:int -> Esr_store.Store.t
val mvstore : t -> site:int -> Esr_store.Mvstore.t option
val history : t -> site:int -> Esr_core.Hist.t
val converged : t -> bool
val stats : t -> (string * float) list

val resources : t -> site:int -> Intf.resources
(** Per-site durable/volatile footprint.  No receipt journal here, so
    the WAL fields are zero. *)
