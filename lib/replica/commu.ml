(** COMMU — commutative operations (paper §3.2).

    Update MSets contain only mutually commutative operations (additive
    deltas here), so replicas may apply them in any arrival order and
    still converge: updates are ordered "at their completion time".
    Both queries and updates propagate asynchronously (Table 1).

    Divergence bounding uses per-object lock-counters: a site increments
    an object's counter when it applies an update MSet and decrements it
    when the update ET *completes* globally (all replicas applied it — the
    origin collects acks and broadcasts a completion notice).  A non-zero
    counter is in-flight inconsistency: a query reading the object is
    charged that many units, and an exhausted epsilon makes it wait for
    the counters to drain.  An optional update-side limit (§3.2's "the
    update ET trying to write must either wait or abort") gives
    back-pressure, swept by experiment E7. *)

module Op = Esr_store.Op
module Store = Esr_store.Store
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Lock_counter = Esr_cc.Lock_counter
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

(* Ops carry keys pre-interned at the origin ({!Intf.iop}); the string
   name rides along for the lock counters and the durable log. *)
type mset = { et : Et.id; ops : Intf.iop list; origin : int }

(* Pending |delta| an operation contributes to its object's weight. *)
let op_weight = function
  | Op.Incr d -> Float.abs (float_of_int d)
  | Op.Read | Op.Write _ | Op.Mult _ | Op.Div _ | Op.Timed_write _ | Op.Append _
    -> 0.0

type msg =
  | Apply of mset
  | Applied of { et : Et.id; by : int }  (** ack back to the origin *)
  | Complete of { et : Et.id; charges : (string * float) list }

(* A parked continuation: [resume] when the counters drain, [fail] when
   the site crashes and the volatile wait context is lost. *)
type parked = { resume : unit -> unit; fail : unit -> unit }

(* Registration for an in-step (not parked) query so a crash can reach it:
   the scheduled step checks [killed] and finishes degraded. *)
type active_q = { mutable killed : bool }

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] *)
  mutable hist : Hist.t;  (* the durable log *)
  counters : Lock_counter.t;
      (* derivable from the durable log (applied-but-uncompleted ETs), so
         recovery keeps them: modelled as durable *)
  mutable parked_queries : parked list;
  mutable parked_updates : parked list;
  mutable active_queries : active_q list;
  mutable down : bool;
}

(* Origin-side record of an update ET awaiting acks from all replicas. *)
type inflight = { charges : (string * float) list; mutable waiting_acks : int }

type t = {
  env : Intf.env;
  sites : site array;
  fabric : msg Squeue.t;
  inflight : (Et.id, inflight) Hashtbl.t;
  full : bool;  (* replicate-everywhere: keep the historical broadcast path *)
  dests : Sharding.Dests.t;  (* scratch interest cursor (routing only) *)
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_rejected : int;
  mutable n_query_waits : int;
  mutable n_update_waits : int;
  mutable n_charged_units : int;
}

let meta =
  {
    Intf.name = "COMMU";
    family = Intf.Forward;
    restriction = "operation semantics";
    async_propagation = "Query & Update";
    sorting_time = "doesn't matter";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let wake_queries site =
  let waiting = List.rev site.parked_queries in
  site.parked_queries <- [];
  List.iter (fun p -> p.resume ()) waiting

let wake_updates site =
  let waiting = List.rev site.parked_updates in
  site.parked_updates <- [];
  List.iter (fun p -> p.resume ()) waiting

let apply_mset_inner t site mset =
  let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(Engine.now t.env.engine)
      (Trace.Mset_applied
         { et = mset.et; site = site.id; n_ops = List.length mset.ops; order = None });
  List.iter
    (fun (i : Intf.iop) ->
      (* Partial replication: a site executes only the ops on keys it
         replicates (with the full map every op qualifies). *)
      if
        t.full
        || Sharding.replicates_id t.env.Intf.sharding ~site:site.id ~id:i.Intf.id
      then begin
        let key = i.Intf.key in
        ignore (Lock_counter.incr site.counters key);
        ignore (Lock_counter.add_weight site.counters key (op_weight i.Intf.op));
        (match Store.apply_id_unit site.store i.Intf.id i.Intf.op with
        | Ok () -> ()
        | Error _ -> invalid_arg "COMMU: commutative op failed to apply");
        log_action site ~et:mset.et ~key i.Intf.op
      end)
    mset.ops

let apply_mset t site mset =
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    apply_mset_inner t site mset;
    Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
  end
  else apply_mset_inner t site mset

let charges_of ops =
  List.map (fun (i : Intf.iop) -> (i.Intf.key, op_weight i.Intf.op)) ops

let complete_at t site charges =
  List.iter
    (fun (key, w) ->
      (* Only counters this site actually raised (it applied only the
         replicated subset of the MSet). *)
      if
        t.full
        || Sharding.replicates_id t.env.Intf.sharding ~site:site.id
             ~id:(Keyspace.find t.env.Intf.keyspace key)
      then begin
        ignore (Lock_counter.decr site.counters key);
        ignore (Lock_counter.remove_weight site.counters key w)
      end)
    charges;
  wake_queries site;
  wake_updates site

(* Interest set of an ET, rebuilt from its charge keys: the sites that
   replicate at least one touched shard.  Shared scratch cursor — valid
   only until the next [interested] call. *)
let interested t charges =
  let c = t.dests in
  Sharding.Dests.reset c;
  List.iter
    (fun (key, _) ->
      Sharding.Dests.add_id c (Keyspace.find t.env.Intf.keyspace key))
    charges;
  c

let receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Apply mset ->
      apply_mset t site mset;
      Squeue.send t.fabric ~src:site_id ~dst:mset.origin
        (Applied { et = mset.et; by = site_id })
  | Applied { et; by = _ } -> (
      match Hashtbl.find_opt t.inflight et with
      | None -> ()
      | Some record ->
          record.waiting_acks <- record.waiting_acks - 1;
          if record.waiting_acks = 0 then begin
            Hashtbl.remove t.inflight et;
            let complete = Complete { et; charges = record.charges } in
            if t.full then Squeue.broadcast t.fabric ~src:site_id complete
            else
              Squeue.multicast t.fabric ~src:site_id
                ~dests:(interested t record.charges)
                complete;
            complete_at t site record.charges
          end)
  | Complete { et = _; charges } -> complete_at t site charges

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Unordered
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 counters = Lock_counter.create ~hint:env.Intf.store_hint ();
                 parked_queries = [];
                 parked_updates = [];
                 active_queries = [];
                 down = false;
               });
         fabric;
         inflight = Hashtbl.create 32;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         n_updates = 0;
         n_queries = 0;
         n_rejected = 0;
         n_query_waits = 0;
         n_update_waits = 0;
         n_charged_units = 0;
       })
  in
  Lazy.force t

let intent_to_op = function
  | Intf.Add (k, d) -> Ok (k, Op.Incr d)
  | Intf.Set (k, _) ->
      Error (Printf.sprintf "COMMU: Set on %s is not commutative" k)
  | Intf.Mul (k, _) ->
      Error
        (Printf.sprintf
           "COMMU: Mul on %s does not commute with the additive class" k)

let submit_update t ~origin intents k =
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else
  let translated = List.map intent_to_op intents in
  match List.find_opt Result.is_error translated with
  | Some (Error message) ->
      t.n_rejected <- t.n_rejected + 1;
      k (Intf.Rejected message)
  | Some (Ok _) | None ->
      if intents = [] then k (Intf.Rejected "empty update ET")
      else begin
        t.n_updates <- t.n_updates + 1;
        let ops =
          List.map
            (fun r ->
              let key, op = Result.get_ok r in
              {
                Intf.id = Esr_store.Keyspace.intern t.env.Intf.keyspace key;
                key;
                op;
              })
            translated
        in
        let et = t.env.Intf.next_et () in
        let site = t.sites.(origin) in
        let keys = List.map Intf.iop_key ops in
        let charges = charges_of ops in
        (* An ET whose own |delta| exceeds the value limit can never be
           admitted; waiting would hang it forever. *)
        let impossible =
          match t.env.Intf.config.Intf.commu_value_limit with
          | None -> false
          | Some limit -> List.exists (fun (_, w) -> w > limit +. 1e-9) charges
        in
        if impossible then begin
          t.n_rejected <- t.n_rejected + 1;
          k (Intf.Rejected "COMMU: update exceeds the value limit outright")
        end
        else
        let rec attempt () =
          let count_exceeds =
            match t.env.Intf.config.Intf.commu_update_limit with
            | None -> false
            | Some limit ->
                List.exists
                  (fun key -> Lock_counter.would_exceed site.counters key ~limit)
                  keys
          in
          let value_exceeds =
            match t.env.Intf.config.Intf.commu_value_limit with
            | None -> false
            | Some limit ->
                List.exists
                  (fun (key, w) ->
                    Lock_counter.weight_would_exceed site.counters key ~added:w
                      ~limit)
                  charges
          in
          if count_exceeds || value_exceeds then
            match t.env.Intf.config.Intf.commu_limit_policy with
            | `Abort ->
                t.n_rejected <- t.n_rejected + 1;
                k
                  (Intf.Rejected
                     (if value_exceeds then "COMMU: value limit reached"
                      else "COMMU: lock-counter limit reached"))
            | `Wait ->
                t.n_update_waits <- t.n_update_waits + 1;
                let fail () =
                  (* The site crashed while the update waited for its
                     counters; the wait context is volatile, so the client
                     gets a rejection (the ET never applied anywhere). *)
                  t.n_rejected <- t.n_rejected + 1;
                  k (Intf.Rejected "COMMU: origin site crashed while waiting")
                in
                site.parked_updates <-
                  { resume = attempt; fail } :: site.parked_updates
          else begin
            let mset = { et; ops; origin } in
            let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
            if Trace.on trace then
              Trace.emit trace ~time:(Engine.now t.env.engine)
                (Trace.Mset_enqueued
                   {
                     et;
                     origin;
                     n_ops = List.length ops;
                     keys = List.map (fun (i : Intf.iop) -> i.Intf.key) ops;
                   });
            apply_mset t site mset;
            (* Interest routing: the MSet travels only to sites replicating
               a touched shard.  With the full map that is everybody. *)
            let n_remote =
              if t.full then t.env.Intf.sites - 1
              else
                let c = interested t charges in
                if Sharding.Dests.mem c origin then Sharding.Dests.count c - 1
                else Sharding.Dests.count c
            in
            if n_remote > 0 then begin
              Hashtbl.replace t.inflight et { charges; waiting_acks = n_remote };
              let propagate () =
                if t.full then Squeue.broadcast t.fabric ~src:origin (Apply mset)
                else
                  Squeue.multicast t.fabric ~src:origin
                    ~dests:(interested t charges) (Apply mset)
              in
              let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
              if Prof.on prof then begin
                let t0 = Prof.start prof in
                let a0 = Prof.alloc0 prof in
                propagate ();
                Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
              end
              else propagate ()
            end
            else complete_at t site charges;
            (* The update ET commits locally and propagates asynchronously. *)
            k (Intf.Committed { committed_at = Engine.now t.env.engine })
          end
        in
        attempt ()
      end

let submit_query t ~site:site_id ~keys ~epsilon k =
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let et = t.env.Intf.next_et () in
  let eps = Epsilon.create epsilon in
  let started_at = Engine.now t.env.engine in
  let waited = ref false in
  let values = ref [] in
  if site.down then
    (* Graceful failure: a crashed site answers from its last image,
       flagged degraded. *)
    k
      {
        Intf.values = List.map (fun key -> (key, Store.get site.store key)) keys;
        charged = 0;
        forced = 0;
        consistent_path = false;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  else
  (* A strictly serializable query must see an atomic snapshot: since
     MSets apply atomically per site, it suffices to wait until every key
     is simultaneously free of in-flight updates and read them all in one
     event (stepping key by key would splice different serialization
     points together). *)
  if epsilon = Epsilon.Limit 0 then begin
    let rec strict_attempt () =
      if List.for_all (fun key -> Lock_counter.count site.counters key = 0) keys
      then begin
        let snapshot =
          List.map
            (fun key ->
              log_action site ~et ~key Op.Read;
              (key, Store.get site.store key))
            keys
        in
        k
          {
            Intf.values = snapshot;
            charged = 0;
            forced = 0;
            consistent_path = !waited;
            started_at;
            served_at = Engine.now t.env.engine;
          }
      end
      else begin
        waited := true;
        t.n_query_waits <- t.n_query_waits + 1;
        let fail () =
          (* Crash while waiting for a clean snapshot: answer degraded
             from whatever the site last held. *)
          k
            {
              Intf.values =
                List.map (fun key -> (key, Store.get site.store key)) keys;
              charged = 0;
              forced = 0;
              consistent_path = false;
              started_at;
              served_at = Engine.now t.env.engine;
            }
        in
        site.parked_queries <-
          { resume = strict_attempt; fail } :: site.parked_queries
      end
    in
    strict_attempt ()
  end
  else begin
  let aq = { killed = false } in
  site.active_queries <- aq :: site.active_queries;
  let finish ~consistent vs =
    site.active_queries <- List.filter (fun a -> a != aq) site.active_queries;
    k
      {
        Intf.values = vs;
        charged = Epsilon.value eps;
        forced = 0;
        consistent_path = consistent;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  let rec step remaining =
    if aq.killed then
      (* Crash mid-query: serve what was gathered, degraded. *)
      finish ~consistent:false (List.rev !values)
    else
    match remaining with
    | [] -> finish ~consistent:!waited (List.rev !values)
    | key :: rest ->
        let pending = Lock_counter.count site.counters key in
        let admissible = pending = 0 || Epsilon.try_charge eps pending in
        if admissible then begin
          if pending > 0 then t.n_charged_units <- t.n_charged_units + pending;
          log_action site ~et ~key Op.Read;
          values := (key, Store.get site.store key) :: !values;
          if rest = [] then step []
          else
            ignore
              (Engine.schedule t.env.engine
                 ~delay:t.env.Intf.config.Intf.query_step_delay (fun () ->
                   step rest))
        end
        else begin
          (* Too much in-flight inconsistency on this object: wait for
             completions to drain the counter. *)
          waited := true;
          t.n_query_waits <- t.n_query_waits + 1;
          site.parked_queries <-
            {
              resume = (fun () -> step remaining);
              fail = (fun () -> finish ~consistent:false (List.rev !values));
            }
            :: site.parked_queries
        end
  in
  step keys
  end

let flush _ = ()

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* COMMU applies MSets on receipt, so there is no order buffer to lose.
       The lock counters and origin-side ack tables are derivable from the
       durable log (applied-but-uncompleted ETs) — classic coordinator-log
       state — so they survive; acks and completions blocked by the outage
       arrive through the stable-queue backlog after recovery.  What dies
       is the wait contexts: parked and in-step queries answer degraded,
       parked (never-applied) updates are rejected. *)
    let pq = site.parked_queries and pu = site.parked_updates in
    site.parked_queries <- [];
    site.parked_updates <- [];
    List.iter (fun p -> p.fail ()) pq;
    List.iter (fun p -> p.fail ()) pu;
    let killed = List.length site.active_queries in
    List.iter (fun aq -> aq.killed <- true) site.active_queries;
    site.active_queries <- [];
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered:0
      ~queries_failed:(List.length pq + killed)
      ~updates_rejected:(List.length pu) ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let quiescent t =
  Hashtbl.length t.inflight = 0
  && Array.for_all
       (fun site ->
         site.parked_queries = [] && site.parked_updates = []
         && site.active_queries = []
         && Lock_counter.total_nonzero site.counters = 0)
       t.sites

let backlog t =
  Array.fold_left
    (fun acc site ->
      acc + List.length site.parked_queries + List.length site.parked_updates
      + List.length site.active_queries)
    (Hashtbl.length t.inflight)
    t.sites

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  (* Shard-aware: a site is only compared on the keys it replicates. *)
  Sharding.converged t.env.Intf.sharding ~keyspace:t.env.Intf.keyspace
    ~store:(fun site -> t.sites.(site).store)

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("rejected", float_of_int t.n_rejected);
    ("query_waits", float_of_int t.n_query_waits);
    ("update_waits", float_of_int t.n_update_waits);
    ("charged_units", float_of_int t.n_charged_units);
  ]

(* COMMU applies on receipt, so it keeps no receipt journal: the durable
   log plus the completion protocol is its whole recovery story. *)
let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.no_resources with
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
