(** TWOPC — synchronous 1SR baseline: primary-site 2PL (a global lock
    service at site 0, sorted-key acquisition, hence no update/update
    deadlocks) plus two-phase commit across all replicas, with
    presumed-abort coordinator timeouts.  Queries lock and read the local
    copy (read-one/write-all).  The "traditional coherency control" the
    paper positions ESR against (§2.4). *)

type t

val meta : Intf.meta
val create : Intf.env -> t

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val flush : t -> unit

val on_crash : t -> site:int -> unit
(** Volatile state at the site is lost: wait contexts fail degraded,
    buffered work is dropped, and in-doubt coordination this site led is
    presumed aborted.  Durable state (the log and protocol journals)
    survives.  Idempotent while the site stays down. *)

val on_recover : t -> site:int -> unit
(** Rebuild the volatile image by replaying the durable log, re-ingest
    journaled protocol state, and resume.  Idempotent while up. *)

val checkpoint : t -> site:int -> unit
(** Asynchronous checkpoint cut at the site (see {!Checkpoint.cut}):
    snapshot the image, truncate the durable log, and reclaim journal
    records behind the watermark.  No-op when the run does not
    checkpoint or the site is down. *)

val quiescent : t -> bool
val backlog : t -> int
val store : t -> site:int -> Esr_store.Store.t
val mvstore : t -> site:int -> Esr_store.Mvstore.t option
val history : t -> site:int -> Esr_core.Hist.t
val converged : t -> bool
val stats : t -> (string * float) list

val resources : t -> site:int -> Intf.resources
(** Per-site durable/volatile footprint.  No receipt journal here, so
    the WAL fields are zero. *)
