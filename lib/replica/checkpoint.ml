(** Asynchronous per-site checkpoints with log/journal truncation.

    Every durable structure the methods rely on — the Hist operation log,
    the WAL receipt journals, the stable-queue journals — is append-mostly
    and, without GC, grows for the whole run, so crash-recovery replay
    cost and peak memory grow linearly with virtual run length.  This
    module bounds all three: at a configurable virtual-time cadence each
    site takes a {e consistent cut} of its materialized image and absorbs
    the log prefix behind the cut into it, after which recovery replays
    only the tail.

    Why a cut at an engine-event boundary is consistent without pausing
    traffic: the simulation is single-threaded in virtual time, and every
    method maintains the invariant [site.store = Logmerge.apply site.hist]
    between events — every store mutation is logged before the event
    returns.  Copying the store (and, for RITU-multiversion, the version
    store) at a scheduled tick therefore captures exactly the state the
    truncated log prefix would reproduce, timestamps included
    ({!Esr_store.Store.copy} preserves per-cell write stamps, so
    latest-writer-wins resolution across the cut is unchanged).  MSets
    that are {e in flight} at the cut — received but not yet applied, or
    enqueued but not yet acknowledged — straddle the watermark and are
    deliberately retained: they live in the WAL receipt journals and the
    stable-queue sender journals, both of which are truncated only behind
    positions the method has declared consumed (WAL records are removed
    at apply time; stable-queue dedup records are reclaimed only below
    the per-stream contiguous-delivery watermark, see
    {!Esr_squeue.Squeue.gc_site}).

    The snapshot itself is copy-on-advance: the live store keeps mutating
    after the cut; the snapshot is a private copy that recovery {e copies
    again} before folding the tail onto it, so a second crash during or
    after recovery replays from the same pristine image (idempotence).

    Checkpointing is opt-in ([Intf.env.checkpoint = None] by default) and,
    when off, every structure behaves byte-identically to a build without
    this module. *)

module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Hist = Esr_core.Hist
module Engine = Esr_sim.Engine
module Trace = Esr_obs.Trace

type config = {
  interval : float;  (** virtual ms between cuts; must be positive *)
  retain : int;  (** snapshots kept per site (>= 1); recovery uses the newest *)
}

let default_retain = 2

type snapshot = {
  at : float;  (** virtual time of the cut *)
  image : Store.t;  (** private copy; never handed out without re-copying *)
  mv_image : Mvstore.t option;  (** RITU-multiversion companion image *)
  baseline : int;  (** cumulative log entries absorbed through this cut *)
}

type site_state = {
  mutable snaps : snapshot list;  (* newest first, length <= retain *)
  mutable cuts : int;
  mutable folded : int;  (* cumulative log entries truncated *)
  mutable reclaimed : int;  (* cumulative journal records collected *)
  mutable tail_replays : int;
  mutable last_tail : int;
  mutable max_tail : int;
}

type t = {
  config : config;
  states : site_state array;
  obs : Esr_obs.Obs.t;
}

let create ?obs ~sites config =
  if not (Float.is_finite config.interval) || config.interval <= 0.0 then
    invalid_arg "Checkpoint.create: interval must be positive and finite";
  if config.retain < 1 then
    invalid_arg "Checkpoint.create: retain must be at least 1";
  if sites <= 0 then invalid_arg "Checkpoint.create: sites must be positive";
  let obs = match obs with Some o -> o | None -> Esr_obs.Obs.default () in
  {
    config;
    states =
      Array.init sites (fun _ ->
          {
            snaps = [];
            cuts = 0;
            folded = 0;
            reclaimed = 0;
            tail_replays = 0;
            last_tail = 0;
            max_tail = 0;
          });
    obs;
  }

let config t = t.config
let interval t = t.config.interval

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let cut t ~engine ~site ?mv ~store ~hist ~reclaimed () =
  let s = t.states.(site) in
  let folded = Hist.length hist in
  s.cuts <- s.cuts + 1;
  s.folded <- s.folded + folded;
  s.reclaimed <- s.reclaimed + reclaimed;
  let snap =
    {
      at = Engine.now engine;
      image = Store.copy store;
      mv_image = Option.map Mvstore.copy mv;
      baseline = s.folded;
    }
  in
  s.snaps <- take t.config.retain (snap :: s.snaps);
  let trace = t.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:snap.at
      (Trace.Checkpoint_cut { site; folded; reclaimed });
  Hist.empty

let newest t ~site = match t.states.(site).snaps with [] -> None | s :: _ -> Some s

(* Recovery bases re-copy the retained image: the caller folds the log
   tail onto the returned store in place, and the snapshot must stay
   pristine so a second crash recovers from the same image. *)
let base t ~site = Option.map (fun s -> Store.copy s.image) (newest t ~site)

let base_mv t ~site =
  Option.bind (newest t ~site) (fun s -> Option.map Mvstore.copy s.mv_image)

let note_tail_replay t ~site ~len =
  let s = t.states.(site) in
  s.tail_replays <- s.tail_replays + 1;
  s.last_tail <- len;
  s.max_tail <- Stdlib.max s.max_tail len

(* {2 Stats for the [ckpt/] gauges} *)

let cuts t ~site = t.states.(site).cuts
let truncated_log t ~site = t.states.(site).folded
let truncated_journal t ~site = t.states.(site).reclaimed
let tail_replays t ~site = t.states.(site).tail_replays
let last_tail t ~site = t.states.(site).last_tail
let max_tail t ~site = t.states.(site).max_tail
let retained t ~site = List.length t.states.(site).snaps

let baseline t ~site =
  match newest t ~site with Some s -> s.baseline | None -> 0
