(** ORDUP — ordered updates (paper §3.1).

    Update MSets carry a global order; every replica executes them in that
    order (asynchronously, buffering out-of-order arrivals), so update ETs
    are SR by construction.  Query ETs read local state freely; their
    inconsistency is the overlap with update ETs not yet executed locally
    (or executed past the query's serialization point), charged against
    the query's epsilon counter.  An exhausted counter forces the query
    onto the consistent path: it acquires its own slot in the global order
    and waits until the replica has executed exactly up to that slot —
    "the query ET is allowed to proceed only when it is running in the
    global order".

    Two ordering sources (ablation A1):
    - [`Sequencer]: a central order server issues dense tickets; a replica
      can execute ticket [t+1] the moment it arrives.
    - [`Lamport]: decentralized timestamps; a replica may execute an MSet
      only once per-origin watermarks prove no earlier-stamped MSet can
      still arrive (the delivery-order cost the paper warns about). *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Gtime = Esr_clock.Gtime
module Lamport = Esr_clock.Lamport
module Sequencer = Esr_clock.Sequencer
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

type order = Ticket of int | Stamp of Gtime.t

let order_leq a b =
  match (a, b) with
  | Ticket x, Ticket y -> x <= y
  | Stamp x, Stamp y -> Gtime.compare x y <= 0
  | Ticket _, Stamp _ | Stamp _, Ticket _ ->
      invalid_arg "Ordup: mixed order kinds"

(* MSet ops carry keys pre-interned at the origin ({!Intf.iop}), so the
   per-site apply loop is an array store, not a string hash. *)
type mset = {
  et : Et.id;
  order : order;
  ops : Intf.iop list;
  origin : int;
  commit_site : int;
      (* the site whose in-order execution commits the ET: the origin when
         it replicates a touched shard (always, under full replication),
         otherwise the lowest interested replica *)
}

type msg = Update of mset | Watermark of Gtime.t

type active_query = {
  aq_order : order;
  aq_keys : string list;
  aq_eps : Epsilon.counter;
  mutable aq_failed : bool;  (* a charge was refused; fall back to SR path *)
  mutable aq_killed : bool;  (* the site crashed mid-query: finish degraded *)
}

type parked_query = {
  pq_target : order;
  pq_resume : unit -> unit;
  pq_fail : unit -> unit;  (* degraded outcome when the site crashes *)
}

type site = {
  id : int;
  mutable store : Store.t;  (* volatile image; rebuilt from [hist] on recovery *)
  mutable hist : Hist.t;  (* the durable log *)
  (* sequencer mode *)
  mutable last_exec : int;
  seq_buffer : (int, mset) Hashtbl.t;
  (* lamport mode *)
  clock : Lamport.t;
  mutable lam_buffer : mset list;  (* ascending stamp order *)
  watermarks : Gtime.t array;
  mutable active : active_query list;
  mutable parked : parked_query list;
  mutable down : bool;
}

type t = {
  env : Intf.env;
  mode : [ `Sequencer | `Lamport ];
  full : bool;  (* replication factor = sites: historical broadcast path *)
  dests : Sharding.Dests.t;  (* reusable routing cursor (submit path) *)
  sequencer : Sequencer.t;
  site_issued : int array;
      (* sequencer mode under partial replication: per-site dense ticket
         streams (a site executes ITS OWN stream gap-free; cross-site
         order is inherited from submission order, which assigns every
         interested site its next ticket atomically) *)
  sites : site array;
  fabric : msg Squeue.t;
  (* origin site and commit callback; the callback is volatile origin-side
     state, dropped (with a rejection) when the origin crashes *)
  pending_commits : (Et.id, int * (Intf.update_outcome -> unit)) Hashtbl.t;
  wal : (Et.id, mset) Recovery.Wal.t;  (* durable MSet receipt journal *)
  mutable n_fallbacks : int;
  mutable n_charged_units : int;
  mutable n_updates : int;
  mutable n_queries : int;
}

let meta =
  {
    Intf.name = "ORDUP";
    family = Intf.Forward;
    restriction = "message delivery";
    async_propagation = "Query only";
    sorting_time = "at update";
  }

(* --- execution at a site --- *)

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let apply_mset_inner t site mset =
  let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(Engine.now t.env.engine)
      (Trace.Mset_applied
         {
           et = mset.et;
           site = site.id;
           n_ops = List.length mset.ops;
           order = (match mset.order with Ticket n -> Some n | Stamp _ -> None);
         });
  List.iter
    (fun (i : Intf.iop) ->
      (* Union routing delivers the whole MSet to every interested site;
         each site materializes only the shards it replicates. *)
      if
        t.full
        || Sharding.replicates_id t.env.Intf.sharding ~site:site.id
             ~id:i.Intf.id
      then begin
        (match Store.apply_id_unit site.store i.Intf.id i.Intf.op with
        | Ok () -> ()
        | Error _ ->
            (* ORDUP imposes no operation restriction; type errors are a
               workload bug, surfaced loudly. *)
            invalid_arg
              (Printf.sprintf "ORDUP: op %s failed on %s"
                 (Op.to_string i.Intf.op) i.Intf.key));
        log_action site ~et:mset.et ~key:i.Intf.key i.Intf.op
      end)
    mset.ops;
  (* Charge active queries that this update interleaves: it executes after
     the query's serialization point and touches its keys. *)
  List.iter
    (fun aq ->
      if
        (not aq.aq_failed)
        && (not (order_leq mset.order aq.aq_order))
        && List.exists
             (fun (i : Intf.iop) -> List.mem i.Intf.key aq.aq_keys)
             mset.ops
      then
        if Epsilon.try_charge aq.aq_eps 1 then
          t.n_charged_units <- t.n_charged_units + 1
        else aq.aq_failed <- true)
    site.active;
  Recovery.Wal.consume t.wal ~site:site.id ~key:mset.et;
  if mset.commit_site = site.id then
    match Hashtbl.find_opt t.pending_commits mset.et with
    | Some (_, k) ->
        Hashtbl.remove t.pending_commits mset.et;
        k (Intf.Committed { committed_at = Engine.now t.env.engine })
    | None -> ()

let apply_mset t site mset =
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    apply_mset_inner t site mset;
    Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
  end
  else apply_mset_inner t site mset

let order_reached site = function
  | Ticket n -> site.last_exec >= n
  | Stamp ts ->
      (* Every buffered MSet at or below the stamp is executed, and the
         watermarks prove nothing earlier can still arrive. *)
      Array.for_all (fun w -> Gtime.compare w ts >= 0) site.watermarks
      && not
           (List.exists (fun m ->
                match m.order with
                | Stamp s -> Gtime.compare s ts <= 0
                | Ticket _ -> false)
              site.lam_buffer)

let wake_parked site =
  let ready, still =
    List.partition (fun pq -> order_reached site pq.pq_target) site.parked
  in
  site.parked <- still;
  List.iter (fun pq -> pq.pq_resume ()) ready

let rec drain_sequencer t site =
  match Hashtbl.find_opt site.seq_buffer (site.last_exec + 1) with
  | None -> ()
  | Some mset ->
      Hashtbl.remove site.seq_buffer (site.last_exec + 1);
      site.last_exec <- site.last_exec + 1;
      apply_mset t site mset;
      drain_sequencer t site

let lam_executable site mset =
  match mset.order with
  | Stamp ts -> Array.for_all (fun w -> Gtime.compare ts w <= 0) site.watermarks
  | Ticket _ -> false

let rec drain_lamport t site =
  match site.lam_buffer with
  | head :: rest when lam_executable site head ->
      site.lam_buffer <- rest;
      apply_mset t site head;
      drain_lamport t site
  | _ :: _ | [] -> ()

let update_watermark site ~origin ts =
  if Gtime.compare ts site.watermarks.(origin) > 0 then
    site.watermarks.(origin) <- ts;
  (* The site's own watermark follows its clock: its next stamp will be
     strictly larger than the current peek. *)
  Gtime.witness site.clock ts;
  site.watermarks.(site.id) <-
    Gtime.make ~counter:(Lamport.peek site.clock) ~site:site.id

let insert_sorted mset buffer =
  let stamp m =
    match m.order with Stamp s -> s | Ticket _ -> assert false
  in
  let rec insert = function
    | [] -> [ mset ]
    | head :: rest as all ->
        if Gtime.compare (stamp mset) (stamp head) < 0 then mset :: all
        else head :: insert rest
  in
  insert buffer

let receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  (match msg with
  | Update mset ->
      (* Journal the receipt before it enters the volatile order buffer:
         the transport acked it, so the journal is now the only durable
         copy the site holds until the MSet is applied. *)
      Recovery.Wal.append t.wal ~site:site_id ~key:mset.et mset;
      (match (t.mode, mset.order) with
      | `Sequencer, Ticket n ->
          Hashtbl.replace site.seq_buffer n mset;
          drain_sequencer t site
      | `Lamport, Stamp ts ->
          update_watermark site ~origin:mset.origin ts;
          site.lam_buffer <- insert_sorted mset site.lam_buffer;
          drain_lamport t site
      | (`Sequencer | `Lamport), _ -> assert false)
  | Watermark ts ->
      update_watermark site ~origin:ts.Gtime.site ts;
      drain_lamport t site);
  wake_parked site

(* --- public interface --- *)

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Fifo
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         mode = env.Intf.config.Intf.ordup_ordering;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         sequencer = Sequencer.create ();
         site_issued = Array.make env.Intf.sites 0;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 last_exec = 0;
                 seq_buffer = Hashtbl.create 32;
                 clock = Lamport.create ();
                 lam_buffer = [];
                 watermarks = Array.make env.Intf.sites Gtime.zero;
                 active = [];
                 parked = [];
                 down = false;
               });
         fabric;
         pending_commits = Hashtbl.create 32;
         wal =
           Recovery.Wal.create ~prof:env.Intf.obs.Esr_obs.Obs.prof
             ~hint:env.Intf.store_hint ~sites:env.Intf.sites ();
         n_fallbacks = 0;
         n_charged_units = 0;
         n_updates = 0;
         n_queries = 0;
       })
  in
  Lazy.force t

let intent_to_op env intent =
  let key, op =
    match intent with
    | Intf.Set (k, v) -> (k, Op.Write v)
    | Intf.Add (k, d) -> (k, Op.Incr d)
    | Intf.Mul (k, f) -> (k, Op.Mult f)
  in
  { Intf.id = Esr_store.Keyspace.intern env.Intf.keyspace key; key; op }

let submit_update t ~origin intents k =
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else if intents = [] then k (Intf.Rejected "empty update ET")
  else begin
    t.n_updates <- t.n_updates + 1;
    let et = t.env.Intf.next_et () in
    let ops = List.map (intent_to_op t.env) intents in
    let site = t.sites.(origin) in
    if t.full then begin
      let order =
        match t.mode with
        | `Sequencer -> Ticket (Sequencer.next t.sequencer)
        | `Lamport -> Stamp (Gtime.next site.clock ~site:origin)
      in
      let mset = { et; order; ops; origin; commit_site = origin } in
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_enqueued
             {
               et;
               origin;
               n_ops = List.length ops;
               keys = List.map (fun (i : Intf.iop) -> i.Intf.key) ops;
             });
      Hashtbl.replace t.pending_commits et (origin, k);
      (* Remote replicas get the MSet through the stable queues; the origin
         buffers it directly (local enqueue is not subject to the network). *)
      let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
      if Prof.on prof then begin
        let t0 = Prof.start prof in
        let a0 = Prof.alloc0 prof in
        Squeue.broadcast t.fabric ~src:origin (Update mset);
        Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
      end
      else Squeue.broadcast t.fabric ~src:origin (Update mset);
      receive t ~site:origin (Update mset)
    end
    else begin
      let c = t.dests in
      Sharding.Dests.reset c;
      List.iter (fun (i : Intf.iop) -> Sharding.Dests.add_id c i.Intf.id) ops;
      let commit_site =
        if Sharding.Dests.mem c origin then origin
        else begin
          let first = ref (-1) in
          Sharding.Dests.iter c (fun s -> if !first < 0 then first := s);
          !first
        end
      in
      let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
      if Trace.on trace then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Mset_enqueued
             {
               et;
               origin;
               n_ops = List.length ops;
               keys = List.map (fun (i : Intf.iop) -> i.Intf.key) ops;
             });
      Hashtbl.replace t.pending_commits et (origin, k);
      let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
      match t.mode with
      | `Sequencer ->
          (* Per-site dense tickets: each interested site gets the next
             number of its own stream, assigned here in one atomic step so
             every stream lists concurrent ETs in the same (submission)
             order. *)
          let local = ref None in
          let propagate () =
            Sharding.Dests.iter c (fun dst ->
                t.site_issued.(dst) <- t.site_issued.(dst) + 1;
                let m =
                  { et; order = Ticket t.site_issued.(dst); ops; origin;
                    commit_site }
                in
                if dst = origin then local := Some m
                else Squeue.send t.fabric ~src:origin ~dst (Update m))
          in
          if Prof.on prof then begin
            let t0 = Prof.start prof in
            let a0 = Prof.alloc0 prof in
            propagate ();
            Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
          end
          else propagate ();
          (match !local with
          | Some m -> receive t ~site:origin (Update m)
          | None -> ())
      | `Lamport ->
          (* Interested sites get the MSet; everyone else still needs the
             stamp as a watermark, or their delivery-order proof (and any
             parked SR query) would stall until the final flush. *)
          let stamp = Gtime.next site.clock ~site:origin in
          let mset = { et; order = Stamp stamp; ops; origin; commit_site } in
          let propagate () =
            for dst = 0 to t.env.Intf.sites - 1 do
              if dst <> origin then
                if Sharding.Dests.mem c dst then
                  Squeue.send t.fabric ~src:origin ~dst (Update mset)
                else Squeue.send t.fabric ~src:origin ~dst (Watermark stamp)
            done
          in
          if Prof.on prof then begin
            let t0 = Prof.start prof in
            let a0 = Prof.alloc0 prof in
            propagate ();
            Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
          end
          else propagate ();
          if Sharding.Dests.mem c origin then
            receive t ~site:origin (Update mset)
          else receive t ~site:origin (Watermark stamp)
    end
  end

(* The query's serialization point: everything ordered at or before this
   is "the past" the query should see. *)
let query_order t site =
  match t.mode with
  | `Sequencer ->
      (* Under partial replication each site executes its own dense
         stream, so the serialization point is the last ticket issued FOR
         this site, not the global count. *)
      if t.full then Ticket (Sequencer.issued t.sequencer)
      else Ticket t.site_issued.(site.id)
  | `Lamport -> Stamp (Gtime.make ~counter:(Lamport.peek site.clock) ~site:site.id)

(* Updates ordered before the query's point but not yet executed locally:
   the query's initial overlap. *)
let missing_before site = function
  | Ticket n -> Stdlib.max 0 (n - site.last_exec)
  | Stamp ts ->
      List.length
        (List.filter
           (fun m ->
             match m.order with
             | Stamp s -> Gtime.compare s ts <= 0
             | Ticket _ -> false)
           site.lam_buffer)

let read_all site ~et keys =
  List.map
    (fun key ->
      log_action site ~et ~key Op.Read;
      (key, Store.get site.store key))
    keys

let submit_query t ~site:site_id ~keys ~epsilon k =
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let et = t.env.Intf.next_et () in
  let eps = Epsilon.create epsilon in
  let started_at = Engine.now t.env.engine in
  let finish ~charged ~consistent values =
    k
      {
        Intf.values;
        charged;
        forced = 0;
        consistent_path = consistent;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  in
  if site.down then
    (* Graceful failure: a crashed site answers from its last image,
       flagged degraded. *)
    finish ~charged:0 ~consistent:false
      (List.map (fun key -> (key, Store.get site.store key)) keys)
  else begin
  let consistent_path () =
    t.n_fallbacks <- t.n_fallbacks + 1;
    let target = query_order t site in
    let resume () =
      finish ~charged:(Epsilon.value eps) ~consistent:true
        (read_all site ~et keys)
    in
    let fail () =
      (* The site crashed while the query waited: its volatile context is
         gone, so answer degraded from whatever the site last held. *)
      finish ~charged:(Epsilon.value eps) ~consistent:false
        (List.map (fun key -> (key, Store.get site.store key)) keys)
    in
    if order_reached site target then resume ()
    else
      site.parked <-
        { pq_target = target; pq_resume = resume; pq_fail = fail } :: site.parked
  in
  let q_order = query_order t site in
  let missing = missing_before site q_order in
  let can_start = missing = 0 || Epsilon.try_charge eps missing in
  if not can_start then consistent_path ()
  else begin
    t.n_charged_units <- t.n_charged_units + missing;
    let aq =
      {
        aq_order = q_order;
        aq_keys = keys;
        aq_eps = eps;
        aq_failed = false;
        aq_killed = false;
      }
    in
    site.active <- aq :: site.active;
    (* The query's inconsistency window, for the auditor's overlap
       reconstruction: serialization point, lump charge, read set at open;
       final charge and exit path at close.  Ticket orders only — Lamport
       stamps have no integer point to reconstruct against. *)
    let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
    let w = t.n_queries in
    let windowed = Trace.on trace && (match q_order with Ticket _ -> true | Stamp _ -> false) in
    if windowed then begin
      match q_order with
      | Ticket point ->
          Trace.emit trace ~time:(Engine.now t.env.engine)
            (Trace.Query_window { w; site = site_id; point; missing; keys })
      | Stamp _ -> ()
    end;
    let close outcome =
      if windowed then
        Trace.emit trace ~time:(Engine.now t.env.engine)
          (Trace.Query_window_closed
             { w; site = site_id; charged = Epsilon.value eps; outcome })
    in
    let values = ref [] in
    let rec step remaining =
      if aq.aq_killed then begin
        (* Crash mid-query: the remaining reads cannot happen; serve what
           was gathered, marked as the degraded (non-SR) path. *)
        close `Killed;
        finish ~charged:(Epsilon.value eps) ~consistent:false
          (List.rev !values)
      end
      else if aq.aq_failed then begin
        site.active <- List.filter (fun a -> a != aq) site.active;
        close `Fallback;
        consistent_path ()
      end
      else
        match remaining with
        | [] ->
            site.active <- List.filter (fun a -> a != aq) site.active;
            close `Ok;
            finish ~charged:(Epsilon.value eps) ~consistent:false
              (List.rev !values)
        | key :: rest ->
            log_action site ~et ~key Op.Read;
            values := (key, Store.get site.store key) :: !values;
            if rest = [] then step []
            else
              ignore
                (Engine.schedule t.env.engine
                   ~delay:t.env.Intf.config.Intf.query_step_delay (fun () ->
                     step rest))
    in
    step keys
  end
  end

let flush t =
  match t.mode with
  | `Sequencer -> ()
  | `Lamport ->
      Array.iter
        (fun site ->
          let ts =
            Gtime.make ~counter:(Lamport.peek site.clock) ~site:site.id
          in
          site.watermarks.(site.id) <- ts;
          Squeue.broadcast t.fabric ~src:site.id (Watermark ts);
          drain_lamport t site;
          wake_parked site)
        t.sites

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* Volatile order buffers are gone; the receipt journal ([t.wal]) keeps
       the only durable copy of what they held. *)
    let buffered = Hashtbl.length site.seq_buffer + List.length site.lam_buffer in
    Hashtbl.reset site.seq_buffer;
    site.lam_buffer <- [];
    (* Parked queries fail immediately with a degraded answer; active
       queries are killed and finish degraded at their next step. *)
    let parked = site.parked in
    site.parked <- [];
    List.iter (fun pq -> pq.pq_fail ()) parked;
    let killed = List.length site.active in
    List.iter (fun aq -> aq.aq_killed <- true) site.active;
    site.active <- [];
    let queries_failed = List.length parked + killed in
    (* Origin-side commit callbacks are volatile: clients of this site get
       a rejection.  The MSets themselves are already in the stable fabric
       and still commit everywhere (including here, after recovery). *)
    let orphaned =
      Hashtbl.fold
        (fun et (origin, k) acc ->
          if origin = site_id then (et, k) :: acc else acc)
        t.pending_commits []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (et, k) ->
        Hashtbl.remove t.pending_commits et;
        k (Intf.Rejected "origin site crashed"))
      orphaned;
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered ~queries_failed
      ~updates_rejected:(List.length orphaned) ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    (* Replay the durable log — checkpoint + tail when the run
       checkpoints — to rebuild the store image... *)
    site.store <-
      Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
        ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
        ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id site.hist;
    (* ...then re-ingest the journaled-but-unapplied MSets into the order
       buffers.  The stable-queue backlog redelivers everything else. *)
    List.iter
      (fun mset ->
        match (t.mode, mset.order) with
        | `Sequencer, Ticket n -> Hashtbl.replace site.seq_buffer n mset
        | `Lamport, Stamp ts ->
            update_watermark site ~origin:mset.origin ts;
            site.lam_buffer <- insert_sorted mset site.lam_buffer
        | (`Sequencer | `Lamport), _ -> assert false)
      (Recovery.Wal.entries t.wal ~site:site_id);
    (match t.mode with
    | `Sequencer -> drain_sequencer t site
    | `Lamport -> drain_lamport t site);
    wake_parked site
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        (* Unapplied MSets straddling the cut stay in the receipt journal
           ([t.wal]); only the stable-queue dedup records behind the
           delivery watermark are reclaimable here. *)
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
            ~store:site.store ~hist:site.hist ~reclaimed ()
      end

let quiescent t =
  Array.for_all
    (fun site ->
      Hashtbl.length site.seq_buffer = 0
      && site.lam_buffer = [] && site.parked = [] && site.active = [])
    t.sites
  && Hashtbl.length t.pending_commits = 0

let backlog t =
  Array.fold_left
    (fun acc site ->
      acc + Hashtbl.length site.seq_buffer + List.length site.lam_buffer
      + List.length site.parked + List.length site.active)
    (Hashtbl.length t.pending_commits)
    t.sites

let store t ~site = t.sites.(site).store
let mvstore _ ~site:_ = None
let history t ~site = t.sites.(site).hist

let converged t =
  if t.full then
    let reference = t.sites.(0).store in
    Array.for_all (fun site -> Store.equal site.store reference) t.sites
  else
    Sharding.converged t.env.Intf.sharding ~keyspace:t.env.Intf.keyspace
      ~store:(fun site -> t.sites.(site).store)

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("consistent_fallbacks", float_of_int t.n_fallbacks);
    ("charged_units", float_of_int t.n_charged_units);
  ]

let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    wal_entries = Recovery.Wal.size t.wal ~site:site_id;
    wal_appended = Recovery.Wal.appended t.wal ~site:site_id;
    wal_high_water = Recovery.Wal.high_water t.wal ~site:site_id;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
