(** Shared vocabulary of the replica-control methods.

    Every protocol — the paper's four asynchronous methods and the two
    synchronous 1SR baselines — implements {!module-type-S}, so the
    harness, the workload driver, and the bench tables treat them
    uniformly.  The Table 1 metadata ({!meta}) lives on the module, which
    is what lets the bench harness derive the paper's Table 1 from the
    registry instead of hard-coding it. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Epsilon = Esr_core.Epsilon
module Hist = Esr_core.Hist

(** What a client wants an update ET to do, before the method translates
    it into the operations it supports.  Methods whose restriction
    excludes an intent refuse the update (making Table 1's "kind of
    restriction" row executable). *)
type intent =
  | Set of string * Value.t  (** overwrite; RITU turns it into a timestamped blind write *)
  | Add of string * int  (** commutative increment *)
  | Mul of string * int  (** commutative multiplication (COMPE's §4.1 example) *)

let pp_intent ppf = function
  | Set (k, v) -> Format.fprintf ppf "set %s=%a" k Value.pp v
  | Add (k, d) -> Format.fprintf ppf "add %s+=%d" k d
  | Mul (k, f) -> Format.fprintf ppf "mul %s*=%d" k f

let intent_key = function Set (k, _) | Add (k, _) | Mul (k, _) -> k

(** An operation with its key interned at the origin: replicas apply by
    dense id (one array load) instead of re-hashing the key string at
    every site.  The name rides along for the durable log and traces. *)
type iop = { id : int; key : string; op : Op.t }

let iop_key i = i.key
let iop_op i = i.op

type update_outcome =
  | Committed of { committed_at : float }
  | Rejected of string

type query_outcome = {
  values : (string * Value.t) list;
  charged : int;  (** inconsistency units accumulated *)
  forced : int;
      (** units charged unconditionally by backward methods (§4.2
          compensations); [charged - forced] stays ≤ the epsilon spec,
          the forced remainder is the documented hazard *)
  consistent_path : bool;  (** true when the query fell back to the SR path *)
  started_at : float;
  served_at : float;
}

(** Per-site durable/volatile footprint, read by the resource probes the
    harness registers (group ["res"] gauges and [res/] series columns).
    All pure reads at sampling cadence; nothing here may perturb the
    simulation.  The cumulative fields ([wal_appended],
    [journal_enqueued]) are monotone even though their current-depth
    counterparts drain, which is what lets the soak experiment chart
    churn as well as standing growth. *)
type resources = {
  log_entries : int;  (** durable Hist operation-log length (append-only) *)
  log_bytes : int;  (** modelled retained bytes of that log *)
  wal_entries : int;  (** receipt-journal records not yet consumed *)
  wal_appended : int;  (** cumulative receipt-journal appends *)
  wal_high_water : int;  (** peak simultaneous receipt-journal records *)
  journal_depth : int;  (** stable-queue journal entries, this site as sender *)
  journal_enqueued : int;  (** cumulative stable-queue appends by this site *)
  store_words : int;  (** live heap words of the materialized store image *)
}

let no_resources =
  {
    log_entries = 0;
    log_bytes = 0;
    wal_entries = 0;
    wal_appended = 0;
    wal_high_water = 0;
    journal_depth = 0;
    journal_enqueued = 0;
    store_words = 0;
  }

(** Family and Table 1 characteristics of a method. *)
type family = Forward | Backward | Synchronous

let family_to_string = function
  | Forward -> "Forwards"
  | Backward -> "Backwards"
  | Synchronous -> "Synchronous"

type meta = {
  name : string;
  family : family;
  restriction : string;  (** Table 1 "kind of restriction" *)
  async_propagation : string;  (** Table 1 "asynchronous propagation" *)
  sorting_time : string;  (** Table 1 "sorting time" *)
}

(** Per-run tuning knobs; each method reads the fields it cares about. *)
type config = {
  ordup_ordering : [ `Sequencer | `Lamport ];
  ritu_mode : [ `Single | `Multi ];
  commu_update_limit : int option;
      (** §3.2 update-side lock-counter limit; [None] = unlimited *)
  commu_value_limit : float option;
      (** update-side bound on the pending |delta| per object — the
          "data value changed asynchronously" criterion of §5.1;
          [None] = unlimited *)
  commu_limit_policy : [ `Wait | `Abort ];
  compe_abort_probability : float;
      (** chance the global transaction aborts after optimistic apply *)
  compe_decision_delay : float;
      (** virtual ms between optimistic apply and global commit/abort *)
  retry_interval : float;  (** stable-queue retransmission period *)
  retry_backoff : Esr_squeue.Squeue.backoff option;
      (** exponential-backoff policy for stable-queue retransmission;
          [None] keeps the historical fixed interval (fault-aware runs
          install {!Esr_squeue.Squeue.default_backoff} so long outages do
          not storm the links) *)
  query_step_delay : float;
      (** virtual ms between successive reads of a multi-key query
          (lets update MSets interleave with the query) *)
  quorum_reads : int option;  (** read quorum; default majority *)
  quorum_writes : int option;  (** write quorum; default majority *)
  twopc_timeout : float;
      (** coordinator aborts an update ET still undecided after this many
          virtual ms (covers distributed deadlocks and partitions) *)
  quasi_refresh : [ `Immediate | `Periodic of float | `Drift of float ];
      (** QUASI coherency condition ("closeness" spec of quasi-copies,
          §5.2): push every primary update, push dirty keys every τ ms,
          or push a key once its value drifts more than α from the last
          propagated image *)
}

let default_config =
  {
    ordup_ordering = `Sequencer;
    ritu_mode = `Single;
    commu_update_limit = None;
    commu_value_limit = None;
    commu_limit_policy = `Wait;
    compe_abort_probability = 0.0;
    compe_decision_delay = 100.0;
    retry_interval = 50.0;
    retry_backoff = None;
    query_step_delay = 1.0;
    quorum_reads = None;
    quorum_writes = None;
    twopc_timeout = 2_000.0;
    quasi_refresh = `Immediate;
  }

(** Everything a method needs to instantiate a replicated system. *)
type env = {
  engine : Esr_sim.Engine.t;
  net : Esr_sim.Net.t;
  prng : Esr_util.Prng.t;
  sites : int;
  config : config;
  store_hint : int;
      (** expected keyspace size — methods pre-size their per-site store
          cell arrays with it so replicas never resize mid-run *)
  keyspace : Keyspace.t;
      (** run-wide key interner shared by every replica store, so a key's
          dense id is stable across sites and MSets can carry ids *)
  sharding : Sharding.t;
      (** shard -> replica-set placement map; methods route MSets and
          propagation only to the sites replicating the touched shards.
          Defaults to {!Sharding.full} (every site replicates every
          shard), which preserves the historical broadcast behaviour
          byte-for-byte. *)
  next_et : unit -> Esr_core.Et.id;  (** shared ET id allocator *)
  obs : Esr_obs.Obs.t;
      (** per-run trace sink + metrics registry; methods emit MSet and
          compensation events through it and hand it to their stable
          queues.  Defaults to a fresh bundle with tracing off. *)
  checkpoint : Checkpoint.t option;
      (** asynchronous checkpoint state shared by the method's
          {!S.checkpoint} hook and its recovery path.  [None] (the
          default) disables checkpointing entirely: no cuts are taken,
          logs and journals grow as they always have, and behaviour is
          byte-identical to pre-checkpoint builds. *)
}

let make_env ?(config = default_config) ?(store_hint = 64) ?sharding ?obs
    ?checkpoint ~engine ~net ~prng () =
  let counter = ref 0 in
  let obs = match obs with Some o -> o | None -> Esr_obs.Obs.default () in
  let sites = Esr_sim.Net.sites net in
  let checkpoint =
    Option.map (fun cfg -> Checkpoint.create ~obs ~sites cfg) checkpoint
  in
  let sharding =
    match sharding with
    | Some s ->
        if Sharding.sites s <> sites then
          invalid_arg "Intf.make_env: sharding sized for a different site count";
        s
    | None -> Sharding.full ~sites
  in
  {
    engine;
    net;
    prng;
    sites;
    config;
    store_hint = Stdlib.max 1 store_hint;
    keyspace = Keyspace.create ~hint:store_hint ();
    sharding;
    next_et =
      (fun () ->
        incr counter;
        !counter);
    obs;
    checkpoint;
  }

(** The uniform replica-control method interface. *)
module type S = sig
  type t

  val meta : meta
  val create : env -> t

  val submit_update :
    t -> origin:int -> intent list -> (update_outcome -> unit) -> unit
  (** Asynchronous: the callback fires at commit (or rejection) virtual
      time.  Rejection is immediate when the intents violate the method's
      restriction. *)

  val submit_query :
    t ->
    site:int ->
    keys:string list ->
    epsilon:Epsilon.spec ->
    (query_outcome -> unit) ->
    unit

  val flush : t -> unit
  (** Emit whatever end-of-run traffic quiescence needs (watermark
      heartbeats, pending decisions).  Idempotent. *)

  val quiescent : t -> bool
  (** Protocol-level quiescence (beyond the transport): no buffered MSets
      waiting for order, no undecided provisional updates, no parked
      queries. *)

  val backlog : t -> int
  (** How much in-protocol work is outstanding right now: buffered MSets
      waiting for their order slot, undecided coordinations, parked ETs.
      [quiescent t] implies [backlog t = 0].  Sampled by the
      observability series as [esr/method_backlog]. *)

  val on_crash : t -> site:int -> unit
  (** The site's volatile state is gone: order buffers and provisional
      applies are dropped, parked/active queries at the site fail with a
      degraded outcome, and un-notified update outcomes whose coordinator
      lived at the site are rejected.  Stable state — the per-site durable
      operation log and the stable-queue journals — survives.  Idempotent:
      crashing an already-crashed site is a no-op.  The caller (normally
      {!Esr_fault.Schedule.inject} via {!Harness.run_with_faults}) crashes
      the network layer first, so no messages are delivered in between. *)

  val on_recover : t -> site:int -> unit
  (** Crash recovery: rebuild the site's image by replaying its durable
      operation log (traced as [Recovery_replay]), then resume normal
      processing — the stable-queue backlog redelivers everything that
      was not acknowledged before or during the outage.  When the run
      checkpoints ([env.checkpoint]), replay starts from a copy of the
      site's newest snapshot and folds only the log tail.  Idempotent. *)

  val checkpoint : t -> site:int -> unit
  (** Take an asynchronous checkpoint cut at [site] (see
      {!Checkpoint.cut}): snapshot the site image, truncate the durable
      log behind the cut, and garbage-collect whatever journal records
      the method declares reclaimable (stable-queue dedup records behind
      the delivery watermark; COMPE additionally prunes decided undo-log
      entries).  No-op when [env.checkpoint] is [None] or the site is
      down — a crashed site's next cut happens after it has recovered. *)

  val store : t -> site:int -> Store.t
  (** Site-local single-version state, for convergence checks. *)

  val mvstore : t -> site:int -> Mvstore.t option
  (** RITU-multiversion state when the method keeps one. *)

  val history : t -> site:int -> Hist.t
  (** The operation log the site actually executed, for the ESR checker. *)

  val converged : t -> bool
  (** All replicas hold equal state. *)

  val stats : t -> (string * float) list
  (** Method-specific counters for the experiment tables. *)

  val resources : t -> site:int -> resources
  (** The site's durable/volatile footprint right now.  Pure reads;
      sampled by the [res/] series probes and the group ["res"] gauges.
      Methods without a receipt journal report zero WAL fields. *)
end

type boxed = B : (module S with type t = 'a) * 'a -> boxed

let boxed_meta (B ((module M), _)) = M.meta
let boxed_flush (B ((module M), sys)) = M.flush sys
let boxed_quiescent (B ((module M), sys)) = M.quiescent sys
let boxed_backlog (B ((module M), sys)) = M.backlog sys
let boxed_on_crash (B ((module M), sys)) ~site = M.on_crash sys ~site
let boxed_on_recover (B ((module M), sys)) ~site = M.on_recover sys ~site
let boxed_checkpoint (B ((module M), sys)) ~site = M.checkpoint sys ~site
let boxed_converged (B ((module M), sys)) = M.converged sys
let boxed_store (B ((module M), sys)) ~site = M.store sys ~site
let boxed_mvstore (B ((module M), sys)) ~site = M.mvstore sys ~site
let boxed_history (B ((module M), sys)) ~site = M.history sys ~site
let boxed_stats (B ((module M), sys)) = M.stats sys
let boxed_resources (B ((module M), sys)) ~site = M.resources sys ~site

let boxed_submit_update (B ((module M), sys)) ~origin intents k =
  M.submit_update sys ~origin intents k

let boxed_submit_query (B ((module M), sys)) ~site ~keys ~epsilon k =
  M.submit_query sys ~site ~keys ~epsilon k
