(** RITU — read-independent timestamped updates (paper §3.3).

    Update MSets are timestamped blind writes: their effect does not
    depend on the current value, so replicas can apply them in any order —
    a stale write is simply ignored ([`Single] mode, latest-writer-wins)
    or becomes one more immutable version ([`Multi] mode).

    [`Single] ("RITU reduces to COMMU"): queries read the latest local
    value, charge-free by definition — the latest version is the desired
    datum.

    [`Multi] keeps all versions and a VTNC (visible transaction number
    counter, after the Modular Synchronization Method): the largest
    timestamp below which no new version can arrive, derived from
    per-origin FIFO watermarks.  Reading at the VTNC is SR; reading a
    version above it costs one unit of the query's epsilon budget —
    experiment E6 sweeps this freshness/consistency trade-off. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Hist = Esr_core.Hist
module Et = Esr_core.Et
module Epsilon = Esr_core.Epsilon
module Gtime = Esr_clock.Gtime
module Lamport = Esr_clock.Lamport
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Trace = Esr_obs.Trace
module Prof = Esr_obs.Prof

(* Writes carry keys pre-interned at the origin: (id, name, value). *)
type mset = {
  et : Et.id;
  stamp : Gtime.t;
  writes : (int * string * Value.t) list;
  origin : int;
}

type msg = Update of mset | Watermark of Gtime.t

type site = {
  id : int;
  mutable store : Store.t;  (* latest-version view; rebuilt from [hist] *)
  mutable mv : Mvstore.t;  (* populated in `Multi mode; rebuilt from [hist] *)
  mutable hist : Hist.t;  (* the durable log *)
  clock : Lamport.t;
  watermarks : Gtime.t array;
      (* monotonic protocol metadata, logged with the stamps: durable *)
  mutable down : bool;
}

type t = {
  env : Intf.env;
  mode : [ `Single | `Multi ];
  full : bool;  (* replication factor = sites: historical broadcast path *)
  dests : Sharding.Dests.t;  (* reusable routing cursor (submit path) *)
  sites : site array;
  fabric : msg Squeue.t;
  mutable n_updates : int;
  mutable n_queries : int;
  mutable n_rejected : int;
  mutable n_stale_ignored : int;
  mutable n_fresh_reads : int;  (* reads above the VTNC (charged) *)
  mutable n_vtnc_reads : int;  (* reads clamped to the VTNC *)
}

let meta =
  {
    Intf.name = "RITU";
    family = Intf.Forward;
    restriction = "operation semantics";
    async_propagation = "Query & Update";
    sorting_time = "at read";
  }

let log_action site ~et ~key op =
  site.hist <- Hist.append site.hist (Et.action ~et ~key op)

let refresh_vtnc site =
  let low = Array.fold_left Gtime.(fun acc w -> if compare w acc < 0 then w else acc)
      site.watermarks.(0) site.watermarks
  in
  Mvstore.advance_vtnc site.mv low

let note_watermark site ~origin ts =
  if Gtime.compare ts site.watermarks.(origin) > 0 then
    site.watermarks.(origin) <- ts;
  Gtime.witness site.clock ts;
  site.watermarks.(site.id) <-
    Gtime.make ~counter:(Lamport.peek site.clock) ~site:site.id;
  refresh_vtnc site

let apply_mset_inner t site mset =
  let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
  if Trace.on trace then
    Trace.emit trace ~time:(Engine.now t.env.engine)
      (Trace.Mset_applied
         {
           et = mset.et;
           site = site.id;
           n_ops = List.length mset.writes;
           order = None;
         });
  note_watermark site ~origin:mset.origin mset.stamp;
  let stamp = mset.stamp in
  List.iter
    (fun (id, key, value) ->
      if t.full || Sharding.replicates_id t.env.Intf.sharding ~site:site.id ~id
      then begin
        let op =
          match t.mode with
          | `Single -> Op.Timed_write { ts = stamp; value }
          | `Multi -> Op.Append { ts = stamp; value }
        in
        (match t.mode with
        | `Single ->
            (* Latest-writer-wins by hand: a stale stamp can only hit a key
               that already has a newer (materialized) cell, so skipping the
               write leaves the store byte-identical to [Store.apply] while
               allocating nothing. *)
            if Gtime.compare stamp (Store.get_ts_id site.store id) > 0 then
              Store.set_with_ts_id site.store id value stamp
            else t.n_stale_ignored <- t.n_stale_ignored + 1
        | `Multi ->
            ignore (Mvstore.append site.mv key ~ts:stamp value);
            (* Maintain the latest-version view for convergence checks. *)
            if Gtime.compare stamp (Store.get_ts_id site.store id) > 0 then
              Store.set_with_ts_id site.store id value stamp);
        log_action site ~et:mset.et ~key op
      end)
    mset.writes

let apply_mset t site mset =
  let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
  if Prof.on prof then begin
    let t0 = Prof.start prof in
    let a0 = Prof.alloc0 prof in
    apply_mset_inner t site mset;
    Prof.record prof ~site:site.id Prof.Apply ~t0 ~a0
  end
  else apply_mset_inner t site mset

(* Union of the replica sets of an MSet's write shards: the only sites
   whose stores the writes can change. *)
let interested t writes =
  let c = t.dests in
  Sharding.Dests.reset c;
  List.iter (fun (id, _, _) -> Sharding.Dests.add_id c id) writes;
  c

let receive t ~site:site_id msg =
  let site = t.sites.(site_id) in
  match msg with
  | Update mset -> apply_mset t site mset
  | Watermark ts -> note_watermark site ~origin:ts.Gtime.site ts

let create (env : Intf.env) =
  let rec t =
    lazy
      (let fabric =
         Squeue.create ~mode:Squeue.Fifo
           ~retry_interval:env.Intf.config.Intf.retry_interval
           ?backoff:env.Intf.config.Intf.retry_backoff
           ~obs:env.Intf.obs env.Intf.net
           ~handler:(fun ~site ~src:_ msg -> receive (Lazy.force t) ~site msg)
       in
       {
         env;
         mode = env.Intf.config.Intf.ritu_mode;
         full = Sharding.is_full env.Intf.sharding;
         dests = Sharding.Dests.cursor env.Intf.sharding;
         sites =
           Array.init env.Intf.sites (fun id ->
               {
                 id;
                 store =
                   Store.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 mv =
                   Mvstore.create ~size:env.Intf.store_hint
                     ~keyspace:env.Intf.keyspace ();
                 hist = Hist.empty;
                 clock = Lamport.create ();
                 watermarks = Array.make env.Intf.sites Gtime.zero;
                 down = false;
               });
         fabric;
         n_updates = 0;
         n_queries = 0;
         n_rejected = 0;
         n_stale_ignored = 0;
         n_fresh_reads = 0;
         n_vtnc_reads = 0;
       })
  in
  Lazy.force t

let submit_update t ~origin intents k =
  let writes =
    List.filter_map
      (function Intf.Set (key, v) -> Some (key, v) | Intf.Add _ | Intf.Mul _ -> None)
      intents
  in
  if t.sites.(origin).down then k (Intf.Rejected "origin site down")
  else if intents = [] then k (Intf.Rejected "empty update ET")
  else if List.length writes <> List.length intents then begin
    (* Add/Mul read the current value: not read-independent, so outside
       RITU's restriction (Table 1). *)
    t.n_rejected <- t.n_rejected + 1;
    k (Intf.Rejected "RITU: only blind writes (Set) are read-independent")
  end
  else begin
    t.n_updates <- t.n_updates + 1;
    let et = t.env.Intf.next_et () in
    let site = t.sites.(origin) in
    let stamp = Gtime.next site.clock ~site:origin in
    let writes =
      List.map
        (fun (key, v) ->
          (Esr_store.Keyspace.intern t.env.Intf.keyspace key, key, v))
        writes
    in
    let mset = { et; stamp; writes; origin } in
    let trace = t.env.Intf.obs.Esr_obs.Obs.trace in
    if Trace.on trace then
      Trace.emit trace ~time:(Engine.now t.env.engine)
        (Trace.Mset_enqueued
           {
             et;
             origin;
             n_ops = List.length writes;
             keys = List.map (fun (_, key, _) -> key) writes;
           });
    apply_mset t site mset;
    let propagate () =
      if t.full then Squeue.broadcast t.fabric ~src:origin (Update mset)
      else
        (* Blind writes only matter to the replicas of their shards; commit
           stays immediate and local either way (read-independence). *)
        Squeue.multicast t.fabric ~src:origin ~dests:(interested t writes)
          (Update mset)
    in
    let prof = t.env.Intf.obs.Esr_obs.Obs.prof in
    if Prof.on prof then begin
      let t0 = Prof.start prof in
      let a0 = Prof.alloc0 prof in
      propagate ();
      Prof.record prof ~site:origin Prof.Propagate ~t0 ~a0
    end
    else propagate ();
    k (Intf.Committed { committed_at = Engine.now t.env.engine })
  end

let submit_query t ~site:site_id ~keys ~epsilon k =
  t.n_queries <- t.n_queries + 1;
  let site = t.sites.(site_id) in
  let et = t.env.Intf.next_et () in
  let eps = Epsilon.create epsilon in
  let started_at = Engine.now t.env.engine in
  let read_single key =
    log_action site ~et ~key Op.Read;
    (key, Store.get site.store key)
  in
  let read_multi key =
    log_action site ~et ~key Op.Read;
    let vtnc = Mvstore.vtnc site.mv in
    let value =
      match Mvstore.read_latest site.mv key with
      | Some latest when Gtime.compare latest.Mvstore.ts vtnc > 0 ->
          (* Fresh but unstable: reading it costs one inconsistency unit. *)
          if Epsilon.try_charge eps 1 then begin
            t.n_fresh_reads <- t.n_fresh_reads + 1;
            Some latest.Mvstore.value
          end
          else begin
            t.n_vtnc_reads <- t.n_vtnc_reads + 1;
            Option.map (fun v -> v.Mvstore.value) (Mvstore.read_visible site.mv key)
          end
      | Some latest -> Some latest.Mvstore.value
      | None -> None
    in
    (key, Option.value value ~default:Value.zero)
  in
  if site.down then
    (* Graceful failure: a crashed site answers from its last image,
       flagged degraded (nothing is logged — the site is not executing). *)
    k
      {
        Intf.values = List.map (fun key -> (key, Store.get site.store key)) keys;
        charged = 0;
        forced = 0;
        consistent_path = false;
        started_at;
        served_at = Engine.now t.env.engine;
      }
  else begin
  let reader = match t.mode with `Single -> read_single | `Multi -> read_multi in
  let values = List.map reader keys in
  k
    {
      Intf.values;
      charged = Epsilon.value eps;
      forced = 0;
      consistent_path = Epsilon.value eps = 0;
      started_at;
      served_at = Engine.now t.env.engine;
    }
  end

let flush t =
  match t.mode with
  | `Single -> ()
  | `Multi ->
      Array.iter
        (fun site ->
          let ts = Gtime.make ~counter:(Lamport.peek site.clock) ~site:site.id in
          site.watermarks.(site.id) <- ts;
          refresh_vtnc site;
          Squeue.broadcast t.fabric ~src:site.id (Watermark ts))
        t.sites

let on_crash t ~site:site_id =
  let site = t.sites.(site_id) in
  if not site.down then begin
    site.down <- true;
    (* RITU applies MSets on receipt and serves queries synchronously, so
       the only volatile state is the materialized store/version images —
       both rebuilt from the durable log on recovery.  Nothing to fail. *)
    Recovery.emit_volatile_dropped ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
      ~site:site_id ~buffered:0 ~queries_failed:0 ~updates_rejected:0
      ~log:(Hist.length site.hist)
  end

let on_recover t ~site:site_id =
  let site = t.sites.(site_id) in
  if site.down then begin
    site.down <- false;
    match t.mode with
    | `Single ->
        site.store <-
          Recovery.replay_site ?ckpt:t.env.Intf.checkpoint
            ~keyspace:t.env.Intf.keyspace ~size:t.env.Intf.store_hint
            ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine ~site:site_id
            site.hist
    | `Multi ->
        (* The log holds Append ops; replaying them naively is arrival
           order, but the latest-version view is last-writer-wins on the
           stamp — rebuild both images timestamp-aware.  When the run
           checkpoints, both images start from copies of the newest
           snapshot pair and only the log tail folds on top (Append is
           idempotent and Timed_write is latest-writer-wins, so a tail
           action already absorbed by the snapshot would be harmless
           anyway). *)
        let ckpt = t.env.Intf.checkpoint in
        let store =
          match Option.bind ckpt (fun c -> Checkpoint.base c ~site:site_id) with
          | Some base -> base
          | None ->
              Store.create ~size:t.env.Intf.store_hint
                ~keyspace:t.env.Intf.keyspace ()
        in
        let mv =
          match Option.bind ckpt (fun c -> Checkpoint.base_mv c ~site:site_id) with
          | Some base -> base
          | None ->
              Mvstore.create ~size:t.env.Intf.store_hint
                ~keyspace:t.env.Intf.keyspace ()
        in
        let actions = Hist.actions site.hist in
        List.iter
          (fun { Et.key; op; _ } ->
            match op with
            | Op.Append { ts; value } ->
                ignore (Mvstore.append mv key ~ts value);
                ignore (Store.apply store key (Op.Timed_write { ts; value }))
            | Op.Read -> ()
            | Op.Write _ | Op.Incr _ | Op.Mult _ | Op.Div _ | Op.Timed_write _
              ->
                invalid_arg "RITU: non-append update in a multi-version log")
          actions;
        Mvstore.advance_vtnc mv (Mvstore.vtnc site.mv);
        site.store <- store;
        site.mv <- mv;
        Recovery.emit_replay ~obs:t.env.Intf.obs ~engine:t.env.Intf.engine
          ~site:site_id ~n_actions:(List.length actions);
        Option.iter
          (fun c ->
            Checkpoint.note_tail_replay c ~site:site_id
              ~len:(Hist.length site.hist))
          ckpt
  end

let checkpoint t ~site:site_id =
  match t.env.Intf.checkpoint with
  | None -> ()
  | Some c ->
      let site = t.sites.(site_id) in
      if not site.down then begin
        let reclaimed = Squeue.gc_site t.fabric ~site:site_id in
        site.hist <-
          (match t.mode with
          | `Single ->
              Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
                ~store:site.store ~hist:site.hist ~reclaimed ()
          | `Multi ->
              (* Snapshot the version store alongside the latest-writer
                 image: Multi recovery rebuilds both. *)
              Checkpoint.cut c ~engine:t.env.Intf.engine ~site:site_id
                ~mv:site.mv ~store:site.store ~hist:site.hist ~reclaimed ())
      end

let quiescent _ = true
(* RITU keeps no protocol state beyond the transport: once the stable
   queues drain, the system is quiescent. *)

let backlog _ = 0
(* Same reason: all outstanding work is in the stable queues, which the
   series already samples through the squeue registry gauges. *)

let store t ~site = t.sites.(site).store

let mvstore t ~site =
  match t.mode with `Single -> None | `Multi -> Some t.sites.(site).mv

let history t ~site = t.sites.(site).hist

let converged t =
  if t.full then
    let reference = t.sites.(0) in
    Array.for_all
      (fun site ->
        Store.equal site.store reference.store
        && (t.mode = `Single || Mvstore.equal site.mv reference.mv))
      t.sites
  else begin
    let sh = t.env.Intf.sharding in
    let ks = t.env.Intf.keyspace in
    Sharding.converged sh ~keyspace:ks ~store:(fun site -> t.sites.(site).store)
    && (t.mode = `Single
       ||
       (* Replicas of a shard must also agree on the full version lists of
          its keys, not just the latest-writer view. *)
       let ok = ref true in
       let id = ref 0 in
       let n = Keyspace.size ks in
       while !ok && !id < n do
         let key = Keyspace.name ks !id in
         let reps = Sharding.replicas sh (Sharding.shard_of_id sh !id) in
         let reference = Mvstore.versions t.sites.(reps.(0)).mv key in
         for i = 1 to Array.length reps - 1 do
           if !ok && Mvstore.versions t.sites.(reps.(i)).mv key <> reference
           then ok := false
         done;
         incr id
       done;
       !ok)
  end

let stats t =
  [
    ("updates", float_of_int t.n_updates);
    ("queries", float_of_int t.n_queries);
    ("rejected", float_of_int t.n_rejected);
    ("stale_writes_ignored", float_of_int t.n_stale_ignored);
    ("fresh_reads", float_of_int t.n_fresh_reads);
    ("vtnc_reads", float_of_int t.n_vtnc_reads);
  ]

(* RITU applies on receipt (stale stamps are ignored or become versions),
   so there is no receipt journal; the WAL fields stay zero. *)
let resources t ~site:site_id =
  let site = t.sites.(site_id) in
  {
    Intf.no_resources with
    Intf.log_entries = Hist.length site.hist;
    log_bytes = Hist.approx_bytes site.hist;
    journal_depth = Squeue.journal_depth t.fabric ~site:site_id;
    journal_enqueued = Squeue.journaled t.fabric ~site:site_id;
    store_words = Store.live_words site.store;
  }
