(** COMPE — compensation-based backward replica control (paper §4).

    MSets apply optimistically before the global update decides; aborts
    compensate either in place (logical inverses, when the log tail
    commutes) or by Time-Warp undo/redo of the tail.  Sagas
    ({!submit_saga}, §4.2) hold their steps' lock-counters until the
    whole saga ends and revoke committed steps when a later step aborts.
    Invariant: every store mutation is a log entry, so folding a site's
    log reproduces its store ({!log_entries}). *)

type t

val meta : Intf.meta
val create : Intf.env -> t

val submit_update :
  t -> origin:int -> Intf.intent list -> (Intf.update_outcome -> unit) -> unit

val submit_query :
  t ->
  site:int ->
  keys:string list ->
  epsilon:Esr_core.Epsilon.spec ->
  (Intf.query_outcome -> unit) ->
  unit

val submit_saga :
  t -> origin:int -> Intf.intent list list -> (Intf.update_outcome -> unit) -> unit
(** Run the steps as one saga (§4.2): sequentially, counters held to the
    end, committed prefix revoked if a later step's global decision is an
    abort.  The callback fires once, with the whole saga's outcome. *)

val log_entries :
  t -> site:int -> (Esr_core.Et.id * bool * (string * Esr_store.Op.t) list) list
(** Introspection for tests: the site's remaining log entries (oldest
    first, with their decided flag).  Folding the operations over an
    empty store reproduces the site's store exactly. *)

val flush : t -> unit

val on_crash : t -> site:int -> unit
(** Volatile state at the site is lost: wait contexts fail degraded,
    buffered work is dropped, and in-doubt coordination this site led is
    presumed aborted.  Durable state (the log and protocol journals)
    survives.  Idempotent while the site stays down. *)

val on_recover : t -> site:int -> unit
(** Rebuild the volatile image by replaying the durable log, re-ingest
    journaled protocol state, and resume.  Idempotent while up. *)

val checkpoint : t -> site:int -> unit
(** Asynchronous checkpoint cut at the site (see {!Checkpoint.cut}):
    snapshot the image, truncate the durable log, and reclaim journal
    records behind the watermark.  No-op when the run does not
    checkpoint or the site is down. *)

val quiescent : t -> bool
val backlog : t -> int
val store : t -> site:int -> Esr_store.Store.t
val mvstore : t -> site:int -> Esr_store.Mvstore.t option
val history : t -> site:int -> Esr_core.Hist.t
val converged : t -> bool
val stats : t -> (string * float) list

val resources : t -> site:int -> Intf.resources
(** Per-site durable/volatile footprint, including the provisional-MSet
    receipt journal (the WAL fields). *)
