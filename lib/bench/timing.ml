(* Timed experiment sweep: runs every experiment once sequentially
   (1 domain), once on the parallel pool, once on the pool with tracing
   enabled, and once on the pool with the host-time profiler enabled;
   records wall-clock seconds for each, verifies all four outputs are
   byte-identical (instrumentation must not perturb results), and writes
   the trajectory file BENCH_experiments.json that later PRs diff
   against.

   Output schema (BENCH_experiments.json, version 6):

     {
       "schema": "esr-bench-experiments/6",
       "scale": <the --scale / ESR_SCALE factor of this run>,
       "domains": { "sequential": 1, "parallel": <N>,
                    "requested": <N>, "physical_cores": <cores> },
       "experiments": [
         { "name": "e1_scalability",
           "sequential_s": <wall-clock, seconds>,
           "parallel_s": <wall-clock, seconds>,
           "traced_s": <wall-clock with tracing on, seconds>,
           "profiled_s": <wall-clock with the phase profiler on, seconds>,
           "speedup": <sequential_s / parallel_s>,
           "trace_overhead": <traced_s / parallel_s>,
           "profile_overhead": <profiled_s / parallel_s>,
           "updates_per_sec": <applied update ops / parallel_s; omitted
                               for experiments that don't report volume>,
           "phases": { "apply": { "count": <spans>, "seconds": <host s>,
                                  "alloc_bytes": <GC-allocated bytes> },
                       ... },   -- from the profiled run, zero phases
                                   omitted
           "peak_heap_bytes": <peak major-heap size observed *during*
                               this experiment's four runs, sampled at
                               every major-cycle end by a GC alarm on
                               the main domain.  Up to v5 this was the
                               GC's process-wide top_heap high-water,
                               which never resets and so recorded every
                               experiment after the first big one at the
                               same monotone value>,
           "identical_output": true },
         ...
       ],
       "total": { "sequential_s": ..., "parallel_s": ..., "traced_s": ...,
                  "profiled_s": ..., "speedup": ..., "trace_overhead": ... },
       "runs": [ { "at": <unix seconds>, "scale": ..., "domains": ...,
                   "experiments": [...], "total": {...} }, ... ]
     }

   The top-level scale/domains/experiments/total mirror the latest run so
   v2..v4 consumers keep working; "runs" is the append-only history
   (oldest first, capped at [max_history]).  v5/v4/v3 files carry their
   runs over verbatim (older entries simply lack the newer fields); a v2
   file — one run at the top level — is absorbed as a single history
   entry.  Every history entry carries a real wall-clock "at" stamp: new
   entries are stamped at write time, and absorbed or legacy entries
   whose "at" is missing or 0 are repaired with the file's mtime — the
   closest available record of when that run actually happened.  After
   the sweep the summary prints a delta line against the previous
   *comparable* run — same --scale and same requested domain count
   (v6/v5/v4/v3 files carry their histories over verbatim);
   comparing against a different tier would only measure the tier.  With
   ESR_BENCH_GATE=1 the sweep additionally *fails* (exit 4) when total
   parallel wall-clock regresses by more than 20% against that
   comparable run, or any experiment's updates/sec drops by more than
   20% — CI runs the sweep twice into a scratch file so the gate
   compares like with like on the same machine.
*)

module Tablefmt = Esr_util.Tablefmt
module Json = Esr_util.Json
module Pool = Esr_exec.Pool
module Obs = Esr_obs.Obs
module Prof = Esr_obs.Prof

type sample = {
  name : string;
  sequential_s : float;
  parallel_s : float;
  traced_s : float;
  profiled_s : float;
  updates_per_sec : float;
  phases : (string * Prof.agg) list;
  peak_heap_bytes : float;
  identical : bool;
}

(* Run [f] with stdout redirected to a temp file; return (wall-clock
   seconds, captured bytes).  Capturing serves double duty: timed runs
   don't spam the terminal, and the captures are compared to prove the
   pool — and the tracing instrumentation — preserve determinism. *)
let timed_captured f =
  let path = Filename.temp_file "esr_bench" ".out" in
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  let t0 = Unix.gettimeofday () in
  (try f ()
   with exn ->
     restore ();
     Sys.remove path;
     raise exn);
  let elapsed = Unix.gettimeofday () -. t0 in
  restore ();
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (elapsed, bytes)

let speedup ~seq ~par = if par > 0.0 then seq /. par else 0.0

let max_history = 25

(* --- run history --- *)

(* One run rendered as a Json value, shared by the top-level mirror and
   the history entry. *)
let run_json ?at ~par_domains samples =
  let tot_seq = List.fold_left (fun a s -> a +. s.sequential_s) 0.0 samples in
  let tot_par = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let tot_tr = List.fold_left (fun a s -> a +. s.traced_s) 0.0 samples in
  let tot_pr = List.fold_left (fun a s -> a +. s.profiled_s) 0.0 samples in
  let experiment s =
    let phase (name, (a : Prof.agg)) =
      ( name,
        Json.Obj
          [
            ("count", Json.Num (float_of_int a.Prof.count));
            ("seconds", Json.Num a.Prof.seconds);
            ("alloc_bytes", Json.Num a.Prof.alloc_bytes);
          ] )
    in
    Json.Obj
      ([
         ("name", Json.Str s.name);
         ("sequential_s", Json.Num s.sequential_s);
         ("parallel_s", Json.Num s.parallel_s);
         ("traced_s", Json.Num s.traced_s);
         ("profiled_s", Json.Num s.profiled_s);
         ("speedup", Json.Num (speedup ~seq:s.sequential_s ~par:s.parallel_s));
         ("trace_overhead", Json.Num (speedup ~seq:s.traced_s ~par:s.parallel_s));
         ("profile_overhead", Json.Num (speedup ~seq:s.profiled_s ~par:s.parallel_s));
       ]
      (* Only experiments that measure volume carry throughput: a 0 here
         used to mean "unmeasured" but read as a measurement of zero;
         omit the field instead. *)
      @ (if s.updates_per_sec > 0.0 then
           [ ("updates_per_sec", Json.Num s.updates_per_sec) ]
         else [])
      @ [
          ("phases", Json.Obj (List.map phase s.phases));
          ("peak_heap_bytes", Json.Num s.peak_heap_bytes);
          ("identical_output", Json.Bool s.identical);
        ])
  in
  let total =
    Json.Obj
      [
        ("sequential_s", Json.Num tot_seq);
        ("parallel_s", Json.Num tot_par);
        ("traced_s", Json.Num tot_tr);
        ("profiled_s", Json.Num tot_pr);
        ("speedup", Json.Num (speedup ~seq:tot_seq ~par:tot_par));
        ("trace_overhead", Json.Num (speedup ~seq:tot_tr ~par:tot_par));
      ]
  in
  let fields =
    [
      ("scale", Json.Num !Experiments.scale);
      ( "domains",
        Json.Obj
          [ ("sequential", Json.Num 1.0);
            ("parallel", Json.Num (float_of_int par_domains));
            (* What the run asked for vs what the machine has: the pool
               defaults to cores-1, but ESR_DOMAINS/--domains can request
               more workers than cores, and a 1-core container can never
               show a speedup — the file records enough to tell. *)
            ("requested", Json.Num (float_of_int par_domains));
            ( "physical_cores",
              Json.Num (float_of_int (Domain.recommended_domain_count ())) )
          ] );
      ("experiments", Json.Arr (List.map experiment samples));
      ("total", total);
    ]
  in
  match at with
  | Some t -> Json.Obj (("at", Json.Num t) :: fields)
  | None -> Json.Obj fields

(* Absorb whatever trajectory file is already on disk into a history
   list (oldest first).  v5, v4 and v3 files carry their runs over
   verbatim (older runs simply lack the newer fields); a v2 file — one
   run at the top level — becomes a single entry; unreadable or foreign
   files are treated as no history rather than an error, since the bench
   must still run on a fresh checkout.

   Every returned entry carries a real wall-clock "at": entries whose
   stamp is missing or 0 (the old v2-absorption placeholder) are
   repaired with the file's mtime, the closest surviving record of when
   that run actually happened. *)
let read_history path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let mtime = (Unix.stat path).Unix.st_mtime in
    let repair_at entry =
      match entry with
      | Json.Obj fields -> (
          match Option.bind (Json.member "at" entry) Json.to_float with
          | Some t when t > 0.0 -> entry
          | Some _ | None ->
              Json.Obj
                (("at", Json.Num mtime)
                :: List.filter (fun (k, _) -> k <> "at") fields))
      | _ -> entry
    in
    match Json.parse text with
    | Error _ -> []
    | Ok doc -> (
        match Option.bind (Json.member "schema" doc) Json.to_string with
        | Some "esr-bench-experiments/6" | Some "esr-bench-experiments/5"
        | Some "esr-bench-experiments/4" | Some "esr-bench-experiments/3" ->
            List.map repair_at
              (Option.value ~default:[]
                 (Option.bind (Json.member "runs" doc) Json.to_list))
        | Some "esr-bench-experiments/2" ->
            let keep k = Option.map (fun v -> (k, v)) (Json.member k doc) in
            [
              Json.Obj
                (("at", Json.Num mtime)
                :: List.filter_map keep [ "domains"; "experiments"; "total" ]);
            ]
        | _ -> [])

(* Satellite of the regression gate: a prior run is only comparable when
   it was recorded at the same --scale and the same requested domain
   count — a 2% smoke baseline must never gate a full-scale run (or vice
   versa), and a 1-domain run must never gate an 8-domain one.  Entries
   predating v5 carry no scale and never match. *)
let comparable ~scale ~requested entry =
  let scale_of =
    Option.bind (Json.member "scale" entry) Json.to_float
  in
  let requested_of =
    Option.bind (Json.member "domains" entry) (fun d ->
        Option.bind (Json.member "requested" d) Json.to_float)
  in
  match (scale_of, requested_of) with
  | Some s, Some r ->
      Float.abs (s -. scale) < 1e-9 && int_of_float r = requested
  | _ -> false

(* Newest comparable entry, if any (history is oldest first). *)
let last_comparable ~scale ~requested history =
  List.fold_left
    (fun acc e -> if comparable ~scale ~requested e then Some e else acc)
    None history

(* Per-experiment (parallel_s, traced_s, updates_per_sec) of a history
   entry, for deltas; a v3 entry has no throughput field and reads 0. *)
let run_times entry =
  match Option.bind (Json.member "experiments" entry) Json.to_list with
  | None -> []
  | Some exps ->
      List.filter_map
        (fun e ->
          match
            ( Option.bind (Json.member "name" e) Json.to_string,
              Option.bind (Json.member "parallel_s" e) Json.to_float,
              Option.bind (Json.member "traced_s" e) Json.to_float )
          with
          | Some name, Some par, Some tr ->
              let ups =
                Option.value ~default:0.0
                  (Option.bind (Json.member "updates_per_sec" e) Json.to_float)
              in
              Some (name, (par, tr, ups))
          | _ -> None)
        exps

(* Print how this sweep moved against the previous run: the total, plus
   any experiment whose parallel wall-clock shifted by more than 10% (and
   at least a millisecond, so the tiny a2-style microbenches don't flap). *)
let print_delta ~previous samples =
  let prev = run_times previous in
  let prev_total = List.fold_left (fun a (_, (p, _, _)) -> a +. p) 0.0 prev in
  let cur_total = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let pct cur old = (cur -. old) /. old *. 100.0 in
  if prev_total > 0.0 then begin
    Printf.printf "delta vs previous run: total parallel %.3fs -> %.3fs (%+.1f%%)\n"
      prev_total cur_total (pct cur_total prev_total);
    List.iter
      (fun s ->
        match List.assoc_opt s.name prev with
        | Some (old_par, _, _)
          when old_par > 0.0
               && Float.abs (s.parallel_s -. old_par) > 0.001
               && Float.abs (pct s.parallel_s old_par) > 10.0 ->
            Printf.printf "  %-20s %.3fs -> %.3fs (%+.1f%%)\n" s.name old_par
              s.parallel_s (pct s.parallel_s old_par)
        | _ -> ())
      samples;
    (* Throughput deltas for the experiments that report volume (E15). *)
    List.iter
      (fun s ->
        if s.updates_per_sec > 0.0 then
          match List.assoc_opt s.name prev with
          | Some (_, _, old_ups) when old_ups > 0.0 ->
              Printf.printf
                "  %-20s %.0f -> %.0f updates/sec (%+.1f%%)\n" s.name old_ups
                s.updates_per_sec (pct s.updates_per_sec old_ups)
          | _ ->
              Printf.printf "  %-20s %.0f updates/sec (no previous sample)\n"
                s.name s.updates_per_sec)
      samples
  end

(* The CI regression gate (ESR_BENCH_GATE=1): fail the sweep when it is
   more than 20% slower than the previous recorded run — by total
   parallel wall-clock, or by any experiment's reported updates/sec.
   Meant for two back-to-back sweeps on the same machine; gating against
   a file produced on different hardware would only measure the
   hardware. *)
let gate_regression ~previous samples =
  let prev = run_times previous in
  let prev_total = List.fold_left (fun a (_, (p, _, _)) -> a +. p) 0.0 prev in
  let cur_total = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let failures = ref [] in
  if prev_total > 0.0 && cur_total > prev_total *. 1.20 then
    failures :=
      Printf.sprintf "total parallel wall-clock %.3fs -> %.3fs (>+20%%)"
        prev_total cur_total
      :: !failures;
  List.iter
    (fun s ->
      match List.assoc_opt s.name prev with
      | Some (_, _, old_ups)
        when old_ups > 0.0 && s.updates_per_sec < old_ups *. 0.80 ->
          failures :=
            Printf.sprintf "%s updates/sec %.0f -> %.0f (<-20%%)" s.name
              old_ups s.updates_per_sec
            :: !failures
      | _ -> ())
    samples;
  match !failures with
  | [] -> ()
  | msgs ->
      List.iter (fun m -> Printf.eprintf "bench gate: %s\n" m) msgs;
      exit 4

let write_json ~path ~par_domains ~history samples =
  let latest = run_json ~par_domains samples in
  let entry = run_json ~at:(Unix.time ()) ~par_domains samples in
  let runs = history @ [ entry ] in
  let runs =
    let drop = List.length runs - max_history in
    if drop > 0 then List.filteri (fun i _ -> i >= drop) runs else runs
  in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"esr-bench-experiments/6\",\n";
  (match latest with
  | Json.Obj fields ->
      List.iter
        (fun (k, v) -> p "  %S: %s,\n" k (Json.render v))
        fields
  | _ -> assert false);
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p "    %s%s\n" (Json.render r)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  p "  ]\n";
  p "}\n";
  close_out oc

let default_path () =
  Option.value (Sys.getenv_opt "ESR_BENCH_OUT") ~default:"BENCH_experiments.json"

(** Time every experiment sequentially, on the pool, and on the pool with
    tracing enabled; print the summary table, and write
    [BENCH_experiments.json] (path overridable with the ESR_BENCH_OUT
    environment variable). *)
let run_timed ?path () =
  let path = match path with Some p -> p | None -> default_path () in
  let par_domains = Pool.default_domains () in
  let samples =
    List.map
      (fun (name, f) ->
        (* Per-experiment peak heap (schema v6): the GC's top_heap_words
           is a process-wide high-water that never resets, so the old
           after-each-experiment sample recorded every experiment past
           the first big one at the same monotone value.  Instead watch
           the major heap while *this* experiment's four runs execute: a
           GC alarm samples the heap size at every major-cycle end on
           the main domain, and the max is this experiment's peak. *)
        let heap_peak = ref 0 in
        let sample_heap () =
          let h = (Gc.quick_stat ()).Gc.heap_words in
          if h > !heap_peak then heap_peak := h
        in
        sample_heap ();
        let heap_alarm = Gc.create_alarm sample_heap in
        Pool.set_default_domains 1;
        ignore (Experiments.take_applied ());
        let sequential_s, out_seq = timed_captured f in
        ignore (Experiments.take_applied ());
        Pool.set_default_domains par_domains;
        let parallel_s, out_par = timed_captured f in
        (* Applied update-op volume reported by the experiment (E15 does;
           most experiments report nothing and land at 0).  Taken from
           the *parallel* run: that is the configuration users run. *)
        let applied = Experiments.take_applied () in
        let updates_per_sec =
          if parallel_s > 0.0 then float_of_int applied /. parallel_s else 0.0
        in
        (* Third run: same parallel pool, with every harness recording a
           full event trace.  The printed tables must not change — the
           capture is byte-compared below — so the delta is the pure cost
           of the instrumentation. *)
        Obs.set_default_tracing true;
        let traced_s, out_traced =
          Fun.protect
            ~finally:(fun () -> Obs.set_default_tracing false)
            (fun () -> timed_captured f)
        in
        ignore (Experiments.take_applied ());
        (* Fourth run: the host-time phase profiler on in every harness.
           Same byte-compare discipline; the per-phase totals land in the
           JSON as this experiment's wall-clock/allocation breakdown.
           [reset_totals] scopes the process-wide aggregation to this
           experiment (worker-domain harnesses included — the pool joins
           its workers before [timed_captured] returns). *)
        Obs.set_default_profiling true;
        Prof.reset_totals ();
        let profiled_s, out_profiled =
          Fun.protect
            ~finally:(fun () -> Obs.set_default_profiling false)
            (fun () -> timed_captured f)
        in
        let phases =
          List.filter_map
            (fun (p, (a : Prof.agg)) ->
              if a.Prof.count > 0 then Some (Prof.phase_name p, a) else None)
            (Prof.totals ())
        in
        Prof.reset_totals ();
        ignore (Experiments.take_applied ());
        Gc.delete_alarm heap_alarm;
        sample_heap ();
        let peak_heap_bytes =
          float_of_int (!heap_peak * (Sys.word_size / 8))
        in
        let identical =
          String.equal out_seq out_par
          && String.equal out_par out_traced
          && String.equal out_par out_profiled
        in
        {
          name; sequential_s; parallel_s; traced_s; profiled_s;
          updates_per_sec; phases; peak_heap_bytes; identical;
        })
      Experiments.all
  in
  Pool.set_default_domains par_domains;
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Timed experiment sweep: wall-clock, 1 domain vs %d domains, \
            plus traced and profiled runs on %d domains (output \
            byte-compared between all four runs)"
           par_domains par_domains)
      ~headers:
        [
          "Experiment";
          "Sequential (s)";
          "Parallel (s)";
          "Traced (s)";
          "Profiled (s)";
          "Speedup";
          "Trace cost";
          "Prof cost";
          "Upd/s";
          "Peak heap (MB)";
          "Identical output";
        ]
  in
  List.iter
    (fun s ->
      Tablefmt.add_row t
        [
          s.name;
          Printf.sprintf "%.3f" s.sequential_s;
          Printf.sprintf "%.3f" s.parallel_s;
          Printf.sprintf "%.3f" s.traced_s;
          Printf.sprintf "%.3f" s.profiled_s;
          Printf.sprintf "%.2fx" (speedup ~seq:s.sequential_s ~par:s.parallel_s);
          Printf.sprintf "%.2fx" (speedup ~seq:s.traced_s ~par:s.parallel_s);
          Printf.sprintf "%.2fx" (speedup ~seq:s.profiled_s ~par:s.parallel_s);
          (if s.updates_per_sec > 0.0 then
             Printf.sprintf "%.0f" s.updates_per_sec
           else "-");
          Printf.sprintf "%.1f" (s.peak_heap_bytes /. (1024.0 *. 1024.0));
          Tablefmt.cell_bool s.identical;
        ])
    samples;
  Tablefmt.add_separator t;
  let tot_seq = List.fold_left (fun a s -> a +. s.sequential_s) 0.0 samples in
  let tot_par = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let tot_tr = List.fold_left (fun a s -> a +. s.traced_s) 0.0 samples in
  let tot_pr = List.fold_left (fun a s -> a +. s.profiled_s) 0.0 samples in
  Tablefmt.add_row t
    [
      "total";
      Printf.sprintf "%.3f" tot_seq;
      Printf.sprintf "%.3f" tot_par;
      Printf.sprintf "%.3f" tot_tr;
      Printf.sprintf "%.3f" tot_pr;
      Printf.sprintf "%.2fx" (speedup ~seq:tot_seq ~par:tot_par);
      Printf.sprintf "%.2fx" (speedup ~seq:tot_tr ~par:tot_par);
      Printf.sprintf "%.2fx" (speedup ~seq:tot_pr ~par:tot_par);
      "-";
      (match samples with
      | [] -> "-"
      | _ ->
          Printf.sprintf "%.1f"
            (List.fold_left
               (fun a s -> Float.max a s.peak_heap_bytes)
               0.0 samples
            /. (1024.0 *. 1024.0)));
      Tablefmt.cell_bool (List.for_all (fun s -> s.identical) samples);
    ];
  Tablefmt.print t;
  let history = read_history path in
  let previous =
    last_comparable ~scale:!Experiments.scale ~requested:par_domains history
  in
  (match previous with
  | Some previous -> print_delta ~previous samples
  | None ->
      if history <> [] then
        Printf.printf
          "no comparable previous run (same --scale and domain count); \
           delta and gate skipped\n");
  write_json ~path ~par_domains ~history samples;
  Printf.printf "wrote %s (%d runs in history)\n" path
    (Stdlib.min max_history (List.length history + 1));
  if not (List.for_all (fun s -> s.identical) samples) then begin
    prerr_endline
      "timed sweep: parallel/traced/profiled output diverged from sequential";
    exit 3
  end;
  match (Sys.getenv_opt "ESR_BENCH_GATE", previous) with
  | Some ("1" | "true"), Some previous -> gate_regression ~previous samples
  | _ -> ()
