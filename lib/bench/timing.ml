(* Timed experiment sweep: runs every experiment once sequentially
   (1 domain), once on the parallel pool, and once on the pool with
   tracing enabled, records wall-clock seconds for each, verifies all
   three outputs are byte-identical (tracing must not perturb results),
   and writes the trajectory file BENCH_experiments.json that later PRs
   diff against.

   Output schema (BENCH_experiments.json, version 2):

     {
       "schema": "esr-bench-experiments/2",
       "domains": { "sequential": 1, "parallel": <N> },
       "experiments": [
         { "name": "e1_scalability",
           "sequential_s": <wall-clock, seconds>,
           "parallel_s": <wall-clock, seconds>,
           "traced_s": <wall-clock with tracing on, seconds>,
           "speedup": <sequential_s / parallel_s>,
           "trace_overhead": <traced_s / parallel_s>,
           "identical_output": true },
         ...
       ],
       "total": { "sequential_s": ..., "parallel_s": ..., "traced_s": ...,
                  "speedup": ..., "trace_overhead": ... }
     }
*)

module Tablefmt = Esr_util.Tablefmt
module Pool = Esr_exec.Pool
module Obs = Esr_obs.Obs

type sample = {
  name : string;
  sequential_s : float;
  parallel_s : float;
  traced_s : float;
  identical : bool;
}

(* Run [f] with stdout redirected to a temp file; return (wall-clock
   seconds, captured bytes).  Capturing serves double duty: timed runs
   don't spam the terminal, and the captures are compared to prove the
   pool — and the tracing instrumentation — preserve determinism. *)
let timed_captured f =
  let path = Filename.temp_file "esr_bench" ".out" in
  let saved = Unix.dup Unix.stdout in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  let t0 = Unix.gettimeofday () in
  (try f ()
   with exn ->
     restore ();
     Sys.remove path;
     raise exn);
  let elapsed = Unix.gettimeofday () -. t0 in
  restore ();
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  (elapsed, bytes)

let fnum v =
  (* JSON number: fixed-point, never "inf"/"nan". *)
  if Float.is_finite v then Printf.sprintf "%.6f" v else "0.0"

let speedup ~seq ~par = if par > 0.0 then seq /. par else 0.0

let write_json ~path ~par_domains samples =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"esr-bench-experiments/2\",\n";
  p "  \"domains\": { \"sequential\": 1, \"parallel\": %d },\n" par_domains;
  p "  \"experiments\": [\n";
  List.iteri
    (fun i s ->
      p
        "    { \"name\": %S, \"sequential_s\": %s, \"parallel_s\": %s, \
         \"traced_s\": %s, \"speedup\": %s, \"trace_overhead\": %s, \
         \"identical_output\": %b }%s\n"
        s.name (fnum s.sequential_s) (fnum s.parallel_s) (fnum s.traced_s)
        (fnum (speedup ~seq:s.sequential_s ~par:s.parallel_s))
        (fnum (speedup ~seq:s.traced_s ~par:s.parallel_s))
        s.identical
        (if i = List.length samples - 1 then "" else ","))
    samples;
  p "  ],\n";
  let tot_seq = List.fold_left (fun a s -> a +. s.sequential_s) 0.0 samples in
  let tot_par = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let tot_tr = List.fold_left (fun a s -> a +. s.traced_s) 0.0 samples in
  p
    "  \"total\": { \"sequential_s\": %s, \"parallel_s\": %s, \"traced_s\": \
     %s, \"speedup\": %s, \"trace_overhead\": %s }\n"
    (fnum tot_seq) (fnum tot_par) (fnum tot_tr)
    (fnum (speedup ~seq:tot_seq ~par:tot_par))
    (fnum (speedup ~seq:tot_tr ~par:tot_par));
  p "}\n";
  close_out oc

let default_path () =
  Option.value (Sys.getenv_opt "ESR_BENCH_OUT") ~default:"BENCH_experiments.json"

(** Time every experiment sequentially, on the pool, and on the pool with
    tracing enabled; print the summary table, and write
    [BENCH_experiments.json] (path overridable with the ESR_BENCH_OUT
    environment variable). *)
let run_timed ?path () =
  let path = match path with Some p -> p | None -> default_path () in
  let par_domains = Pool.default_domains () in
  let samples =
    List.map
      (fun (name, f) ->
        Pool.set_default_domains 1;
        let sequential_s, out_seq = timed_captured f in
        Pool.set_default_domains par_domains;
        let parallel_s, out_par = timed_captured f in
        (* Third run: same parallel pool, with every harness recording a
           full event trace.  The printed tables must not change — the
           capture is byte-compared below — so the delta is the pure cost
           of the instrumentation. *)
        Obs.set_default_tracing true;
        let traced_s, out_traced =
          Fun.protect
            ~finally:(fun () -> Obs.set_default_tracing false)
            (fun () -> timed_captured f)
        in
        let identical =
          String.equal out_seq out_par && String.equal out_par out_traced
        in
        { name; sequential_s; parallel_s; traced_s; identical })
      Experiments.all
  in
  Pool.set_default_domains par_domains;
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Timed experiment sweep: wall-clock, 1 domain vs %d domains vs \
            %d domains traced (output byte-compared between all runs)"
           par_domains par_domains)
      ~headers:
        [
          "Experiment";
          "Sequential (s)";
          "Parallel (s)";
          "Traced (s)";
          "Speedup";
          "Trace cost";
          "Identical output";
        ]
  in
  List.iter
    (fun s ->
      Tablefmt.add_row t
        [
          s.name;
          Printf.sprintf "%.3f" s.sequential_s;
          Printf.sprintf "%.3f" s.parallel_s;
          Printf.sprintf "%.3f" s.traced_s;
          Printf.sprintf "%.2fx" (speedup ~seq:s.sequential_s ~par:s.parallel_s);
          Printf.sprintf "%.2fx" (speedup ~seq:s.traced_s ~par:s.parallel_s);
          Tablefmt.cell_bool s.identical;
        ])
    samples;
  Tablefmt.add_separator t;
  let tot_seq = List.fold_left (fun a s -> a +. s.sequential_s) 0.0 samples in
  let tot_par = List.fold_left (fun a s -> a +. s.parallel_s) 0.0 samples in
  let tot_tr = List.fold_left (fun a s -> a +. s.traced_s) 0.0 samples in
  Tablefmt.add_row t
    [
      "total";
      Printf.sprintf "%.3f" tot_seq;
      Printf.sprintf "%.3f" tot_par;
      Printf.sprintf "%.3f" tot_tr;
      Printf.sprintf "%.2fx" (speedup ~seq:tot_seq ~par:tot_par);
      Printf.sprintf "%.2fx" (speedup ~seq:tot_tr ~par:tot_par);
      Tablefmt.cell_bool (List.for_all (fun s -> s.identical) samples);
    ];
  Tablefmt.print t;
  write_json ~path ~par_domains samples;
  Printf.printf "wrote %s\n" path;
  if not (List.for_all (fun s -> s.identical) samples) then begin
    prerr_endline "timed sweep: parallel/traced output diverged from sequential";
    exit 3
  end
