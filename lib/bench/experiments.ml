(* Quantitative experiments: the measured counterpart of the paper's
   claims.  Each function regenerates one row-set of EXPERIMENTS.md.

   The paper (a design paper) reports no absolute numbers, so the check
   is the *shape*: who wins, what is bounded, where behaviour changes.
   All runs are deterministic given the seed printed in the header.

   Execution model: every experiment first builds a list of row *jobs* —
   pure closures, each wrapping one self-contained simulation
   ([Scenario.run] or an inline harness) and returning one formatted
   table row — and fans them out over the {!Esr_exec.Pool} domain pool.
   Rows come back in submission order and are only then appended to the
   table, so the printed output is byte-identical to a sequential run
   for any worker count (ESR_DOMAINS=1 and =N produce the same bytes). *)

module Tablefmt = Esr_util.Tablefmt
module Stats = Esr_util.Stats
module Dist = Esr_util.Dist
module Prng = Esr_util.Prng
module Net = Esr_sim.Net
module Engine = Esr_sim.Engine
module Squeue = Esr_squeue.Squeue
module Epsilon = Esr_core.Epsilon
module Intf = Esr_replica.Intf
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Pool = Esr_exec.Pool

let seed = 20260704

(* --- scale knob (E15) ----------------------------------------------- *)

(* Multiplier on the E15 scale-tier workload: sites, keys and update
   volume all scale linearly, so `--scale 0.02` (or ESR_SCALE=0.02) is a
   CI-sized smoke of the same shape.  1.0 is the full million-op tier. *)
let scale =
  ref
    (match Sys.getenv_opt "ESR_SCALE" with
    | None -> 1.0
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some f when f > 0.0 -> f
        | Some _ | None -> 1.0))

let set_scale f = if f > 0.0 then scale := f

(* Side channel for the timed sweep: experiments that track their applied
   update-operation volume add it here; {!Timing} reads and resets it
   around each timed run to derive updates/sec without printing
   wall-clock-dependent bytes into the byte-compared tables. *)
let applied_ops = ref 0

let note_applied n = applied_ops := !applied_ops + n

let take_applied () =
  let n = !applied_ops in
  applied_ops := 0;
  n

(* The "very slow links / moderately high latency" regime of §2.4. *)
let wan = Net.wan_config

let fmt_ms v = Printf.sprintf "%.1f" v
let fmt_pct num den =
  if den = 0 then "n/a" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int num /. float_of_int den)

let profile_for name =
  match name with
  | "RITU" | "QUORUM" -> Spec.Blind_set
  | _ -> Spec.Additive

let stat r name = Option.value (Scenario.method_stat r name) ~default:0.0

(* Run the row jobs on the pool; results arrive in job order. *)
let par_rows jobs = Pool.map (fun job -> job ()) jobs

let add_rows t rows = List.iter (Tablefmt.add_row t) rows

(* Append rows with a separator after every [per_group] of them — the
   grids below are ordered outer-dimension-major, so this reproduces the
   per-outer-group separators of the sequential tables. *)
let add_grouped t ~per_group rows =
  List.iteri
    (fun i row ->
      Tablefmt.add_row t row;
      if (i + 1) mod per_group = 0 then Tablefmt.add_separator t)
    rows

(* ------------------------------------------------------------------ *)
(* E1: scalability — asynchronous methods vs synchronous baselines     *)
(* ------------------------------------------------------------------ *)

let e1_scalability () =
  let t =
    Tablefmt.create
      ~title:
        "E1: scaling the number of replicas (WAN links; update latency and \
         success; paper claim Sec 1/2.4: synchronous methods degrade with \
         size, asynchronous methods do not)"
      ~headers:
        [ "Method"; "Sites"; "Committed"; "Rejected"; "Upd lat p50 (ms)";
          "Upd lat p95 (ms)"; "Query lat p50 (ms)"; "Throughput (upd/s)" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ] in
  let sites_list = [ 2; 4; 8; 16 ] in
  let jobs =
    List.concat_map
      (fun name ->
        List.map
          (fun sites () ->
            let spec =
              {
                Spec.default with
                Spec.duration = 4_000.0;
                update_rate = 0.02;
                query_rate = 0.02;
                n_keys = 24;
                ops_per_update = 1;
                keys_per_query = 1;
                profile = profile_for name;
                epsilon = Epsilon.Unlimited;
              }
            in
            let r = Scenario.run ~seed ~net_config:wan ~sites ~method_name:name spec in
            [
              name;
              Tablefmt.cell_int sites;
              Tablefmt.cell_int r.Scenario.committed;
              Tablefmt.cell_int r.Scenario.rejected;
              fmt_ms (Stats.median r.Scenario.update_latency);
              fmt_ms (Stats.percentile r.Scenario.update_latency 95.0);
              fmt_ms (Stats.median r.Scenario.query_latency);
              Printf.sprintf "%.1f" (Scenario.throughput r);
            ])
          sites_list)
      methods
  in
  add_grouped t ~per_group:(List.length sites_list) (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E2: the epsilon dial — bounded inconsistency, SR in the limit       *)
(* ------------------------------------------------------------------ *)

let e2_epsilon () =
  let t =
    Tablefmt.create
      ~title:
        "E2: query inconsistency vs epsilon (ORDUP, 6 sites, WAN; paper \
         claim Sec 2.2/3.1: error bounded by overlap, eps=0 recovers SR)"
      ~headers:
        [ "Epsilon"; "Max units charged"; "Mean units"; "Mean value error";
          "Max value error"; "SR fallbacks"; "Query lat p50 (ms)"; "Query lat p95 (ms)" ]
  in
  let jobs =
    List.map
      (fun eps () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 4_000.0;
            update_rate = 0.05;
            query_rate = 0.05;
            n_keys = 8;
            zipf_theta = 0.9;
            ops_per_update = 2;
            keys_per_query = 2;
            epsilon = eps;
          }
        in
        let r = Scenario.run ~seed ~net_config:wan ~sites:6 ~method_name:"ORDUP" spec in
        let charged = r.Scenario.charged in
        [
          Epsilon.spec_to_string eps;
          Tablefmt.cell_float (if Stats.count charged = 0 then 0.0 else Stats.max charged);
          Printf.sprintf "%.2f" (Stats.mean charged);
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.value_error);
          Tablefmt.cell_float
            (if Stats.count r.Scenario.value_error = 0 then 0.0
             else Stats.max r.Scenario.value_error);
          Tablefmt.cell_int r.Scenario.fallback_queries;
          fmt_ms (Stats.median r.Scenario.query_latency);
          fmt_ms (Stats.percentile r.Scenario.query_latency 95.0);
        ])
      [
        Epsilon.Limit 0; Epsilon.Limit 1; Epsilon.Limit 2; Epsilon.Limit 4;
        Epsilon.Limit 8; Epsilon.Unlimited;
      ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E3: convergence at quiescence under a hostile network               *)
(* ------------------------------------------------------------------ *)

let e3_convergence () =
  let t =
    Tablefmt.create
      ~title:
        "E3: convergence at quiescence (8% loss, 5% duplication, heavy \
         reordering; paper claim Sec 2.2: replicas converge to 1SR when \
         queued MSets are processed)"
      ~headers:
        [ "Method"; "Committed"; "Settled"; "Replicas equal"; "Quiesce time (ms)";
          "Messages sent"; "Messages lost" ]
  in
  let chaos =
    { Net.latency = Dist.Uniform (2.0, 150.0); drop_probability = 0.08; duplicate_probability = 0.05 }
  in
  let jobs =
    List.map
      (fun name () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 3_000.0;
            update_rate = 0.04;
            query_rate = 0.02;
            n_keys = 16;
            ops_per_update = (if name = "QUORUM" then 1 else 2);
            profile = profile_for name;
          }
        in
        let r = Scenario.run ~seed ~net_config:chaos ~sites:5 ~method_name:name spec in
        [
          name;
          Tablefmt.cell_int r.Scenario.committed;
          Tablefmt.cell_bool r.Scenario.settled;
          Tablefmt.cell_bool r.Scenario.converged;
          fmt_ms r.Scenario.quiesce_time;
          Tablefmt.cell_int r.Scenario.net_counters.Net.sent;
          Tablefmt.cell_int r.Scenario.net_counters.Net.lost;
        ])
      [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E4: availability under a network partition                          *)
(* ------------------------------------------------------------------ *)

let e4_partition () =
  let t =
    Tablefmt.create
      ~title:
        "E4: availability during a 2+2 partition, 1200ms window (paper \
         claim Sec 1/5.3: asynchronous methods keep serving; synchronous \
         ones stall)"
      ~headers:
        [ "Method"; "Updates committed in window"; "Updates submitted";
          "Update availability"; "Queries served in window"; "Query availability";
          "Converged after heal" ]
  in
  let partition =
    { Scenario.p_start = 1_000.0; p_end = 2_200.0; groups = [ [ 0; 1 ]; [ 2; 3 ] ] }
  in
  let jobs =
    List.map
      (fun name () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 3_000.0;
            update_rate = 0.03;
            query_rate = 0.03;
            n_keys = 16;
            ops_per_update = 1;
            keys_per_query = 1;
            profile = profile_for name;
          }
        in
        let config = { Intf.default_config with Intf.twopc_timeout = 20_000.0 } in
        let r =
          Scenario.run ~seed ~config ~sites:4 ~method_name:name ~partition spec
        in
        let w = Option.get r.Scenario.window in
        [
          name;
          Tablefmt.cell_int w.Scenario.w_updates_committed;
          Tablefmt.cell_int w.Scenario.w_updates_submitted;
          fmt_pct w.Scenario.w_updates_committed w.Scenario.w_updates_submitted;
          Tablefmt.cell_int w.Scenario.w_queries_served;
          fmt_pct w.Scenario.w_queries_served w.Scenario.w_queries_submitted;
          Tablefmt.cell_bool r.Scenario.converged;
        ])
      [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E5: the cost of backward replica control (COMPE)                    *)
(* ------------------------------------------------------------------ *)

let e5_compensation () =
  let t =
    Tablefmt.create
      ~title:
        "E5: compensation cost vs abort rate and operation mix (COMPE, 4 \
         sites; paper Sec 4: commutative logs compensate in place, \
         non-commutative logs need undo/redo of the tail)"
      ~headers:
        [ "Mix"; "Abort rate"; "Aborts"; "Fast comps"; "Full rollbacks";
          "Mean rollback depth"; "Replayed ops"; "Tainted queries";
          "Forced charges"; "Converged" ]
  in
  let mixes =
    [ ("commutative (Add)", Spec.Additive); ("30% Mul (non-comm.)", Spec.Mixed_arith 0.3) ]
  in
  let abort_ps = [ 0.0; 0.1; 0.2; 0.3 ] in
  let jobs =
    List.concat_map
      (fun (mix_name, profile) ->
        List.map
          (fun abort_p () ->
            let spec =
              {
                Spec.default with
                Spec.duration = 4_000.0;
                update_rate = 0.04;
                query_rate = 0.03;
                n_keys = 10;
                ops_per_update = 1;
                profile;
              }
            in
            let config =
              {
                Intf.default_config with
                Intf.compe_abort_probability = abort_p;
                compe_decision_delay = 120.0;
              }
            in
            let r = Scenario.run ~seed ~config ~net_config:wan ~sites:4 ~method_name:"COMPE" spec in
            let full = stat r "full_rollbacks" in
            let depth =
              if full = 0.0 then 0.0 else stat r "rollback_depth_total" /. full
            in
            [
              mix_name;
              Printf.sprintf "%.0f%%" (abort_p *. 100.0);
              Tablefmt.cell_float (stat r "aborts");
              Tablefmt.cell_float (stat r "fast_compensations");
              Tablefmt.cell_float full;
              Printf.sprintf "%.1f" depth;
              Tablefmt.cell_float (stat r "replayed_ops");
              Tablefmt.cell_float (stat r "tainted_queries");
              Tablefmt.cell_float (stat r "forced_charges");
              Tablefmt.cell_bool r.Scenario.converged;
            ])
          abort_ps)
      mixes
  in
  add_grouped t ~per_group:(List.length abort_ps) (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E6: RITU multiversion — freshness vs consistency at the VTNC        *)
(* ------------------------------------------------------------------ *)

let e6_ritu_vtnc () =
  let t =
    Tablefmt.create
      ~title:
        "E6: RITU multiversion reads vs epsilon (5 sites, WAN; paper Sec \
         3.3: reads above the VTNC cost inconsistency units; eps=0 reads \
         the stable prefix)"
      ~headers:
        [ "Epsilon"; "Fresh reads (above VTNC)"; "VTNC reads"; "Mean units";
          "Mean staleness (mismatched keys)"; "Converged" ]
  in
  let jobs =
    List.map
      (fun eps () ->
        let spec =
          {
            Spec.duration = 4_000.0;
            update_rate = 0.05;
            query_rate = 0.05;
            n_keys = 8;
            zipf_theta = 0.9;
            ops_per_update = 1;
            keys_per_query = 2;
            profile = Spec.Blind_set;
            epsilon = eps;
          }
        in
        let config = { Intf.default_config with Intf.ritu_mode = `Multi } in
        let r = Scenario.run ~seed ~config ~net_config:wan ~sites:5 ~method_name:"RITU" spec in
        [
          Epsilon.spec_to_string eps;
          Tablefmt.cell_float (stat r "fresh_reads");
          Tablefmt.cell_float (stat r "vtnc_reads");
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.charged);
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.value_error);
          Tablefmt.cell_bool r.Scenario.converged;
        ])
      [ Epsilon.Limit 0; Epsilon.Limit 1; Epsilon.Limit 2; Epsilon.Unlimited ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E7: COMMU lock-counter back-pressure                                *)
(* ------------------------------------------------------------------ *)

let e7_lock_counter () =
  let t =
    Tablefmt.create
      ~title:
        "E7: COMMU update-side lock-counter limit (4 sites, WAN, hot key; \
         paper Sec 3.2: limiting the counter trades update waiting for \
         query admissibility)"
      ~headers:
        [ "Limit"; "Update waits"; "Upd lat p50 (ms)"; "Upd lat p95 (ms)";
          "Mean query units"; "Max query units"; "Query waits"; "Committed" ]
  in
  let jobs =
    List.map
      (fun limit () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 4_000.0;
            update_rate = 0.06;
            query_rate = 0.04;
            n_keys = 4;
            zipf_theta = 1.1;
            ops_per_update = 1;
            keys_per_query = 1;
            epsilon = Epsilon.Limit 4;
          }
        in
        let config =
          {
            Intf.default_config with
            Intf.commu_update_limit = limit;
            commu_limit_policy = `Wait;
          }
        in
        let r = Scenario.run ~seed ~config ~net_config:wan ~sites:4 ~method_name:"COMMU" spec in
        [
          (match limit with None -> "inf" | Some l -> string_of_int l);
          Tablefmt.cell_float (stat r "update_waits");
          fmt_ms (Stats.median r.Scenario.update_latency);
          fmt_ms (Stats.percentile r.Scenario.update_latency 95.0);
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.charged);
          Tablefmt.cell_float
            (if Stats.count r.Scenario.charged = 0 then 0.0 else Stats.max r.Scenario.charged);
          Tablefmt.cell_float (stat r "query_waits");
          Tablefmt.cell_int r.Scenario.committed;
        ])
      [ None; Some 8; Some 4; Some 2; Some 1 ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E8: site crash and recovery                                         *)
(* ------------------------------------------------------------------ *)

let e8_crash_recovery () =
  let t =
    Tablefmt.create
      ~title:
        "E8: one of 4 sites crashes for a window, then recovers (paper \
         Sec 2.2: stable queues make replica control robust to site \
         failures); updates continue at live sites"
      ~headers:
        [ "Method"; "Crash window (ms)"; "Committed"; "Settled";
          "Converged after recovery"; "Retx-heavy? (msgs sent)" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ] in
  let windows = [ 500.0; 2_000.0 ] in
  let jobs =
    List.concat_map
      (fun name ->
        List.map
          (fun window () ->
            let module Harness = Esr_replica.Harness in
            let config = { Intf.default_config with Intf.twopc_timeout = 30_000.0 } in
            let h = Harness.create ~config ~seed ~sites:4 ~method_name:name () in
            let engine = Harness.engine h in
            let net = Harness.net h in
            let committed = ref 0 in
            let prng = Prng.create (seed + 3) in
            for i = 0 to 59 do
              ignore
                (Engine.schedule_at engine
                   ~time:(float_of_int i *. 40.0)
                   (fun () ->
                     let origin =
                       let candidate = Prng.int prng 4 in
                       if Net.site_up net candidate then candidate else 0
                     in
                     let intents =
                       match name with
                       | "RITU" | "QUORUM" -> [ Intf.Set ("k", Esr_store.Value.Int i) ]
                       | _ -> [ Intf.Add ("k", 1) ]
                     in
                     Harness.submit_update h ~origin intents (function
                       | Intf.Committed _ -> incr committed
                       | Intf.Rejected _ -> ())))
            done;
            ignore (Engine.schedule_at engine ~time:400.0 (fun () -> Net.crash net 2));
            ignore
              (Engine.schedule_at engine ~time:(400.0 +. window) (fun () ->
                   Net.recover net 2));
            let settled = Harness.settle h in
            [
              name;
              Tablefmt.cell_float window;
              Tablefmt.cell_int !committed;
              Tablefmt.cell_bool settled;
              Tablefmt.cell_bool (Harness.converged h);
              Tablefmt.cell_int (Net.counters net).Net.sent;
            ])
          windows)
      methods
  in
  add_grouped t ~per_group:(List.length windows) (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E9: saga-scoped lock-counters                                       *)
(* ------------------------------------------------------------------ *)

let e9_sagas () =
  let t =
    Tablefmt.create
      ~title:
        "E9: sagas vs independent updates (COMPE, 3 sites; paper Sec 4.2: \
         holding lock-counters to saga end gives queries a conservative \
         upper bound on the saga's total potential inconsistency)"
      ~headers:
        [ "Workload"; "Abort rate"; "Committed"; "Mean query units";
          "Max query units"; "Revokes"; "Converged" ]
  in
  let module Compe = Esr_replica.Compe in
  let run ~label ~as_saga ~abort_p () =
    let config =
      {
        Intf.default_config with
        Intf.compe_abort_probability = abort_p;
        compe_decision_delay = 100.0;
      }
    in
    let engine = Engine.create () in
    let prng = Prng.create seed in
    let net =
      Net.create ~config:wan engine ~sites:3 ~prng:(Prng.split prng)
    in
    let env = Intf.make_env ~config ~engine ~net ~prng () in
    let sys = Compe.create env in
    let committed = ref 0 in
    let units = Stats.create () in
    let steps i = [ [ Intf.Add ("a", i) ]; [ Intf.Add ("b", i) ]; [ Intf.Add ("c", i) ] ] in
    for i = 1 to 40 do
      ignore
        (Engine.schedule_at engine
           ~time:(float_of_int i *. 150.0)
           (fun () ->
             let count = function
               | Intf.Committed _ -> incr committed
               | Intf.Rejected _ -> ()
             in
             if as_saga then Compe.submit_saga sys ~origin:(i mod 3) (steps i) count
             else
               List.iter
                 (fun step -> Compe.submit_update sys ~origin:(i mod 3) step count)
                 (steps i)))
    done;
    for i = 1 to 30 do
      ignore
        (Engine.schedule_at engine
           ~time:((float_of_int i *. 200.0) +. 90.0)
           (fun () ->
             Compe.submit_query sys ~site:(i mod 3) ~keys:[ "a"; "b"; "c" ]
               ~epsilon:Esr_core.Epsilon.Unlimited (fun o ->
                 Stats.add units (float_of_int o.Intf.charged))))
    done;
    let rec settle n =
      if n = 0 then false
      else begin
        Engine.run engine;
        if Compe.quiescent sys then true
        else begin
          Compe.flush sys;
          settle (n - 1)
        end
      end
    in
    let settled = settle 10 in
    let stat name =
      Option.value (List.assoc_opt name (Compe.stats sys)) ~default:0.0
    in
    [
      label;
      Printf.sprintf "%.0f%%" (abort_p *. 100.0);
      Tablefmt.cell_int !committed;
      Printf.sprintf "%.2f" (Stats.mean units);
      Tablefmt.cell_float (if Stats.count units = 0 then 0.0 else Stats.max units);
      Tablefmt.cell_float (stat "revokes");
      Tablefmt.cell_bool (settled && Compe.converged sys);
    ]
  in
  let jobs =
    List.concat_map
      (fun abort_p ->
        [
          run ~label:"3-step sagas" ~as_saga:true ~abort_p;
          run ~label:"3 independent updates" ~as_saga:false ~abort_p;
        ])
      [ 0.0; 0.15 ]
  in
  add_grouped t ~per_group:2 (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E10: value-bounded divergence (COMMU)                               *)
(* ------------------------------------------------------------------ *)

let e10_value_bound () =
  let sites = 4 in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E10: value-bounded divergence (COMMU, %d sites, WAN; Sec 5.1's \
            'data value changed asynchronously' criterion): per-key query \
            error is bounded by (sites-1) x limit"
           sites)
      ~headers:
        [ "Value limit L"; "Bound (n-1)L"; "Max query error"; "Mean query error";
          "Bound holds"; "Update waits"; "Upd lat p95 (ms)"; "Committed" ]
  in
  let jobs =
    List.map
      (fun limit () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 4_000.0;
            update_rate = 0.06;
            query_rate = 0.05;
            n_keys = 4;
            zipf_theta = 1.0;
            ops_per_update = 1;
            keys_per_query = 1;
            epsilon = Epsilon.Unlimited;
          }
        in
        let config =
          {
            Intf.default_config with
            Intf.commu_value_limit = limit;
            commu_limit_policy = `Wait;
          }
        in
        let r = Scenario.run ~seed ~config ~net_config:wan ~sites ~method_name:"COMMU" spec in
        let worst =
          if Stats.count r.Scenario.value_error = 0 then 0.0
          else Stats.max r.Scenario.value_error
        in
        let bound =
          match limit with
          | None -> infinity
          | Some l -> float_of_int (sites - 1) *. l
        in
        [
          (match limit with None -> "inf" | Some l -> Printf.sprintf "%.0f" l);
          (match limit with None -> "inf" | Some _ -> Printf.sprintf "%.0f" bound);
          Printf.sprintf "%.0f" worst;
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.value_error);
          Tablefmt.cell_bool (worst <= bound);
          Tablefmt.cell_float (stat r "update_waits");
          fmt_ms (Stats.percentile r.Scenario.update_latency 95.0);
          Tablefmt.cell_int r.Scenario.committed;
        ])
      [ None; Some 50.0; Some 25.0; Some 10.0; Some 5.0 ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E11: quasi-copies closeness conditions (Sec 5.2 comparator)         *)
(* ------------------------------------------------------------------ *)

let e11_quasi () =
  let t =
    Tablefmt.create
      ~title:
        "E11: quasi-copies coherency conditions (QUASI comparator, 4 \
         sites, WAN; Sec 5.2: inconsistency comes only from propagation \
         lag, tuned by the closeness spec - at the price of refresh \
         traffic and no per-query dial)"
      ~headers:
        [ "Closeness spec"; "Refreshes"; "Messages sent"; "Mean query error";
          "Max query error"; "Upd lat p50 (ms)"; "Converged" ]
  in
  let jobs =
    List.map
      (fun (label, refresh) () ->
        let spec =
          {
            Spec.default with
            Spec.duration = 4_000.0;
            update_rate = 0.05;
            query_rate = 0.05;
            n_keys = 8;
            zipf_theta = 0.9;
            ops_per_update = 1;
            keys_per_query = 1;
          }
        in
        let config = { Intf.default_config with Intf.quasi_refresh = refresh } in
        let r = Scenario.run ~seed ~config ~net_config:wan ~sites:4 ~method_name:"QUASI" spec in
        [
          label;
          Tablefmt.cell_float (stat r "refreshes");
          Tablefmt.cell_int r.Scenario.net_counters.Net.sent;
          Printf.sprintf "%.2f" (Stats.mean r.Scenario.value_error);
          Tablefmt.cell_float
            (if Stats.count r.Scenario.value_error = 0 then 0.0
             else Stats.max r.Scenario.value_error);
          fmt_ms (Stats.median r.Scenario.update_latency);
          Tablefmt.cell_bool r.Scenario.converged;
        ])
      [
        ("immediate", `Immediate);
        ("periodic 100ms", `Periodic 100.0);
        ("periodic 500ms", `Periodic 500.0);
        ("drift 10", `Drift 10.0);
        ("drift 50", `Drift 50.0);
      ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E12: partition length — ESR dynamic control vs off-line log merge   *)
(* ------------------------------------------------------------------ *)

let e12_partition_merge () =
  let t =
    Tablefmt.create
      ~title:
        "E12: prolonged partitions (Sec 5.3): ESR methods control \
         divergence while partitioned and just drain queues at heal; \
         optimistic-1SR reconciliation merges logs off-line and must roll \
         back conflicting work that grows with partition length (mixed \
         30% overwrite workload)"
      ~headers:
        [ "Partition (ms)"; "COMMU catch-up after heal (ms)"; "COMMU rolled back";
          "Merge: minority ETs"; "Merge: rolled back"; "Merge: conflict keys" ]
  in
  let jobs =
    List.map
      (fun duration () ->
        (* (a) ESR dynamic: COMMU runs straight through the partition. *)
        let partition =
          { Scenario.p_start = 500.0; p_end = 500.0 +. duration; groups = [ [ 0; 1 ]; [ 2; 3 ] ] }
        in
        let spec =
          {
            Spec.default with
            Spec.duration = (500.0 +. duration +. 500.0);
            update_rate = 0.05;
            query_rate = 0.01;
            n_keys = 8;
            ops_per_update = 1;
          }
        in
        let r =
          Scenario.run ~seed ~sites:4 ~method_name:"COMMU" ~partition spec
        in
        let catch_up = Float.max 0.0 (r.Scenario.quiesce_time -. (500.0 +. duration)) in
        (* (b) off-line merge: two partition-side logs of the same length,
           mixed commutative/overwrite operations on shared keys. *)
        let module Et = Esr_core.Et in
        let module Op = Esr_store.Op in
        let module Logmerge = Esr_core.Logmerge in
        let gen_log offset prng =
          let n = int_of_float (duration *. 0.05 /. 2.0) in
          Esr_core.Hist.of_actions
            (List.init n (fun i ->
                 let key = Printf.sprintf "k%d" (Prng.int prng 8) in
                 let op =
                   if Prng.bernoulli prng 0.3 then
                     Op.Write (Esr_store.Value.Int (Prng.int prng 100))
                   else Op.Incr (1 + Prng.int prng 9)
                 in
                 Et.action ~et:(offset + i) ~key op))
        in
        let prng = Prng.create (seed + int_of_float duration) in
        let log_a = gen_log 1 prng and log_b = gen_log 100_000 prng in
        let m = Logmerge.merge ~majority:log_a ~minority:log_b in
        let minority_ets = List.length (Esr_core.Hist.ets log_b) in
        [
          Printf.sprintf "%.0f" duration;
          fmt_ms catch_up;
          "0";
          Tablefmt.cell_int minority_ets;
          Tablefmt.cell_int (List.length m.Logmerge.rolled_back);
          Tablefmt.cell_int (List.length m.Logmerge.conflict_keys);
        ])
      [ 500.0; 1_000.0; 2_000.0; 4_000.0 ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E13: availability + staleness under real crash-recovery faults      *)
(* ------------------------------------------------------------------ *)

(* Unlike E8 (which only isolates a site at the network), these faults go
   through the full crash-recovery path: the crashed site's volatile
   state is wiped, in-progress work there fails degraded, and recovery
   replays the durable log before the stable queues catch the site up. *)
let e13_fault_availability () =
  let module Harness = Esr_replica.Harness in
  let module Schedule = Esr_fault.Schedule in
  let module Oracle = Esr_workload.Oracle in
  let module Obs = Esr_obs.Obs in
  let module Trace = Esr_obs.Trace in
  let t =
    Tablefmt.create
      ~title:
        "E13: availability and query staleness under faults with full \
         crash-recovery semantics — crash@600:1 recover@1400:1 then a 2+2 \
         partition@1800 heal@2600 (volatile state wiped at the crash, \
         durable log replayed at recovery; paper Sec 1/5.3: asynchronous \
         methods keep serving through both windows)"
      ~headers:
        [ "Method"; "Upd avail (faulty)"; "Upd avail (clear)";
          "Degraded queries"; "Staleness (faulty)"; "Staleness (clear)";
          "Log replays"; "Converged" ]
  in
  let schedule =
    Schedule.make
      [
        { Schedule.at = 600.0; action = Schedule.Crash 1 };
        { Schedule.at = 1_400.0; action = Schedule.Recover 1 };
        { Schedule.at = 1_800.0; action = Schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
        { Schedule.at = 2_600.0; action = Schedule.Heal };
      ]
  in
  let faulty time =
    (time >= 600.0 && time < 1_400.0) || (time >= 1_800.0 && time < 2_600.0)
  in
  let jobs =
    List.map
      (fun name () ->
        let obs = Obs.create ~tracing:true () in
        let config = { Intf.default_config with Intf.twopc_timeout = 30_000.0 } in
        let h = Harness.create ~config ~obs ~seed ~sites:4 ~method_name:name () in
        let engine = Harness.engine h in
        let net = Harness.net h in
        let oracle = Oracle.create ~size:8 () in
        let metric =
          match name with "RITU" | "QUORUM" -> `Mismatch | _ -> `Distance
        in
        let f_sub = ref 0 and f_com = ref 0 and c_sub = ref 0 and c_com = ref 0 in
        let degraded = ref 0 in
        let f_stale = Stats.create () and c_stale = Stats.create () in
        (* Updates every 20ms from rotating origins over 8 keys. *)
        for i = 0 to 159 do
          let time = float_of_int (i + 1) *. 20.0 in
          ignore
            (Engine.schedule_at engine ~time (fun () ->
                 incr (if faulty time then f_sub else c_sub);
                 let key = Printf.sprintf "k%d" (i mod 8) in
                 let intents =
                   match name with
                   | "RITU" | "QUORUM" ->
                       [ Intf.Set (key, Esr_store.Value.Int (1_000 + i)) ]
                   | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
                 in
                 Harness.submit_update h ~origin:(i mod 4) intents (function
                   | Intf.Committed { committed_at } ->
                       (* Bucket commits by commit time (as E4 does): an
                          update that only commits after the heal was not
                          available during the fault. *)
                       incr (if faulty committed_at then f_com else c_com);
                       Oracle.apply oracle intents
                   | Intf.Rejected _ -> ())))
        done;
        (* Queries every 35ms from rotating sites; staleness = distance of
           the answer from the committed-prefix oracle at serve time. *)
        for i = 0 to 90 do
          let time = float_of_int (i + 1) *. 35.0 in
          ignore
            (Engine.schedule_at engine ~time (fun () ->
                 let site = i mod 4 in
                 if not (Net.site_up net site) then incr degraded;
                 (* Stride 3 decorrelates the queried key from the querying
                    site: update keys are written by origin [i mod 4], so a
                    straight [i mod 8] key would only ever read writes from
                    the query site's own partition side. *)
                 let keys = [ Printf.sprintf "k%d" (i * 3 mod 8) ] in
                 Harness.submit_query h ~site ~keys ~epsilon:Epsilon.Unlimited
                   (fun outcome ->
                     let stale = Oracle.error ~metric oracle outcome.Intf.values in
                     if faulty outcome.Intf.served_at then
                       Stats.add f_stale stale
                     else Stats.add c_stale stale)))
        done;
        Harness.inject_faults h schedule;
        let settled = Harness.settle h in
        let replays = ref 0 in
        Trace.iter obs.Obs.trace (fun r ->
            match r.Trace.ev with
            | Trace.Recovery_replay _ -> incr replays
            | _ -> ());
        [
          name;
          fmt_pct !f_com !f_sub;
          fmt_pct !c_com !c_sub;
          Tablefmt.cell_int !degraded;
          Printf.sprintf "%.2f" (Stats.mean f_stale);
          Printf.sprintf "%.2f" (Stats.mean c_stale);
          Tablefmt.cell_int !replays;
          Tablefmt.cell_bool (settled && Harness.converged h);
        ])
      [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E14: divergence profile over the fault schedule                     *)
(* ------------------------------------------------------------------ *)

(* The observatory's view of the E13 workload: instead of bucketing
   commits into faulty/clear windows, the series samples max replica
   spread every 100ms, so the table shows divergence building while a
   site is down, spiking at the partition, and collapsing to zero at
   quiescence (the paper's convergence claim, watched rather than merely
   asserted at the end). *)
let e14_divergence_profile () =
  let module Harness = Esr_replica.Harness in
  let module Schedule = Esr_fault.Schedule in
  let module Obs = Esr_obs.Obs in
  let module Series = Esr_obs.Series in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ] in
  let t =
    Tablefmt.create
      ~title:
        "E14: divergence profile — max replica spread (distance between the \
         most and least advanced copy of any key) sampled every 100ms over \
         the E13 fault schedule (crash@600:1 recover@1400:1 partition@1800 \
         heal@2600); * marks rows inside a fault window"
      ~headers:(("t (ms)" :: methods) @ [ "fault?" ])
  in
  let horizon = 3_400.0 in
  let faulty time =
    (time >= 600.0 && time < 1_400.0) || (time >= 1_800.0 && time < 2_600.0)
  in
  let schedule =
    Schedule.make
      [
        { Schedule.at = 600.0; action = Schedule.Crash 1 };
        { Schedule.at = 1_400.0; action = Schedule.Recover 1 };
        { Schedule.at = 1_800.0; action = Schedule.Partition [ [ 0; 1 ]; [ 2; 3 ] ] };
        { Schedule.at = 2_600.0; action = Schedule.Heal };
      ]
  in
  (* Each job returns (spread at time t, peak spread, time of the last
     divergent sample); the same update stream as E13, queries omitted
     since replica spread is a pure update-propagation phenomenon. *)
  let jobs =
    List.map
      (fun name () ->
        let obs = Obs.create ~series:true ~series_interval:100.0 () in
        let config = { Intf.default_config with Intf.twopc_timeout = 30_000.0 } in
        let h = Harness.create ~config ~obs ~seed ~sites:4 ~method_name:name () in
        let engine = Harness.engine h in
        for i = 0 to 159 do
          let time = float_of_int (i + 1) *. 20.0 in
          ignore
            (Engine.schedule_at engine ~time (fun () ->
                 let key = Printf.sprintf "k%d" (i mod 8) in
                 let intents =
                   match name with
                   | "RITU" | "QUORUM" ->
                       [ Intf.Set (key, Esr_store.Value.Int (1_000 + i)) ]
                   | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
                 in
                 Harness.submit_update h ~origin:(i mod 4) intents (fun _ -> ())))
        done;
        Harness.inject_faults h schedule;
        Harness.arm_series h ~until:horizon;
        ignore (Harness.settle h);
        let series = obs.Obs.series in
        let col = Option.get (Series.column_index series "esr/spread_max") in
        let by_time = Hashtbl.create 64 in
        let peak = ref 0.0 and last_div = ref 0.0 in
        Series.iter series (fun s ->
            let v = s.Series.values.(col) in
            Hashtbl.replace by_time s.Series.at v;
            if v > !peak then peak := v;
            if v > 0.0 then last_div := s.Series.at);
        (by_time, !peak, !last_div))
      methods
  in
  let profiles = Pool.map (fun job -> job ()) jobs in
  let cell v = if v = 0.0 then "0" else Printf.sprintf "%.0f" v in
  let times = List.init 17 (fun i -> float_of_int (i + 1) *. 200.0) in
  List.iter
    (fun time ->
      Tablefmt.add_row t
        ((Printf.sprintf "%.0f" time
         :: List.map
              (fun (by_time, _, _) ->
                match Hashtbl.find_opt by_time time with
                | Some v -> cell v
                | None -> "-")
              profiles)
        @ [ (if faulty time then "*" else "") ]))
    times;
  Tablefmt.add_separator t;
  Tablefmt.add_row t
    (("peak" :: List.map (fun (_, peak, _) -> cell peak) profiles) @ [ "" ]);
  Tablefmt.add_row t
    (("last divergent" :: List.map (fun (_, _, last) -> cell last) profiles)
    @ [ "" ]);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* A1: ablation — ORDUP ordering source                                *)
(* ------------------------------------------------------------------ *)

let a1_ordup_ordering () =
  let t =
    Tablefmt.create
      ~title:
        "A1 (ablation): ORDUP order source — central sequencer vs Lamport \
         timestamps (paper Sec 3.1: with timestamps, MSets must wait until \
         no earlier stamp can arrive)"
      ~headers:
        [ "Ordering"; "Sites"; "Upd lat p50 (ms)"; "Upd lat p95 (ms)";
          "Quiesce time (ms)"; "Committed" ]
  in
  let sites_list = [ 4; 8 ] in
  let jobs =
    List.concat_map
      (fun (label, ordering, flush_every) ->
        List.map
          (fun sites () ->
            let spec =
              {
                Spec.default with
                Spec.duration = 3_000.0;
                update_rate = 0.03;
                query_rate = 0.01;
                n_keys = 16;
                ops_per_update = 1;
              }
            in
            let config = { Intf.default_config with Intf.ordup_ordering = ordering } in
            let r =
              Scenario.run ~seed ~config ~net_config:wan ?flush_every ~sites
                ~method_name:"ORDUP" spec
            in
            [
              label;
              Tablefmt.cell_int sites;
              fmt_ms (Stats.median r.Scenario.update_latency);
              fmt_ms (Stats.percentile r.Scenario.update_latency 95.0);
              fmt_ms r.Scenario.quiesce_time;
              Tablefmt.cell_int r.Scenario.committed;
            ])
          sites_list)
      [
        ("sequencer", `Sequencer, None);
        ("lamport", `Lamport, None);
        ("lamport + 50ms heartbeats", `Lamport, Some 50.0);
      ]
  in
  add_grouped t ~per_group:(List.length sites_list) (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* A2: ablation — stable-queue retry interval vs loss                  *)
(* ------------------------------------------------------------------ *)

let a2_squeue_retry () =
  let t =
    Tablefmt.create
      ~title:
        "A2 (ablation): stable-queue retry interval vs link loss — time to \
         drain 200 broadcast MSets (4 sites, 10ms links)"
      ~headers:
        [ "Loss"; "Retry interval (ms)"; "Drain time (ms)"; "Retransmissions";
          "Duplicates suppressed" ]
  in
  let retries = [ 25.0; 50.0; 100.0; 200.0 ] in
  let jobs =
    List.concat_map
      (fun drop ->
        List.map
          (fun retry () ->
            let engine = Engine.create () in
            let config = { Net.default_config with Net.drop_probability = drop } in
            let net = Net.create ~config engine ~sites:4 ~prng:(Prng.create seed) in
            let delivered = ref 0 in
            let q =
              Squeue.create ~retry_interval:retry net
                ~handler:(fun ~site:_ ~src:_ () -> incr delivered)
            in
            for i = 0 to 199 do
              ignore
                (Engine.schedule engine ~delay:(float_of_int i) (fun () ->
                     Squeue.send q ~src:(i mod 4) ~dst:((i + 1) mod 4) ()))
            done;
            Engine.run engine;
            let c = Squeue.counters q in
            [
              Printf.sprintf "%.0f%%" (drop *. 100.0);
              Tablefmt.cell_float retry;
              fmt_ms (Engine.now engine);
              Tablefmt.cell_int c.Squeue.retransmissions;
              Tablefmt.cell_int c.Squeue.duplicates_suppressed;
            ])
          retries)
      [ 0.0; 0.05; 0.1; 0.2 ]
  in
  add_grouped t ~per_group:(List.length retries) (par_rows jobs);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E15: the million-op scale tier                                      *)
(* ------------------------------------------------------------------ *)

(* One order of magnitude past every other experiment: ~100 sites,
   ~10^5 keys, and >= 10^6 *applied update operations* per method at
   scale 1.0 (an applied op = one operation of one committed update ET
   executed at one replica, so applied = committed x ops/update x sites
   for the full-replication methods below).  The async methods only —
   the tier exists to exercise the interned-key stores, the
   allocation-stripped apply path, and the SoA event heap at volume, not
   to re-measure 2PC's round trips.

   The table prints only deterministic values (the timed sweep
   byte-compares it across domain counts and tracing); wall-clock
   throughput goes through {!note_applied} into BENCH_experiments.json,
   and a human-readable ops/sec line is printed to *stderr*. *)
let e15_scale () =
  let s = !scale in
  let sites = Stdlib.max 4 (int_of_float ((100.0 *. s) +. 0.5)) in
  let n_keys = Stdlib.max 64 (int_of_float ((100_000.0 *. s) +. 0.5)) in
  let duration = 10_000.0 *. s in
  let update_rate = 0.5 in  (* ETs per virtual ms -> ~5_000 x s update ETs *)
  let ops_per_update = 2 in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E15: scale tier at scale %g — %d sites, %d keys, ~%.0f update \
            ETs x %d ops applied at every replica (async methods; \
            deterministic columns only, throughput lands in \
            BENCH_experiments.json)"
           s sites n_keys (duration *. update_rate) ops_per_update)
      ~headers:
        [ "Method"; "Committed"; "Rejected"; "Applied ops"; "Msgs sent";
          "Settled"; "Replicas equal" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "QUASI" ] in
  let t0 = Unix.gettimeofday () in
  let jobs =
    List.map
      (fun name () ->
        let spec =
          {
            Spec.duration;
            update_rate;
            query_rate = 0.002;
            n_keys;
            zipf_theta = 0.6;
            ops_per_update;
            keys_per_query = 1;
            epsilon = Epsilon.Unlimited;
            profile = profile_for name;
          }
        in
        let r = Scenario.run ~seed ~sites ~method_name:name spec in
        let applied = r.Scenario.committed * ops_per_update * sites in
        ( applied,
          [
            name;
            Tablefmt.cell_int r.Scenario.committed;
            Tablefmt.cell_int r.Scenario.rejected;
            Tablefmt.cell_int applied;
            Tablefmt.cell_int r.Scenario.net_counters.Net.sent;
            Tablefmt.cell_bool r.Scenario.settled;
            Tablefmt.cell_bool r.Scenario.converged;
          ] ))
      methods
  in
  let results = par_rows jobs in
  let elapsed = Unix.gettimeofday () -. t0 in
  let applied = List.fold_left (fun a (n, _) -> a + n) 0 results in
  note_applied applied;
  add_rows t (List.map snd results);
  Tablefmt.print t;
  (* stderr on purpose: wall-clock numbers must not enter the
     byte-compared stdout capture. *)
  Printf.eprintf
    "e15_scale: %d applied update ops in %.2fs wall = %.0f updates/sec \
     (scale %g, %d sites, %d keys)\n%!"
    applied elapsed
    (if elapsed > 0.0 then float_of_int applied /. elapsed else 0.0)
    s sites n_keys

(* ------------------------------------------------------------------ *)
(* E16: long soak — log/journal growth under traffic plus a nemesis    *)
(* ------------------------------------------------------------------ *)

(* The resource observatory's long-haul run: every method faces the same
   sustained update stream and the same seeded nemesis schedule (crash
   and partition windows, all healed before quiescence) while the
   harness's per-site [res/] gauges are sampled on virtual time.  The
   table quantifies what grows without bound (durable logs, cumulative
   WAL appends, journal enqueues) versus what drains (standing journal
   depth), which is exactly the trade the paper's stable queues buy
   availability with.

   Printed columns are all counts on virtual time, so the timed sweep
   byte-compares this table across domain counts, tracing and profiling
   like every other experiment.  Per-method dumps — the esr-series/1
   resource series, an OpenMetrics exposition, the HTML report and (when
   profiling is on) the esr-profile/1 dump — are only written when
   ESR_SOAK_DIR names a directory, so they never perturb stdout. *)
let e16_soak () =
  let module Harness = Esr_replica.Harness in
  let module Obs = Esr_obs.Obs in
  let module Series = Esr_obs.Series in
  let module Trace = Esr_obs.Trace in
  let module Prof = Esr_obs.Prof in
  let module Report = Esr_obs.Report in
  let module Openmetrics = Esr_obs.Openmetrics in
  let module Metrics = Esr_obs.Metrics in
  let module Nemesis = Esr_fault.Nemesis in
  let module Schedule = Esr_fault.Schedule in
  let s = !scale in
  let sites = 4 in
  let duration = Stdlib.max 1_200.0 (12_000.0 *. s) in
  let update_every = 20.0 in
  let n_updates = int_of_float (duration *. 0.8 /. update_every) in
  let interval = duration /. 60.0 in
  let soak_dir = Sys.getenv_opt "ESR_SOAK_DIR" in
  (match soak_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  let profiling = Atomic.get Obs.default_profiling in
  let schedule =
    Nemesis.generate ~seed ~sites ~duration:(duration *. 0.7) ()
  in
  Printf.printf "e16 nemesis schedule (seed %d): %s\n" seed
    (Schedule.to_spec schedule);
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E16: long soak at scale %g — %d sites, %.0f virtual ms of \
            sustained updates under the seeded nemesis above; durable \
            log / WAL / journal growth summed over sites (cumulative \
            counters grow, standing depth drains to 0 at quiescence)"
           s sites duration)
      ~headers:
        [ "Method"; "Committed"; "Log entries"; "Log KB"; "WAL appends";
          "Journal enq"; "Journal depth"; "Replays";
          "Log growth /1k ms"; "Converged" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ] in
  let jobs =
    List.map
      (fun name () ->
        let obs =
          Obs.create ~tracing:true ~series:true ~series_interval:interval
            ~profiling ()
        in
        let config =
          { Intf.default_config with Intf.twopc_timeout = 30_000.0 }
        in
        let h = Harness.create ~config ~obs ~seed ~sites ~method_name:name () in
        let engine = Harness.engine h in
        let committed = ref 0 in
        for i = 0 to n_updates - 1 do
          let time = float_of_int (i + 1) *. update_every in
          ignore
            (Engine.schedule_at engine ~time (fun () ->
                 let key = Printf.sprintf "k%d" (i mod 16) in
                 let intents =
                   match name with
                   | "RITU" | "QUORUM" ->
                       [ Intf.Set (key, Esr_store.Value.Int (1_000 + i)) ]
                   | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
                 in
                 Harness.submit_update h ~origin:(i mod sites) intents
                   (function
                     | Intf.Committed _ -> incr committed
                     | Intf.Rejected _ -> ())))
        done;
        Harness.inject_faults h schedule;
        Harness.arm_series h ~until:duration;
        let settled = Harness.settle h in
        let res site = Intf.boxed_resources (Harness.system h) ~site in
        let sum f =
          List.fold_left (fun a i -> a + f (res i)) 0 (List.init sites Fun.id)
        in
        let replays = ref 0 in
        Trace.iter obs.Obs.trace (fun r ->
            match r.Trace.ev with
            | Trace.Recovery_replay _ -> incr replays
            | _ -> ());
        (* Growth rate of the summed durable log over the sampled window
           (virtual time, hence deterministic). *)
        let series = obs.Obs.series in
        let log_cols =
          List.filter_map
            (fun i ->
              Series.column_index series
                (Printf.sprintf "res/log_entries.s%d" i))
            (List.init sites Fun.id)
        in
        let first = ref None and last = ref None in
        Series.iter series (fun smp ->
            if !first = None then first := Some smp;
            last := Some smp);
        let sum_at (smp : Series.sample) =
          List.fold_left (fun a c -> a +. smp.Series.values.(c)) 0.0 log_cols
        in
        let growth =
          match (!first, !last) with
          | Some f, Some l when l.Series.at > f.Series.at ->
              (sum_at l -. sum_at f) /. (l.Series.at -. f.Series.at) *. 1000.0
          | _ -> 0.0
        in
        (* Dump the observability artefacts for this method, if asked. *)
        (match soak_dir with
        | Some dir ->
            let out file f =
              let oc = open_out file in
              Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
            in
            let base =
              Filename.concat dir
                (Printf.sprintf "e16_%s"
                   (String.lowercase_ascii
                      (String.map (function '/' -> '_' | c -> c) name)))
            in
            out (base ^ ".series.json") (fun oc -> Series.write_json oc series);
            out (base ^ ".om") (fun oc ->
                Openmetrics.write_snapshot oc (Metrics.snapshot obs.Obs.metrics));
            if Prof.on obs.Obs.prof then
              out (base ^ ".profile.json") (fun oc ->
                  Prof.write_json oc obs.Obs.prof);
            let records = ref [] in
            Trace.iter obs.Obs.trace (fun r -> records := r :: !records);
            let input =
              Report.make ~label:("e16 " ^ name)
                ~series:(Series.dump series)
                ?profile:
                  (if Prof.on obs.Obs.prof then Some (Prof.dump obs.Obs.prof)
                   else None)
                (List.rev !records)
            in
            out (base ^ ".html") (fun oc -> output_string oc (Report.html input))
        | None -> ());
        let applied = sum (fun r -> r.Intf.log_entries) in
        ( applied,
          [
            name;
            Tablefmt.cell_int !committed;
            Tablefmt.cell_int (sum (fun r -> r.Intf.log_entries));
            Printf.sprintf "%.1f"
              (float_of_int (sum (fun r -> r.Intf.log_bytes)) /. 1024.0);
            Tablefmt.cell_int (sum (fun r -> r.Intf.wal_appended));
            Tablefmt.cell_int (sum (fun r -> r.Intf.journal_enqueued));
            Tablefmt.cell_int (sum (fun r -> r.Intf.journal_depth));
            Tablefmt.cell_int !replays;
            Printf.sprintf "%.1f" growth;
            Tablefmt.cell_bool (settled && Harness.converged h);
          ] ))
      methods
  in
  let results = par_rows jobs in
  note_applied (List.fold_left (fun a (n, _) -> a + n) 0 results);
  add_rows t (List.map snd results);
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E17: sharded scale — interest-routed propagation vs full fanout     *)
(* ------------------------------------------------------------------ *)

(* The partial-replication payoff, measured: the same workload on the
   same site count, once fully replicated (every update MSet reaches
   every site) and once under ring placement with 3 copies per shard
   (updates reach only the interested replicas).  Messages per committed
   update should track the replication factor, not the site count —
   at 200 sites and factor 3 the sharded fanout is ~1.5% of full — and
   the per-site store footprint should shrink roughly by factor/sites,
   because a site only materialises the shards it replicates.

   Printed columns are all virtual-time-deterministic, so the timed
   sweep byte-compares this table like every other experiment; applied
   update-op volume goes through {!note_applied} so the sweep derives an
   updates/sec figure for the sharded tier too. *)
let e17_sharded_scale () =
  let module Sharding = Esr_store.Sharding in
  let module Obs = Esr_obs.Obs in
  let module Metrics = Esr_obs.Metrics in
  let s = !scale in
  let sites = Stdlib.max 8 (int_of_float ((200.0 *. s) +. 0.5)) in
  let factor = 3 in
  let n_keys = 4_096 in
  let duration = 2_000.0 in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E17: sharded scale at scale %g — %d sites, full replication vs \
            ring placement with %d copies per shard (%d shards, %d keys); \
            interest-routed propagation cuts messages per committed update \
            from O(sites) to O(factor), and the per-site store shrinks \
            with the replication factor"
           s sites factor sites n_keys)
      ~headers:
        [ "Method"; "Copies"; "Committed"; "Msgs sent"; "Msgs/update";
          "vs full"; "Store words/site"; "Settled"; "Converged" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "QUASI" ] in
  let ops_per_update = 2 in
  let factors = [ sites; factor ] in
  let jobs =
    List.concat_map
      (fun name ->
        List.map
          (fun copies () ->
            let spec =
              {
                Spec.duration;
                update_rate = 0.25;
                query_rate = 0.01;
                n_keys;
                zipf_theta = 0.6;
                ops_per_update;
                keys_per_query = 1;
                epsilon = Epsilon.Unlimited;
                profile = profile_for name;
              }
            in
            let sharding =
              if copies = sites then None
              else
                Some
                  (Sharding.create ~policy:Sharding.Ring ~shards:sites
                     ~factor:copies ~sites ())
            in
            let obs = Obs.create () in
            let r =
              Scenario.run ~seed ?sharding ~obs ~sites ~method_name:name spec
            in
            (* Mean per-site store footprint, read off the harness's
               [res/store_words] gauges at quiescence. *)
            let store_words =
              List.fold_left
                (fun a (e : Metrics.entry) ->
                  match (e.Metrics.group, e.Metrics.name, e.Metrics.view) with
                  | "res", "store_words", Metrics.Gauge_v v -> a +. v
                  | _ -> a)
                0.0
                (Metrics.snapshot obs.Obs.metrics)
              /. float_of_int sites
            in
            let applied = r.Scenario.committed * ops_per_update * copies in
            (applied, (name, copies, r, store_words)))
          factors)
      methods
  in
  let results = par_rows jobs in
  note_applied (List.fold_left (fun a (n, _) -> a + n) 0 results);
  (* Pair each sharded run with its full-replication twin (they are
     adjacent in job order) to print the fanout ratio. *)
  let msgs_per_update (r : Scenario.result) =
    if r.Scenario.committed = 0 then 0.0
    else
      float_of_int r.Scenario.net_counters.Net.sent
      /. float_of_int r.Scenario.committed
  in
  let full_mpu = Hashtbl.create 8 in
  List.iter
    (fun (_, (name, copies, r, _)) ->
      if copies = sites then Hashtbl.replace full_mpu name (msgs_per_update r))
    results;
  List.iter
    (fun (_, (name, copies, r, store_words)) ->
      let mpu = msgs_per_update r in
      let ratio =
        match Hashtbl.find_opt full_mpu name with
        | Some f when f > 0.0 -> Printf.sprintf "%.3fx" (mpu /. f)
        | _ -> "n/a"
      in
      Tablefmt.add_row t
        [
          name;
          Tablefmt.cell_int copies;
          Tablefmt.cell_int r.Scenario.committed;
          Tablefmt.cell_int r.Scenario.net_counters.Net.sent;
          Printf.sprintf "%.1f" mpu;
          ratio;
          Printf.sprintf "%.0f" store_words;
          Tablefmt.cell_bool r.Scenario.settled;
          Tablefmt.cell_bool r.Scenario.converged;
        ];
      if copies <> sites then Tablefmt.add_separator t)
    results;
  Tablefmt.print t

(* ------------------------------------------------------------------ *)
(* E18: bounded soak — checkpoint + GC bounds log depth and replay     *)
(* ------------------------------------------------------------------ *)

(* The robustness claim of DESIGN.md §12, measured over days of virtual
   time: with asynchronous checkpointing on, the *standing* durable-log
   depth and the crash-replay length stay bounded by the checkpoint
   cadence while the *cumulative* work (entries folded into snapshots)
   keeps growing — and the final replica state is exactly what an
   identical run without checkpointing reaches, which the Off-match
   column checks store-for-store against a same-seed checkpointing-off
   twin of every run.

   Every method faces the same sustained update stream and the same
   seeded continuous nemesis: crash and partition windows spread over
   80% of the horizon, all healed before quiescence, so tail replays
   happen mid-run at whatever cut positions the cadence produced.  Cut
   times are multiples of the interval and nemesis crash times come from
   a continuous PRNG, so the exact ties {!Esr_fault.Schedule.validate}
   rejects cannot occur.  All printed columns are virtual-time counts,
   so the table byte-compares across domain counts, tracing and
   profiling like every other experiment. *)
let e18_bounded_soak () =
  let module Harness = Esr_replica.Harness in
  let module Obs = Esr_obs.Obs in
  let module Series = Esr_obs.Series in
  let module Checkpoint = Esr_replica.Checkpoint in
  let module Nemesis = Esr_fault.Nemesis in
  let module Schedule = Esr_fault.Schedule in
  let module Store = Esr_store.Store in
  let s = !scale in
  let sites = 4 in
  (* Two virtual days at full scale; the update, checkpoint and series
     cadences all scale with the horizon, so the event volume — and the
     wall-clock cost — stays fixed as the virtual horizon stretches. *)
  let duration = Stdlib.max 4_800.0 (172_800_000.0 *. s) in
  let update_every = duration /. 4_000.0 in
  let n_updates = int_of_float (duration *. 0.8 /. update_every) in
  let ckpt_interval = duration /. 96.0 in
  let series_interval = duration /. 60.0 in
  let profile =
    {
      Nemesis.max_faults = 10;
      crash_bias = 0.6;
      min_window = duration *. 0.002;
      max_window = duration *. 0.02;
    }
  in
  let schedule =
    Nemesis.generate ~profile ~seed ~sites ~duration:(duration *. 0.8) ()
  in
  Printf.printf "e18 nemesis schedule (seed %d): %s\n" seed
    (Schedule.to_spec schedule);
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E18: bounded soak at scale %g — %d sites, %.0f virtual ms of \
            sustained updates under the seeded nemesis above, checkpoint \
            cut every %.0f ms (retain %d); standing log depth (Max depth) \
            and replay length (Max tail) stay bounded while folded \
            entries grow, and the final stores match a same-seed \
            checkpointing-off twin (Off-match)"
           s sites duration ckpt_interval Checkpoint.default_retain)
      ~headers:
        [ "Method"; "Committed"; "Cuts"; "Folded"; "Journal GC";
          "Max depth"; "Final log"; "WAL hw"; "Replays"; "Max tail";
          "Off-match"; "Converged" ]
  in
  let methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ] in
  let config = { Intf.default_config with Intf.twopc_timeout = 30_000.0 } in
  (* Identical workload for the checkpointed run and its off twin: same
     arrival times, same intents, same fault schedule. *)
  let drive name h =
    let engine = Harness.engine h in
    let committed = ref 0 in
    for i = 0 to n_updates - 1 do
      let time = float_of_int (i + 1) *. update_every in
      ignore
        (Engine.schedule_at engine ~time (fun () ->
             let key = Printf.sprintf "k%d" (i mod 16) in
             let intents =
               match name with
               | "RITU" | "QUORUM" ->
                   [ Intf.Set (key, Esr_store.Value.Int (1_000 + i)) ]
               | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
             in
             Harness.submit_update h ~origin:(i mod sites) intents (function
               | Intf.Committed _ -> incr committed
               | Intf.Rejected _ -> ())))
    done;
    Harness.inject_faults h schedule;
    committed
  in
  let jobs =
    List.map
      (fun name () ->
        (* Off twin first: its final stores are the reference the
           checkpointed run must reproduce exactly. *)
        let off =
          let obs = Obs.create () in
          let h =
            Harness.create ~config ~obs ~seed ~sites ~method_name:name ()
          in
          ignore (drive name h);
          ignore (Harness.settle h);
          List.init sites (fun i -> Store.snapshot (Harness.store h ~site:i))
        in
        let obs = Obs.create ~series:true ~series_interval () in
        let h =
          Harness.create ~config ~obs ~seed ~sites ~method_name:name
            ~checkpoint:
              {
                Checkpoint.interval = ckpt_interval;
                retain = Checkpoint.default_retain;
              }
            ()
        in
        let committed = drive name h in
        Harness.arm_series h ~until:duration;
        Harness.arm_checkpoints h ~until:duration;
        let settled = Harness.settle h in
        let c =
          match (Harness.env h).Intf.checkpoint with
          | Some c -> c
          | None -> assert false
        in
        let sum f =
          List.fold_left (fun a i -> a + f i) 0 (List.init sites Fun.id)
        in
        let maxi f =
          List.fold_left (fun a i -> Stdlib.max a (f i)) 0
            (List.init sites Fun.id)
        in
        let res site = Intf.boxed_resources (Harness.system h) ~site in
        (* Counted from the checkpoint stats rather than the trace: over
           a days-long horizon the bounded trace ring wraps and evicts
           the early Recovery_replay events. *)
        let replays = sum (fun i -> Checkpoint.tail_replays c ~site:i) in
        (* Peak standing log depth over the sampled horizon, summed over
           sites: the quantity checkpointing bounds.  Compare with
           Folded, the cumulative entries absorbed into snapshots, which
           grows with the horizon. *)
        let series = obs.Obs.series in
        let log_cols =
          List.filter_map
            (fun i ->
              Series.column_index series
                (Printf.sprintf "res/log_entries.s%d" i))
            (List.init sites Fun.id)
        in
        let max_depth = ref 0.0 in
        Series.iter series (fun smp ->
            let v =
              List.fold_left
                (fun a col -> a +. smp.Series.values.(col))
                0.0 log_cols
            in
            if v > !max_depth then max_depth := v);
        let final_log = sum (fun i -> (res i).Intf.log_entries) in
        let folded = sum (fun i -> Checkpoint.truncated_log c ~site:i) in
        let off_match =
          List.for_all2
            (fun snap i -> snap = Store.snapshot (Harness.store h ~site:i))
            off (List.init sites Fun.id)
        in
        ( folded + final_log,
          [
            name;
            Tablefmt.cell_int !committed;
            Tablefmt.cell_int (sum (fun i -> Checkpoint.cuts c ~site:i));
            Tablefmt.cell_int folded;
            Tablefmt.cell_int
              (sum (fun i -> Checkpoint.truncated_journal c ~site:i));
            Tablefmt.cell_int (int_of_float !max_depth);
            Tablefmt.cell_int final_log;
            Tablefmt.cell_int (sum (fun i -> (res i).Intf.wal_high_water));
            Tablefmt.cell_int replays;
            Tablefmt.cell_int (maxi (fun i -> Checkpoint.max_tail c ~site:i));
            Tablefmt.cell_bool off_match;
            Tablefmt.cell_bool (settled && Harness.converged h);
          ] ))
      methods
  in
  let results = par_rows jobs in
  note_applied (List.fold_left (fun a (n, _) -> a + n) 0 results);
  add_rows t (List.map snd results);
  Tablefmt.print t

(* --- E19: audit certificates --------------------------------------- *)

(* Every method, over the same seeded nemesis schedule, in full and
   ring-sharded placement, with the runtime auditor tapped into the live
   event stream: all 14 runs must come back certified (zero violations),
   and the ledger columns show how tight the paper's epsilon bound is in
   practice — how many bounded queries actually hit their limit, and how
   much inconsistency was charged against reconstructed overlap. *)
let e19_audit_certificates () =
  let module Obs = Esr_obs.Obs in
  let module Audit = Esr_obs.Audit in
  let module Nemesis = Esr_fault.Nemesis in
  let module Schedule = Esr_fault.Schedule in
  let module Sharding = Esr_store.Sharding in
  let sites = 4 in
  let duration = 2_000.0 in
  let epsilon = 4 in
  let schedule =
    Nemesis.generate ~seed ~sites ~duration:(duration *. 0.8) ()
  in
  Printf.printf "e19 nemesis schedule (seed %d): %s\n" seed
    (Schedule.to_spec schedule);
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E19: audit certificates — every method over the seeded nemesis \
            above, full and ring-sharded placement, epsilon = %d, with the \
            runtime auditor tapped into the live trace; Violations must be \
            0 everywhere, and the ledger columns measure bound tightness \
            (AtBound = queries charged exactly their epsilon, Exact = \
            query windows whose charge equals the reconstructed overlap \
            with concurrent update ETs)"
           epsilon)
      ~headers:
        [ "Method"; "Placement"; "Events"; "Queries"; "AtBound"; "Charged";
          "Windows"; "Exact"; "MaxReplay"; "Violations"; "Certified" ]
  in
  let methods =
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
  in
  let jobs =
    List.concat_map
      (fun name ->
        List.map
          (fun placement () ->
            let spec =
              {
                Spec.duration;
                update_rate = 0.05;
                query_rate = 0.05;
                n_keys = 24;
                zipf_theta = 0.6;
                ops_per_update = (if name = "QUORUM" then 1 else 2);
                keys_per_query = 2;
                epsilon = Epsilon.Limit epsilon;
                profile =
                  (match name with
                  | "RITU" | "QUORUM" -> Spec.Blind_set
                  | _ -> Spec.Additive);
              }
            in
            let placement_name, sharding =
              match placement with
              | `Full -> ("full", None)
              | `Ring ->
                  ("ring", Some (Sharding.create ~policy:Sharding.Ring ~sites ()))
            in
            let obs = Obs.create ~tracing:true () in
            let audit =
              Audit.create ~label:(name ^ "/" ^ placement_name) ()
            in
            let r =
              Scenario.run ~seed ?sharding ~obs ~audit ~faults:schedule ~sites
                ~method_name:name spec
            in
            ignore r;
            let report = Audit.finish audit in
            let s = report.Audit.summary in
            [
              name;
              placement_name;
              Tablefmt.cell_int s.Audit.s_events;
              Tablefmt.cell_int s.Audit.s_queries;
              Tablefmt.cell_int s.Audit.s_at_bound;
              Tablefmt.cell_int s.Audit.s_charged_total;
              Tablefmt.cell_int s.Audit.s_windows;
              Tablefmt.cell_int s.Audit.s_windows_exact;
              Tablefmt.cell_int s.Audit.s_max_replay;
              Tablefmt.cell_int (List.length report.Audit.violations);
              Tablefmt.cell_bool (Audit.ok report);
            ])
          [ `Full; `Ring ])
      methods
  in
  add_rows t (par_rows jobs);
  Tablefmt.print t

let all =
  [
    ("e1_scalability", e1_scalability);
    ("e2_epsilon", e2_epsilon);
    ("e3_convergence", e3_convergence);
    ("e4_partition", e4_partition);
    ("e5_compensation", e5_compensation);
    ("e6_ritu_vtnc", e6_ritu_vtnc);
    ("e7_lock_counter", e7_lock_counter);
    ("e8_crash_recovery", e8_crash_recovery);
    ("e9_sagas", e9_sagas);
    ("e10_value_bound", e10_value_bound);
    ("e11_quasi", e11_quasi);
    ("e12_partition_merge", e12_partition_merge);
    ("e13_fault_availability", e13_fault_availability);
    ("e14_divergence_profile", e14_divergence_profile);
    ("a1_ordup_ordering", a1_ordup_ordering);
    ("a2_squeue_retry", a2_squeue_retry);
    ("e16_soak", e16_soak);
    ("e17_sharded_scale", e17_sharded_scale);
    ("e18_bounded_soak", e18_bounded_soak);
    ("e19_audit_certificates", e19_audit_certificates);
    (* Last on purpose: the big scale tier stays at the end so everything
       cheaper has already run if it is interrupted; since schema v6 the
       timed sweep samples peak heap per experiment (GC alarm), so the
       ordering no longer affects the recorded peaks. *)
    ("e15_scale", e15_scale);
  ]

let run_all () = List.iter (fun (_, f) -> f ()) all
