(* Regeneration of the paper's tables and worked examples, derived from
   the implementation (never hard-coded):

   - Table 1: replica-control method characteristics  (from Registry.metas)
   - Table 2: 2PL compatibility for ORDUP ETs         (from Lock_table.ordup)
   - Table 3: 2PL compatibility for COMMU ETs         (from Lock_table.commu)
   - Log (1): the §2.1 ε-serial example               (through Esr_check)
   - §4.1:    the Inc/Mul compensation identity       (on a real Store) *)

module Tablefmt = Esr_util.Tablefmt
module Lock_table = Esr_cc.Lock_table
module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Hist = Esr_core.Hist
module Esr_check = Esr_core.Esr_check
module Intf = Esr_replica.Intf
module Registry = Esr_replica.Registry

let table1 () =
  let t =
    Tablefmt.create ~title:"Table 1: Replica-Control Methods (derived from Registry)"
      ~headers:
        [ "Method"; "Kind of Restriction"; "Applicability"; "Asynchronous Propagation"; "Sorting Time" ]
  in
  List.iter
    (fun (m : Intf.meta) ->
      if List.mem m.Intf.name Registry.asynchronous then
        Tablefmt.add_row t
          [
            m.Intf.name;
            m.Intf.restriction;
            Intf.family_to_string m.Intf.family;
            m.Intf.async_propagation;
            m.Intf.sorting_time;
          ])
    Registry.metas;
  Tablefmt.add_separator t;
  List.iter
    (fun (m : Intf.meta) ->
      if List.mem m.Intf.name Registry.synchronous then
        Tablefmt.add_row t
          [
            m.Intf.name ^ " (baseline)";
            m.Intf.restriction;
            Intf.family_to_string m.Intf.family;
            m.Intf.async_propagation;
            m.Intf.sorting_time;
          ])
    Registry.metas;
  Tablefmt.print t

let compat_table ~title table =
  let modes = Lock_table.modes table in
  let t =
    Tablefmt.create ~title
      ~headers:("" :: List.map Lock_table.mode_to_string modes)
  in
  List.iter
    (fun held ->
      Tablefmt.add_row t
        (Lock_table.mode_to_string held
        :: List.map
             (fun requested ->
               Lock_table.verdict_to_string
                 (Lock_table.check table ~held ~requested))
             modes))
    modes;
  Tablefmt.print t

let table2 () =
  compat_table ~title:"Table 2: 2PL Compatibility for ORDUP ETs (derived from Lock_table.ordup)"
    Lock_table.ordup

let table3 () =
  compat_table ~title:"Table 3: 2PL Compatibility for COMMU ETs (derived from Lock_table.commu)"
    Lock_table.commu

let log1 () =
  let log = "R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)" in
  let h = Hist.of_string log in
  let t =
    Tablefmt.create ~title:"Log (1), paper Sec 2.1: epsilon-serial example"
      ~headers:[ "Property"; "Checker verdict" ]
  in
  Tablefmt.add_row t [ "log"; log ];
  Tablefmt.add_row t [ "whole log conflict-SR"; Tablefmt.cell_bool (Esr_check.is_sr h) ];
  Tablefmt.add_row t
    [ "epsilon-serial"; Tablefmt.cell_bool (Esr_check.is_epsilon_serial h) ];
  let updates = Esr_check.update_subhistory h in
  Tablefmt.add_row t [ "update subhistory (Q3 deleted)"; Hist.to_string updates ];
  Tablefmt.add_row t
    [ "update subhistory SR"; Tablefmt.cell_bool (Esr_check.is_sr updates) ];
  (match Esr_check.serial_witness updates with
  | Some order ->
      Tablefmt.add_row t
        [
          "equivalent serial order";
          String.concat " ; " (List.map (Printf.sprintf "U%d") order);
        ]
  | None -> Tablefmt.add_row t [ "equivalent serial order"; "(none)" ]);
  Tablefmt.add_row t
    [
      "overlap(Q3)";
      String.concat ", "
        (List.map (Printf.sprintf "U%d") (Esr_check.overlap h ~query:3));
    ];
  Tablefmt.add_row t
    [
      "overlap bound on Q3 inconsistency";
      Tablefmt.cell_int (Esr_check.overlap_bound h ~query:3);
    ];
  Tablefmt.print t

let compensation_identity () =
  let t =
    Tablefmt.create
      ~title:"Sec 4.1: compensation identity on a live store (x0 = 5)"
      ~headers:[ "Sequence"; "Final x"; "Equals Mul(x,2) alone?" ]
  in
  let run ops =
    let s = Store.create () in
    Store.set s "x" (Value.int 5);
    List.iter
      (fun op ->
        match Store.apply s "x" op with
        | Ok _ -> ()
        | Error _ -> failwith "compensation bench: op failed")
      ops;
    Store.get s "x"
  in
  let reference = run [ Op.Mult 2 ] in
  let show name ops =
    let v = run ops in
    Tablefmt.add_row t
      [ name; Value.to_string v; Tablefmt.cell_bool (Value.equal v reference) ]
  in
  show "Mul(x,2)                       (reference)" [ Op.Mult 2 ];
  show "Inc(x,10); Mul(x,2); Dec(x,10)  (naive)"
    [ Op.Incr 10; Op.Mult 2; Op.Incr (-10) ];
  show "Inc(x,10); Mul(x,2); Div(x,2); Dec(x,10); Mul(x,2)  (undo-redo)"
    [ Op.Incr 10; Op.Mult 2; Op.Div 2; Op.Incr (-10); Op.Mult 2 ];
  Tablefmt.print t

let run_all () =
  table1 ();
  table2 ();
  table3 ();
  log1 ();
  compensation_identity ()
