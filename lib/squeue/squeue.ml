module Net = Esr_sim.Net
module Engine = Esr_sim.Engine

type mode = Unordered | Fifo

(* Sender-side state of one src->dst channel.  [unacked] is the journal: it
   survives crashes of the sender (stable storage) and drives retry.  Each
   entry remembers when it was last transmitted so a timer tick only
   retransmits messages that have actually been waiting a full interval. *)
type 'a pending_msg = { payload : 'a; mutable last_sent : float }

type 'a chan = {
  mutable next_seq : int;
  unacked : (int, 'a pending_msg) Hashtbl.t;
  mutable timer_active : bool;
}

(* Receiver-side state of one src->dst channel. *)
type 'a recv = {
  seen : (int, unit) Hashtbl.t;  (* for Unordered dedup *)
  mutable next_expected : int;  (* for Fifo *)
  reorder : (int, 'a) Hashtbl.t;  (* Fifo gap buffer *)
}

type counters = {
  enqueued : int;
  delivered_first : int;
  duplicates_suppressed : int;
  retransmissions : int;
  acks_received : int;
}

type 'a t = {
  net : Net.t;
  mode : mode;
  retry_interval : float;
  handler : site:int -> src:int -> 'a -> unit;
  chans : 'a chan array array;  (* [src].(dst) *)
  recvs : 'a recv array array;  (* [dst].(src) *)
  mutable n_enqueued : int;
  mutable n_delivered : int;
  mutable n_dup : int;
  mutable n_retx : int;
  mutable n_acks : int;
  mutable n_pending : int;
}

let register_metrics t (m : Esr_obs.Metrics.t) =
  let g name f = Esr_obs.Metrics.gauge_fn m ~group:"squeue" name f in
  g "enqueued" (fun () -> float_of_int t.n_enqueued);
  g "delivered_first" (fun () -> float_of_int t.n_delivered);
  g "duplicates_suppressed" (fun () -> float_of_int t.n_dup);
  g "retransmissions" (fun () -> float_of_int t.n_retx);
  g "acks_received" (fun () -> float_of_int t.n_acks);
  g "pending" (fun () -> float_of_int t.n_pending)

let create ?(mode = Unordered) ?(retry_interval = 50.0) ?obs net ~handler =
  let n = Net.sites net in
  let fresh_chan _ = { next_seq = 0; unacked = Hashtbl.create 8; timer_active = false } in
  let fresh_recv _ =
    { seen = Hashtbl.create 8; next_expected = 0; reorder = Hashtbl.create 8 }
  in
  let t =
    {
      net;
      mode;
      retry_interval;
      handler;
      chans = Array.init n (fun _ -> Array.init n fresh_chan);
      recvs = Array.init n (fun _ -> Array.init n fresh_recv);
      n_enqueued = 0;
      n_delivered = 0;
      n_dup = 0;
      n_retx = 0;
      n_acks = 0;
      n_pending = 0;
    }
  in
  (match obs with
  | Some (o : Esr_obs.Obs.t) -> register_metrics t o.Esr_obs.Obs.metrics
  | None -> ());
  t

let deliver t ~dst ~src seq payload =
  let recv = t.recvs.(dst).(src) in
  match t.mode with
  | Unordered ->
      if Hashtbl.mem recv.seen seq then t.n_dup <- t.n_dup + 1
      else begin
        Hashtbl.replace recv.seen seq ();
        t.n_delivered <- t.n_delivered + 1;
        t.handler ~site:dst ~src payload
      end
  | Fifo ->
      if seq < recv.next_expected || Hashtbl.mem recv.reorder seq then
        t.n_dup <- t.n_dup + 1
      else begin
        Hashtbl.replace recv.reorder seq payload;
        (* Hand up the contiguous prefix. *)
        let rec drain () =
          match Hashtbl.find_opt recv.reorder recv.next_expected with
          | None -> ()
          | Some p ->
              Hashtbl.remove recv.reorder recv.next_expected;
              recv.next_expected <- recv.next_expected + 1;
              t.n_delivered <- t.n_delivered + 1;
              t.handler ~site:dst ~src p;
              drain ()
        in
        drain ()
      end

let ack t ~src ~dst seq =
  let chan = t.chans.(src).(dst) in
  if Hashtbl.mem chan.unacked seq then begin
    Hashtbl.remove chan.unacked seq;
    t.n_acks <- t.n_acks + 1;
    t.n_pending <- t.n_pending - 1
  end

let transmit t ~src ~dst seq payload =
  (* The data message carries its own ack round trip as a closure chain:
     arrival at [dst] delivers (with dedup) and fires an ack back. *)
  Net.send ~cls:"data" t.net ~src ~dst (fun () ->
      deliver t ~dst ~src seq payload;
      Net.send ~cls:"ack" t.net ~src:dst ~dst:src (fun () -> ack t ~src ~dst seq))

let rec arm_timer t ~src ~dst =
  let chan = t.chans.(src).(dst) in
  if not chan.timer_active then begin
    chan.timer_active <- true;
    ignore
      (Engine.schedule (Net.engine t.net) ~delay:t.retry_interval (fun () ->
           chan.timer_active <- false;
           if Hashtbl.length chan.unacked > 0 then begin
             let now = Engine.now (Net.engine t.net) in
             Hashtbl.iter
               (fun seq pending ->
                 (* Only retransmit messages that have waited a full
                    interval; fresher ones may still be acked in flight. *)
                 if now -. pending.last_sent >= t.retry_interval -. 1e-9 then begin
                   t.n_retx <- t.n_retx + 1;
                   pending.last_sent <- now;
                   transmit t ~src ~dst seq pending.payload
                 end)
               chan.unacked;
             arm_timer t ~src ~dst
           end))
  end

let send t ~src ~dst payload =
  let chan = t.chans.(src).(dst) in
  let seq = chan.next_seq in
  chan.next_seq <- seq + 1;
  Hashtbl.replace chan.unacked seq
    { payload; last_sent = Engine.now (Net.engine t.net) };
  t.n_enqueued <- t.n_enqueued + 1;
  t.n_pending <- t.n_pending + 1;
  transmit t ~src ~dst seq payload;
  arm_timer t ~src ~dst

let broadcast t ~src payload =
  for dst = 0 to Net.sites t.net - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let pending t = t.n_pending

let counters t =
  {
    enqueued = t.n_enqueued;
    delivered_first = t.n_delivered;
    duplicates_suppressed = t.n_dup;
    retransmissions = t.n_retx;
    acks_received = t.n_acks;
  }
