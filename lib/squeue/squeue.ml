module Net = Esr_sim.Net
module Engine = Esr_sim.Engine
module Prng = Esr_util.Prng
module Trace = Esr_obs.Trace

type mode = Unordered | Fifo

type backoff = { multiplier : float; max_interval : float; jitter : float }

let default_backoff = { multiplier = 2.0; max_interval = 800.0; jitter = 0.1 }

(* Sender-side state of one src->dst channel.  [unacked] is the journal: it
   survives crashes of the sender (stable storage) and drives retry.  Each
   entry remembers when it was last transmitted so a timer tick only
   retransmits messages that have actually been waiting a full interval. *)
type 'a pending_msg = { payload : 'a; mutable last_sent : float }

type 'a chan = {
  mutable next_seq : int;
  unacked : (int, 'a pending_msg) Hashtbl.t;
  mutable timer_active : bool;
  mutable cur_interval : float;
      (* current retry interval; equals the base interval unless a backoff
         policy is installed, in which case it doubles (capped) while the
         channel makes no progress and resets on ack *)
}

(* Receiver-side state of one src->dst channel.  [seen_floor] is the
   dedup watermark: every sequence number below it has been delivered and
   its individual [seen] record reclaimed (checkpoint GC).  It stays 0
   unless {!gc_site} runs, keeping the historical behaviour bit-exact. *)
type 'a recv = {
  seen : (int, unit) Hashtbl.t;  (* for Unordered dedup *)
  mutable seen_floor : int;  (* all seqs < floor are known-delivered *)
  mutable next_expected : int;  (* for Fifo *)
  reorder : (int, 'a) Hashtbl.t;  (* Fifo gap buffer *)
}

type counters = {
  enqueued : int;
  delivered_first : int;
  duplicates_suppressed : int;
  retransmissions : int;
  acks_received : int;
}

type 'a t = {
  net : Net.t;
  mode : mode;
  retry_interval : float;
  backoff : backoff option;
  jitter_prng : Prng.t;  (* only consumed when [backoff] is installed *)
  handler : site:int -> src:int -> 'a -> unit;
  chans : 'a chan array array;  (* [src].(dst) *)
  recvs : 'a recv array array;  (* [dst].(src) *)
  mutable n_enqueued : int;
  mutable n_delivered : int;
  mutable n_dup : int;
  mutable n_retx : int;
  mutable n_acks : int;
  mutable n_pending : int;
  journaled_by : int array;  (* cumulative per-src journal appends *)
  trace : Trace.t;  (* session-layer events: send / first delivery / dup *)
}

let register_metrics t (m : Esr_obs.Metrics.t) =
  let g name f = Esr_obs.Metrics.gauge_fn m ~group:"squeue" name f in
  g "enqueued" (fun () -> float_of_int t.n_enqueued);
  g "delivered_first" (fun () -> float_of_int t.n_delivered);
  g "duplicates_suppressed" (fun () -> float_of_int t.n_dup);
  g "retransmissions" (fun () -> float_of_int t.n_retx);
  g "acks_received" (fun () -> float_of_int t.n_acks);
  g "pending" (fun () -> float_of_int t.n_pending)

let[@inline] note_dup t ~src ~dst seq =
  t.n_dup <- t.n_dup + 1;
  if Trace.on t.trace then
    Trace.emit t.trace
      ~time:(Engine.now (Net.engine t.net))
      (Trace.Squeue_dup { src; dst; seq })

let[@inline] note_delivered t ~src ~dst seq =
  t.n_delivered <- t.n_delivered + 1;
  if Trace.on t.trace then
    Trace.emit t.trace
      ~time:(Engine.now (Net.engine t.net))
      (Trace.Squeue_delivered { src; dst; seq })

let deliver t ~dst ~src seq payload =
  let recv = t.recvs.(dst).(src) in
  match t.mode with
  | Unordered ->
      if seq < recv.seen_floor || Hashtbl.mem recv.seen seq then
        note_dup t ~src ~dst seq
      else begin
        Hashtbl.replace recv.seen seq ();
        note_delivered t ~src ~dst seq;
        t.handler ~site:dst ~src payload
      end
  | Fifo ->
      if seq < recv.next_expected || Hashtbl.mem recv.reorder seq then
        note_dup t ~src ~dst seq
      else if seq = recv.next_expected && Hashtbl.length recv.reorder = 0 then begin
        (* In-order fast path — the overwhelmingly common case on a
           healthy link: no reorder-buffer round trip, no allocation. *)
        recv.next_expected <- seq + 1;
        note_delivered t ~src ~dst seq;
        t.handler ~site:dst ~src payload
      end
      else begin
        Hashtbl.replace recv.reorder seq payload;
        (* Hand up the contiguous prefix. *)
        let rec drain () =
          match Hashtbl.find recv.reorder recv.next_expected with
          | exception Not_found -> ()
          | p ->
              let seq = recv.next_expected in
              Hashtbl.remove recv.reorder seq;
              recv.next_expected <- seq + 1;
              note_delivered t ~src ~dst seq;
              t.handler ~site:dst ~src p;
              drain ()
        in
        drain ()
      end

let ack t ~src ~dst seq =
  let chan = t.chans.(src).(dst) in
  if Hashtbl.mem chan.unacked seq then begin
    Hashtbl.remove chan.unacked seq;
    t.n_acks <- t.n_acks + 1;
    t.n_pending <- t.n_pending - 1;
    (* Forward progress: the peer is reachable again, so retry promptly. *)
    chan.cur_interval <- t.retry_interval
  end

let transmit t ~src ~dst seq payload =
  (* The data message carries its own ack round trip as a closure chain:
     arrival at [dst] delivers (with dedup) and fires an ack back. *)
  Net.send ~cls:"data" t.net ~src ~dst (fun () ->
      deliver t ~dst ~src seq payload;
      Net.send ~cls:"ack" t.net ~src:dst ~dst:src (fun () -> ack t ~src ~dst seq))

let rec arm_timer t ~src ~dst =
  let chan = t.chans.(src).(dst) in
  if not chan.timer_active then begin
    chan.timer_active <- true;
    let delay =
      match t.backoff with
      | None -> t.retry_interval
      | Some b ->
          (* Bounded multiplicative jitter decorrelates channels that
             entered backoff at the same instant. *)
          chan.cur_interval
          *. (1.0 +. Prng.float t.jitter_prng (Float.max 0.0 b.jitter))
    in
    ignore
      (Engine.schedule (Net.engine t.net) ~delay (fun () ->
           chan.timer_active <- false;
           if Hashtbl.length chan.unacked > 0 then begin
             let now = Engine.now (Net.engine t.net) in
             let retransmitted = ref false in
             Hashtbl.iter
               (fun seq pending ->
                 (* Only retransmit messages that have waited a full
                    interval; fresher ones may still be acked in flight. *)
                 if now -. pending.last_sent >= t.retry_interval -. 1e-9 then begin
                   retransmitted := true;
                   t.n_retx <- t.n_retx + 1;
                   pending.last_sent <- now;
                   transmit t ~src ~dst seq pending.payload
                 end)
               chan.unacked;
             (match t.backoff with
             | Some b when !retransmitted ->
                 (* No ack since the last full interval: the peer is likely
                    crashed or partitioned away, so widen the retry gap
                    instead of storming the link. *)
                 chan.cur_interval <-
                   Float.min (chan.cur_interval *. b.multiplier) b.max_interval
             | _ -> ());
             arm_timer t ~src ~dst
           end))
  end

(* Immediate retransmission of everything outstanding on one channel —
   fired when a fault heals so recovery does not wait out a (possibly
   backed-off) retry interval. *)
let kick_chan t ~src ~dst =
  let chan = t.chans.(src).(dst) in
  chan.cur_interval <- t.retry_interval;
  if Hashtbl.length chan.unacked > 0 then begin
    let now = Engine.now (Net.engine t.net) in
    let seqs =
      Hashtbl.fold (fun seq _ acc -> seq :: acc) chan.unacked []
      |> List.sort compare
    in
    List.iter
      (fun seq ->
        let pending = Hashtbl.find chan.unacked seq in
        t.n_retx <- t.n_retx + 1;
        pending.last_sent <- now;
        transmit t ~src ~dst seq pending.payload)
      seqs;
    arm_timer t ~src ~dst
  end

let kick_site t site =
  for peer = 0 to Net.sites t.net - 1 do
    if peer <> site then begin
      (* Both directions: the recovered site drains its own journal and
         peers flush what queued up for it while it was down. *)
      kick_chan t ~src:site ~dst:peer;
      kick_chan t ~src:peer ~dst:site
    end
  done

let kick_all t =
  for src = 0 to Net.sites t.net - 1 do
    for dst = 0 to Net.sites t.net - 1 do
      if src <> dst then kick_chan t ~src ~dst
    done
  done

let create ?(mode = Unordered) ?(retry_interval = 50.0) ?backoff ?obs net
    ~handler =
  let n = Net.sites net in
  let fresh_chan _ =
    {
      next_seq = 0;
      unacked = Hashtbl.create 8;
      timer_active = false;
      cur_interval = retry_interval;
    }
  in
  let fresh_recv _ =
    {
      seen = Hashtbl.create 8;
      seen_floor = 0;
      next_expected = 0;
      reorder = Hashtbl.create 8;
    }
  in
  let t =
    {
      net;
      mode;
      retry_interval;
      backoff;
      jitter_prng = Prng.create 0x5132_77AB;
      handler;
      chans = Array.init n (fun _ -> Array.init n fresh_chan);
      recvs = Array.init n (fun _ -> Array.init n fresh_recv);
      n_enqueued = 0;
      n_delivered = 0;
      n_dup = 0;
      n_retx = 0;
      n_acks = 0;
      n_pending = 0;
      journaled_by = Array.make n 0;
      trace =
        (match obs with
        | Some (o : Esr_obs.Obs.t) -> o.Esr_obs.Obs.trace
        | None -> Trace.make ~capacity:1 ~enabled:false ());
    }
  in
  (match obs with
  | Some (o : Esr_obs.Obs.t) -> register_metrics t o.Esr_obs.Obs.metrics
  | None -> ());
  (* Fault-heal hooks: a recovered site (or a healed partition) triggers an
     immediate retransmission pass instead of waiting out the timers.  In a
     fault-free run these hooks never fire, so behaviour is unchanged. *)
  Net.on_recover net (fun site -> kick_site t site);
  Net.on_heal net (fun () -> kick_all t);
  t

let send t ~src ~dst payload =
  let chan = t.chans.(src).(dst) in
  let seq = chan.next_seq in
  chan.next_seq <- seq + 1;
  Hashtbl.replace chan.unacked seq
    { payload; last_sent = Engine.now (Net.engine t.net) };
  t.n_enqueued <- t.n_enqueued + 1;
  t.n_pending <- t.n_pending + 1;
  t.journaled_by.(src) <- t.journaled_by.(src) + 1;
  if Trace.on t.trace then
    Trace.emit t.trace
      ~time:(Engine.now (Net.engine t.net))
      (Trace.Squeue_send { src; dst; seq });
  transmit t ~src ~dst seq payload;
  arm_timer t ~src ~dst

let broadcast t ~src payload =
  for dst = 0 to Net.sites t.net - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let multicast t ~src ~dests payload =
  Esr_store.Sharding.Dests.iter dests (fun dst ->
      if dst <> src then send t ~src ~dst payload)

let pending t = t.n_pending

(* Sender-side journal footprint of one site: entries it has durably
   queued but not yet seen acknowledged, across all its channels. *)
let journal_depth t ~site =
  let n = ref 0 in
  Array.iter (fun chan -> n := !n + Hashtbl.length chan.unacked) t.chans.(site);
  !n

let journaled t ~site = t.journaled_by.(site)

(* Receiver-side dedup journal footprint of one site: individually
   retained sequence records across its inbound channels (the part the
   checkpoint GC reclaims; the watermark itself is O(1) per channel). *)
let dedup_depth t ~site =
  let n = ref 0 in
  Array.iter (fun recv -> n := !n + Hashtbl.length recv.seen) t.recvs.(site);
  !n

(* Checkpoint GC over one site's inbound dedup journals: advance each
   channel's watermark over the contiguous prefix of delivered sequence
   numbers and drop the individual records behind it.  A retransmission
   below the floor is suppressed by the floor alone, so exactly-once
   delivery is unaffected.  Returns the number of records reclaimed.
   Fifo channels retain nothing per-seq ([next_expected] already is the
   watermark), so there is nothing to collect. *)
let gc_site t ~site =
  match t.mode with
  | Fifo -> 0
  | Unordered ->
      let reclaimed = ref 0 in
      Array.iter
        (fun recv ->
          let continue = ref true in
          while !continue do
            if Hashtbl.mem recv.seen recv.seen_floor then begin
              Hashtbl.remove recv.seen recv.seen_floor;
              recv.seen_floor <- recv.seen_floor + 1;
              incr reclaimed
            end
            else continue := false
          done)
        t.recvs.(site);
      !reclaimed

let counters t =
  {
    enqueued = t.n_enqueued;
    delivered_first = t.n_delivered;
    duplicates_suppressed = t.n_dup;
    retransmissions = t.n_retx;
    acks_received = t.n_acks;
  }
