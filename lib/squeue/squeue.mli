(** Stable queues: reliable asynchronous MSet transport.

    The paper factors message loss out of replica control by assuming
    "stable queues which persistently retry message delivery until
    successful" (§2.2, citing Bernstein et al.'s recoverable requests and
    persistent pipes).  This module implements that contract on top of the
    lossy {!Esr_sim.Net}:

    - every enqueued message is retried until acknowledged;
    - receivers deduplicate by per-channel sequence number, so the
      application sees each message exactly once;
    - delivery order is configurable: [Unordered] (a message is handed up
      as soon as it first arrives — what ORDUP/COMMU/RITU assume, since
      they order by content, not by arrival) or [Fifo] (per-channel send
      order, buffering gaps);
    - queue state models stable storage: it survives simulated site
      crashes, and retransmission resumes on recovery.

    A {!t} is a fabric covering all sites of one simulated system. *)

type mode = Unordered | Fifo

type backoff = {
  multiplier : float;  (** retry-interval growth factor per silent interval *)
  max_interval : float;  (** backoff ceiling, virtual ms *)
  jitter : float;
      (** cap on the multiplicative jitter fraction: each armed timer waits
          [interval * (1 + U[0, jitter))] *)
}

val default_backoff : backoff
(** 2x growth, 800 ms ceiling, 10% jitter cap. *)

type 'a t

val create :
  ?mode:mode ->
  ?retry_interval:float ->
  ?backoff:backoff ->
  ?obs:Esr_obs.Obs.t ->
  Esr_sim.Net.t ->
  handler:(site:int -> src:int -> 'a -> unit) ->
  'a t
(** [handler ~site ~src msg] is invoked exactly once per message, at the
    destination [site], when the message (from [src]) is first deliverable.
    [retry_interval] defaults to 50.0 (5x the default link latency).
    Without [?backoff] every retry waits exactly [retry_interval]; with it,
    a channel that retransmits without seeing an ack widens its retry gap
    exponentially (jittered, capped) instead of storming a dead link, and
    snaps back to [retry_interval] on the next ack.  Independent of the
    policy, the fabric registers {!Esr_sim.Net.on_recover}/[on_heal] hooks
    that kick an immediate retransmission pass when a site recovers or a
    partition heals.
    With [?obs], the fabric's counters are registered as group ["squeue"]
    gauges in its metrics registry; data and ack messages are labelled
    with classes ["data"] / ["ack"] in the underlying network trace. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Enqueue a message.  Returns immediately; transport is asynchronous. *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** [send] to every site except [src]. *)

val multicast : 'a t -> src:int -> dests:Esr_store.Sharding.Dests.t -> 'a -> unit
(** [send] to every site in the destination cursor except [src], in
    ascending site order — with a full-replication cursor this is exactly
    {!broadcast}. *)

val pending : 'a t -> int
(** Messages enqueued but not yet acknowledged, across all channels.  Zero
    means the fabric is quiescent: nothing more will be delivered. *)

val journal_depth : 'a t -> site:int -> int
(** Current sender-side journal footprint of [site]: messages it enqueued
    that are not yet acknowledged, summed over its outbound channels. *)

val journaled : 'a t -> site:int -> int
(** Cumulative journal appends by [site] as sender — monotone, unlike
    {!journal_depth}, so resource series can chart journal churn. *)

val dedup_depth : 'a t -> site:int -> int
(** Receiver-side dedup journal footprint of [site]: individually
    retained sequence records across its inbound channels.  This is the
    structure {!gc_site} compacts; without GC it grows with every
    message the site ever received on an [Unordered] fabric. *)

val gc_site : 'a t -> site:int -> int
(** Checkpoint GC of [site]'s inbound dedup journals: advance each
    channel's seen-watermark over the contiguous prefix of delivered
    sequence numbers and reclaim the per-seq records behind it, returning
    how many were dropped.  Exactly-once delivery is preserved — a
    retransmission below the watermark is suppressed by the watermark
    itself.  Never called (the default), the fabric behaves exactly as
    before.  [Fifo] fabrics retain nothing per-seq and return 0. *)

type counters = {
  enqueued : int;
  delivered_first : int;  (** messages handed to the handler *)
  duplicates_suppressed : int;
  retransmissions : int;
  acks_received : int;
}

val counters : 'a t -> counters
