(** Fixed-size domain pool for embarrassingly parallel harness work.

    The simulator itself stays single-threaded and deterministic; this
    pool exists one level up, where the bench/experiment driver fans
    independent [Scenario.run] jobs out across OCaml 5 domains.  Results
    come back in submission order and exceptions are re-raised in the
    caller, so [map] is a drop-in for [List.map] whose output (and
    therefore any table built from it) is byte-identical to a sequential
    run regardless of the worker count. *)

type t
(** A running pool of worker domains. *)

val default_domains : unit -> int
(** Worker count used when [map] is called without [~domains]: the last
    value passed to {!set_default_domains} if any, else the [ESR_DOMAINS]
    environment variable if it parses as a positive integer, else
    [Domain.recommended_domain_count () - 1] (at least 1).  A value of 1
    means "run sequentially in the calling domain". *)

val set_default_domains : int -> unit
(** Override the default worker count for the rest of the process (the
    [--domains] CLI knob).  Values below 1 are clamped to 1. *)

val create : domains:int -> t
(** Spawn a pool of [domains] worker domains (at least 1). *)

val size : t -> int
(** Number of worker domains. *)

val shutdown : t -> unit
(** Stop the workers once the queue drains and join them.  The pool must
    not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run the function, [shutdown] (also on exception). *)

val run : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element on the pool's workers.  Blocks until all
    jobs finish.  Results are in input order; if any job raised, the
    exception of the lowest-indexed failing job is re-raised (with its
    backtrace) after all jobs have completed.  Jobs must not submit work
    to the same pool (the caller's wait would deadlock a full queue). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f xs] is [List.map f xs] computed on [domains] workers
    ([default_domains ()] when omitted).  With [domains <= 1] — or lists
    too short to matter — it runs sequentially in the calling domain with
    no domain spawned at all. *)
