(* Fixed-size Domain worker pool.

   Workers block on a mutex/condition-protected job queue; a job is an
   existentially boxed [unit -> unit] closure that writes its result (or
   the exception it raised) into a slot of a per-[run] results array.
   Completion is signalled through an atomic countdown so the caller can
   sleep instead of spinning.  Everything shared across domains is either
   the locked queue, an [Atomic.t], or a write-once array slot published
   before the matching atomic decrement — the standard message-passing
   discipline of the OCaml 5 memory model. *)

type t = {
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* --- default worker count ------------------------------------------- *)

let override = ref None

let set_default_domains n = override := Some (Stdlib.max 1 n)

let env_domains () =
  match Sys.getenv_opt "ESR_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let default_domains () =
  match !override with
  | Some n -> n
  | None -> (
      match env_domains () with
      | Some n -> n
      | None -> Stdlib.max 1 (Domain.recommended_domain_count () - 1))

(* --- pool lifecycle -------------------------------------------------- *)

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stopping do
      Condition.wait pool.nonempty pool.mutex
    done;
    if Queue.is_empty pool.queue then (* stopping, queue drained *)
      Mutex.unlock pool.mutex
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.mutex;
      job ();
      loop ()
    end
  in
  loop ()

let create ~domains =
  let size = Stdlib.max 1 domains in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
    }
  in
  pool.workers <- List.init size (fun _ -> Domain.spawn (worker pool));
  pool

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* --- ordered map ----------------------------------------------------- *)

type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

let collect results =
  Array.to_list results
  |> List.map (function
       | Value v -> v
       | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
       | Empty -> assert false)

let run pool f items =
  match items with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n Empty in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let job i () =
        let slot =
          match f arr.(i) with
          | v -> Value v
          | exception e -> Raised (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- slot;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_mutex;
          Condition.signal done_cond;
          Mutex.unlock done_mutex
        end
      in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.add (job i) pool.queue
      done;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      collect results

let map ?domains f items =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let domains = Stdlib.min domains (List.length items) in
  if domains <= 1 then List.map f items
  else with_pool ~domains (fun pool -> run pool f items)
