type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable len : int; hint : int }

let create ?(hint = 16) () = { arr = [||]; len = 0; hint = Stdlib.max 1 hint }
let size t = t.len
let is_empty t = t.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.arr.(i) t.arr.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && lt t.arr.(left) t.arr.(!smallest) then smallest := left;
  if right < t.len && lt t.arr.(right) t.arr.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  if t.len = Array.length t.arr then begin
    let capacity = Stdlib.max t.hint (Stdlib.max 16 (2 * t.len)) in
    let bigger = Array.make capacity entry in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let peek t =
  if t.len = 0 then None
  else
    let top = t.arr.(0) in
    Some (top.time, top.seq, top.payload)
