(* Structure-of-arrays layout: times live in a flat float array (unboxed
   by the runtime), seqs in an int array, payloads in their own array.
   Sift comparisons touch only the scalar arrays — no pointer chasing —
   and push/drop_min allocate nothing except when the arrays grow. *)
type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable len : int;
  hint : int;
}

let create ?(hint = 16) () =
  { times = [||]; seqs = [||]; payloads = [||]; len = 0; hint = Stdlib.max 1 hint }

let size t = t.len
let is_empty t = t.len = 0

let lt t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let x = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- x;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let p = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && lt t left !smallest then smallest := left;
  if right < t.len && lt t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t payload =
  let capacity = Stdlib.max t.hint (Stdlib.max 16 (2 * t.len)) in
  let times = Array.make capacity 0.0 in
  let seqs = Array.make capacity 0 in
  let payloads = Array.make capacity payload in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let push t ~time ~seq payload =
  if t.len = Array.length t.times then grow t payload;
  let i = t.len in
  t.times.(i) <- time;
  t.seqs.(i) <- seq;
  t.payloads.(i) <- payload;
  t.len <- i + 1;
  sift_up t i

let min_time t =
  if t.len = 0 then invalid_arg "Heap.min_time: empty heap";
  t.times.(0)

let min_seq t =
  if t.len = 0 then invalid_arg "Heap.min_seq: empty heap";
  t.seqs.(0)

let min_payload t =
  if t.len = 0 then invalid_arg "Heap.min_payload: empty heap";
  t.payloads.(0)

let drop_min t =
  if t.len = 0 then invalid_arg "Heap.drop_min: empty heap";
  t.len <- t.len - 1;
  let l = t.len in
  if l > 0 then begin
    t.times.(0) <- t.times.(l);
    t.seqs.(0) <- t.seqs.(l);
    t.payloads.(0) <- t.payloads.(l);
    sift_down t 0
  end

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and payload = t.payloads.(0) in
    drop_min t;
    Some (time, seq, payload)
  end

let peek t =
  if t.len = 0 then None else Some (t.times.(0), t.seqs.(0), t.payloads.(0))
