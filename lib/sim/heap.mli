(** Binary min-heap keyed by [(time, sequence)].

    The sequence number makes the ordering of simultaneous events stable
    (FIFO among equal timestamps), which the simulator needs for
    determinism.

    Internally a structure-of-arrays: times in a flat float array, seqs
    in an int array, payloads in their own array.  [push] and [drop_min]
    allocate nothing once the backing arrays are warm, which is what the
    engine's event loop relies on at million-event scale. *)

type 'a t

val create : ?hint:int -> unit -> 'a t
(** [hint] pre-sizes the first backing-array allocation (default 16) so a
    caller that knows its event volume avoids the doubling cascade. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val min_time : 'a t -> float
(** Time of the minimum element.  @raise Invalid_argument on an empty
    heap — guard with {!is_empty}. *)

val min_seq : 'a t -> int
(** Sequence number of the minimum element.  @raise Invalid_argument on
    an empty heap. *)

val min_payload : 'a t -> 'a
(** Payload of the minimum element, without removing it.
    @raise Invalid_argument on an empty heap. *)

val drop_min : 'a t -> unit
(** Remove the minimum element.  Combined with {!min_time} and
    {!min_payload} this is the allocation-free alternative to {!pop}.
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element. *)

val peek : 'a t -> (float * int * 'a) option
