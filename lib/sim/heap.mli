(** Binary min-heap keyed by [(time, sequence)].

    The sequence number makes the ordering of simultaneous events stable
    (FIFO among equal timestamps), which the simulator needs for
    determinism. *)

type 'a t

val create : ?hint:int -> unit -> 'a t
(** [hint] pre-sizes the first backing-array allocation (default 16) so a
    caller that knows its event volume avoids the doubling cascade. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element. *)

val peek : 'a t -> (float * int * 'a) option
