(** Discrete-event simulation engine.

    Virtual time is a [float] in abstract milliseconds.  Events are
    closures scheduled at a future instant; [run] executes them in
    timestamp order (FIFO among ties), which makes whole-system executions
    deterministic given deterministic event bodies.

    The engine replaces a real async runtime (the container has no Lwt):
    the paper's protocols only care about message *ordering and delay*,
    which virtual time models exactly. *)

type t

type event_id
(** Handle for cancellation. *)

val create : ?hint:int -> unit -> t
(** [hint] pre-sizes the event heap (default 64); workload drivers that
    know their arrival volume pass it to skip the growth cascade. *)

val set_prof : t -> Esr_obs.Prof.t -> unit
(** Install a host-time profiler: every dispatched event body is then
    recorded as an [Engine_dispatch] phase span (inclusive of nested
    phases).  The engine starts with {!Esr_obs.Prof.disabled}, which
    keeps dispatch allocation-free — the harness installs the run's
    profiler when one is enabled. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. delay].  Negative delays
    raise [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant; times in the past raise [Invalid_argument]. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or unknown event is a no-op. *)

val step : t -> bool
(** Execute the next event.  [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Drain the event queue.  With [~until], stops (leaving events queued)
    once the next event would fire strictly after [until] and advances the
    clock to [until]. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val processed : t -> int
(** Total events executed so far. *)

val scheduled : t -> int
(** Total events ever scheduled (fired, cancelled, or still pending). *)

val cancelled : t -> int
(** Total events cancelled before firing. *)
