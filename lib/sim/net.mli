(** Network model over the simulation engine.

    Sites are numbered [0 .. sites-1].  Each message samples a latency from
    the configured distribution and may be dropped or duplicated.  Links
    can be severed wholesale by {!partition}; sites can {!crash} and
    {!recover}.  Reliability on top of this lossy substrate is the job of
    {!Esr_squeue} — exactly the paper's split between raw links and stable
    queues (§2.2).

    Every message fate is counted (and traced when the attached
    {!Esr_obs.Obs.t} has tracing enabled): sent, delivered, lost to random
    drop, blocked by a partition, silently dropped because the source or
    the destination site is crashed, and duplicated. *)

type config = {
  latency : Esr_util.Dist.t;  (** one-way delay distribution *)
  drop_probability : float;  (** iid message loss *)
  duplicate_probability : float;  (** iid duplicate delivery *)
}

val default_config : config
(** 10ms constant latency, no loss, no duplicates. *)

val wan_config : config
(** Lognormal latency around ~40ms with 1% loss — the "very slow links"
    regime the paper targets. *)

type t

val create :
  ?config:config ->
  ?obs:Esr_obs.Obs.t ->
  Engine.t ->
  sites:int ->
  prng:Esr_util.Prng.t ->
  t
(** With [?obs], message events are recorded into its trace sink and the
    fate counters (plus per-site send/delivery counts) are registered as
    group ["net"] gauges in its metrics registry.  Without it the network
    is silent: no sink, no registration, identical behaviour. *)

val engine : t -> Engine.t
val sites : t -> int

val send : ?cls:string -> t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver [callback] at [dst] after a sampled latency, unless the message
    is lost, the two sites are partitioned (checked both at send time and
    again at arrival time, so a partition that fires while the message is
    in flight cuts it off), or [dst] is down at arrival time.  Sending
    from a crashed site is a silent drop.  [cls] labels the message class
    in trace events (default ["msg"]); stable queues pass
    ["data"] / ["ack"]. *)

val send_shard :
  ?cls:string ->
  t ->
  sharding:Esr_store.Sharding.t ->
  shard:int ->
  src:int ->
  (unit -> unit) ->
  unit
(** Interest-routed multicast: {!send} [callback] to every site
    replicating [shard] under [sharding], except [src] itself, in
    ascending site order.  Each destination goes through the full
    per-message fate machinery (loss, partition, crash accounting), so
    the counters read exactly as if the sends had been issued one by
    one — because they are. *)

(** {2 Failure injection} *)

val partition : t -> int list list -> unit
(** [partition t groups] makes sites reachable only within their group.
    Sites absent from every group form one extra implicit group together.
    Raises [Invalid_argument] if a site appears twice. *)

val heal : t -> unit
(** Remove all partitions. *)

val reachable : t -> int -> int -> bool

val crash : t -> int -> unit
val recover : t -> int -> unit
val site_up : t -> int -> bool

val on_recover : t -> (int -> unit) -> unit
(** Register a hook fired (synchronously, in registration order) each time
    a site recovers — stable queues use it to kick retransmission
    immediately instead of waiting out a backoff interval. *)

val on_heal : t -> (unit -> unit) -> unit
(** Register a hook fired each time all partitions heal. *)

val partitioned : t -> bool
(** True while any two sites are in different partition groups. *)

val partition_groups : t -> int list list
(** Current partition groups (ascending site order); a single group
    covering every site when the network is whole. *)

val down_sites : t -> int list
(** Sites currently crashed, ascending. *)

(** {2 Introspection} *)

type counters = {
  sent : int;
  delivered : int;
  lost : int;  (** random loss *)
  blocked : int;  (** = blocked_partition + crashed_src + crashed_dst *)
  blocked_partition : int;  (** dropped at send: sites in different groups *)
  crashed_src : int;  (** dropped at send: source site down *)
  crashed_dst : int;  (** dropped at arrival: destination site down *)
  duplicated : int;
}

val counters : t -> counters
