type event = { id : int; body : unit -> unit }

type t = {
  heap : event Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  mutable executed : int;
}

type event_id = int

let create () =
  {
    heap = Heap.create ();
    cancelled = Hashtbl.create 64;
    clock = 0.0;
    next_seq = 0;
    live = 0;
    executed = 0;
  }

let now t = t.clock

let schedule_at t ~time body =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap ~time ~seq { id = seq; body };
  t.live <- t.live + 1;
  seq

let schedule t ~delay body =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) body

let cancel t id =
  (* Lazy deletion: the entry stays in the heap and is skipped at pop. *)
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, _, event) ->
      if Hashtbl.mem t.cancelled event.id then begin
        Hashtbl.remove t.cancelled event.id;
        step t
      end
      else begin
        t.clock <- time;
        t.live <- t.live - 1;
        t.executed <- t.executed + 1;
        event.body ();
        true
      end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | None -> continue := false
        | Some (time, _, _) ->
            if time > limit then continue := false else ignore (step t)
      done;
      if t.clock < limit then t.clock <- limit

let pending t = t.live
let processed t = t.executed
