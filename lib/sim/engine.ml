module Prof = Esr_obs.Prof

type state = Pending | Cancelled | Fired

type event = { seq : int; body : unit -> unit; mutable state : state }

type t = {
  heap : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  mutable executed : int;
  mutable cancelled : int;
  mutable prof : Prof.t;
      (* host-time profiler around every dispatched event body; the shared
         disabled instance until the harness installs a live one *)
}

type event_id = event

let create ?(hint = 64) () =
  {
    heap = Heap.create ~hint ();
    clock = 0.0;
    next_seq = 0;
    live = 0;
    executed = 0;
    cancelled = 0;
    prof = Prof.disabled;
  }

let set_prof t prof = t.prof <- prof

let now t = t.clock

let schedule_at t ~time body =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now %g" time
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let ev = { seq; body; state = Pending } in
  Heap.push t.heap ~time ~seq ev;
  t.live <- t.live + 1;
  ev

let schedule t ~delay body =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) body

let cancel t ev =
  (* Lazy deletion: the entry stays in the heap and is skipped at pop.
     Only a still-pending event counts against [live]; cancelling a fired
     or already-cancelled event is a true no-op. *)
  match ev.state with
  | Pending ->
      ev.state <- Cancelled;
      t.live <- t.live - 1;
      t.cancelled <- t.cancelled + 1
  | Cancelled | Fired -> ()

(* Pop the next live event, discarding lazily-cancelled entries as they
   surface.  Each heap entry is examined exactly once per pop: the state
   flag lives on the event record, so there is no side-table lookup. *)
let rec pop_live t =
  if Heap.is_empty t.heap then None
  else begin
    let time = Heap.min_time t.heap in
    let ev = Heap.min_payload t.heap in
    Heap.drop_min t.heap;
    if ev.state = Cancelled then pop_live t else Some (time, ev)
  end

let execute t time ev =
  t.clock <- time;
  t.live <- t.live - 1;
  t.executed <- t.executed + 1;
  ev.state <- Fired;
  (* Profiling off is the common case and must stay allocation-free on
     this path: one load-and-branch, then the direct call. *)
  if Prof.on t.prof then begin
    let t0 = Prof.start t.prof in
    let a0 = Prof.alloc0 t.prof in
    ev.body ();
    Prof.record t.prof Prof.Engine_dispatch ~t0 ~a0
  end
  else ev.body ()

let step t =
  match pop_live t with
  | None -> false
  | Some (time, ev) ->
      execute t time ev;
      true

(* The drain loops read the heap minimum in place ([min_time] /
   [min_payload] / [drop_min]) instead of going through the option-boxed
   [pop_live], so a warm event loop allocates nothing per event. *)
let run ?until t =
  match until with
  | None ->
      let rec drain () =
        if not (Heap.is_empty t.heap) then begin
          let time = Heap.min_time t.heap in
          let ev = Heap.min_payload t.heap in
          Heap.drop_min t.heap;
          if ev.state <> Cancelled then execute t time ev;
          drain ()
        end
      in
      drain ()
  | Some limit ->
      let rec drain () =
        if not (Heap.is_empty t.heap) then begin
          (* Peek before removing: an event past the limit never leaves
             the heap, so its (time, seq) ordering is untouched. *)
          let time = Heap.min_time t.heap in
          if time <= limit then begin
            let ev = Heap.min_payload t.heap in
            Heap.drop_min t.heap;
            if ev.state <> Cancelled then execute t time ev;
            drain ()
          end
        end
      in
      drain ();
      if t.clock < limit then t.clock <- limit

let pending t = t.live
let processed t = t.executed
let scheduled t = t.next_seq
let cancelled t = t.cancelled
