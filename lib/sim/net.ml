module Dist = Esr_util.Dist
module Prng = Esr_util.Prng

type config = {
  latency : Dist.t;
  drop_probability : float;
  duplicate_probability : float;
}

let default_config =
  { latency = Dist.Constant 10.0; drop_probability = 0.0; duplicate_probability = 0.0 }

let wan_config =
  {
    latency = Dist.Lognormal (3.6, 0.35);
    drop_probability = 0.01;
    duplicate_probability = 0.0;
  }

type counters = {
  sent : int;
  delivered : int;
  lost : int;
  blocked : int;
  duplicated : int;
}

type t = {
  engine : Engine.t;
  config : config;
  prng : Prng.t;
  n_sites : int;
  group : int array;  (* partition group per site *)
  up : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable blocked : int;
  mutable duplicated : int;
  mutable trace : (src:int -> dst:int -> delivered:bool -> unit) option;
}

let create ?(config = default_config) engine ~sites ~prng =
  if sites <= 0 then invalid_arg "Net.create: sites must be positive";
  {
    engine;
    config;
    prng;
    n_sites = sites;
    group = Array.make sites 0;
    up = Array.make sites true;
    sent = 0;
    delivered = 0;
    lost = 0;
    blocked = 0;
    duplicated = 0;
    trace = None;
  }

let engine t = t.engine
let sites t = t.n_sites

let check_site t s =
  if s < 0 || s >= t.n_sites then
    invalid_arg (Printf.sprintf "Net: site %d out of range [0,%d)" s t.n_sites)

let reachable t a b =
  check_site t a;
  check_site t b;
  t.group.(a) = t.group.(b)

let site_up t s =
  check_site t s;
  t.up.(s)

let deliver_later t ~dst callback =
  let latency = Dist.sample t.config.latency t.prng in
  ignore
    (Engine.schedule t.engine ~delay:latency (fun () ->
         if t.up.(dst) then begin
           t.delivered <- t.delivered + 1;
           callback ()
         end
         else t.blocked <- t.blocked + 1))

let send t ~src ~dst callback =
  check_site t src;
  check_site t dst;
  t.sent <- t.sent + 1;
  let attempt delivered =
    match t.trace with
    | Some hook -> hook ~src ~dst ~delivered
    | None -> ()
  in
  if not (t.up.(src) && reachable t src dst) then begin
    t.blocked <- t.blocked + 1;
    attempt false
  end
  else if Prng.bernoulli t.prng t.config.drop_probability then begin
    t.lost <- t.lost + 1;
    attempt false
  end
  else begin
    deliver_later t ~dst callback;
    if Prng.bernoulli t.prng t.config.duplicate_probability then begin
      t.duplicated <- t.duplicated + 1;
      deliver_later t ~dst callback
    end;
    attempt true
  end

let partition t groups =
  let seen = Array.make t.n_sites false in
  List.iteri
    (fun gid members ->
      List.iter
        (fun s ->
          check_site t s;
          if seen.(s) then
            invalid_arg (Printf.sprintf "Net.partition: site %d listed twice" s);
          seen.(s) <- true;
          (* Group 0 is reserved for the implicit leftover group. *)
          t.group.(s) <- gid + 1)
        members)
    groups;
  Array.iteri (fun s listed -> if not listed then t.group.(s) <- 0) seen

let heal t = Array.fill t.group 0 t.n_sites 0

let crash t s =
  check_site t s;
  t.up.(s) <- false

let recover t s =
  check_site t s;
  t.up.(s) <- true

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    blocked = t.blocked;
    duplicated = t.duplicated;
  }

let set_trace t hook = t.trace <- Some hook
