module Dist = Esr_util.Dist
module Prng = Esr_util.Prng
module Trace = Esr_obs.Trace
module Metrics = Esr_obs.Metrics

type config = {
  latency : Dist.t;
  drop_probability : float;
  duplicate_probability : float;
}

let default_config =
  { latency = Dist.Constant 10.0; drop_probability = 0.0; duplicate_probability = 0.0 }

let wan_config =
  {
    latency = Dist.Lognormal (3.6, 0.35);
    drop_probability = 0.01;
    duplicate_probability = 0.0;
  }

type counters = {
  sent : int;
  delivered : int;
  lost : int;
  blocked : int;
  blocked_partition : int;
  crashed_src : int;
  crashed_dst : int;
  duplicated : int;
}

type t = {
  engine : Engine.t;
  config : config;
  prng : Prng.t;
  n_sites : int;
  group : int array;  (* partition group per site *)
  up : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable blocked_partition : int;
  mutable crashed_src : int;
  mutable crashed_dst : int;
  mutable duplicated : int;
  sent_by : int array;  (* per-src sends *)
  delivered_to : int array;  (* per-dst first+duplicate deliveries *)
  trace : Trace.t;
  prof : Esr_obs.Prof.t;
  mutable recover_hooks : (int -> unit) list;  (* fired by [recover] *)
  mutable heal_hooks : (unit -> unit) list;  (* fired by [heal] *)
}

let register_metrics t (m : Metrics.t) =
  let g name f = Metrics.gauge_fn m ~group:"net" name f in
  g "sent" (fun () -> float_of_int t.sent);
  g "delivered" (fun () -> float_of_int t.delivered);
  g "lost" (fun () -> float_of_int t.lost);
  g "blocked_partition" (fun () -> float_of_int t.blocked_partition);
  g "crashed_src" (fun () -> float_of_int t.crashed_src);
  g "crashed_dst" (fun () -> float_of_int t.crashed_dst);
  g "duplicated" (fun () -> float_of_int t.duplicated);
  for site = 0 to t.n_sites - 1 do
    Metrics.gauge_fn m ~group:"net" ~site "sent" (fun () ->
        float_of_int t.sent_by.(site));
    Metrics.gauge_fn m ~group:"net" ~site "delivered" (fun () ->
        float_of_int t.delivered_to.(site))
  done

let create ?(config = default_config) ?obs engine ~sites ~prng =
  if sites <= 0 then invalid_arg "Net.create: sites must be positive";
  let t =
    {
      engine;
      config;
      prng;
      n_sites = sites;
      group = Array.make sites 0;
      up = Array.make sites true;
      sent = 0;
      delivered = 0;
      lost = 0;
      blocked_partition = 0;
      crashed_src = 0;
      crashed_dst = 0;
      duplicated = 0;
      sent_by = Array.make sites 0;
      delivered_to = Array.make sites 0;
      trace =
        (match obs with
        | Some (o : Esr_obs.Obs.t) -> o.Esr_obs.Obs.trace
        | None -> Trace.make ~capacity:1 ~enabled:false ());
      prof =
        (match obs with
        | Some o -> o.Esr_obs.Obs.prof
        | None -> Esr_obs.Prof.disabled);
      recover_hooks = [];
      heal_hooks = [];
    }
  in
  (match obs with
  | Some o -> register_metrics t o.Esr_obs.Obs.metrics
  | None -> ());
  t

let engine t = t.engine
let sites t = t.n_sites

let check_site t s =
  if s < 0 || s >= t.n_sites then
    invalid_arg (Printf.sprintf "Net: site %d out of range [0,%d)" s t.n_sites)

let reachable t a b =
  check_site t a;
  check_site t b;
  t.group.(a) = t.group.(b)

let site_up t s =
  check_site t s;
  t.up.(s)

let deliver_later t ~src ~dst ~cls callback =
  let latency = Dist.sample t.config.latency t.prng in
  ignore
    (Engine.schedule t.engine ~delay:latency (fun () ->
         if not t.up.(dst) then begin
           t.crashed_dst <- t.crashed_dst + 1;
           if Trace.on t.trace then
             Trace.emit t.trace ~time:(Engine.now t.engine)
               (Trace.Msg_dropped { src; dst; cls; reason = Trace.Crashed_dst })
         end
         else if t.group.(src) <> t.group.(dst) then begin
           (* A partition that fired while the message was in flight cuts
              it off too: reachability is re-checked at arrival time, just
              like the crashed-destination check above. *)
           t.blocked_partition <- t.blocked_partition + 1;
           if Trace.on t.trace then
             Trace.emit t.trace ~time:(Engine.now t.engine)
               (Trace.Msg_dropped { src; dst; cls; reason = Trace.Partition })
         end
         else begin
           t.delivered <- t.delivered + 1;
           t.delivered_to.(dst) <- t.delivered_to.(dst) + 1;
           if Trace.on t.trace then
             Trace.emit t.trace ~time:(Engine.now t.engine)
               (Trace.Msg_delivered { src; dst; cls });
           let prof = t.prof in
           if Esr_obs.Prof.on prof then begin
             let t0 = Esr_obs.Prof.start prof in
             let a0 = Esr_obs.Prof.alloc0 prof in
             callback ();
             Esr_obs.Prof.record prof ~site:dst Esr_obs.Prof.Net_delivery ~t0
               ~a0
           end
           else callback ()
         end))

let send ?(cls = "msg") t ~src ~dst callback =
  check_site t src;
  check_site t dst;
  t.sent <- t.sent + 1;
  t.sent_by.(src) <- t.sent_by.(src) + 1;
  if Trace.on t.trace then
    Trace.emit t.trace ~time:(Engine.now t.engine) (Trace.Msg_sent { src; dst; cls });
  if not t.up.(src) then begin
    (* Sending from a crashed site is a silent drop, not an exception: the
       site's volatile state is gone; its stable queues retry later. *)
    t.crashed_src <- t.crashed_src + 1;
    if Trace.on t.trace then
      Trace.emit t.trace ~time:(Engine.now t.engine)
        (Trace.Msg_dropped { src; dst; cls; reason = Trace.Crashed_src })
  end
  else if not (reachable t src dst) then begin
    t.blocked_partition <- t.blocked_partition + 1;
    if Trace.on t.trace then
      Trace.emit t.trace ~time:(Engine.now t.engine)
        (Trace.Msg_dropped { src; dst; cls; reason = Trace.Partition })
  end
  else if Prng.bernoulli t.prng t.config.drop_probability then begin
    t.lost <- t.lost + 1;
    if Trace.on t.trace then
      Trace.emit t.trace ~time:(Engine.now t.engine)
        (Trace.Msg_dropped { src; dst; cls; reason = Trace.Loss })
  end
  else begin
    deliver_later t ~src ~dst ~cls callback;
    if Prng.bernoulli t.prng t.config.duplicate_probability then begin
      t.duplicated <- t.duplicated + 1;
      if Trace.on t.trace then
        Trace.emit t.trace ~time:(Engine.now t.engine)
          (Trace.Msg_duplicated { src; dst; cls });
      deliver_later t ~src ~dst ~cls callback
    end
  end

let send_shard ?cls t ~sharding ~shard ~src callback =
  let reps = Esr_store.Sharding.replicas sharding shard in
  for i = 0 to Array.length reps - 1 do
    let dst = Array.unsafe_get reps i in
    if dst <> src then send ?cls t ~src ~dst callback
  done

let partition t groups =
  let seen = Array.make t.n_sites false in
  List.iteri
    (fun gid members ->
      List.iter
        (fun s ->
          check_site t s;
          if seen.(s) then
            invalid_arg (Printf.sprintf "Net.partition: site %d listed twice" s);
          seen.(s) <- true;
          (* Group 0 is reserved for the implicit leftover group. *)
          t.group.(s) <- gid + 1)
        members)
    groups;
  Array.iteri (fun s listed -> if not listed then t.group.(s) <- 0) seen;
  if Trace.on t.trace then
    Trace.emit t.trace ~time:(Engine.now t.engine) (Trace.Partition_event { groups })

let heal t =
  Array.fill t.group 0 t.n_sites 0;
  if Trace.on t.trace then Trace.emit t.trace ~time:(Engine.now t.engine) Trace.Heal;
  List.iter (fun f -> f ()) (List.rev t.heal_hooks)

let crash t s =
  check_site t s;
  t.up.(s) <- false;
  if Trace.on t.trace then
    Trace.emit t.trace ~time:(Engine.now t.engine) (Trace.Crash { site = s })

let recover t s =
  check_site t s;
  t.up.(s) <- true;
  if Trace.on t.trace then
    Trace.emit t.trace ~time:(Engine.now t.engine) (Trace.Recover { site = s });
  List.iter (fun f -> f s) (List.rev t.recover_hooks)

let on_recover t f = t.recover_hooks <- f :: t.recover_hooks
let on_heal t f = t.heal_hooks <- f :: t.heal_hooks

let partitioned t = Array.exists (fun g -> g <> t.group.(0)) t.group

let partition_groups t =
  (* Reconstruct the group lists in ascending site order. *)
  let tbl = Hashtbl.create 4 in
  for s = t.n_sites - 1 downto 0 do
    let gid = t.group.(s) in
    let members = Option.value (Hashtbl.find_opt tbl gid) ~default:[] in
    Hashtbl.replace tbl gid (s :: members)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare

let down_sites t =
  let acc = ref [] in
  for s = t.n_sites - 1 downto 0 do
    if not t.up.(s) then acc := s :: !acc
  done;
  !acc

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    blocked = t.blocked_partition + t.crashed_src + t.crashed_dst;
    blocked_partition = t.blocked_partition;
    crashed_src = t.crashed_src;
    crashed_dst = t.crashed_dst;
    duplicated = t.duplicated;
  }
