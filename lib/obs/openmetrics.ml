(* OpenMetrics text exposition for registry snapshots and series dumps.

   One metric family per (group, name) pair — per-site instruments fold
   into a single family with a {site="N"} label.  Families keep registry
   registration order (first occurrence), so the exposition is as
   deterministic as the snapshot it renders.  Counters get the mandated
   [_total] suffix; histograms expose [_bucket]/[_sum]/[_count] plus
   derived [_p50]/[_p99] gauge families (bucket-interpolated, matching
   {!Metrics.percentile}); the document ends with [# EOF]. *)

let float_repr = Esr_util.Json.float_repr

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

let family_name ~prefix (e : Metrics.entry) =
  Printf.sprintf "%s_%s_%s" prefix (sanitize e.group) (sanitize e.name)

let site_label = function
  | None -> ""
  | Some s -> Printf.sprintf "{site=\"%d\"}" s

let buf_snapshot b ~prefix entries =
  (* Group into families, preserving first-occurrence order. *)
  let seen : (string, Metrics.entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (e : Metrics.entry) ->
      let fam = family_name ~prefix e in
      match Hashtbl.find_opt seen fam with
      | Some cell -> cell := e :: !cell
      | None ->
          Hashtbl.replace seen fam (ref [ e ]);
          order := fam :: !order)
    entries;
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun fam ->
      let members = List.rev !(Hashtbl.find seen fam) in
      let kind =
        match (List.hd members).view with
        | Metrics.Counter_v _ -> `Counter
        | Metrics.Gauge_v _ -> `Gauge
        | Metrics.Histogram_v _ -> `Histogram
      in
      (match kind with
      | `Counter -> line "# TYPE %s counter" fam
      | `Gauge -> line "# TYPE %s gauge" fam
      | `Histogram -> line "# TYPE %s histogram" fam);
      List.iter
        (fun (e : Metrics.entry) ->
          let labels = site_label e.site in
          match e.view with
          | Metrics.Counter_v v -> line "%s_total%s %s" fam labels (float_repr v)
          | Metrics.Gauge_v v -> line "%s%s %s" fam labels (float_repr v)
          | Metrics.Histogram_v { limits; counts; sum; count } ->
              let label le =
                match e.site with
                | None -> Printf.sprintf "{le=\"%s\"}" le
                | Some s -> Printf.sprintf "{site=\"%d\",le=\"%s\"}" s le
              in
              let cumulative = ref 0 in
              Array.iteri
                (fun i limit ->
                  cumulative := !cumulative + counts.(i);
                  line "%s_bucket%s %d" fam (label (float_repr limit)) !cumulative)
                limits;
              line "%s_bucket%s %d" fam (label "+Inf") count;
              line "%s_sum%s %s" fam labels (float_repr sum);
              line "%s_count%s %d" fam labels count)
        members;
      (* Derived percentile gauges for histogram families. *)
      match kind with
      | `Histogram ->
          List.iter
            (fun q ->
              line "# TYPE %s_p%d gauge" fam q;
              List.iter
                (fun (e : Metrics.entry) ->
                  line "%s_p%d%s %s" fam q (site_label e.site)
                    (float_repr (Metrics.view_percentile e.view (float_of_int q))))
                members)
            [ 50; 99 ]
      | _ -> ())
    (List.rev !order)

let write_snapshot oc ?(prefix = "esr") entries =
  let b = Buffer.create 4096 in
  buf_snapshot b ~prefix entries;
  Buffer.add_string b "# EOF\n";
  output_string oc (Buffer.contents b)

(* A series dump becomes one gauge family per column, each sample an
   explicitly timestamped MetricPoint (virtual ms rendered as seconds,
   the exposition format's timestamp unit). *)
let write_series oc ?(prefix = "esr_series") (d : Series.dump) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  Array.iteri
    (fun i col ->
      let fam = Printf.sprintf "%s_%s" prefix (sanitize col) in
      line "# TYPE %s gauge" fam;
      List.iter
        (fun (s : Series.sample) ->
          line "%s %s %s" fam (float_repr s.values.(i)) (float_repr (s.at /. 1000.0)))
        d.d_samples)
    d.d_columns;
  Buffer.add_string b "# EOF\n";
  output_string oc (Buffer.contents b)
