(* Causal span reconstruction over a trace dump.

   The trace vocabulary carries two id spaces: the harness stamps update
   lifecycles with [u] (Update_begin/Update_committed/Update_rejected)
   while the methods stamp MSet propagation with [et]
   (Mset_enqueued/Mset_applied).  The two never appear in one record, but
   every method enqueues synchronously inside submit (COMPE's later saga
   steps being the one asynchronous exception), so an Mset_enqueued at
   origin [o] belongs to the most recently begun still-open update at
   [o].  Root spans keyed on [u] are exact — the completeness check
   relies only on those; MSet legs are a best-effort causal attachment
   and orphans (enqueue evicted from the ring, replayed applies) are
   kept separately rather than guessed at. *)

type leg = {
  l_site : int;
  l_first_apply : float;
  l_last_apply : float;
  l_applies : int;  (* > 1 means duplicate delivery, retransmit or replay *)
}

type mset = {
  m_et : int;
  m_origin : int;
  m_enqueued : float option;  (* [None]: applies seen without an enqueue *)
  m_n_ops : int;
  m_legs : leg list;  (* by site *)
}

type outcome = Committed of float | Rejected of float * string | Unresolved

type span = {
  s_u : int;
  s_origin : int;
  s_began : float;
  s_n_ops : int;
  s_outcome : outcome;
  s_msets : mset list;  (* enqueue order *)
}

type qspan = {
  qs_id : int;
  qs_site : int;
  qs_began : float;
  qs_served : float option;
  qs_charged : int;
  qs_consistent : bool;
}

type breakdown = { b_queued : float; b_in_flight : float; b_blocked : float }

type t = {
  spans : span list;  (* begin order *)
  queries : qspan list;
  orphan_msets : mset list;
  n_commit_events : int;
  unmatched_commits : int list;  (* u's with no Update_begin in the dump *)
  duplicate_commits : int list;
}

(* Mutable builders; frozen into the public records at the end. *)
type mset_b = {
  mb_et : int;
  mb_origin : int;
  mb_enqueued : float option;
  mutable mb_n_ops : int;
  mb_legs : (int, float * float * int) Hashtbl.t;  (* site -> first, last, n *)
}

type span_b = {
  sb_u : int;
  sb_origin : int;
  sb_began : float;
  sb_n_ops : int;
  mutable sb_outcome : outcome;
  mutable sb_msets : int list;  (* ets, reverse enqueue order *)
}

let reconstruct records =
  let open Trace in
  let spans_tbl : (int, span_b) Hashtbl.t = Hashtbl.create 256 in
  let span_order = ref [] in
  (* Open (begun, unresolved) updates per origin, most recent first. *)
  let open_by_origin : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let msets_tbl : (int, mset_b) Hashtbl.t = Hashtbl.create 256 in
  let mset_owner : (int, int option) Hashtbl.t = Hashtbl.create 256 in
  let queries_tbl : (int, qspan) Hashtbl.t = Hashtbl.create 256 in
  let query_order = ref [] in
  let n_commit_events = ref 0 in
  let unmatched = ref [] in
  let duplicates = ref [] in
  let close_update ~u ~origin outcome =
    match Hashtbl.find_opt spans_tbl u with
    | None -> unmatched := u :: !unmatched
    | Some sb ->
        (match sb.sb_outcome with
        | Unresolved -> sb.sb_outcome <- outcome
        | _ -> duplicates := u :: !duplicates);
        let opens = Option.value ~default:[] (Hashtbl.find_opt open_by_origin origin) in
        Hashtbl.replace open_by_origin origin (List.filter (fun u' -> u' <> u) opens)
  in
  List.iter
    (fun { time; ev } ->
      match ev with
      | Update_begin { u; origin; n_ops } ->
          if not (Hashtbl.mem spans_tbl u) then begin
            Hashtbl.replace spans_tbl u
              {
                sb_u = u;
                sb_origin = origin;
                sb_began = time;
                sb_n_ops = n_ops;
                sb_outcome = Unresolved;
                sb_msets = [];
              };
            span_order := u :: !span_order;
            let opens = Option.value ~default:[] (Hashtbl.find_opt open_by_origin origin) in
            Hashtbl.replace open_by_origin origin (u :: opens)
          end
      | Update_committed { u; origin; latency = _ } ->
          incr n_commit_events;
          close_update ~u ~origin (Committed time)
      | Update_rejected { u; origin; reason } ->
          close_update ~u ~origin (Rejected (time, reason))
      | Mset_enqueued { et; origin; n_ops; _ } ->
          if not (Hashtbl.mem msets_tbl et) then begin
            Hashtbl.replace msets_tbl et
              {
                mb_et = et;
                mb_origin = origin;
                mb_enqueued = Some time;
                mb_n_ops = n_ops;
                mb_legs = Hashtbl.create 8;
              };
            let owner =
              match Hashtbl.find_opt open_by_origin origin with
              | Some (u :: _) -> Some u
              | _ -> None
            in
            Hashtbl.replace mset_owner et owner;
            match owner with
            | Some u ->
                let sb = Hashtbl.find spans_tbl u in
                sb.sb_msets <- et :: sb.sb_msets
            | None -> ()
          end
      | Mset_applied { et; site; n_ops; _ } ->
          let mb =
            match Hashtbl.find_opt msets_tbl et with
            | Some mb -> mb
            | None ->
                (* Apply without an enqueue in the dump: ring eviction or a
                   recovery replay of a pre-trace MSet.  Keep it as an
                   orphan so every apply is accounted for. *)
                let mb =
                  {
                    mb_et = et;
                    mb_origin = -1;
                    mb_enqueued = None;
                    mb_n_ops = n_ops;
                    mb_legs = Hashtbl.create 8;
                  }
                in
                Hashtbl.replace msets_tbl et mb;
                Hashtbl.replace mset_owner et None;
                mb
          in
          (match Hashtbl.find_opt mb.mb_legs site with
          | None -> Hashtbl.replace mb.mb_legs site (time, time, 1)
          | Some (first, _, n) -> Hashtbl.replace mb.mb_legs site (first, time, n + 1))
      | Query_begin { q; site; n_keys = _; epsilon = _ } ->
          if not (Hashtbl.mem queries_tbl q) then begin
            Hashtbl.replace queries_tbl q
              {
                qs_id = q;
                qs_site = site;
                qs_began = time;
                qs_served = None;
                qs_charged = 0;
                qs_consistent = false;
              };
            query_order := q :: !query_order
          end
      | Query_served { q; site; charged; consistent_path; latency; _ } ->
          let qs =
            match Hashtbl.find_opt queries_tbl q with
            | Some qs -> qs
            | None ->
                let qs =
                  {
                    qs_id = q;
                    qs_site = site;
                    qs_began = Float.max 0.0 (time -. latency);
                    qs_served = None;
                    qs_charged = 0;
                    qs_consistent = false;
                  }
                in
                Hashtbl.replace queries_tbl q qs;
                query_order := q :: !query_order;
                qs
          in
          Hashtbl.replace queries_tbl q
            { qs with qs_served = Some time; qs_charged = charged; qs_consistent = consistent_path }
      | _ -> ())
    records;
  let freeze_mset mb =
    let legs =
      Hashtbl.fold
        (fun site (first, last, n) acc ->
          { l_site = site; l_first_apply = first; l_last_apply = last; l_applies = n } :: acc)
        mb.mb_legs []
      |> List.sort (fun a b -> compare a.l_site b.l_site)
    in
    {
      m_et = mb.mb_et;
      m_origin = mb.mb_origin;
      m_enqueued = mb.mb_enqueued;
      m_n_ops = mb.mb_n_ops;
      m_legs = legs;
    }
  in
  let spans =
    List.rev_map
      (fun u ->
        let sb = Hashtbl.find spans_tbl u in
        let msets =
          List.rev_map (fun et -> freeze_mset (Hashtbl.find msets_tbl et)) sb.sb_msets
        in
        {
          s_u = sb.sb_u;
          s_origin = sb.sb_origin;
          s_began = sb.sb_began;
          s_n_ops = sb.sb_n_ops;
          s_outcome = sb.sb_outcome;
          s_msets = msets;
        })
      !span_order
  in
  let orphan_msets =
    Hashtbl.fold
      (fun et owner acc -> if owner = None then freeze_mset (Hashtbl.find msets_tbl et) :: acc else acc)
      mset_owner []
    |> List.sort (fun a b -> compare a.m_et b.m_et)
  in
  let queries = List.rev_map (fun q -> Hashtbl.find queries_tbl q) !query_order in
  {
    spans;
    queries;
    orphan_msets;
    n_commit_events = !n_commit_events;
    unmatched_commits = List.rev !unmatched;
    duplicate_commits = List.rev !duplicates;
  }

let of_trace trace = reconstruct (Trace.to_list trace)

let n_committed t =
  List.length (List.filter (fun s -> match s.s_outcome with Committed _ -> true | _ -> false) t.spans)

(* Every Update_committed in the dump maps to exactly one root span. *)
let complete t =
  t.unmatched_commits = [] && t.duplicate_commits = [] && n_committed t = t.n_commit_events

(* Critical-path decomposition of one update span:
   - queued: submit to first MSet enqueue (sequencer/buffer wait at the
     origin before the update hits the replication fabric);
   - in-flight: the fastest leg's enqueue-to-first-apply time (pure
     transport: what the network took with no ordering constraint);
   - blocked: everything else on the path to the outcome — slower legs
     waiting behind delivery order, decision/ack collection, retransmit
     backoff.  The three parts sum to the span's total latency. *)
let span_breakdown s =
  let finish =
    match s.s_outcome with
    | Committed at | Rejected (at, _) -> at
    | Unresolved -> s.s_began
  in
  let total = Float.max 0.0 (finish -. s.s_began) in
  let first_enqueue =
    List.fold_left
      (fun acc m ->
        match m.m_enqueued with
        | Some at -> Some (match acc with None -> at | Some a -> Float.min a at)
        | None -> acc)
      None s.s_msets
  in
  let queued =
    match first_enqueue with
    | Some at -> Float.min total (Float.max 0.0 (at -. s.s_began))
    | None -> 0.0
  in
  let min_leg =
    List.fold_left
      (fun acc m ->
        match m.m_enqueued with
        | None -> acc
        | Some enq ->
            List.fold_left
              (fun acc leg ->
                let lat = Float.max 0.0 (leg.l_first_apply -. enq) in
                match acc with None -> Some lat | Some a -> Some (Float.min a lat))
              acc m.m_legs)
      None s.s_msets
  in
  let in_flight =
    match min_leg with None -> 0.0 | Some l -> Float.min l (Float.max 0.0 (total -. queued))
  in
  let blocked = Float.max 0.0 (total -. queued -. in_flight) in
  { b_queued = queued; b_in_flight = in_flight; b_blocked = blocked }

(* Mean breakdown over committed spans (the report's headline numbers). *)
let aggregate t =
  let n = ref 0 and q = ref 0.0 and f = ref 0.0 and b = ref 0.0 in
  List.iter
    (fun s ->
      match s.s_outcome with
      | Committed _ ->
          let bd = span_breakdown s in
          incr n;
          q := !q +. bd.b_queued;
          f := !f +. bd.b_in_flight;
          b := !b +. bd.b_blocked
      | _ -> ())
    t.spans;
  let n = !n in
  let mean v = if n = 0 then 0.0 else v /. float_of_int n in
  (n, { b_queued = mean !q; b_in_flight = mean !f; b_blocked = mean !b })

let n_retransmit_legs t =
  let count_msets acc msets =
    List.fold_left
      (fun acc m ->
        List.fold_left
          (fun acc leg -> if leg.l_applies > 1 then acc + 1 else acc)
          acc m.m_legs)
      acc msets
  in
  let in_span = List.fold_left (fun acc s -> count_msets acc s.s_msets) 0 t.spans in
  count_msets in_span t.orphan_msets

(* {2 Chrome enrichment} *)

let float_repr = Esr_util.Json.float_repr

(* Span-tree events layered on top of {!Trace.write_chrome}'s timeline:
   one "X" slice per MSet leg on the destination site's track, plus flow
   arrows ("s"/"f") from the enqueue at the origin to each leg's first
   apply, so Perfetto draws the propagation fan-out of every update. *)
let chrome_events ~sites:_ t =
  let events = ref [] in
  let add line = events := line :: !events in
  let emit_mset m =
    match m.m_enqueued with
    | None -> ()
    | Some enq ->
        let enq_us = enq *. 1000.0 in
        List.iter
          (fun leg ->
            let dur = Float.max 0.0 (leg.l_first_apply -. enq) *. 1000.0 in
            add
              (Printf.sprintf
                 "{\"name\":\"mset_leg\",\"cat\":\"mset\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d,\"args\":{\"et\":%d,\"applies\":%d,\"n_ops\":%d}}"
                 (float_repr enq_us) (float_repr dur) leg.l_site m.m_et leg.l_applies
                 m.m_n_ops);
            add
              (Printf.sprintf
                 "{\"name\":\"mset_flow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}"
                 m.m_et (float_repr enq_us) m.m_origin);
            add
              (Printf.sprintf
                 "{\"name\":\"mset_flow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":0,\"tid\":%d}"
                 m.m_et
                 (float_repr (leg.l_first_apply *. 1000.0))
                 leg.l_site))
          m.m_legs
  in
  List.iter (fun s -> List.iter emit_mset s.s_msets) t.spans;
  List.iter emit_mset t.orphan_msets;
  List.rev !events
