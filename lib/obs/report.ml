(* Render a run's trace + series into a terminal dashboard and a
   self-contained HTML report.

   Everything is computed from dumps (JSONL trace records, an
   [esr-series/1] document) rather than live simulator state, so the
   [esrsim report] subcommand can post-process any earlier run.  Derived
   ESR probe columns use the ["esr/"] prefix; those are the columns the
   charts pick up. *)

module Tablefmt = Esr_util.Tablefmt

type input = {
  label : string;
  records : Trace.record list;
  series : Series.dump option;
  profile : Prof.dump option;
  audit : Audit.report option;
}

let make ?(label = "run") ?series ?profile ?audit records =
  { label; records; series; profile; audit }

(* Ring evictions make every derived view an under-count; say so loudly
   rather than letting a truncated dump read as a complete run. *)
let dropped_of records =
  List.fold_left
    (fun acc (r : Trace.record) ->
      match r.Trace.ev with
      | Trace.Trace_meta { dropped } -> acc + dropped
      | _ -> acc)
    0 records

let partial_banner input =
  let d = dropped_of input.records in
  if d = 0 then None
  else
    Some
      (Printf.sprintf
         "WARNING: %d events dropped from the trace ring; span/audit results \
          are partial (stream with a .jsonl --trace file to keep full \
          history)"
         d)

let sites_of records =
  let open Trace in
  let m = ref 0 in
  let see s = if s + 1 > !m then m := s + 1 in
  List.iter
    (fun { ev; _ } ->
      match ev with
      | Msg_sent { src; dst; _ }
      | Msg_dropped { src; dst; _ }
      | Msg_duplicated { src; dst; _ }
      | Msg_delivered { src; dst; _ }
      | Squeue_send { src; dst; _ }
      | Squeue_delivered { src; dst; _ }
      | Squeue_dup { src; dst; _ } ->
          see src;
          see dst
      | Crash { site } | Recover { site } -> see site
      | Update_begin { origin; _ }
      | Update_committed { origin; _ }
      | Update_rejected { origin; _ } ->
          see origin
      | Query_begin { site; _ } | Query_served { site; _ }
      | Query_window { site; _ } | Query_window_closed { site; _ } ->
          see site
      | Mset_enqueued { origin; _ } -> see origin
      | Mset_applied { site; _ }
      | Compensation_fired { site; _ }
      | Volatile_dropped { site; _ }
      | Recovery_replay { site; _ }
      | Checkpoint_cut { site; _ } ->
          see site
      | Partition_event { groups } -> List.iter (List.iter see) groups
      | Heal | Flush_round _ | Converged _ | Trace_meta _ -> ())
    records;
  !m

let span_end records =
  List.fold_left (fun acc (r : Trace.record) -> Float.max acc r.time) 0.0 records

(* Intervals during which any injected fault is active — crashed sites or
   a partition — for shading the charts and annotating the tables. *)
let fault_windows records =
  let open Trace in
  let down = Hashtbl.create 8 in
  let partitioned = ref false in
  let active () = !partitioned || Hashtbl.length down > 0 in
  let windows = ref [] in
  let opened = ref None in
  let step time =
    match (!opened, active ()) with
    | None, true -> opened := Some time
    | Some t0, false ->
        windows := (t0, time) :: !windows;
        opened := None
    | _ -> ()
  in
  List.iter
    (fun { time; ev } ->
      (match ev with
      | Crash { site } -> Hashtbl.replace down site ()
      | Recover { site } -> Hashtbl.remove down site
      | Partition_event _ -> partitioned := true
      | Heal -> partitioned := false
      | _ -> ());
      step time)
    records;
  (match !opened with
  | Some t0 -> windows := (t0, span_end records) :: !windows
  | None -> ());
  List.rev !windows

let fault_events records =
  let open Trace in
  List.filter_map
    (fun { time; ev } ->
      match ev with
      | Crash { site } -> Some (time, Printf.sprintf "crash site %d" site)
      | Recover { site } -> Some (time, Printf.sprintf "recover site %d" site)
      | Partition_event { groups } ->
          Some
            ( time,
              "partition "
              ^ String.concat "|"
                  (List.map
                     (fun g -> String.concat "," (List.map string_of_int g))
                     groups) )
      | Heal -> Some (time, "heal")
      | Volatile_dropped { site; buffered; _ } ->
          Some (time, Printf.sprintf "site %d lost %d buffered MSets" site buffered)
      | Recovery_replay { site; n_actions } ->
          Some (time, Printf.sprintf "site %d replayed %d log actions" site n_actions)
      | Checkpoint_cut { site; folded; reclaimed } ->
          Some
            ( time,
              Printf.sprintf "site %d checkpointed %d log + %d journal entries"
                site folded reclaimed )
      | _ -> None)
    records

let f2 = Tablefmt.cell_float

(* {2 Terminal dashboard} *)

let summary_table input spans =
  let open Trace in
  let n_events = List.length input.records in
  let count p = List.length (List.filter p input.records) in
  let t = Tablefmt.create ~title:(Printf.sprintf "Run summary: %s" input.label)
      ~headers:[ "metric"; "value" ] in
  let row k v = Tablefmt.add_row t [ k; v ] in
  row "trace events" (string_of_int n_events);
  row "sites" (string_of_int (sites_of input.records));
  row "virtual span (ms)" (f2 (span_end input.records));
  row "updates committed" (string_of_int spans.Spans.n_commit_events);
  row "updates rejected"
    (string_of_int (count (fun r -> match r.ev with Update_rejected _ -> true | _ -> false)));
  row "queries served"
    (string_of_int (count (fun r -> match r.ev with Query_served _ -> true | _ -> false)));
  row "msets applied"
    (string_of_int (count (fun r -> match r.ev with Mset_applied _ -> true | _ -> false)));
  row "compensations"
    (string_of_int
       (count (fun r -> match r.ev with Compensation_fired _ -> true | _ -> false)));
  row "retransmitted legs" (string_of_int (Spans.n_retransmit_legs spans));
  row "span trees complete" (Tablefmt.cell_bool (Spans.complete spans));
  let n, bd = Spans.aggregate spans in
  row "committed spans" (string_of_int n);
  row "mean queued (ms)" (f2 bd.Spans.b_queued);
  row "mean in-flight (ms)" (f2 bd.Spans.b_in_flight);
  row "mean blocked (ms)" (f2 bd.Spans.b_blocked);
  (match
     List.find_opt (fun (r : record) -> match r.ev with Converged _ -> true | _ -> false)
       (List.rev input.records)
   with
  | Some { ev = Converged { ok }; _ } -> row "converged" (Tablefmt.cell_bool ok)
  | _ -> ());
  t

let faults_table input =
  let evs = fault_events input.records in
  if evs = [] then None
  else begin
    let t = Tablefmt.create ~title:"Fault timeline" ~headers:[ "t (ms)"; "event" ] in
    List.iter (fun (time, what) -> Tablefmt.add_row t [ f2 time; what ]) evs;
    Some t
  end

let esr_columns (d : Series.dump) =
  let cols = ref [] in
  Array.iteri
    (fun i c ->
      if String.length c > 4 && String.sub c 0 4 = "esr/" then cols := (i, c) :: !cols)
    d.d_columns;
  List.rev !cols

(* Downsample the series to at most [max_rows] evenly spaced rows so the
   terminal table stays readable whatever the sampling cadence was. *)
let downsample max_rows samples =
  let arr = Array.of_list samples in
  let n = Array.length arr in
  if n <= max_rows then Array.to_list arr
  else
    List.init max_rows (fun i -> arr.(i * (n - 1) / (max_rows - 1)))

let series_table input =
  match input.series with
  | None -> None
  | Some d ->
      let cols = esr_columns d in
      if cols = [] || d.d_samples = [] then None
      else begin
        let windows = fault_windows input.records in
        let in_fault at = List.exists (fun (t0, t1) -> at >= t0 && at <= t1) windows in
        let headers =
          "t (ms)"
          :: List.map (fun (_, c) -> String.sub c 4 (String.length c - 4)) cols
          @ [ "fault?" ]
        in
        let t = Tablefmt.create ~title:"Divergence profile" ~headers in
        List.iter
          (fun (s : Series.sample) ->
            Tablefmt.add_row t
              (f2 s.at
              :: List.map (fun (i, _) -> f2 s.values.(i)) cols
              @ [ (if in_fault s.at then "*" else "") ]))
          (downsample 16 d.d_samples);
        Some t
      end

(* {2 Resources panel} *)

(* The harness registers one [res/<metric>.sN] gauge per site; sum them
   per metric so the panel charts system-wide footprint.  Returns the
   metric names (registration order) and synthesized samples whose
   [values.(i)] is metric [i]'s total. *)
let res_totals (d : Series.dump) =
  let metrics = ref [] and index = Hashtbl.create 16 in
  let groups = Array.make (Array.length d.d_columns) (-1) in
  Array.iteri
    (fun i c ->
      if String.length c > 4 && String.sub c 0 4 = "res/" then begin
        let short = String.sub c 4 (String.length c - 4) in
        let metric =
          match String.rindex_opt short '.' with
          | Some dot
            when dot + 2 <= String.length short && short.[dot + 1] = 's' ->
              String.sub short 0 dot
          | _ -> short
        in
        let g =
          match Hashtbl.find_opt index metric with
          | Some g -> g
          | None ->
              let g = Hashtbl.length index in
              Hashtbl.add index metric g;
              metrics := metric :: !metrics;
              g
        in
        groups.(i) <- g
      end)
    d.d_columns;
  let metrics = List.rev !metrics in
  let n = List.length metrics in
  if n = 0 then ([], [])
  else
    ( metrics,
      List.map
        (fun (s : Series.sample) ->
          let values = Array.make n 0.0 in
          Array.iteri
            (fun i g ->
              if g >= 0 && i < Array.length s.Series.values then
                values.(g) <- values.(g) +. s.Series.values.(i))
            groups;
          { Series.at = s.Series.at; values })
        d.d_samples )

(* Start/end/growth-rate annotation per resource, system-wide.  The rate
   is per 1000 virtual ms, taken over the sampled window — for the
   monotone series (logs, cumulative journal appends) this is the
   standing growth the soak experiment quantifies. *)
let resources_table input =
  match input.series with
  | None -> None
  | Some d -> (
      match res_totals d with
      | [], _ | _, ([] | [ _ ]) -> None
      | metrics, samples ->
          let first = List.hd samples in
          let last = List.nth samples (List.length samples - 1) in
          let dt = last.Series.at -. first.Series.at in
          let t =
            Tablefmt.create ~title:"Resource growth (summed over sites)"
              ~headers:[ "resource"; "start"; "end"; "delta"; "per 1k ms" ]
          in
          List.iteri
            (fun i metric ->
              let v0 = first.Series.values.(i)
              and v1 = last.Series.values.(i) in
              let delta = v1 -. v0 in
              let rate = if dt > 0.0 then delta /. dt *. 1000.0 else 0.0 in
              Tablefmt.add_row t [ metric; f2 v0; f2 v1; f2 delta; f2 rate ])
            metrics;
          Some t)

(* {2 Profile panel} *)

let profile_table input =
  match input.profile with
  | None -> None
  | Some (p : Prof.dump) ->
      let total_s =
        List.fold_left (fun acc (_, a) -> acc +. a.Prof.seconds) 0.0 p.Prof.d_phases
      in
      if total_s <= 0.0 then None
      else begin
        let t =
          Tablefmt.create ~title:"Host-time phase breakdown"
            ~headers:[ "phase"; "spans"; "total ms"; "mean us"; "alloc MB"; "share" ]
        in
        List.iter
          (fun (phase, (a : Prof.agg)) ->
            if a.Prof.count > 0 then
              Tablefmt.add_row t
                [
                  Prof.phase_name phase;
                  string_of_int a.Prof.count;
                  f2 (a.Prof.seconds *. 1e3);
                  f2 (a.Prof.seconds /. float_of_int a.Prof.count *. 1e6);
                  f2 (a.Prof.alloc_bytes /. 1048576.0);
                  Printf.sprintf "%.1f%%" (a.Prof.seconds /. total_s *. 100.0);
                ])
          p.Prof.d_phases;
        if p.Prof.d_spans_dropped > 0 then
          Tablefmt.add_row t
            [
              Printf.sprintf "(%d spans dropped)" p.Prof.d_spans_dropped;
              ""; ""; ""; ""; "";
            ];
        Some t
      end

let slowest_table spans =
  let committed =
    List.filter_map
      (fun (s : Spans.span) ->
        match s.s_outcome with
        | Committed at -> Some (s, at -. s.s_began)
        | _ -> None)
      spans.Spans.spans
  in
  if committed = [] then None
  else begin
    let sorted =
      List.sort
        (fun (a, la) (b, lb) ->
          match compare lb la with 0 -> compare a.Spans.s_u b.Spans.s_u | c -> c)
        committed
    in
    let top = List.filteri (fun i _ -> i < 5) sorted in
    let t =
      Tablefmt.create ~title:"Slowest committed spans"
        ~headers:[ "u"; "origin"; "latency"; "queued"; "in-flight"; "blocked"; "msets" ]
    in
    List.iter
      (fun ((s : Spans.span), latency) ->
        let bd = Spans.span_breakdown s in
        Tablefmt.add_row t
          [
            string_of_int s.s_u;
            string_of_int s.s_origin;
            f2 latency;
            f2 bd.Spans.b_queued;
            f2 bd.Spans.b_in_flight;
            f2 bd.Spans.b_blocked;
            string_of_int (List.length s.s_msets);
          ])
      top;
    Some t
  end

(* {2 Audit panel} *)

let audit_tables input =
  match input.audit with
  | None -> []
  | Some (r : Audit.report) ->
      let s = r.Audit.summary in
      let cert =
        Tablefmt.create
          ~title:(Printf.sprintf "Audit certificate: %s" r.Audit.label)
          ~headers:[ "metric"; "value" ]
      in
      let row k v = Tablefmt.add_row cert [ k; v ] in
      row "status"
        (if Audit.ok r then "CERTIFIED"
         else Printf.sprintf "%d VIOLATIONS" (List.length r.Audit.violations));
      if Audit.partial r then
        row "coverage"
          (Printf.sprintf "PARTIAL (%d events dropped)" s.Audit.s_dropped);
      row "events audited" (string_of_int s.Audit.s_events);
      row "queries (bounded / at bound)"
        (Printf.sprintf "%d (%d / %d)" s.Audit.s_queries s.Audit.s_bounded
           s.Audit.s_at_bound);
      row "inconsistency charged" (string_of_int s.Audit.s_charged_total);
      row "query windows (exact overlap)"
        (Printf.sprintf "%d (%d)" s.Audit.s_windows s.Audit.s_windows_exact);
      row "crashes (max log / max replay)"
        (Printf.sprintf "%d (%d / %d)" s.Audit.s_crashes s.Audit.s_max_crash_log
           s.Audit.s_max_replay);
      row "checkpoint cuts" (string_of_int s.Audit.s_cuts);
      row "converged"
        (match s.Audit.s_converged with
        | Some ok -> Tablefmt.cell_bool ok
        | None -> "n/a");
      let ledger = r.Audit.ledger in
      if ledger <> [] then begin
        let n = List.length ledger in
        let fsum f = List.fold_left (fun acc e -> acc +. f e) 0.0 ledger in
        let charged_max =
          List.fold_left (fun acc e -> Stdlib.max acc e.Audit.l_charged) 0 ledger
        in
        let oracle = List.filter_map (fun e -> e.Audit.l_oracle) ledger in
        row "ledger: mean / max charged"
          (Printf.sprintf "%s / %d"
             (f2 (fsum (fun e -> float_of_int e.Audit.l_charged) /. float_of_int n))
             charged_max);
        row "ledger: reconstructed windows"
          (string_of_int
             (List.length
                (List.filter (fun e -> e.Audit.l_reconstructed <> None) ledger)));
        if oracle <> [] then
          row "ledger: mean / max oracle distance"
            (Printf.sprintf "%s / %s"
               (f2
                  (List.fold_left ( +. ) 0.0 oracle
                  /. float_of_int (List.length oracle)))
               (f2 (List.fold_left Float.max 0.0 oracle)))
      end;
      let tables = [ cert ] in
      if r.Audit.violations = [] then tables
      else begin
        let vt =
          Tablefmt.create ~title:"Audit violations (first event pinned)"
            ~headers:[ "t (ms)"; "kind"; "invariant"; "event"; "detail" ]
        in
        List.iter
          (fun (vi : Audit.violation) ->
            Tablefmt.add_row vt
              [
                f2 vi.Audit.v_time;
                Audit.kind_to_string vi.Audit.v_kind;
                vi.Audit.v_invariant;
                vi.Audit.v_event;
                vi.Audit.v_detail;
              ])
          r.Audit.violations;
        tables @ [ vt ]
      end

let dashboard input =
  let spans = Spans.reconstruct input.records in
  let b = Buffer.create 4096 in
  (match partial_banner input with
  | Some banner ->
      Buffer.add_string b "!! ";
      Buffer.add_string b banner;
      Buffer.add_string b "\n\n"
  | None -> ());
  Buffer.add_string b (Tablefmt.render (summary_table input spans));
  List.iter
    (fun t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t))
    (audit_tables input);
  (match faults_table input with
  | Some t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t)
  | None -> ());
  (match series_table input with
  | Some t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t)
  | None -> ());
  (match resources_table input with
  | Some t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t)
  | None -> ());
  (match profile_table input with
  | Some t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t)
  | None -> ());
  (match slowest_table spans with
  | Some t ->
      Buffer.add_char b '\n';
      Buffer.add_string b (Tablefmt.render t)
  | None -> ());
  Buffer.contents b

(* {2 HTML report} *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#ff7f0e"; "#9467bd"; "#8c564b"; "#17becf" |]

let fr = Esr_util.Json.float_repr

(* Inline SVG line chart: one polyline per column, fault windows shaded. *)
let svg_chart ~title ~windows ~(samples : Series.sample list) cols =
  let w = 760.0 and h = 260.0 in
  let ml = 54.0 and mr = 12.0 and mt = 26.0 and mb = 30.0 in
  let pw = w -. ml -. mr and ph = h -. mt -. mb in
  let ts = List.map (fun (s : Series.sample) -> s.at) samples in
  let t0 = List.fold_left Float.min infinity ts in
  let t1 = List.fold_left Float.max neg_infinity ts in
  let t1 = if t1 <= t0 then t0 +. 1.0 else t1 in
  let vmax =
    List.fold_left
      (fun acc (s : Series.sample) ->
        List.fold_left (fun acc (i, _) -> Float.max acc s.values.(i)) acc cols)
      0.0 samples
  in
  let vmax = if vmax <= 0.0 then 1.0 else vmax *. 1.05 in
  let x at = ml +. ((at -. t0) /. (t1 -. t0) *. pw) in
  let y v = mt +. ph -. (v /. vmax *. ph) in
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out
    "<svg viewBox=\"0 0 %s %s\" width=\"%s\" height=\"%s\" \
     xmlns=\"http://www.w3.org/2000/svg\" style=\"background:#fff;font-family:monospace\">\n"
    (fr w) (fr h) (fr w) (fr h);
  out "<text x=\"%s\" y=\"16\" font-size=\"13\" fill=\"#333\">%s</text>\n" (fr ml)
    (html_escape title);
  (* Fault-window shading. *)
  List.iter
    (fun (f0, f1) ->
      let x0 = Float.max ml (x f0) and x1 = Float.min (ml +. pw) (x f1) in
      if x1 > x0 then
        out
          "<rect x=\"%s\" y=\"%s\" width=\"%s\" height=\"%s\" fill=\"#d62728\" \
           fill-opacity=\"0.08\"/>\n"
          (fr x0) (fr mt) (fr (x1 -. x0)) (fr ph))
    windows;
  (* Axes. *)
  out
    "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#999\" stroke-width=\"1\"/>\n"
    (fr ml) (fr (mt +. ph)) (fr (ml +. pw)) (fr (mt +. ph));
  out
    "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#999\" stroke-width=\"1\"/>\n"
    (fr ml) (fr mt) (fr ml) (fr (mt +. ph));
  out
    "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">%s</text>\n"
    (fr (ml -. 6.0)) (fr (mt +. 4.0)) (fr vmax);
  out
    "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">0</text>\n"
    (fr (ml -. 6.0)) (fr (mt +. ph));
  out "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#666\">%s ms</text>\n" (fr ml)
    (fr (h -. 10.0)) (fr t0);
  out
    "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#666\" text-anchor=\"end\">%s ms</text>\n"
    (fr (ml +. pw)) (fr (h -. 10.0)) (fr t1);
  (* One polyline per column plus its legend entry. *)
  List.iteri
    (fun k (i, name) ->
      let color = palette.(k mod Array.length palette) in
      out "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" points=\"" color;
      List.iter
        (fun (s : Series.sample) -> out "%s,%s " (fr (x s.at)) (fr (y s.values.(i))))
        samples;
      out "\"/>\n";
      out "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"%s\">%s</text>\n"
        (fr (ml +. 6.0 +. (140.0 *. float_of_int k)))
        (fr (mt -. 4.0)) color (html_escape name))
    cols;
  out "</svg>\n";
  Buffer.contents b

let html_table (t : Tablefmt.t) = "<pre>" ^ html_escape (Tablefmt.render t) ^ "</pre>\n"

let html input =
  let spans = Spans.reconstruct input.records in
  let windows = fault_windows input.records in
  let b = Buffer.create 16384 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>esrsim report: \
     %s</title>\n"
    (html_escape input.label);
  out
    "<style>body{font-family:monospace;max-width:860px;margin:2em \
     auto;color:#222}h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.6em}pre{background:#f6f6f6;padding:8px;overflow-x:auto}</style></head><body>\n";
  out "<h1>esrsim report: %s</h1>\n" (html_escape input.label);
  (match partial_banner input with
  | Some banner ->
      out
        "<div style=\"background:#fdecea;border:1px solid \
         #d62728;color:#a00;padding:10px;margin:10px 0;font-weight:bold\">&#9888; \
         %s</div>\n"
        (html_escape banner)
  | None -> ());
  out "%s" (html_table (summary_table input spans));
  List.iter (fun t -> out "%s" (html_table t)) (audit_tables input);
  (match input.series with
  | Some d when d.d_samples <> [] ->
      let cols = esr_columns d in
      let named prefix =
        List.filter_map
          (fun (i, c) ->
            let short = String.sub c 4 (String.length c - 4) in
            if String.length short >= String.length prefix
               && String.sub short 0 (String.length prefix) = prefix
            then Some (i, short)
            else None)
          cols
      in
      let divergence = named "spread" @ named "oracle" in
      let budget = named "eps" in
      let lag = named "conv" @ named "backlog" in
      out "<h2>Divergence vs. virtual time</h2>\n";
      if divergence <> [] then
        out "%s"
          (svg_chart ~title:"replica spread / oracle distance (fault windows shaded)"
             ~windows ~samples:d.d_samples divergence);
      if lag <> [] then
        out "%s"
          (svg_chart ~title:"convergence lag / MSet backlog" ~windows
             ~samples:d.d_samples lag);
      if budget <> [] then begin
        out "<h2>Epsilon budget</h2>\n";
        out "%s"
          (svg_chart ~title:"inconsistency charged vs. limit" ~windows
             ~samples:d.d_samples budget)
      end;
      (match res_totals d with
      | [], _ | _, ([] | [ _ ]) -> ()
      | metrics, samples ->
          out "<h2>Resources</h2>\n";
          let first = List.hd samples in
          let last = List.nth samples (List.length samples - 1) in
          let dt = last.Series.at -. first.Series.at in
          let indexed = List.mapi (fun i m -> (i, m)) metrics in
          let pick names = List.filter (fun (_, m) -> List.mem m names) indexed in
          let growth = pick [ "log_entries"; "wal_appended"; "journal_enqueued" ] in
          let standing = pick [ "wal_entries"; "journal_depth" ] in
          if growth <> [] then
            out "%s"
              (svg_chart ~title:"log / journal growth (summed over sites)"
                 ~windows ~samples growth);
          if standing <> [] then
            out "%s"
              (svg_chart ~title:"standing journal depth (summed over sites)"
                 ~windows ~samples standing);
          (* Growth-rate annotations: the per-1k-ms slope of each series
             over the sampled window. *)
          out "<p>";
          List.iteri
            (fun i metric ->
              let delta = last.Series.values.(i) -. first.Series.values.(i) in
              let rate = if dt > 0.0 then delta /. dt *. 1000.0 else 0.0 in
              out "%s: %+.1f (%.2f/1k ms)%s" (html_escape metric) delta rate
                (if i = List.length metrics - 1 then "" else " &middot; "))
            metrics;
          out "</p>\n")
  | _ -> out "<p>No series dump supplied; charts omitted.</p>\n");
  (match profile_table input with
  | Some t ->
      out "<h2>Host-time profile</h2>\n";
      out "%s" (html_table t)
  | None -> ());
  (match faults_table input with Some t -> out "%s" (html_table t) | None -> ());
  (match series_table input with Some t -> out "%s" (html_table t) | None -> ());
  (match resources_table input with Some t -> out "%s" (html_table t) | None -> ());
  (match slowest_table spans with Some t -> out "%s" (html_table t) | None -> ());
  out "<h2>Span accounting</h2><pre>commit events: %d\ncommitted span trees: %d\ncomplete: %s\norphan msets: %d\nretransmitted legs: %d</pre>\n"
    spans.Spans.n_commit_events (Spans.n_committed spans)
    (if Spans.complete spans then "yes" else "no")
    (List.length spans.Spans.orphan_msets)
    (Spans.n_retransmit_legs spans);
  out "</body></html>\n";
  Buffer.contents b
