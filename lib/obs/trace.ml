type drop_reason = Loss | Partition | Crashed_src | Crashed_dst

type event =
  | Msg_sent of { src : int; dst : int; cls : string }
  | Msg_dropped of { src : int; dst : int; cls : string; reason : drop_reason }
  | Msg_duplicated of { src : int; dst : int; cls : string }
  | Msg_delivered of { src : int; dst : int; cls : string }
  | Partition_event of { groups : int list list }
  | Heal
  | Crash of { site : int }
  | Recover of { site : int }
  | Update_begin of { u : int; origin : int; n_ops : int }
  | Update_committed of { u : int; origin : int; latency : float }
  | Update_rejected of { u : int; origin : int; reason : string }
  | Query_begin of { q : int; site : int; n_keys : int; epsilon : int option }
  | Query_served of {
      q : int;
      site : int;
      charged : int;
      forced : int;
      epsilon : int option;
      consistent_path : bool;
      latency : float;
    }
  | Mset_enqueued of { et : int; origin : int; n_ops : int; keys : string list }
  | Mset_applied of { et : int; site : int; n_ops : int; order : int option }
  | Compensation_fired of { et : int; site : int; kind : [ `Fast | `Full | `Revoke ] }
  | Squeue_send of { src : int; dst : int; seq : int }
  | Squeue_delivered of { src : int; dst : int; seq : int }
  | Squeue_dup of { src : int; dst : int; seq : int }
  | Query_window of {
      w : int;
      site : int;
      point : int;
      missing : int;
      keys : string list;
    }
  | Query_window_closed of {
      w : int;
      site : int;
      charged : int;
      outcome : [ `Ok | `Fallback | `Killed ];
    }
  | Volatile_dropped of {
      site : int;
      buffered : int;
      queries_failed : int;
      updates_rejected : int;
      log : int;
    }
  | Recovery_replay of { site : int; n_actions : int }
  | Checkpoint_cut of { site : int; folded : int; reclaimed : int }
  | Flush_round of { round : int }
  | Converged of { ok : bool }
  | Trace_meta of { dropped : int }
      (* exporter-synthesized header: ring-buffer evictions that preceded
         the first surviving record; never emitted by instrumentation *)

type record = { time : float; ev : event }

(* Ring buffer sink.  [buf] is allocated on the first emit of an enabled
   sink, so a disabled sink (the default everywhere) costs one record.
   [taps] see every record as it is emitted, before ring eviction can
   touch it — a streaming consumer (file sink, auditor) is therefore
   immune to ring wrap. *)
type t = {
  enabled : bool;
  capacity : int;
  mutable buf : record array;
  mutable len : int;  (* valid records, <= capacity *)
  mutable head : int;  (* index of the oldest record *)
  mutable n_dropped : int;
  mutable taps : (record -> unit) list;  (* attach order *)
}

let dummy = { time = 0.0; ev = Heal }

let make ?(capacity = 262_144) ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.make: capacity must be positive";
  { enabled; capacity; buf = [||]; len = 0; head = 0; n_dropped = 0; taps = [] }

let[@inline] on t = t.enabled

let attach t f =
  if not t.enabled then invalid_arg "Trace.attach: sink is disabled";
  t.taps <- t.taps @ [ f ]

let emit t ~time ev =
  if t.enabled then begin
    let r = { time; ev } in
    if Array.length t.buf = 0 then t.buf <- Array.make t.capacity dummy;
    if t.len < t.capacity then begin
      t.buf.((t.head + t.len) mod t.capacity) <- r;
      t.len <- t.len + 1
    end
    else begin
      (* Full: overwrite the oldest. *)
      t.buf.(t.head) <- r;
      t.head <- (t.head + 1) mod t.capacity;
      t.n_dropped <- t.n_dropped + 1
    end;
    match t.taps with
    | [] -> ()
    | taps -> List.iter (fun f -> f r) taps
  end

let length t = t.len
let dropped t = t.n_dropped

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod t.capacity)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

(* --- JSON writing --- *)

let buf_add_escaped = Esr_util.Json.buf_add_escaped
let float_repr = Esr_util.Json.float_repr

let reason_to_string = function
  | Loss -> "loss"
  | Partition -> "partition"
  | Crashed_src -> "crashed_src"
  | Crashed_dst -> "crashed_dst"

let reason_of_string = function
  | "loss" -> Some Loss
  | "partition" -> Some Partition
  | "crashed_src" -> Some Crashed_src
  | "crashed_dst" -> Some Crashed_dst
  | _ -> None

let kind_to_string = function `Fast -> "fast" | `Full -> "full" | `Revoke -> "revoke"

let kind_of_string = function
  | "fast" -> Some `Fast
  | "full" -> Some `Full
  | "revoke" -> Some `Revoke
  | _ -> None

let outcome_to_string = function
  | `Ok -> "ok"
  | `Fallback -> "fallback"
  | `Killed -> "killed"

let outcome_of_string = function
  | "ok" -> Some `Ok
  | "fallback" -> Some `Fallback
  | "killed" -> Some `Killed
  | _ -> None

let type_name = function
  | Msg_sent _ -> "msg_sent"
  | Msg_dropped _ -> "msg_dropped"
  | Msg_duplicated _ -> "msg_duplicated"
  | Msg_delivered _ -> "msg_delivered"
  | Partition_event _ -> "partition"
  | Heal -> "heal"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Update_begin _ -> "update_begin"
  | Update_committed _ -> "update_committed"
  | Update_rejected _ -> "update_rejected"
  | Query_begin _ -> "query_begin"
  | Query_served _ -> "query_served"
  | Mset_enqueued _ -> "mset_enqueued"
  | Mset_applied _ -> "mset_applied"
  | Compensation_fired _ -> "compensation_fired"
  | Squeue_send _ -> "squeue_send"
  | Squeue_delivered _ -> "squeue_delivered"
  | Squeue_dup _ -> "squeue_dup"
  | Query_window _ -> "query_window"
  | Query_window_closed _ -> "query_window_closed"
  | Volatile_dropped _ -> "volatile_dropped"
  | Recovery_replay _ -> "recovery_replay"
  | Checkpoint_cut _ -> "checkpoint_cut"
  | Flush_round _ -> "flush_round"
  | Converged _ -> "converged"
  | Trace_meta _ -> "meta"

let record_to_json r =
  let b = Buffer.create 96 in
  let field_sep () = Buffer.add_char b ',' in
  let str name v =
    field_sep ();
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":\"";
    buf_add_escaped b v;
    Buffer.add_char b '"'
  in
  let int name v =
    field_sep ();
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    Buffer.add_string b (string_of_int v)
  in
  let num name v =
    field_sep ();
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    Buffer.add_string b (float_repr v)
  in
  let boolean name v =
    field_sep ();
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    Buffer.add_string b (if v then "true" else "false")
  in
  let int_opt name = function
    | Some v -> int name v
    | None ->
        field_sep ();
        Buffer.add_char b '"';
        Buffer.add_string b name;
        Buffer.add_string b "\":null"
  in
  let strs name vs =
    field_sep ();
    Buffer.add_char b '"';
    Buffer.add_string b name;
    Buffer.add_string b "\":[";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        buf_add_escaped b v;
        Buffer.add_char b '"')
      vs;
    Buffer.add_char b ']'
  in
  Buffer.add_string b "{\"ts\":";
  Buffer.add_string b (float_repr r.time);
  str "type" (type_name r.ev);
  (match r.ev with
  | Msg_sent { src; dst; cls } | Msg_duplicated { src; dst; cls } | Msg_delivered { src; dst; cls } ->
      int "src" src;
      int "dst" dst;
      str "cls" cls
  | Msg_dropped { src; dst; cls; reason } ->
      int "src" src;
      int "dst" dst;
      str "cls" cls;
      str "reason" (reason_to_string reason)
  | Partition_event { groups } ->
      field_sep ();
      Buffer.add_string b "\"groups\":[";
      List.iteri
        (fun i group ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          List.iteri
            (fun j s ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b (string_of_int s))
            group;
          Buffer.add_char b ']')
        groups;
      Buffer.add_char b ']'
  | Heal -> ()
  | Crash { site } | Recover { site } -> int "site" site
  | Update_begin { u; origin; n_ops } ->
      int "u" u;
      int "origin" origin;
      int "n_ops" n_ops
  | Update_committed { u; origin; latency } ->
      int "u" u;
      int "origin" origin;
      num "latency" latency
  | Update_rejected { u; origin; reason } ->
      int "u" u;
      int "origin" origin;
      str "reason" reason
  | Query_begin { q; site; n_keys; epsilon } ->
      int "q" q;
      int "site" site;
      int "n_keys" n_keys;
      int_opt "epsilon" epsilon
  | Query_served { q; site; charged; forced; epsilon; consistent_path; latency } ->
      int "q" q;
      int "site" site;
      int "charged" charged;
      if forced > 0 then int "forced" forced;
      int_opt "epsilon" epsilon;
      boolean "consistent_path" consistent_path;
      num "latency" latency
  | Mset_enqueued { et; origin; n_ops; keys } ->
      int "et" et;
      int "origin" origin;
      int "n_ops" n_ops;
      strs "keys" keys
  | Mset_applied { et; site; n_ops; order } ->
      int "et" et;
      int "site" site;
      int "n_ops" n_ops;
      int_opt "order" order
  | Compensation_fired { et; site; kind } ->
      int "et" et;
      int "site" site;
      str "kind" (kind_to_string kind)
  | Squeue_send { src; dst; seq }
  | Squeue_delivered { src; dst; seq }
  | Squeue_dup { src; dst; seq } ->
      int "src" src;
      int "dst" dst;
      int "seq" seq
  | Query_window { w; site; point; missing; keys } ->
      int "w" w;
      int "site" site;
      int "point" point;
      int "missing" missing;
      strs "keys" keys
  | Query_window_closed { w; site; charged; outcome } ->
      int "w" w;
      int "site" site;
      int "charged" charged;
      str "outcome" (outcome_to_string outcome)
  | Volatile_dropped { site; buffered; queries_failed; updates_rejected; log } ->
      int "site" site;
      int "buffered" buffered;
      int "queries_failed" queries_failed;
      int "updates_rejected" updates_rejected;
      int "log" log
  | Recovery_replay { site; n_actions } ->
      int "site" site;
      int "n_actions" n_actions
  | Checkpoint_cut { site; folded; reclaimed } ->
      int "site" site;
      int "folded" folded;
      int "reclaimed" reclaimed
  | Flush_round { round } -> int "round" round
  | Converged { ok } -> boolean "ok" ok
  | Trace_meta { dropped } ->
      field_sep ();
      Buffer.add_string b "\"meta\":{\"generator\":\"esrsim\"}";
      int "dropped" dropped);
  Buffer.add_char b '}';
  Buffer.contents b

(* --- JSON reading (the subset the writer produces) --- *)

module Json = Esr_util.Json

exception Parse of string

let record_of_json line =
  match Json.parse_exn line with
  | exception Json.Parse_error msg -> Error msg
  | Json.Obj fields -> (
      let find name = List.assoc_opt name fields in
      let get_int name =
        match find name with
        | Some (Json.Num v) -> int_of_float v
        | _ -> raise (Parse ("missing int field " ^ name))
      in
      let get_num name =
        match find name with
        | Some (Json.Num v) -> v
        | _ -> raise (Parse ("missing number field " ^ name))
      in
      let get_str name =
        match find name with
        | Some (Json.Str v) -> v
        | _ -> raise (Parse ("missing string field " ^ name))
      in
      let get_bool name =
        match find name with
        | Some (Json.Bool v) -> v
        | _ -> raise (Parse ("missing bool field " ^ name))
      in
      let get_int_opt name =
        match find name with
        | Some Json.Null -> None
        | Some (Json.Num v) -> Some (int_of_float v)
        | _ -> raise (Parse ("missing nullable int field " ^ name))
      in
      (* Absent-tolerant: fields written only when nonzero. *)
      let get_int_default name d =
        match find name with
        | Some (Json.Num v) -> int_of_float v
        | _ -> d
      in
      let get_str_list name =
        match find name with
        | Some (Json.Arr items) ->
            List.map
              (function
                | Json.Str s -> s
                | _ -> raise (Parse ("bad string in " ^ name)))
              items
        | _ -> raise (Parse ("missing string list field " ^ name))
      in
      let msg_fields () = (get_int "src", get_int "dst", get_str "cls") in
      try
        let time = get_num "ts" in
        let ev =
          match get_str "type" with
          | "msg_sent" ->
              let src, dst, cls = msg_fields () in
              Msg_sent { src; dst; cls }
          | "msg_duplicated" ->
              let src, dst, cls = msg_fields () in
              Msg_duplicated { src; dst; cls }
          | "msg_delivered" ->
              let src, dst, cls = msg_fields () in
              Msg_delivered { src; dst; cls }
          | "msg_dropped" ->
              let src, dst, cls = msg_fields () in
              let reason =
                match reason_of_string (get_str "reason") with
                | Some r -> r
                | None -> raise (Parse "bad drop reason")
              in
              Msg_dropped { src; dst; cls; reason }
          | "partition" ->
              let groups =
                match find "groups" with
                | Some (Json.Arr groups) ->
                    List.map
                      (function
                        | Json.Arr members ->
                            List.map
                              (function
                                | Json.Num v -> int_of_float v
                                | _ -> raise (Parse "bad group member"))
                              members
                        | _ -> raise (Parse "bad group"))
                      groups
                | _ -> raise (Parse "missing groups")
              in
              Partition_event { groups }
          | "heal" -> Heal
          | "crash" -> Crash { site = get_int "site" }
          | "recover" -> Recover { site = get_int "site" }
          | "update_begin" ->
              Update_begin { u = get_int "u"; origin = get_int "origin"; n_ops = get_int "n_ops" }
          | "update_committed" ->
              Update_committed
                { u = get_int "u"; origin = get_int "origin"; latency = get_num "latency" }
          | "update_rejected" ->
              Update_rejected
                { u = get_int "u"; origin = get_int "origin"; reason = get_str "reason" }
          | "query_begin" ->
              Query_begin
                {
                  q = get_int "q";
                  site = get_int "site";
                  n_keys = get_int "n_keys";
                  epsilon = get_int_opt "epsilon";
                }
          | "query_served" ->
              Query_served
                {
                  q = get_int "q";
                  site = get_int "site";
                  charged = get_int "charged";
                  forced = get_int_default "forced" 0;
                  epsilon = get_int_opt "epsilon";
                  consistent_path = get_bool "consistent_path";
                  latency = get_num "latency";
                }
          | "mset_enqueued" ->
              Mset_enqueued
                {
                  et = get_int "et";
                  origin = get_int "origin";
                  n_ops = get_int "n_ops";
                  keys = get_str_list "keys";
                }
          | "mset_applied" ->
              Mset_applied
                {
                  et = get_int "et";
                  site = get_int "site";
                  n_ops = get_int "n_ops";
                  order = get_int_opt "order";
                }
          | "compensation_fired" ->
              let kind =
                match kind_of_string (get_str "kind") with
                | Some k -> k
                | None -> raise (Parse "bad compensation kind")
              in
              Compensation_fired { et = get_int "et"; site = get_int "site"; kind }
          | "squeue_send" ->
              Squeue_send { src = get_int "src"; dst = get_int "dst"; seq = get_int "seq" }
          | "squeue_delivered" ->
              Squeue_delivered
                { src = get_int "src"; dst = get_int "dst"; seq = get_int "seq" }
          | "squeue_dup" ->
              Squeue_dup { src = get_int "src"; dst = get_int "dst"; seq = get_int "seq" }
          | "query_window" ->
              Query_window
                {
                  w = get_int "w";
                  site = get_int "site";
                  point = get_int "point";
                  missing = get_int "missing";
                  keys = get_str_list "keys";
                }
          | "query_window_closed" ->
              let outcome =
                match outcome_of_string (get_str "outcome") with
                | Some o -> o
                | None -> raise (Parse "bad window outcome")
              in
              Query_window_closed
                { w = get_int "w"; site = get_int "site"; charged = get_int "charged"; outcome }
          | "volatile_dropped" ->
              Volatile_dropped
                {
                  site = get_int "site";
                  buffered = get_int "buffered";
                  queries_failed = get_int "queries_failed";
                  updates_rejected = get_int "updates_rejected";
                  log = get_int "log";
                }
          | "recovery_replay" ->
              Recovery_replay
                { site = get_int "site"; n_actions = get_int "n_actions" }
          | "checkpoint_cut" ->
              Checkpoint_cut
                {
                  site = get_int "site";
                  folded = get_int "folded";
                  reclaimed = get_int "reclaimed";
                }
          | "flush_round" -> Flush_round { round = get_int "round" }
          | "converged" -> Converged { ok = get_bool "ok" }
          | "meta" -> Trace_meta { dropped = get_int "dropped" }
          | other -> raise (Parse ("unknown event type " ^ other))
        in
        Ok { time; ev }
      with Parse msg -> Error msg)
  | _ -> Error "not a JSON object"

let file_sink t oc =
  attach t (fun r ->
      output_string oc (record_to_json r);
      output_char oc '\n')

let write_jsonl oc t =
  (* Evictions are not silent: a wrapped ring leads the dump with a
     self-describing meta record so consumers know the prefix is gone. *)
  if t.n_dropped > 0 then begin
    let oldest = if t.len > 0 then t.buf.(t.head).time else 0.0 in
    output_string oc
      (record_to_json
         { time = oldest; ev = Trace_meta { dropped = t.n_dropped } });
    output_char oc '\n'
  end;
  iter t (fun r ->
      output_string oc (record_to_json r);
      output_char oc '\n')

(* --- Chrome trace_event --- *)

(* The track an event renders on: its site, or the system track. *)
let event_track ~sites = function
  | Msg_sent { src; _ } | Msg_dropped { src; _ } | Msg_duplicated { src; _ } -> src
  | Msg_delivered { dst; _ } -> dst
  | Squeue_send { src; _ } -> src
  | Squeue_delivered { dst; _ } | Squeue_dup { dst; _ } -> dst
  | Crash { site } | Recover { site } -> site
  | Update_begin { origin; _ } | Update_committed { origin; _ } | Update_rejected { origin; _ }
    -> origin
  | Query_begin { site; _ } | Query_served { site; _ } -> site
  | Query_window { site; _ } | Query_window_closed { site; _ } -> site
  | Mset_enqueued { origin; _ } -> origin
  | Mset_applied { site; _ } | Compensation_fired { site; _ } -> site
  | Volatile_dropped { site; _ } | Recovery_replay { site; _ }
  | Checkpoint_cut { site; _ } ->
      site
  | Partition_event _ | Heal | Flush_round _ | Converged _ | Trace_meta _ ->
      sites

(* Trace-viewer args payload: reuse the JSONL object minus ts/type. *)
let event_args r =
  let line = record_to_json r in
  (* line = {"ts":<num>,"type":"<name>"...}; strip the first two fields. *)
  match String.index_opt line ',' with
  | None -> "{}"
  | Some first_comma -> (
      let rest = String.sub line (first_comma + 1) (String.length line - first_comma - 1) in
      match String.index_opt rest ',' with
      | None -> "{}"  (* only the type field: no payload *)
      | Some second_comma ->
          "{" ^ String.sub rest (second_comma + 1) (String.length rest - second_comma - 1))

let write_chrome ?(extra = []) oc ~sites t =
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  let item line =
    if not !first then output_string oc ",\n";
    first := false;
    output_string oc line
  in
  (* Thread-name metadata: one named track per site plus the system track. *)
  for site = 0 to sites do
    let name = if site = sites then "system" else Printf.sprintf "site %d" site in
    item
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         site name)
  done;
  if t.n_dropped > 0 then
    item
      (Printf.sprintf
         "{\"name\":\"trace_dropped\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"dropped\":%d}}"
         sites t.n_dropped);
  iter t (fun r ->
      let tid = event_track ~sites r.ev in
      let ts_us = r.time *. 1000.0 in
      let args = event_args r in
      let line =
        match r.ev with
        | Update_committed { latency; _ } | Query_served { latency; _ } ->
            (* Render the ET's span: [submit, outcome]. *)
            let start_us = Float.max 0.0 ((r.time -. latency) *. 1000.0) in
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d,\"args\":%s}"
              (type_name r.ev) (float_repr start_us)
              (float_repr (Float.max 0.0 (latency *. 1000.0)))
              tid args
        | _ ->
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":0,\"tid\":%d,\"args\":%s}"
              (type_name r.ev) (float_repr ts_us) tid args
      in
      item line);
  List.iter item extra;
  output_string oc "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"esrsim\",\"time_unit\":\"virtual ms\"}}\n"
