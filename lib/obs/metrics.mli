(** Deterministic metrics registry keyed on virtual time.

    A {!t} is a per-run registry of named instruments.  Registration order
    is the snapshot order, so two runs that register and update the same
    instruments produce byte-identical snapshots — determinism is part of
    the contract, like everything else in the simulator.

    Three instrument kinds:
    - {e counters}: monotonically accumulated floats (a mutable cell; an
      increment costs one float store, same as the ad-hoc [mutable int]
      fields it replaces);
    - {e gauges}: read-on-snapshot callbacks, for values another module
      already maintains (queue depths, engine counts);
    - {e histograms}: fixed upper-bound buckets plus an overflow bucket,
      for distributions (commit latency in virtual ms, per-query charged
      inconsistency).

    Instruments carry a [group] (["method"], ["net"], ["engine"],
    ["squeue"], ["harness"]) and an optional [site], which is what lets
    {!alist} reconstruct the pre-observability per-method stats lists
    exactly while the full {!snapshot} carries everything. *)

type t

val create : unit -> t

(** {2 Registration} *)

type counter

val counter : t -> group:string -> ?site:int -> string -> counter
val incr : counter -> unit
val add : counter -> float -> unit
val value : counter -> float

val gauge_fn : t -> group:string -> ?site:int -> string -> (unit -> float) -> unit
(** The callback runs at snapshot time only. *)

type histogram

val histogram :
  t -> group:string -> ?site:int -> buckets:float list -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing; an implicit
    overflow bucket catches the rest. *)

val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** Bucket-interpolated percentile ([q] in [[0,100]], Prometheus-style):
    linear interpolation inside the bucket the q-th ranked observation
    falls into, with the first bucket anchored at 0 and the overflow
    bucket clamped to the last finite bound.  0 on an empty histogram. *)

(** {2 Snapshots} *)

type view =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of {
      limits : float array;  (** inclusive upper bounds *)
      counts : int array;  (** same length as [limits] plus overflow slot *)
      sum : float;
      count : int;
    }

type entry = { group : string; name : string; site : int option; view : view }

val snapshot : t -> entry list
(** All instruments, in registration order, with materialized values. *)

val view_percentile : view -> float -> float
(** {!percentile} over a materialized {!Histogram_v} view.
    @raise Invalid_argument on counter/gauge views. *)

val alist : ?group:string -> t -> (string * float) list
(** Flat compatibility view: counters and gauges become [(name, value)]
    pairs (site-qualified as ["name.sN"]); histograms expand to
    [name.count], [name.mean], [name.p50] and [name.p99] (bucket-
    interpolated).  With [?group], only that group — the
    pre-observability method stats lists are [alist ~group:"method"]. *)

val pp_entry : Format.formatter -> entry -> unit
