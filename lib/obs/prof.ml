(* Host-time/resource phase profiler.  See prof.mli for the contract;
   the shape deliberately mirrors Trace: a disabled profiler allocates
   nothing, and every instrumentation site guards with [on] so the off
   path costs one load-and-branch. *)

type phase =
  | Engine_dispatch
  | Apply
  | Propagate
  | Net_delivery
  | Wal_append
  | Replay

let n_phases = 6

let phase_index = function
  | Engine_dispatch -> 0
  | Apply -> 1
  | Propagate -> 2
  | Net_delivery -> 3
  | Wal_append -> 4
  | Replay -> 5

let all_phases =
  [ Engine_dispatch; Apply; Propagate; Net_delivery; Wal_append; Replay ]

let phase_name = function
  | Engine_dispatch -> "engine_dispatch"
  | Apply -> "apply"
  | Propagate -> "propagate"
  | Net_delivery -> "net_delivery"
  | Wal_append -> "wal_append"
  | Replay -> "replay"

let phase_of_name = function
  | "engine_dispatch" -> Some Engine_dispatch
  | "apply" -> Some Apply
  | "propagate" -> Some Propagate
  | "net_delivery" -> Some Net_delivery
  | "wal_append" -> Some Wal_append
  | "replay" -> Some Replay
  | _ -> None

type agg = { count : int; seconds : float; alloc_bytes : float }

let zero_agg = { count = 0; seconds = 0.0; alloc_bytes = 0.0 }

type span = {
  sp_phase : phase;
  sp_site : int;  (** -1 when the phase has no site *)
  sp_start : float;  (** host seconds since the profiler's epoch *)
  sp_dur : float;  (** host seconds *)
  sp_bytes : float;  (** minor+major allocation during the span *)
}

type t = {
  enabled : bool;
  epoch : float;  (* Unix.gettimeofday at creation; 0 when disabled *)
  counts : int array;
  seconds : float array;
  bytes : float array;
  span_capacity : int;
  mutable spans : span array;  (* lazily allocated ring, like Trace *)
  mutable head : int;
  mutable len : int;
  mutable n_dropped : int;
}

(* Enabled profilers register here so the timed bench sweep can sum
   per-phase totals over every harness an experiment created — including
   harnesses built on pool worker domains.  The list is only mutated
   under the mutex (once per harness); the aggregates themselves are
   plain mutable cells read after the worker domains have joined. *)
let registered : t list ref = ref []
let registered_mu = Mutex.create ()

let default_span_capacity = 16_384

let disabled =
  {
    enabled = false;
    epoch = 0.0;
    counts = [||];
    seconds = [||];
    bytes = [||];
    span_capacity = 0;
    spans = [||];
    head = 0;
    len = 0;
    n_dropped = 0;
  }

let make ?(span_capacity = default_span_capacity) ~enabled () =
  if not enabled then disabled
  else begin
    if span_capacity < 1 then
      invalid_arg "Prof.make: span_capacity must be positive";
    let t =
      {
        enabled = true;
        epoch = Unix.gettimeofday ();
        counts = Array.make n_phases 0;
        seconds = Array.make n_phases 0.0;
        bytes = Array.make n_phases 0.0;
        span_capacity;
        spans = [||];
        head = 0;
        len = 0;
        n_dropped = 0;
      }
    in
    Mutex.lock registered_mu;
    registered := t :: !registered;
    Mutex.unlock registered_mu;
    t
  end

let on t = t.enabled

let start t = if t.enabled then Unix.gettimeofday () else 0.0
let alloc0 t = if t.enabled then Gc.allocated_bytes () else 0.0

let push_span t s =
  if Array.length t.spans = 0 then begin
    t.spans <- Array.make t.span_capacity s;
    t.len <- 1
  end
  else if t.len < t.span_capacity then begin
    t.spans.((t.head + t.len) mod t.span_capacity) <- s;
    t.len <- t.len + 1
  end
  else begin
    t.spans.(t.head) <- s;
    t.head <- (t.head + 1) mod t.span_capacity;
    t.n_dropped <- t.n_dropped + 1
  end

let record t ?(site = -1) phase ~t0 ~a0 =
  if t.enabled then begin
    let now = Unix.gettimeofday () in
    let db = Gc.allocated_bytes () -. a0 in
    let dt = Float.max 0.0 (now -. t0) in
    let i = phase_index phase in
    t.counts.(i) <- t.counts.(i) + 1;
    t.seconds.(i) <- t.seconds.(i) +. dt;
    t.bytes.(i) <- t.bytes.(i) +. db;
    push_span t
      {
        sp_phase = phase;
        sp_site = site;
        sp_start = t0 -. t.epoch;
        sp_dur = dt;
        sp_bytes = db;
      }
  end

let agg t phase =
  if not t.enabled then zero_agg
  else
    let i = phase_index phase in
    { count = t.counts.(i); seconds = t.seconds.(i); alloc_bytes = t.bytes.(i) }

let aggs t = List.map (fun p -> (p, agg t p)) all_phases

let iter_spans t f =
  for i = 0 to t.len - 1 do
    f t.spans.((t.head + i) mod t.span_capacity)
  done

let spans t =
  let acc = ref [] in
  iter_spans t (fun s -> acc := s :: !acc);
  List.rev !acc

let span_count t = t.len
let spans_dropped t = t.n_dropped

(* --- global per-sweep totals ---------------------------------------- *)

let reset_totals () =
  Mutex.lock registered_mu;
  registered := [];
  Mutex.unlock registered_mu

let totals () =
  Mutex.lock registered_mu;
  let profs = !registered in
  Mutex.unlock registered_mu;
  List.map
    (fun p ->
      let i = phase_index p in
      let sum f = List.fold_left (fun a t -> a +. f t) 0.0 profs in
      ( p,
        {
          count =
            List.fold_left (fun a t -> a + t.counts.(i)) 0 profs;
          seconds = sum (fun t -> t.seconds.(i));
          alloc_bytes = sum (fun t -> t.bytes.(i));
        } ))
    all_phases

(* --- exports --------------------------------------------------------- *)

let float_repr = Esr_util.Json.float_repr

(* Host-time track for the Chrome/Perfetto export: pid 1 (the virtual-time
   trace owns pid 0), one named thread per phase, "X" spans in host
   microseconds since the profiler epoch.  The strings splice into
   [Trace.write_chrome ~extra]. *)
let chrome_events t =
  if not t.enabled then []
  else begin
    let meta =
      Printf.sprintf
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"host time\"}}"
      :: List.map
           (fun p ->
             Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
               (phase_index p) (phase_name p))
           all_phases
    in
    let spans_ev =
      let acc = ref [] in
      iter_spans t (fun s ->
          acc :=
            Printf.sprintf
              "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"site\":%d,\"alloc_bytes\":%s}}"
              (phase_name s.sp_phase)
              (float_repr (s.sp_start *. 1e6))
              (float_repr (Float.max 0.0 (s.sp_dur *. 1e6)))
              (phase_index s.sp_phase) s.sp_site (float_repr s.sp_bytes)
            :: !acc);
      List.rev !acc
    in
    meta @ spans_ev
  end

(* --- JSON dump (schema esr-profile/1) -------------------------------- *)

type dump = {
  d_phases : (phase * agg) list;
  d_spans : span list;
  d_spans_dropped : int;
}

let schema = "esr-profile/1"

let dump t =
  { d_phases = aggs t; d_spans = spans t; d_spans_dropped = t.n_dropped }

let write_json oc t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"";
  Buffer.add_string b schema;
  Buffer.add_string b "\",\"phases\":[";
  List.iteri
    (fun i (p, a) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"phase\":\"%s\",\"count\":%d,\"seconds\":%s,\"alloc_bytes\":%s}"
           (phase_name p) a.count (float_repr a.seconds)
           (float_repr a.alloc_bytes)))
    (aggs t);
  Buffer.add_string b "],\n\"spans_dropped\":";
  Buffer.add_string b (string_of_int t.n_dropped);
  Buffer.add_string b ",\n\"spans\":[";
  output_string oc (Buffer.contents b);
  Buffer.clear b;
  let first = ref true in
  iter_spans t (fun s ->
      if !first then first := false else Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "[\"%s\",%d,%s,%s,%s]" (phase_name s.sp_phase)
           s.sp_site
           (float_repr s.sp_start)
           (float_repr s.sp_dur)
           (float_repr s.sp_bytes));
      output_string oc (Buffer.contents b);
      Buffer.clear b);
  output_string oc "]}\n"

let dump_of_json text =
  let module J = Esr_util.Json in
  match J.parse text with
  | Error e -> Error e
  | Ok json -> (
      match J.member "schema" json with
      | Some (J.Str s) when String.equal s schema ->
          let phases =
            match Option.bind (J.member "phases" json) J.to_list with
            | None -> []
            | Some l ->
                List.filter_map
                  (fun o ->
                    match
                      Option.bind
                        (Option.bind (J.member "phase" o) J.to_string)
                        phase_of_name
                    with
                    | None -> None
                    | Some p ->
                        let num k =
                          Option.value ~default:0.0
                            (Option.bind (J.member k o) J.to_float)
                        in
                        Some
                          ( p,
                            {
                              count = int_of_float (num "count");
                              seconds = num "seconds";
                              alloc_bytes = num "alloc_bytes";
                            } ))
                  l
          in
          let spans =
            match Option.bind (J.member "spans" json) J.to_list with
            | None -> []
            | Some l ->
                List.filter_map
                  (function
                    | J.Arr
                        [ J.Str name; J.Num site; J.Num st; J.Num dur; J.Num by ]
                      -> (
                        match phase_of_name name with
                        | None -> None
                        | Some p ->
                            Some
                              {
                                sp_phase = p;
                                sp_site = int_of_float site;
                                sp_start = st;
                                sp_dur = dur;
                                sp_bytes = by;
                              })
                    | _ -> None)
                  l
          in
          let dropped =
            Option.value ~default:0
              (Option.bind (J.member "spans_dropped" json) J.to_int)
          in
          Ok { d_phases = phases; d_spans = spans; d_spans_dropped = dropped }
      | _ -> Error "profile dump: missing or unknown schema")
