(* Streaming runtime-verification auditor over the trace vocabulary.

   The auditor consumes records one at a time — as a live tap on the
   run's trace sink ({!Trace.attach}) or replayed from a JSONL dump —
   and checks the paper's guarantees online, with O(live state) memory:
   per-channel delivery state, per-site order cursors, open query
   windows, and the down-site set.  Each broken invariant produces a
   typed {!violation} pinning the first offending event; a clean run
   yields a certificate ({!ok}) plus the per-query epsilon ledger.

   A dump that lost its prefix to ring eviction (leading [Trace_meta])
   switches the auditor into {e relaxed} mode: per-event checks that
   depend on history before the first surviving record (dense sequence
   baselines, overlap reconstruction, crash pairing, end-of-run
   completeness) are disabled rather than reported as false positives,
   and the certificate is marked partial. *)

type kind = Delivery | Ordering | Epsilon | Crash | Checkpoint | Convergence

let kind_to_string = function
  | Delivery -> "delivery"
  | Ordering -> "ordering"
  | Epsilon -> "epsilon"
  | Crash -> "crash"
  | Checkpoint -> "checkpoint"
  | Convergence -> "convergence"

let kind_of_string = function
  | "delivery" -> Some Delivery
  | "ordering" -> Some Ordering
  | "epsilon" -> Some Epsilon
  | "crash" -> Some Crash
  | "checkpoint" -> Some Checkpoint
  | "convergence" -> Some Convergence
  | _ -> None

type violation = {
  v_kind : kind;
  v_invariant : string;  (* stable slug, e.g. "squeue-double-delivery" *)
  v_detail : string;
  v_time : float;  (* virtual time of the pinned event *)
  v_event : string;  (* {!Trace.type_name} of the pinned event *)
}

type entry = {
  l_q : int;
  l_site : int;
  l_keys : int;
  l_epsilon : int option;
  l_charged : int;
  l_forced : int;
  l_consistent : bool;
  l_latency : float;
  l_reconstructed : int option;
      (* overlap with concurrent update ETs rebuilt from the query's
         window events; [Some] only for optimistically-served ORDUP
         queries whose window was fully observed *)
  l_oracle : float option;  (* workload-oracle distance, when noted *)
}

type summary = {
  s_events : int;
  s_dropped : int;  (* ring evictions announced by the leading meta *)
  s_queries : int;
  s_bounded : int;  (* served with a finite epsilon *)
  s_at_bound : int;  (* charged = epsilon exactly *)
  s_charged_total : int;
  s_windows : int;
  s_windows_exact : int;  (* `Ok closes whose charge matched the model *)
  s_max_replay : int;
  s_max_crash_log : int;
  s_crashes : int;
  s_cuts : int;
  s_converged : bool option;  (* last [Converged] event, if any *)
}

type report = {
  label : string;
  violations : violation list;  (* chronological; head pins the first *)
  ledger : entry list;  (* by query id *)
  summary : summary;
}

let ok r = r.violations = []
let partial r = r.summary.s_dropped > 0

(* --- live state --- *)

(* Sender/receiver view of one (src,dst) stable-queue channel. *)
type chan = {
  mutable c_sent : int;  (* next expected dense send seq *)
  mutable c_base : int;  (* first seq observed (relaxed baseline) *)
  mutable c_known : bool;
  c_delivered : (int, unit) Hashtbl.t;
  mutable c_n_delivered : int;
}

type window = {
  win_w : int;
  win_site : int;
  win_point : int;
  win_keys : string list;
  mutable win_model : int;  (* reconstructed overlap: missing + applies *)
  mutable win_crashed : bool;  (* the site crashed while it was open *)
}

type closed_window = {
  cl_time : float;
  cl_charged : int;
  cl_model : int option;  (* [Some] for `Ok closes in strict mode *)
}

type pending_query = {
  pq_q : int;
  pq_site : int;
  pq_keys : int;
  pq_eps : int option;
}

type t = {
  label : string;
  mutable n_events : int;
  mutable dropped : int;
  mutable relaxed : bool;
  mutable last_time : float;
  mutable violations : violation list;  (* reversed *)
  mutable n_violations : int;
  chans : (int * int, chan) Hashtbl.t;
  applied_next : (int, int) Hashtbl.t;  (* site -> next expected ticket *)
  et_keys : (int, string list) Hashtbl.t;
  open_windows : (int, window) Hashtbl.t;  (* by window id *)
  last_closed : (int, closed_window) Hashtbl.t;  (* by site *)
  down : (int, unit) Hashtbl.t;
  mutable expect_drop : (int * int * string * float) option;
      (* a crashed-src send must be followed by its silent drop *)
  crash_log : (int, int) Hashtbl.t;  (* site -> log length at crash *)
  volatile_seen : (int, unit) Hashtbl.t;  (* this down-window dropped *)
  pending_queries : (int, pending_query) Hashtbl.t;
  oracle : (int, float) Hashtbl.t;
  mutable ledger_rev : entry list;
  mutable n_update_begin : int;
  mutable n_update_done : int;  (* committed + rejected *)
  mutable n_query_begin : int;
  mutable n_query_served : int;
  mutable n_bounded : int;
  mutable n_at_bound : int;
  mutable charged_total : int;
  mutable n_windows : int;
  mutable n_windows_exact : int;
  mutable n_crashes : int;
  mutable n_cuts : int;
  mutable max_replay : int;
  mutable max_crash_log : int;
  mutable converged : bool option;
  mutable metrics : Metrics.t option;
  mutable h_charged : Metrics.histogram option;
  mutable h_headroom : Metrics.histogram option;
}

let create ?(label = "run") () =
  {
    label;
    n_events = 0;
    dropped = 0;
    relaxed = false;
    last_time = neg_infinity;
    violations = [];
    n_violations = 0;
    chans = Hashtbl.create 64;
    applied_next = Hashtbl.create 16;
    et_keys = Hashtbl.create 256;
    open_windows = Hashtbl.create 16;
    last_closed = Hashtbl.create 16;
    down = Hashtbl.create 8;
    expect_drop = None;
    crash_log = Hashtbl.create 8;
    volatile_seen = Hashtbl.create 8;
    pending_queries = Hashtbl.create 64;
    oracle = Hashtbl.create 64;
    ledger_rev = [];
    n_update_begin = 0;
    n_update_done = 0;
    n_query_begin = 0;
    n_query_served = 0;
    n_bounded = 0;
    n_at_bound = 0;
    charged_total = 0;
    n_windows = 0;
    n_windows_exact = 0;
    n_crashes = 0;
    n_cuts = 0;
    max_replay = 0;
    max_crash_log = 0;
    converged = None;
    metrics = None;
    h_charged = None;
    h_headroom = None;
  }

(* Register the [audit/] instrument group.  Only called when auditing is
   on, so an unaudited run's metrics snapshot — and every series dump —
   is byte-identical to before this group existed (same pattern as the
   conditional [ckpt/] gauges). *)
let bind_metrics t (m : Metrics.t) =
  t.metrics <- Some m;
  Metrics.gauge_fn m ~group:"audit" "violations" (fun () ->
      float_of_int t.n_violations);
  Metrics.gauge_fn m ~group:"audit" "ledger_entries" (fun () ->
      float_of_int t.n_query_served);
  Metrics.gauge_fn m ~group:"audit" "windows_open" (fun () ->
      float_of_int (Hashtbl.length t.open_windows));
  Metrics.gauge_fn m ~group:"audit" "windows_exact" (fun () ->
      float_of_int t.n_windows_exact);
  Metrics.gauge_fn m ~group:"audit" "charged_total" (fun () ->
      float_of_int t.charged_total);
  t.h_charged <-
    Some
      (Metrics.histogram m ~group:"audit"
         ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50. ]
         "charged");
  t.h_headroom <-
    Some
      (Metrics.histogram m ~group:"audit"
         ~buckets:[ 0.; 1.; 2.; 5.; 10.; 20.; 50. ]
         "headroom")

let violate t ~kind ~invariant ~time ~event detail =
  t.n_violations <- t.n_violations + 1;
  t.violations <-
    {
      v_kind = kind;
      v_invariant = invariant;
      v_detail = detail;
      v_time = time;
      v_event = event;
    }
    :: t.violations

let chan t ~src ~dst =
  match Hashtbl.find_opt t.chans (src, dst) with
  | Some c -> c
  | None ->
      let c =
        {
          c_sent = 0;
          c_base = 0;
          c_known = false;
          c_delivered = Hashtbl.create 32;
          c_n_delivered = 0;
        }
      in
      Hashtbl.add t.chans (src, dst) c;
      c

let overlaps keys keys' = List.exists (fun k -> List.mem k keys') keys

let feed t (r : Trace.record) =
  let { Trace.time; ev } = r in
  let name = Trace.type_name ev in
  let v ~kind ~invariant detail =
    violate t ~kind ~invariant ~time ~event:name detail
  in
  t.n_events <- t.n_events + 1;
  (* Virtual time never runs backwards, whatever the event. *)
  if time < t.last_time -. 1e-9 then
    v ~kind:Ordering ~invariant:"time-regression"
      (Printf.sprintf "event at t=%.3f after t=%.3f" time t.last_time);
  t.last_time <- Float.max t.last_time time;
  (* (d) a send from a crashed site must be silently dropped by the
     network: the matching [Msg_dropped Crashed_src] directly follows. *)
  (match t.expect_drop with
  | None -> ()
  | Some (src, dst, cls, sent_at) -> (
      t.expect_drop <- None;
      match ev with
      | Trace.Msg_dropped { src = s; dst = d; cls = c; reason = Trace.Crashed_src }
        when s = src && d = dst && String.equal c cls ->
          ()
      | _ ->
          violate t ~kind:Crash ~invariant:"send-from-crashed-site"
            ~time:sent_at ~event:"msg_sent"
            (Printf.sprintf
               "site %d sent %S to %d while crashed and the network did not \
                drop it"
               src cls dst)));
  match ev with
  | Trace.Trace_meta { dropped } ->
      t.dropped <- t.dropped + dropped;
      t.relaxed <- true
  | Trace.Msg_sent { src; dst; cls } ->
      if (not t.relaxed) && Hashtbl.mem t.down src then
        t.expect_drop <- Some (src, dst, cls, time)
  | Trace.Msg_dropped { src; dst = _; cls = _; reason } ->
      if
        (not t.relaxed) && reason = Trace.Crashed_src
        && not (Hashtbl.mem t.down src)
      then
        v ~kind:Crash ~invariant:"spurious-crashed-src-drop"
          (Printf.sprintf "drop blamed on crashed src %d, which is up" src)
  | Trace.Msg_duplicated _ | Trace.Msg_delivered _ -> ()
  | Trace.Squeue_send { src; dst; seq } ->
      (* Journaling is a write to stable storage, so it is legal even at
         a crashed site (2PC/COMPE journal presumed-abort decisions in
         [on_crash]); the crash discipline audited here is the network's
         — physical transmissions from a down site must be dropped. *)
      let c = chan t ~src ~dst in
      if not c.c_known then begin
        c.c_known <- true;
        if t.relaxed then c.c_base <- seq
        else if seq <> 0 then
          v ~kind:Delivery ~invariant:"squeue-journal-gap"
            (Printf.sprintf "channel %d->%d starts at seq %d, expected 0" src
               dst seq);
        c.c_sent <- seq + 1
      end
      else if seq <> c.c_sent then begin
        v ~kind:Delivery ~invariant:"squeue-journal-gap"
          (Printf.sprintf "channel %d->%d journaled seq %d, expected %d" src
             dst seq c.c_sent);
        c.c_sent <- Stdlib.max c.c_sent (seq + 1)
      end
      else c.c_sent <- seq + 1
  | Trace.Squeue_delivered { src; dst; seq } ->
      let c = chan t ~src ~dst in
      if (not t.relaxed) && Hashtbl.mem t.down dst then
        v ~kind:Crash ~invariant:"squeue-deliver-while-down"
          (Printf.sprintf "channel %d->%d delivered seq %d at a crashed site"
             src dst seq);
      if (not t.relaxed) && (seq >= c.c_sent || (c.c_known && seq < c.c_base))
      then
        v ~kind:Delivery ~invariant:"squeue-delivered-unsent"
          (Printf.sprintf "channel %d->%d delivered seq %d, journal at %d" src
             dst seq c.c_sent);
      if Hashtbl.mem c.c_delivered seq then
        v ~kind:Delivery ~invariant:"squeue-double-delivery"
          (Printf.sprintf "channel %d->%d handed seq %d up twice" src dst seq)
      else begin
        Hashtbl.replace c.c_delivered seq ();
        c.c_n_delivered <- c.c_n_delivered + 1
      end
  | Trace.Squeue_dup { src; dst; seq } ->
      let c = chan t ~src ~dst in
      if (not t.relaxed) && seq >= c.c_sent then
        v ~kind:Delivery ~invariant:"squeue-dup-unsent"
          (Printf.sprintf "channel %d->%d suppressed unsent seq %d" src dst seq)
  | Trace.Partition_event _ | Trace.Heal -> ()
  | Trace.Crash { site } ->
      if Hashtbl.mem t.down site then
        v ~kind:Crash ~invariant:"double-crash"
          (Printf.sprintf "site %d crashed while already down" site)
      else begin
        t.n_crashes <- t.n_crashes + 1;
        Hashtbl.replace t.down site ();
        Hashtbl.remove t.volatile_seen site;
        Hashtbl.iter
          (fun _ w -> if w.win_site = site then w.win_crashed <- true)
          t.open_windows
      end
  | Trace.Recover { site } ->
      if not (Hashtbl.mem t.down site) then begin
        if not t.relaxed then
          v ~kind:Crash ~invariant:"recover-while-up"
            (Printf.sprintf "site %d recovered without a preceding crash" site)
      end
      else begin
        if (not t.relaxed) && not (Hashtbl.mem t.volatile_seen site) then
          v ~kind:Crash ~invariant:"crash-without-volatile-drop"
            (Printf.sprintf
               "site %d finished a down-window without accounting for its \
                volatile state"
               site);
        Hashtbl.remove t.down site;
        Hashtbl.remove t.volatile_seen site
      end
  | Trace.Volatile_dropped { site; log; _ } ->
      if (not t.relaxed) && not (Hashtbl.mem t.down site) then
        v ~kind:Crash ~invariant:"volatile-drop-while-up"
          (Printf.sprintf "site %d dropped volatile state while up" site);
      Hashtbl.replace t.volatile_seen site ();
      Hashtbl.replace t.crash_log site log;
      if log > t.max_crash_log then t.max_crash_log <- log
  | Trace.Recovery_replay { site; n_actions } ->
      if n_actions > t.max_replay then t.max_replay <- n_actions;
      (match Hashtbl.find_opt t.crash_log site with
      | Some expected ->
          Hashtbl.remove t.crash_log site;
          if n_actions <> expected then
            v ~kind:Crash ~invariant:"incomplete-replay"
              (Printf.sprintf
                 "site %d replayed %d log actions; the crash recorded %d" site
                 n_actions expected)
      | None ->
          if not t.relaxed then
            v ~kind:Crash ~invariant:"replay-without-crash"
              (Printf.sprintf "site %d replayed %d actions with no crash log"
                 site n_actions))
  | Trace.Checkpoint_cut { site; folded; reclaimed = _ } ->
      t.n_cuts <- t.n_cuts + 1;
      if Hashtbl.mem t.down site then
        v ~kind:Checkpoint ~invariant:"cut-at-down-site"
          (Printf.sprintf "site %d took a cut (folded %d) while crashed" site
             folded)
  | Trace.Update_begin _ -> t.n_update_begin <- t.n_update_begin + 1
  | Trace.Update_committed _ | Trace.Update_rejected _ ->
      t.n_update_done <- t.n_update_done + 1
  | Trace.Mset_enqueued { et; keys; _ } -> Hashtbl.replace t.et_keys et keys
  | Trace.Mset_applied { et; site; order; n_ops = _ } -> (
      if (not t.relaxed) && Hashtbl.mem t.down site then
        v ~kind:Crash ~invariant:"apply-at-down-site"
          (Printf.sprintf "ET %d applied at crashed site %d" et site);
      match order with
      | None -> ()
      | Some o ->
          (* (b) each site executes its ticket stream dense and in order
             (under sharding the stream is per-site; the check is the
             same because tickets are assigned per interested site). *)
          (match Hashtbl.find_opt t.applied_next site with
          | None ->
              if t.relaxed then Hashtbl.replace t.applied_next site (o + 1)
              else if o <> 1 then begin
                v ~kind:Ordering ~invariant:"ordup-stream-gap"
                  (Printf.sprintf "site %d started its stream at ticket %d"
                     site o);
                Hashtbl.replace t.applied_next site (o + 1)
              end
              else Hashtbl.replace t.applied_next site 2
          | Some next ->
              if o > next then begin
                v ~kind:Ordering ~invariant:"ordup-stream-gap"
                  (Printf.sprintf
                     "site %d executed ticket %d, expected %d: gap of %d" site
                     o next (o - next));
                Hashtbl.replace t.applied_next site (o + 1)
              end
              else if o < next then
                v ~kind:Ordering ~invariant:"ordup-stream-replay"
                  (Printf.sprintf
                     "site %d re-executed ticket %d (stream already at %d)"
                     site o next)
              else Hashtbl.replace t.applied_next site (o + 1));
          (* (c) charge reconstruction: the apply lands in every open
             window it interleaves — ordered past the query's point and
             touching its read set. *)
          let keys =
            Option.value ~default:[] (Hashtbl.find_opt t.et_keys et)
          in
          Hashtbl.iter
            (fun _ w ->
              if w.win_site = site && o > w.win_point && overlaps keys w.win_keys
              then w.win_model <- w.win_model + 1)
            t.open_windows)
  | Trace.Compensation_fired _ -> ()
  | Trace.Query_begin { q; site; n_keys; epsilon } ->
      t.n_query_begin <- t.n_query_begin + 1;
      Hashtbl.replace t.pending_queries q
        { pq_q = q; pq_site = site; pq_keys = n_keys; pq_eps = epsilon }
  | Trace.Query_window { w; site; point; missing; keys } ->
      t.n_windows <- t.n_windows + 1;
      if (not t.relaxed) && Hashtbl.mem t.down site then
        v ~kind:Crash ~invariant:"window-at-down-site"
          (Printf.sprintf "query window %d opened at crashed site %d" w site);
      if not t.relaxed then begin
        (* The lump charge is exactly the issued-but-unexecuted gap at
           the query's serialization point. *)
        let applied =
          match Hashtbl.find_opt t.applied_next site with
          | Some next -> next - 1
          | None -> 0
        in
        let expected = Stdlib.max 0 (point - applied) in
        if missing <> expected then
          v ~kind:Epsilon ~invariant:"window-missing-mismatch"
            (Printf.sprintf
               "window %d at site %d charged %d missing updates; point %d \
                less %d applied gives %d"
               w site missing point applied expected)
      end;
      if Hashtbl.mem t.open_windows w then
        v ~kind:Epsilon ~invariant:"window-reopened"
          (Printf.sprintf "window id %d opened twice" w)
      else
        Hashtbl.replace t.open_windows w
          {
            win_w = w;
            win_site = site;
            win_point = point;
            win_keys = keys;
            win_model = missing;
            win_crashed = false;
          }
  | Trace.Query_window_closed { w; site; charged; outcome } -> (
      match Hashtbl.find_opt t.open_windows w with
      | None ->
          if not t.relaxed then
            v ~kind:Epsilon ~invariant:"window-close-unopened"
              (Printf.sprintf "window id %d closed but never opened" w)
      | Some win ->
          Hashtbl.remove t.open_windows w;
          let model =
            if t.relaxed then None
            else begin
              (match outcome with
              | `Ok ->
                  if charged = win.win_model then
                    t.n_windows_exact <- t.n_windows_exact + 1
                  else
                    v ~kind:Epsilon ~invariant:"charge-overlap-mismatch"
                      (Printf.sprintf
                         "window %d at site %d charged %d; reconstructed \
                          overlap with concurrent update ETs is %d"
                         w site charged win.win_model)
              | `Fallback ->
                  (* Charging stopped at the first refusal, so the model
                     (which kept counting) is an upper bound. *)
                  if charged > win.win_model then
                    v ~kind:Epsilon ~invariant:"charge-overlap-mismatch"
                      (Printf.sprintf
                         "window %d fell back after charging %d, above the \
                          reconstructed overlap %d"
                         w charged win.win_model)
              | `Killed -> ());
              match outcome with `Ok -> Some win.win_model | _ -> None
            end
          in
          Hashtbl.replace t.last_closed site
            { cl_time = time; cl_charged = charged; cl_model = model })
  | Trace.Query_served
      { q; site; charged; forced; epsilon; consistent_path; latency } ->
      t.n_query_served <- t.n_query_served + 1;
      t.charged_total <- t.charged_total + charged;
      (* (c) the paper's bound, checked per served query.  Backward
         methods force-charge compensation contamination past the limit
         (the §4.2 hazard) — those units are declared in [forced], and
         only the voluntary remainder is held to epsilon. *)
      (let voluntary = charged - forced in
       if forced < 0 || voluntary < 0 then
         v ~kind:Epsilon ~invariant:"forced-charge-malformed"
           (Printf.sprintf "query %d declares %d forced of %d charged units"
              q forced charged);
       match epsilon with
       | Some e ->
           t.n_bounded <- t.n_bounded + 1;
           if voluntary = e then t.n_at_bound <- t.n_at_bound + 1;
           if voluntary > e then
             v ~kind:Epsilon ~invariant:"epsilon-exceeded"
               (Printf.sprintf
                  "query %d charged %d (%d forced) over its epsilon %d" q
                  charged forced e);
           Option.iter
             (fun h -> Metrics.observe h (float_of_int (e - voluntary)))
             t.h_headroom
       | None -> ());
      Option.iter (fun h -> Metrics.observe h (float_of_int charged)) t.h_charged;
      (* Pair the harness-level lifecycle with the method-level window
         closed in the same instant to fill the ledger's reconstruction
         column. *)
      let reconstructed =
        match Hashtbl.find_opt t.last_closed site with
        | Some cl when cl.cl_time = time && cl.cl_charged = charged ->
            Hashtbl.remove t.last_closed site;
            cl.cl_model
        | _ -> None
      in
      (match Hashtbl.find_opt t.pending_queries q with
      | Some pq ->
          Hashtbl.remove t.pending_queries q;
          t.ledger_rev <-
            {
              l_q = q;
              l_site = site;
              l_keys = pq.pq_keys;
              l_epsilon = epsilon;
              l_charged = charged;
              l_forced = forced;
              l_consistent = consistent_path;
              l_latency = latency;
              l_reconstructed = reconstructed;
              l_oracle = None;
            }
            :: t.ledger_rev
      | None ->
          if not t.relaxed then
            v ~kind:Convergence ~invariant:"served-without-begin"
              (Printf.sprintf "query %d served but never began" q))
  | Trace.Flush_round _ -> ()
  | Trace.Converged { ok } ->
      t.converged <- Some ok;
      if ok && (not t.relaxed) && Hashtbl.length t.down > 0 then
        v ~kind:Convergence ~invariant:"converged-while-down"
          (Printf.sprintf "convergence claimed with %d sites still crashed"
             (Hashtbl.length t.down))

let note_oracle t ~q ~distance = Hashtbl.replace t.oracle q distance

let finish t =
  let strict = not t.relaxed in
  let end_violation ~kind ~invariant detail =
    violate t ~kind ~invariant ~time:t.last_time ~event:"(end of trace)" detail
  in
  let settled = t.converged = Some true && Hashtbl.length t.down = 0 in
  (* (a) completeness: once the run claims convergence with every site
     up, every journaled message has been handed up exactly once. *)
  if strict && settled then
    Hashtbl.iter
      (fun (src, dst) c ->
        if c.c_n_delivered <> c.c_sent then
          end_violation ~kind:Delivery ~invariant:"squeue-undelivered"
            (Printf.sprintf "channel %d->%d delivered %d of %d journaled" src
               dst c.c_n_delivered c.c_sent))
      t.chans;
  (* (f) lifecycle completeness under the convergence claim. *)
  if strict && settled then begin
    if t.n_update_begin <> t.n_update_done then
      end_violation ~kind:Convergence ~invariant:"updates-unresolved"
        (Printf.sprintf "%d update ETs began, %d resolved" t.n_update_begin
           t.n_update_done);
    if t.n_query_begin <> t.n_query_served then
      end_violation ~kind:Convergence ~invariant:"queries-unserved"
        (Printf.sprintf "%d queries began, %d served" t.n_query_begin
           t.n_query_served)
  end;
  if strict then begin
    Hashtbl.iter
      (fun w win ->
        end_violation ~kind:Epsilon ~invariant:"window-never-closed"
          (Printf.sprintf "query window %d at site %d%s never closed" w
             win.win_site
             (if win.win_crashed then " (site crashed)" else "")))
      t.open_windows;
    Hashtbl.iter
      (fun site log ->
        if not (Hashtbl.mem t.down site) then
          end_violation ~kind:Crash ~invariant:"recovery-without-replay"
            (Printf.sprintf
               "site %d recovered but never replayed its %d-action log" site
               log))
      t.crash_log
  end;
  if t.converged = Some false then
    end_violation ~kind:Convergence ~invariant:"diverged-at-quiescence"
      "replicas report divergence at the end of the run";
  (* The live registry agrees with the trace-level certificate. *)
  (match t.metrics with
  | Some m when strict && t.converged = Some true -> (
      match List.assoc_opt "divergent_sites" (Metrics.alist ~group:"harness" m) with
      | Some d when d > 0.0 ->
          end_violation ~kind:Convergence ~invariant:"divergent-sites-metric"
            (Printf.sprintf "harness/divergent_sites gauge reads %g" d)
      | Some _ | None -> ())
  | _ -> ());
  let ledger =
    List.rev_map
      (fun e -> { e with l_oracle = Hashtbl.find_opt t.oracle e.l_q })
      t.ledger_rev
  in
  {
    label = t.label;
    violations = List.rev t.violations;
    ledger;
    summary =
      {
        s_events = t.n_events;
        s_dropped = t.dropped;
        s_queries = t.n_query_served;
        s_bounded = t.n_bounded;
        s_at_bound = t.n_at_bound;
        s_charged_total = t.charged_total;
        s_windows = t.n_windows;
        s_windows_exact = t.n_windows_exact;
        s_max_replay = t.max_replay;
        s_max_crash_log = t.max_crash_log;
        s_crashes = t.n_crashes;
        s_cuts = t.n_cuts;
        s_converged = t.converged;
      };
  }

let audit_records ?label records =
  let t = create ?label () in
  List.iter (feed t) records;
  finish t

(* --- JSON certificate ([esr-audit/1]) --- *)

let schema = "esr-audit/1"

let report_to_json (r : report) =
  let b = Buffer.create 4096 in
  let str s =
    Buffer.add_char b '"';
    Esr_util.Json.buf_add_escaped b s;
    Buffer.add_char b '"'
  in
  let num f = Buffer.add_string b (Esr_util.Json.float_repr f) in
  let int i = Buffer.add_string b (string_of_int i) in
  let int_opt = function
    | None -> Buffer.add_string b "null"
    | Some i -> int i
  in
  let bool_opt = function
    | None -> Buffer.add_string b "null"
    | Some v -> Buffer.add_string b (if v then "true" else "false")
  in
  Buffer.add_string b "{\"schema\":";
  str schema;
  Buffer.add_string b ",\"label\":";
  str r.label;
  Buffer.add_string b ",\"ok\":";
  Buffer.add_string b (if ok r then "true" else "false");
  Buffer.add_string b ",\"events\":";
  int r.summary.s_events;
  Buffer.add_string b ",\"dropped\":";
  int r.summary.s_dropped;
  Buffer.add_string b ",\"violations\":[";
  List.iteri
    (fun i vi ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"kind\":";
      str (kind_to_string vi.v_kind);
      Buffer.add_string b ",\"invariant\":";
      str vi.v_invariant;
      Buffer.add_string b ",\"detail\":";
      str vi.v_detail;
      Buffer.add_string b ",\"ts\":";
      num vi.v_time;
      Buffer.add_string b ",\"event\":";
      str vi.v_event;
      Buffer.add_char b '}')
    r.violations;
  Buffer.add_string b "],\"summary\":{\"queries\":";
  int r.summary.s_queries;
  Buffer.add_string b ",\"bounded\":";
  int r.summary.s_bounded;
  Buffer.add_string b ",\"at_bound\":";
  int r.summary.s_at_bound;
  Buffer.add_string b ",\"charged_total\":";
  int r.summary.s_charged_total;
  Buffer.add_string b ",\"windows\":";
  int r.summary.s_windows;
  Buffer.add_string b ",\"windows_exact\":";
  int r.summary.s_windows_exact;
  Buffer.add_string b ",\"max_replay\":";
  int r.summary.s_max_replay;
  Buffer.add_string b ",\"max_crash_log\":";
  int r.summary.s_max_crash_log;
  Buffer.add_string b ",\"crashes\":";
  int r.summary.s_crashes;
  Buffer.add_string b ",\"cuts\":";
  int r.summary.s_cuts;
  Buffer.add_string b ",\"converged\":";
  bool_opt r.summary.s_converged;
  Buffer.add_string b "},\"ledger\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"q\":";
      int e.l_q;
      Buffer.add_string b ",\"site\":";
      int e.l_site;
      Buffer.add_string b ",\"keys\":";
      int e.l_keys;
      Buffer.add_string b ",\"epsilon\":";
      int_opt e.l_epsilon;
      Buffer.add_string b ",\"charged\":";
      int e.l_charged;
      Buffer.add_string b ",\"forced\":";
      int e.l_forced;
      Buffer.add_string b ",\"consistent\":";
      Buffer.add_string b (if e.l_consistent then "true" else "false");
      Buffer.add_string b ",\"latency\":";
      num e.l_latency;
      Buffer.add_string b ",\"reconstructed\":";
      int_opt e.l_reconstructed;
      Buffer.add_string b ",\"oracle\":";
      (match e.l_oracle with
      | None -> Buffer.add_string b "null"
      | Some d -> num d);
      Buffer.add_char b '}')
    r.ledger;
  Buffer.add_string b "]}";
  Buffer.contents b

module Json = Esr_util.Json

exception Parse of string

let report_of_json text =
  match Json.parse_exn text with
  | exception Json.Parse_error msg -> Error msg
  | Json.Obj fields -> (
      let find name = List.assoc_opt name fields in
      let get_obj name fields' =
        match List.assoc_opt name fields' with
        | Some (Json.Obj o) -> o
        | _ -> raise (Parse ("missing object field " ^ name))
      in
      let get_arr name fields' =
        match List.assoc_opt name fields' with
        | Some (Json.Arr items) -> items
        | _ -> raise (Parse ("missing array field " ^ name))
      in
      let g_int fields' name =
        match List.assoc_opt name fields' with
        | Some (Json.Num v) -> int_of_float v
        | _ -> raise (Parse ("missing int field " ^ name))
      in
      let g_num fields' name =
        match List.assoc_opt name fields' with
        | Some (Json.Num v) -> v
        | _ -> raise (Parse ("missing number field " ^ name))
      in
      let g_str fields' name =
        match List.assoc_opt name fields' with
        | Some (Json.Str v) -> v
        | _ -> raise (Parse ("missing string field " ^ name))
      in
      let g_bool fields' name =
        match List.assoc_opt name fields' with
        | Some (Json.Bool v) -> v
        | _ -> raise (Parse ("missing bool field " ^ name))
      in
      let g_int_opt fields' name =
        match List.assoc_opt name fields' with
        | Some Json.Null -> None
        | Some (Json.Num v) -> Some (int_of_float v)
        | _ -> raise (Parse ("missing nullable int field " ^ name))
      in
      try
        (match find "schema" with
        | Some (Json.Str s) when String.equal s schema -> ()
        | _ -> raise (Parse "not an esr-audit/1 document"));
        let violations =
          List.map
            (function
              | Json.Obj f ->
                  let kind =
                    match kind_of_string (g_str f "kind") with
                    | Some k -> k
                    | None -> raise (Parse "bad violation kind")
                  in
                  {
                    v_kind = kind;
                    v_invariant = g_str f "invariant";
                    v_detail = g_str f "detail";
                    v_time = g_num f "ts";
                    v_event = g_str f "event";
                  }
              | _ -> raise (Parse "bad violation"))
            (get_arr "violations" fields)
        in
        let ledger =
          List.map
            (function
              | Json.Obj f ->
                  {
                    l_q = g_int f "q";
                    l_site = g_int f "site";
                    l_keys = g_int f "keys";
                    l_epsilon = g_int_opt f "epsilon";
                    l_charged = g_int f "charged";
                    l_forced =
                      (match List.assoc_opt "forced" f with
                      | Some (Json.Num v) -> int_of_float v
                      | _ -> 0);
                    l_consistent = g_bool f "consistent";
                    l_latency = g_num f "latency";
                    l_reconstructed = g_int_opt f "reconstructed";
                    l_oracle =
                      (match List.assoc_opt "oracle" f with
                      | Some Json.Null -> None
                      | Some (Json.Num v) -> Some v
                      | _ -> raise (Parse "bad oracle field"));
                  }
              | _ -> raise (Parse "bad ledger entry"))
            (get_arr "ledger" fields)
        in
        let s = get_obj "summary" fields in
        Ok
          {
            label = g_str fields "label";
            violations;
            ledger;
            summary =
              {
                s_events = g_int fields "events";
                s_dropped = g_int fields "dropped";
                s_queries = g_int s "queries";
                s_bounded = g_int s "bounded";
                s_at_bound = g_int s "at_bound";
                s_charged_total = g_int s "charged_total";
                s_windows = g_int s "windows";
                s_windows_exact = g_int s "windows_exact";
                s_max_replay = g_int s "max_replay";
                s_max_crash_log = g_int s "max_crash_log";
                s_crashes = g_int s "crashes";
                s_cuts = g_int s "cuts";
                s_converged =
                  (match List.assoc_opt "converged" s with
                  | Some Json.Null -> None
                  | Some (Json.Bool v) -> Some v
                  | _ -> raise (Parse "bad converged field"));
              };
          }
      with Parse msg -> Error msg)
  | _ -> Error "not a JSON object"

(* --- rendering --- *)

let pp_violation ppf vi =
  Format.fprintf ppf "[%s] %s at t=%.3f (%s): %s"
    (kind_to_string vi.v_kind)
    vi.v_invariant vi.v_time vi.v_event vi.v_detail

let pp_report ppf r =
  let s = r.summary in
  Format.fprintf ppf "audit %s: %s (%d events%s)@."
    r.label
    (if ok r then "CERTIFIED"
     else Printf.sprintf "%d VIOLATION%s" (List.length r.violations)
         (if List.length r.violations = 1 then "" else "S"))
    s.s_events
    (if s.s_dropped > 0 then
       Printf.sprintf ", PARTIAL: %d dropped" s.s_dropped
     else "");
  Format.fprintf ppf
    "  queries %d (bounded %d, at-bound %d, charged %d total)@."
    s.s_queries s.s_bounded s.s_at_bound s.s_charged_total;
  Format.fprintf ppf
    "  windows %d (%d exact overlap); crashes %d (max log %d, max replay \
     %d); cuts %d; converged %s@."
    s.s_windows s.s_windows_exact s.s_crashes s.s_max_crash_log s.s_max_replay
    s.s_cuts
    (match s.s_converged with
    | Some true -> "yes"
    | Some false -> "NO"
    | None -> "n/a");
  List.iter (fun vi -> Format.fprintf ppf "  %a@." pp_violation vi) r.violations

(* --- mutation injectors (self-tests) ---

   Each takes a recorded trace and deliberately breaks one invariant, so
   the test suite can assert the auditor catches exactly that violation
   — the audit gate cannot pass vacuously. *)

module Mutate = struct
  (* Replay an already-delivered sequence number: breaks exactly-once. *)
  let replay_delivery records =
    let rec go = function
      | [] -> []
      | ({ Trace.ev = Trace.Squeue_delivered _; _ } as r) :: rest ->
          r :: r :: rest
      | r :: rest -> r :: go rest
    in
    go records

  (* Swap the tickets of the first two applies in one site's stream
     (records keep their times and positions; only the [order] fields
     trade places): breaks in-order execution. *)
  let reorder_stream records =
    let seen = Hashtbl.create 4 in
    let target = ref None in
    List.iteri
      (fun i (r : Trace.record) ->
        if !target = None then
          match r.Trace.ev with
          | Trace.Mset_applied { site; order = Some o; _ } -> (
              match Hashtbl.find_opt seen site with
              | None -> Hashtbl.replace seen site (i, o)
              | Some (j, oj) -> target := Some (j, oj, i, o))
          | _ -> ())
      records;
    match !target with
    | None -> records
    | Some (i, oi, j, oj) ->
        List.mapi
          (fun k (r : Trace.record) ->
            match r.Trace.ev with
            | Trace.Mset_applied a when k = i ->
                { r with Trace.ev = Trace.Mset_applied { a with order = Some oj } }
            | Trace.Mset_applied a when k = j ->
                { r with Trace.ev = Trace.Mset_applied { a with order = Some oi } }
            | _ -> r)
          records

  (* Bump a bounded query's charge past its epsilon: breaks the paper's
     bound. *)
  let overcharge records =
    let done_ = ref false in
    List.map
      (fun (r : Trace.record) ->
        match r.Trace.ev with
        | Trace.Query_served
            ({ epsilon = Some e; _ } as q)
          when not !done_ ->
            done_ := true;
            { r with Trace.ev = Trace.Query_served { q with charged = e + 1 } }
        | _ -> r)
      records
end
