type counter = { mutable c : float }

type histogram = {
  limits : float array;
  counts : int array;  (* length = Array.length limits + 1 (overflow) *)
  mutable sum : float;
  mutable count : int;
}

type source =
  | Counter_s of counter
  | Gauge_s of (unit -> float)
  | Histogram_s of histogram

type reg = { r_group : string; r_name : string; r_site : int option; src : source }

(* Registrations in reverse order; snapshot reverses back.  Registration
   happens a handful of times per run, so a list is plenty. *)
type t = { mutable regs : reg list }

let create () = { regs = [] }

let register t ~group ~site name src =
  t.regs <- { r_group = group; r_name = name; r_site = site; src } :: t.regs

let counter t ~group ?site name =
  let c = { c = 0.0 } in
  register t ~group ~site name (Counter_s c);
  c

let incr c = c.c <- c.c +. 1.0
let add c v = c.c <- c.c +. v
let value c = c.c

let gauge_fn t ~group ?site name f = register t ~group ~site name (Gauge_s f)

let histogram t ~group ?site ~buckets name =
  let limits = Array.of_list buckets in
  Array.iteri
    (fun i limit ->
      if i > 0 && limit <= limits.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    limits;
  let h =
    { limits; counts = Array.make (Array.length limits + 1) 0; sum = 0.0; count = 0 }
  in
  register t ~group ~site name (Histogram_s h);
  h

let observe h v =
  let n = Array.length h.limits in
  let rec slot i = if i >= n then n else if v <= h.limits.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

type view =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of { limits : float array; counts : int array; sum : float; count : int }

type entry = { group : string; name : string; site : int option; view : view }

let snapshot t =
  List.rev_map
    (fun r ->
      let view =
        match r.src with
        | Counter_s c -> Counter_v c.c
        | Gauge_s f -> Gauge_v (f ())
        | Histogram_s h ->
            Histogram_v
              {
                limits = Array.copy h.limits;
                counts = Array.copy h.counts;
                sum = h.sum;
                count = h.count;
              }
      in
      { group = r.r_group; name = r.r_name; site = r.r_site; view })
    t.regs

let qualified e =
  match e.site with None -> e.name | Some s -> Printf.sprintf "%s.s%d" e.name s

let alist ?group t =
  let entries = snapshot t in
  let entries =
    match group with
    | None -> entries
    | Some g -> List.filter (fun e -> String.equal e.group g) entries
  in
  List.concat_map
    (fun e ->
      match e.view with
      | Counter_v v | Gauge_v v -> [ (qualified e, v) ]
      | Histogram_v { sum; count; _ } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          [
            (qualified e ^ ".count", float_of_int count);
            (qualified e ^ ".mean", mean);
          ])
    entries

let pp_entry ppf e =
  let site = match e.site with None -> "" | Some s -> Printf.sprintf "[s%d]" s in
  match e.view with
  | Counter_v v -> Format.fprintf ppf "%s/%s%s = %g" e.group e.name site v
  | Gauge_v v -> Format.fprintf ppf "%s/%s%s = %g (gauge)" e.group e.name site v
  | Histogram_v { limits; counts; sum; count } ->
      let mean = if count = 0 then 0.0 else sum /. float_of_int count in
      Format.fprintf ppf "%s/%s%s: n=%d mean=%.2f [" e.group e.name site count mean;
      Array.iteri
        (fun i limit -> Format.fprintf ppf "%s<=%g:%d" (if i = 0 then "" else " ") limit counts.(i))
        limits;
      Format.fprintf ppf " inf:%d]" counts.(Array.length limits)
