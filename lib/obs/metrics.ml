type counter = { mutable c : float }

type histogram = {
  limits : float array;
  counts : int array;  (* length = Array.length limits + 1 (overflow) *)
  mutable sum : float;
  mutable count : int;
}

type source =
  | Counter_s of counter
  | Gauge_s of (unit -> float)
  | Histogram_s of histogram

type reg = { r_group : string; r_name : string; r_site : int option; src : source }

(* Registrations in reverse order; snapshot reverses back.  Registration
   happens a handful of times per run, so a list is plenty. *)
type t = { mutable regs : reg list }

let create () = { regs = [] }

let register t ~group ~site name src =
  t.regs <- { r_group = group; r_name = name; r_site = site; src } :: t.regs

let counter t ~group ?site name =
  let c = { c = 0.0 } in
  register t ~group ~site name (Counter_s c);
  c

let incr c = c.c <- c.c +. 1.0
let add c v = c.c <- c.c +. v
let value c = c.c

let gauge_fn t ~group ?site name f = register t ~group ~site name (Gauge_s f)

let histogram t ~group ?site ~buckets name =
  let limits = Array.of_list buckets in
  Array.iteri
    (fun i limit ->
      if i > 0 && limit <= limits.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing")
    limits;
  let h =
    { limits; counts = Array.make (Array.length limits + 1) 0; sum = 0.0; count = 0 }
  in
  register t ~group ~site name (Histogram_s h);
  h

let observe h v =
  let n = Array.length h.limits in
  let rec slot i = if i >= n then n else if v <= h.limits.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

(* Bucket-interpolated percentile, Prometheus-style: find the bucket the
   q-th ranked observation falls into and interpolate linearly inside it
   (the first bucket's lower edge is 0, matching this repo's non-negative
   instruments; the overflow bucket cannot be interpolated into, so it
   clamps to the last finite bound). *)
let percentile_of_buckets ~limits ~counts ~count q =
  if count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 100.0 q) in
    let target = q /. 100.0 *. float_of_int count in
    let n = Array.length limits in
    let rec walk i cumulative =
      if i >= n then (* overflow bucket *)
        if n = 0 then 0.0 else limits.(n - 1)
      else
        let cumulative' = cumulative +. float_of_int counts.(i) in
        if cumulative' >= target && counts.(i) > 0 then
          let lower = if i = 0 then 0.0 else limits.(i - 1) in
          let upper = limits.(i) in
          let into = (target -. cumulative) /. float_of_int counts.(i) in
          lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 into))
        else walk (i + 1) cumulative'
    in
    walk 0 0.0
  end

let percentile h q =
  percentile_of_buckets ~limits:h.limits ~counts:h.counts ~count:h.count q

type view =
  | Counter_v of float
  | Gauge_v of float
  | Histogram_v of { limits : float array; counts : int array; sum : float; count : int }

type entry = { group : string; name : string; site : int option; view : view }

let view_percentile view q =
  match view with
  | Counter_v _ | Gauge_v _ -> invalid_arg "Metrics.view_percentile: not a histogram"
  | Histogram_v { limits; counts; count; _ } ->
      percentile_of_buckets ~limits ~counts ~count q

let snapshot t =
  List.rev_map
    (fun r ->
      let view =
        match r.src with
        | Counter_s c -> Counter_v c.c
        | Gauge_s f -> Gauge_v (f ())
        | Histogram_s h ->
            Histogram_v
              {
                limits = Array.copy h.limits;
                counts = Array.copy h.counts;
                sum = h.sum;
                count = h.count;
              }
      in
      { group = r.r_group; name = r.r_name; site = r.r_site; view })
    t.regs

let qualified e =
  match e.site with None -> e.name | Some s -> Printf.sprintf "%s.s%d" e.name s

let alist ?group t =
  let entries = snapshot t in
  let entries =
    match group with
    | None -> entries
    | Some g -> List.filter (fun e -> String.equal e.group g) entries
  in
  List.concat_map
    (fun e ->
      match e.view with
      | Counter_v v | Gauge_v v -> [ (qualified e, v) ]
      | Histogram_v { limits; counts; sum; count } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          let pct = percentile_of_buckets ~limits ~counts ~count in
          [
            (qualified e ^ ".count", float_of_int count);
            (qualified e ^ ".mean", mean);
            (qualified e ^ ".p50", pct 50.0);
            (qualified e ^ ".p99", pct 99.0);
          ])
    entries

let pp_entry ppf e =
  let site = match e.site with None -> "" | Some s -> Printf.sprintf "[s%d]" s in
  match e.view with
  | Counter_v v -> Format.fprintf ppf "%s/%s%s = %g" e.group e.name site v
  | Gauge_v v -> Format.fprintf ppf "%s/%s%s = %g (gauge)" e.group e.name site v
  | Histogram_v { limits; counts; sum; count } ->
      let mean = if count = 0 then 0.0 else sum /. float_of_int count in
      let pct = percentile_of_buckets ~limits ~counts ~count in
      Format.fprintf ppf "%s/%s%s: n=%d mean=%.2f p50=%.2f p99=%.2f [" e.group
        e.name site count mean (pct 50.0) (pct 99.0);
      Array.iteri
        (fun i limit -> Format.fprintf ppf "%s<=%g:%d" (if i = 0 then "" else " ") limit counts.(i))
        limits;
      Format.fprintf ppf " inf:%d]" counts.(Array.length limits)
