type sample = { at : float; values : float array }
type annotation = { at : float; label : string }

type t = {
  enabled : bool;
  interval : float;
  capacity : int;
  (* Probes in reverse registration order until the first sample freezes
     the column layout. *)
  mutable probes : (string * (unit -> float)) list;
  mutable registry : Metrics.t option;
  (* Frozen at first sample: probe columns then registry columns. *)
  mutable columns : string array;
  mutable frozen : bool;
  (* Ring buffer, same discipline as Trace. *)
  mutable buf : sample array;
  mutable head : int;
  mutable len : int;
  mutable n_dropped : int;
  mutable annotations : annotation list;  (* reverse order *)
}

let default_interval = 50.0
let default_capacity = 4096

let make ?(interval = default_interval) ?(capacity = default_capacity) ~enabled () =
  if interval <= 0.0 then invalid_arg "Series.make: interval must be positive";
  if capacity < 1 then invalid_arg "Series.make: capacity must be positive";
  {
    enabled;
    interval;
    capacity;
    probes = [];
    registry = None;
    columns = [||];
    frozen = false;
    buf = [||];
    head = 0;
    len = 0;
    n_dropped = 0;
    annotations = [];
  }

let on t = t.enabled
let interval t = t.interval

let probe t ~name f =
  if t.enabled then begin
    if t.frozen then invalid_arg "Series.probe: columns already frozen by sampling";
    t.probes <- (name, f) :: t.probes
  end

let bind_registry t m = if t.enabled then t.registry <- Some m

let annotate t ~time label =
  if t.enabled then t.annotations <- { at = time; label } :: t.annotations

let qualified (e : Metrics.entry) =
  let base =
    match e.site with
    | None -> Printf.sprintf "%s/%s" e.group e.name
    | Some s -> Printf.sprintf "%s/%s.s%d" e.group e.name s
  in
  base

(* Registry instruments become columns: counters and gauges one column
   each; histograms expand to running count/p50/p99 so latency quantiles
   can be charted over time. *)
let registry_columns entries =
  List.concat_map
    (fun (e : Metrics.entry) ->
      let q = qualified e in
      match e.view with
      | Metrics.Counter_v _ | Metrics.Gauge_v _ -> [ q ]
      | Metrics.Histogram_v _ -> [ q ^ ".count"; q ^ ".p50"; q ^ ".p99" ])
    entries

let registry_values entries =
  List.concat_map
    (fun (e : Metrics.entry) ->
      match e.view with
      | Metrics.Counter_v v | Metrics.Gauge_v v -> [ v ]
      | Metrics.Histogram_v { count; _ } ->
          [
            float_of_int count;
            Metrics.view_percentile e.view 50.0;
            Metrics.view_percentile e.view 99.0;
          ])
    entries

let freeze t =
  let probe_names = List.rev_map fst t.probes in
  let reg_names =
    match t.registry with
    | None -> []
    | Some m -> registry_columns (Metrics.snapshot m)
  in
  t.columns <- Array.of_list (probe_names @ reg_names);
  t.buf <- Array.make t.capacity { at = 0.0; values = [||] };
  t.frozen <- true

let push t s =
  if t.len < t.capacity then begin
    t.buf.((t.head + t.len) mod t.capacity) <- s;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.head) <- s;
    t.head <- (t.head + 1) mod t.capacity;
    t.n_dropped <- t.n_dropped + 1
  end

let sample t ~time =
  if t.enabled then begin
    if not t.frozen then freeze t;
    let probe_vals = List.rev_map (fun (_, f) -> f ()) t.probes in
    let reg_vals =
      match t.registry with
      | None -> []
      | Some m -> registry_values (Metrics.snapshot m)
    in
    let values = Array.of_list (probe_vals @ reg_vals) in
    if Array.length values <> Array.length t.columns then
      invalid_arg "Series.sample: instrument set changed after first sample";
    push t { at = time; values }
  end

let columns t = Array.to_list t.columns
let length t = t.len
let dropped t = t.n_dropped

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod t.capacity)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun s -> acc := s :: !acc);
  List.rev !acc

let annotations t = List.rev t.annotations

let column_index t name =
  let n = Array.length t.columns in
  let rec find i =
    if i >= n then None else if String.equal t.columns.(i) name then Some i else find (i + 1)
  in
  find 0

(* {2 Dump: the parsed/serialized form the report surface consumes} *)

type dump = {
  d_interval : float;
  d_columns : string array;
  d_samples : sample list;
  d_annotations : annotation list;
  d_dropped : int;
}

let dump t =
  {
    d_interval = t.interval;
    d_columns = Array.copy t.columns;
    d_samples = to_list t;
    d_annotations = annotations t;
    d_dropped = t.n_dropped;
  }

let schema = "esr-series/1"

let write_json oc t =
  let module J = Esr_util.Json in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"";
  Buffer.add_string b schema;
  Buffer.add_string b "\",\"interval\":";
  Buffer.add_string b (J.float_repr t.interval);
  Buffer.add_string b ",\"dropped\":";
  Buffer.add_string b (string_of_int t.n_dropped);
  Buffer.add_string b ",\"columns\":[\"time\"";
  Array.iter
    (fun c ->
      Buffer.add_string b ",\"";
      J.buf_add_escaped b c;
      Buffer.add_char b '"')
    t.columns;
  Buffer.add_string b "],\n\"samples\":[";
  output_string oc (Buffer.contents b);
  Buffer.clear b;
  let first = ref true in
  iter t (fun s ->
      if !first then first := false else Buffer.add_string b ",\n";
      Buffer.add_char b '[';
      Buffer.add_string b (J.float_repr s.at);
      Array.iter
        (fun v ->
          Buffer.add_char b ',';
          Buffer.add_string b (J.float_repr v))
        s.values;
      Buffer.add_char b ']';
      output_string oc (Buffer.contents b);
      Buffer.clear b);
  Buffer.add_string b "],\n\"annotations\":[";
  List.iteri
    (fun i (a : annotation) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"ts\":";
      Buffer.add_string b (J.float_repr a.at);
      Buffer.add_string b ",\"label\":\"";
      J.buf_add_escaped b a.label;
      Buffer.add_string b "\"}")
    (annotations t);
  Buffer.add_string b "]}\n";
  output_string oc (Buffer.contents b)

let write_csv oc t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time";
  Array.iter
    (fun c ->
      Buffer.add_char b ',';
      Buffer.add_string b c)
    t.columns;
  Buffer.add_char b '\n';
  output_string oc (Buffer.contents b);
  Buffer.clear b;
  iter t (fun s ->
      Buffer.add_string b (Esr_util.Json.float_repr s.at);
      Array.iter
        (fun v ->
          Buffer.add_char b ',';
          Buffer.add_string b (Esr_util.Json.float_repr v))
        s.values;
      Buffer.add_char b '\n';
      output_string oc (Buffer.contents b);
      Buffer.clear b)

let dump_of_json text =
  let module J = Esr_util.Json in
  match J.parse text with
  | Error e -> Error e
  | Ok json -> (
      let ( let* ) o f = match o with None -> Error "series dump: bad shape" | Some v -> f v in
      match J.member "schema" json with
      | Some (J.Str s) when String.equal s schema ->
          let* interval = Option.bind (J.member "interval" json) J.to_float in
          let* dropped = Option.bind (J.member "dropped" json) J.to_int in
          let* cols = Option.bind (J.member "columns" json) J.to_list in
          let* samples = Option.bind (J.member "samples" json) J.to_list in
          let annots =
            match Option.bind (J.member "annotations" json) J.to_list with
            | None -> []
            | Some l ->
                List.filter_map
                  (fun a ->
                    match
                      ( Option.bind (J.member "ts" a) J.to_float,
                        Option.bind (J.member "label" a) J.to_string )
                    with
                    | Some at, Some label -> Some { at; label }
                    | _ -> None)
                  l
          in
          let* cols =
            let rec strings acc = function
              | [] -> Some (List.rev acc)
              | J.Str s :: rest -> strings (s :: acc) rest
              | _ -> None
            in
            strings [] cols
          in
          let* cols =
            match cols with "time" :: rest -> Some rest | _ -> None
          in
          let n = List.length cols in
          let* rows =
            let row = function
              | J.Arr (J.Num at :: vs) when List.length vs = n ->
                  let values =
                    Array.of_list
                      (List.map (function J.Num v -> v | _ -> 0.0) vs)
                  in
                  Some { at; values }
              | _ -> None
            in
            let rec all acc = function
              | [] -> Some (List.rev acc)
              | s :: rest -> (
                  match row s with None -> None | Some r -> all (r :: acc) rest)
            in
            all [] samples
          in
          Ok
            {
              d_interval = interval;
              d_columns = Array.of_list cols;
              d_samples = rows;
              d_annotations = annots;
              d_dropped = dropped;
            }
      | _ -> Error "series dump: missing or unknown schema")

let dump_column d name =
  let n = Array.length d.d_columns in
  let rec find i =
    if i >= n then None
    else if String.equal d.d_columns.(i) name then Some i
    else find (i + 1)
  in
  find 0
