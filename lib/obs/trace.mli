(** Structured trace events keyed on virtual time.

    The event vocabulary covers everything the paper makes claims about:
    message fates on the lossy network, failure injection, update/query ET
    lifecycles (with charged inconsistency against the epsilon spec),
    MSet propagation, COMPE compensation, and end-of-run convergence.

    A {!t} is a per-run sink: a fixed-capacity ring buffer of timestamped
    events (oldest records are dropped once full, counted in {!dropped}).
    A disabled sink allocates nothing and {!emit} is a single load-and-
    branch — instrumented fast paths guard event construction with {!on}
    so tracing off costs one predictable branch and zero allocation.

    Two export formats:
    - {e JSONL}: one self-describing JSON object per event
      ([{"ts":..,"type":..,...}]), parseable back via {!record_of_json};
    - {e Chrome trace_event}: a catapult/Perfetto-loadable timeline,
      virtual-time milliseconds mapped to trace microseconds, one track
      per site plus a "system" track for global events. *)

type drop_reason =
  | Loss  (** iid random loss *)
  | Partition  (** src and dst in different partition groups *)
  | Crashed_src  (** sent from a crashed site: silent drop *)
  | Crashed_dst  (** destination down at arrival time *)

type event =
  | Msg_sent of { src : int; dst : int; cls : string }
  | Msg_dropped of { src : int; dst : int; cls : string; reason : drop_reason }
  | Msg_duplicated of { src : int; dst : int; cls : string }
  | Msg_delivered of { src : int; dst : int; cls : string }
  | Partition_event of { groups : int list list }
  | Heal
  | Crash of { site : int }
  | Recover of { site : int }
  | Update_begin of { u : int; origin : int; n_ops : int }
  | Update_committed of { u : int; origin : int; latency : float }
  | Update_rejected of { u : int; origin : int; reason : string }
  | Query_begin of { q : int; site : int; n_keys : int; epsilon : int option }
  | Query_served of {
      q : int;
      site : int;
      charged : int;  (** inconsistency units accumulated *)
      forced : int;
          (** units charged unconditionally by backward compensations
              (§4.2) — only [charged - forced] is held to [epsilon] *)
      epsilon : int option;  (** the spec limit; [None] = unlimited *)
      consistent_path : bool;
      latency : float;
    }
  | Mset_enqueued of { et : int; origin : int; n_ops : int; keys : string list }
      (** [keys] are the distinct keys the MSet writes — the auditor
          reconstructs query/update overlap from them *)
  | Mset_applied of { et : int; site : int; n_ops : int; order : int option }
      (** [order] is the method's total-order position when one exists
          (ORDUP sequencer tickets); [None] for unordered methods *)
  | Compensation_fired of { et : int; site : int; kind : [ `Fast | `Full | `Revoke ] }
  | Squeue_send of { src : int; dst : int; seq : int }
      (** a payload entered the (src,dst) session channel under dense
          sequence number [seq] *)
  | Squeue_delivered of { src : int; dst : int; seq : int }
      (** the channel handed [seq] to the application exactly once *)
  | Squeue_dup of { src : int; dst : int; seq : int }
      (** a retransmitted/duplicated copy of [seq] was suppressed *)
  | Query_window of {
      w : int;  (** per-run window id, pairs with {!Query_window_closed} *)
      site : int;
      point : int;  (** the query's serialization point (ticket order) *)
      missing : int;  (** lump charge for not-yet-applied earlier MSets *)
      keys : string list;
    }
      (** an ORDUP optimistic query opened its inconsistency window *)
  | Query_window_closed of {
      w : int;
      site : int;
      charged : int;
      outcome : [ `Ok | `Fallback | `Killed ];
    }
      (** the window closed: served optimistically ([`Ok]), fell back to
          the consistent path on charge refusal ([`Fallback]), or died
          with its site ([`Killed]) *)
  | Volatile_dropped of {
      site : int;
      buffered : int;  (** order-buffer MSets lost with volatile memory *)
      queries_failed : int;  (** parked/active queries failed degraded *)
      updates_rejected : int;  (** un-notified origin outcomes rejected *)
      log : int;  (** durable-log length at the crash: the exact tail a
                      subsequent {!Recovery_replay} must replay *)
    }  (** a site crash wiped its volatile state *)
  | Recovery_replay of { site : int; n_actions : int }
      (** recovery rebuilt the site image by replaying its durable log
          (the tail behind the newest checkpoint, when one exists) *)
  | Checkpoint_cut of { site : int; folded : int; reclaimed : int }
      (** a consistent virtual-time cut snapshotted the site image:
          [folded] durable-log entries were absorbed into the snapshot
          and truncated, [reclaimed] journal records were garbage
          collected behind the watermark *)
  | Flush_round of { round : int }
  | Converged of { ok : bool }
  | Trace_meta of { dropped : int }
      (** exporter-synthesized header record: how many oldest events the
          ring buffer evicted before the first surviving record.  Never
          emitted by instrumentation; {!write_jsonl} leads with one when
          {!dropped} [> 0], and {!record_of_json} round-trips it. *)

type record = { time : float;  (** virtual ms *) ev : event }

type t

val make : ?capacity:int -> enabled:bool -> unit -> t
(** [capacity] (default [262144]) bounds the ring buffer.  A disabled sink
    never allocates its buffer. *)

val on : t -> bool
(** Fast-path guard: instrumentation sites wrap event construction in
    [if Trace.on sink then Trace.emit sink ...]. *)

val emit : t -> time:float -> event -> unit
(** No-op on a disabled sink. *)

val attach : t -> (record -> unit) -> unit
(** [attach t f] registers a streaming tap: [f] sees every subsequent
    record at emit time, before ring eviction — a tap observes the
    complete event stream even when the ring wraps.  Taps run in attach
    order.  Raises [Invalid_argument] on a disabled sink (the tap would
    silently see nothing). *)

val file_sink : t -> out_channel -> unit
(** [file_sink t oc] attaches a write-through JSONL tap: every record is
    appended to [oc] as it is emitted.  Unlike {!write_jsonl} on a
    wrapped ring, the resulting file is complete — suitable for
    day-horizon runs whose event count exceeds any ring capacity.  The
    caller flushes/closes [oc] after the run. *)

val length : t -> int
val dropped : t -> int
(** Records evicted because the ring wrapped. *)

val iter : t -> (record -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> record list

(** {2 JSONL} *)

val type_name : event -> string
(** The stable [type] tag used in the JSONL encoding, e.g.
    ["squeue_delivered"]. *)

val record_to_json : record -> string
(** One line, no trailing newline, valid JSON object. *)

val record_of_json : string -> (record, string) result

val write_jsonl : out_channel -> t -> unit
(** When the ring wrapped ({!dropped} [> 0]) the first line is a
    [Trace_meta] record
    ([{"ts":..,"type":"meta","meta":{...},"dropped":N}]) so consumers
    can tell a truncated dump from a complete one. *)

(** {2 Chrome trace_event} *)

val write_chrome : ?extra:string list -> out_channel -> sites:int -> t -> unit
(** Complete ("X") events for served queries and committed updates (their
    latency becomes the span), instants for everything else; [tid] is the
    site, [tid = sites] is the system track.  A wrapped ring additionally
    emits a ["trace_dropped"] metadata ("M") event on the system track.
    [extra] event objects (e.g. {!Spans.chrome_events} span-tree flows)
    are spliced into the event array after the trace's own events. *)
