(** Causal span reconstruction from a trace dump.

    Rebuilds per-ET span trees out of the flat event vocabulary: each
    update's root span ([Update_begin] to its commit/reject), the MSets
    it enqueued, and one propagation leg per destination site
    ([Mset_enqueued] to the site's applies, counting retransmit/replay
    duplicates).  Root spans are keyed on the harness's unique [u] ids
    and are exact; MSet attachment crosses into the methods' [et] id
    space via origin-and-order correlation (methods enqueue synchronously
    inside submit) and is best-effort — unattachable MSets land in
    [orphan_msets] instead of being guessed at. *)

type leg = {
  l_site : int;
  l_first_apply : float;
  l_last_apply : float;
  l_applies : int;  (** [> 1]: duplicate delivery, retransmit or replay *)
}

type mset = {
  m_et : int;
  m_origin : int;  (** [-1] when only applies were seen *)
  m_enqueued : float option;  (** [None]: applies without an enqueue record *)
  m_n_ops : int;
  m_legs : leg list;  (** sorted by site *)
}

type outcome = Committed of float | Rejected of float * string | Unresolved

type span = {
  s_u : int;
  s_origin : int;
  s_began : float;
  s_n_ops : int;
  s_outcome : outcome;
  s_msets : mset list;  (** enqueue order *)
}

type qspan = {
  qs_id : int;
  qs_site : int;
  qs_began : float;
  qs_served : float option;
  qs_charged : int;
  qs_consistent : bool;
}

type breakdown = {
  b_queued : float;  (** submit to first MSet enqueue *)
  b_in_flight : float;  (** fastest leg: pure transport time *)
  b_blocked : float;  (** order waits, decision collection, retransmits *)
}
(** Critical-path decomposition; the three parts sum to span latency. *)

type t = {
  spans : span list;  (** begin order *)
  queries : qspan list;
  orphan_msets : mset list;
  n_commit_events : int;
  unmatched_commits : int list;  (** committed [u]s with no begin in the dump *)
  duplicate_commits : int list;
}

val reconstruct : Trace.record list -> t
val of_trace : Trace.t -> t
val n_committed : t -> int

val complete : t -> bool
(** Every [Update_committed] in the dump maps to exactly one root span:
    no unmatched or duplicate commits, committed-span count equals commit
    events.  False implies the ring evicted lifecycle records. *)

val span_breakdown : span -> breakdown

val aggregate : t -> int * breakdown
(** Committed-span count and the mean breakdown over them. *)

val n_retransmit_legs : t -> int
(** Legs that applied more than once. *)

val chrome_events : sites:int -> t -> string list
(** Span-tree enrichment for a Chrome trace: one ["X"] slice per MSet leg
    on the destination track plus ["s"]/["f"] flow arrows from each
    enqueue to its applies.  JSON objects, no separators — spliced into
    {!Trace.write_chrome}'s event array by the exporter. *)
