(** Per-run observability bundle: trace sink + metrics registry + series.

    Every {!Esr_replica.Harness} owns exactly one [t]; the instrumented
    layers (engine counters, network, stable queues, replica methods)
    reach it through [Intf.env].  Metrics are always on — an increment
    costs what the ad-hoc mutable counters it replaced cost.  Tracing and
    the time series default to off and are zero-cost then (see {!Trace},
    {!Series}); the series samples the metrics registry plus whatever
    derived probes the layers above install.

    [set_default_tracing] flips the default for harnesses that do not get
    an explicit [t] — the timed bench sweep uses it to measure the
    tracing-on overhead of whole experiments without threading a sink
    through every call site.  It is an [Atomic] because the bench pool
    runs experiment jobs on worker domains. *)

type t = { trace : Trace.t; metrics : Metrics.t; series : Series.t }

let create ?(tracing = false) ?trace_capacity ?(series = false) ?series_interval
    ?series_capacity () =
  let metrics = Metrics.create () in
  let series =
    Series.make ?interval:series_interval ?capacity:series_capacity ~enabled:series ()
  in
  Series.bind_registry series metrics;
  { trace = Trace.make ?capacity:trace_capacity ~enabled:tracing (); metrics; series }

let default_tracing = Atomic.make false
let set_default_tracing b = Atomic.set default_tracing b

let default () = create ~tracing:(Atomic.get default_tracing) ()
