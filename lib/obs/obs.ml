(** Per-run observability bundle: trace sink + metrics registry + series
    + host-time profiler.

    Every {!Esr_replica.Harness} owns exactly one [t]; the instrumented
    layers (engine counters, network, stable queues, replica methods)
    reach it through [Intf.env].  Metrics are always on — an increment
    costs what the ad-hoc mutable counters it replaced cost.  Tracing,
    the time series and the profiler default to off and are zero-cost
    then (see {!Trace}, {!Series}, {!Prof}); the series samples the
    metrics registry plus whatever derived probes the layers above
    install.

    [set_default_tracing] / [set_default_profiling] flip the defaults for
    harnesses that do not get an explicit [t] — the timed bench sweep
    uses them to measure the tracing-on and profiling-on overhead of
    whole experiments without threading a sink through every call site.
    They are [Atomic]s because the bench pool runs experiment jobs on
    worker domains. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
  series : Series.t;
  prof : Prof.t;
}

let create ?(tracing = false) ?trace_capacity ?(series = false) ?series_interval
    ?series_capacity ?(profiling = false) ?prof_span_capacity () =
  let metrics = Metrics.create () in
  let series =
    Series.make ?interval:series_interval ?capacity:series_capacity ~enabled:series ()
  in
  Series.bind_registry series metrics;
  {
    trace = Trace.make ?capacity:trace_capacity ~enabled:tracing ();
    metrics;
    series;
    prof = Prof.make ?span_capacity:prof_span_capacity ~enabled:profiling ();
  }

let default_tracing = Atomic.make false
let set_default_tracing b = Atomic.set default_tracing b

let default_profiling = Atomic.make false
let set_default_profiling b = Atomic.set default_profiling b

let default () =
  create
    ~tracing:(Atomic.get default_tracing)
    ~profiling:(Atomic.get default_profiling)
    ()
