(** Per-run observability bundle: one trace sink + one metrics registry.

    Every {!Esr_replica.Harness} owns exactly one [t]; the instrumented
    layers (engine counters, network, stable queues, replica methods)
    reach it through [Intf.env].  Metrics are always on — an increment
    costs what the ad-hoc mutable counters it replaced cost.  Tracing
    defaults to off and is zero-cost then (see {!Trace}).

    [set_default_tracing] flips the default for harnesses that do not get
    an explicit [t] — the timed bench sweep uses it to measure the
    tracing-on overhead of whole experiments without threading a sink
    through every call site.  It is an [Atomic] because the bench pool
    runs experiment jobs on worker domains. *)

type t = { trace : Trace.t; metrics : Metrics.t }

let create ?(tracing = false) ?trace_capacity () =
  { trace = Trace.make ?capacity:trace_capacity ~enabled:tracing (); metrics = Metrics.create () }

let default_tracing = Atomic.make false
let set_default_tracing b = Atomic.set default_tracing b

let default () = create ~tracing:(Atomic.get default_tracing) ()
