(** Windowed time-series over the metrics registry, on virtual time.

    A {!t} is a per-run sampler: at every [sample] call it reads the
    registered derived probes (replica spread, oracle distance, backlog —
    whatever the layers above install) plus every instrument in the bound
    {!Metrics.t} registry, and appends one row to a fixed-capacity ring
    buffer (oldest rows dropped once full, counted in {!dropped}).
    Sampling cadence is driven from outside — the harness arms engine
    events on the virtual clock — so this module stays independent of the
    simulator and the output is deterministic: same run, same rows.

    Columns are frozen at the first sample (probe columns in registration
    order, then registry columns in registration order; histograms expand
    to running [.count]/[.p50]/[.p99]).  A disabled series allocates
    nothing and every operation is a no-op, mirroring {!Trace}. *)

type sample = { at : float;  (** virtual ms *) values : float array }
type annotation = { at : float; label : string }

type t

val make : ?interval:float -> ?capacity:int -> enabled:bool -> unit -> t
(** [interval] (default [50.0] virtual ms) is advisory — recorded in the
    dump and used by whoever arms the sampling events; [capacity]
    (default [4096]) bounds the ring. *)

val on : t -> bool
val interval : t -> float

val probe : t -> name:string -> (unit -> float) -> unit
(** Register a derived gauge column, read at each {!sample}.  Must happen
    before the first sample.  No-op when disabled. *)

val bind_registry : t -> Metrics.t -> unit
(** Sample every instrument of this registry alongside the probes. *)

val annotate : t -> time:float -> string -> unit
(** Mark a point on the timeline (fault injection/heal, quiescence).
    Annotations ride along in the dump and shade the report charts. *)

val sample : t -> time:float -> unit
(** Append one row.  Freezes the column set on first call.
    @raise Invalid_argument if instruments were registered after that. *)

val columns : t -> string list
val length : t -> int

val dropped : t -> int
(** Rows evicted because the ring wrapped. *)

val iter : t -> (sample -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> sample list
val annotations : t -> annotation list
val column_index : t -> string -> int option

(** {2 Dump} — the serialized form [esrsim report] consumes. *)

type dump = {
  d_interval : float;
  d_columns : string array;  (** without the leading [time] column *)
  d_samples : sample list;
  d_annotations : annotation list;
  d_dropped : int;
}

val dump : t -> dump

val schema : string
(** ["esr-series/1"]. *)

val write_json : out_channel -> t -> unit
(** One [esr-series/1] object: schema, interval, dropped, columns
    (leading ["time"]), row-major samples, annotations. *)

val write_csv : out_channel -> t -> unit
(** Plain CSV, header row first. *)

val dump_of_json : string -> (dump, string) result
(** Parse a {!write_json} document (whole file contents). *)

val dump_column : dump -> string -> int option
