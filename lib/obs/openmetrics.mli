(** OpenMetrics text exposition.

    Renders a {!Metrics} snapshot (and optionally a {!Series} dump) in
    the OpenMetrics text format so standard tooling — promtool,
    Prometheus scrape debugging, grep — can consume simulator output.
    Deterministic: families keep registry registration order. *)

val sanitize : string -> string
(** Restrict to [[a-zA-Z0-9_:]], everything else becomes ['_']. *)

val write_snapshot : out_channel -> ?prefix:string -> Metrics.entry list -> unit
(** One family per (group, name), per-site instruments folded in under a
    [site] label.  Counters carry [_total]; histograms render cumulative
    [_bucket{le=..}] series, [_sum], [_count] and derived [_p50]/[_p99]
    gauge families.  Ends with [# EOF].  [prefix] defaults to ["esr"]. *)

val write_series : out_channel -> ?prefix:string -> Series.dump -> unit
(** One gauge family per column; every sample becomes a MetricPoint with
    an explicit timestamp (virtual ms rendered as seconds).  Ends with
    [# EOF].  [prefix] defaults to ["esr_series"]. *)
