(** Streaming runtime-verification auditor: replays or taps the trace
    and certifies the paper's guarantees, producing typed violations
    that pin the first offending event, plus a per-query epsilon ledger
    (bound vs. charged vs. reconstructed overlap vs. oracle distance).

    Invariants checked online:

    - {b delivery} — every stable-queue channel journals a dense
      sequence from 0, hands each seq up exactly once, and (at a
      converged quiescent point) delivers everything journaled;
    - {b ordering} — virtual time never regresses, and each site
      executes its ORDUP ticket stream dense and in order (both the
      global sequencer and the per-site sharded streams);
    - {b epsilon} — [charged <= epsilon] for every bounded query, the
      lump charge at window-open equals the issued-but-unexecuted gap,
      and the final charge of every optimistically-served query equals
      the overlap with concurrent update ETs reconstructed from the
      apply stream (the paper's §2.1 inconsistency measure);
    - {b crash} — no effects from crashed sites (sends are silently
      dropped by the network, no applies, no window opens, no cuts),
      every down-window accounts for its volatile state, and every
      recovery replays exactly the logged prefix;
    - {b checkpoint} — cuts only at live sites;
    - {b convergence} — a quiescent run resolves every submitted ET,
      claims convergence with all sites up, and the divergence gauge
      agrees with the trace-level certificate.

    Traces whose prefix was evicted from the ring (leading
    [Trace_meta { dropped > 0 }]) are audited in {e relaxed} mode:
    history-dependent checks are suppressed instead of misfiring, and
    the resulting report is {!partial}. *)

type kind = Delivery | Ordering | Epsilon | Crash | Checkpoint | Convergence

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type violation = {
  v_kind : kind;
  v_invariant : string;  (** stable slug, e.g. ["squeue-double-delivery"] *)
  v_detail : string;
  v_time : float;  (** virtual time of the pinned event *)
  v_event : string;  (** {!Trace.type_name} of the pinned event *)
}

(** One served query in the epsilon ledger. *)
type entry = {
  l_q : int;
  l_site : int;
  l_keys : int;
  l_epsilon : int option;
  l_charged : int;
  l_forced : int;
      (** units charged unconditionally by backward compensations —
          only [l_charged - l_forced] is held to [l_epsilon] *)
  l_consistent : bool;
  l_latency : float;
  l_reconstructed : int option;
      (** independently reconstructed overlap, for optimistic serves *)
  l_oracle : float option;  (** workload-oracle distance, when noted *)
}

type summary = {
  s_events : int;
  s_dropped : int;
  s_queries : int;
  s_bounded : int;
  s_at_bound : int;
  s_charged_total : int;
  s_windows : int;
  s_windows_exact : int;
  s_max_replay : int;
  s_max_crash_log : int;
  s_crashes : int;
  s_cuts : int;
  s_converged : bool option;
}

type report = {
  label : string;
  violations : violation list;  (** chronological; head is the first *)
  ledger : entry list;
  summary : summary;
}

val ok : report -> bool
(** No violations: the run is certified. *)

val partial : report -> bool
(** The audited trace lost events to ring eviction. *)

type t

val create : ?label:string -> unit -> t

val bind_metrics : t -> Metrics.t -> unit
(** Register the [audit/] gauges and histograms against the run's
    registry.  Call before the first series sample so the columns
    freeze in; never called when auditing is off, keeping unaudited
    output byte-identical. *)

val feed : t -> Trace.record -> unit
(** Consume one record — suitable directly as a {!Trace.attach} tap. *)

val note_oracle : t -> q:int -> distance:float -> unit
(** Attach the workload oracle's observed distance for query [q]; it
    surfaces in that query's ledger entry. *)

val finish : t -> report
(** Run end-of-trace checks (delivery completeness, unresolved ETs,
    unclosed windows, unreplayed logs) and seal the certificate. *)

val audit_records : ?label:string -> Trace.record list -> report
(** [create] + [feed] each + [finish], for offline dumps. *)

val schema : string
(** Certificate schema tag, ["esr-audit/1"]. *)

val report_to_json : report -> string
val report_of_json : string -> (report, string) result
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

(** Deliberate trace corruptions for auditor self-tests: each breaks
    exactly one invariant so tests can assert the auditor reports
    exactly that violation. *)
module Mutate : sig
  val replay_delivery : Trace.record list -> Trace.record list
  (** Duplicate the first [Squeue_delivered]: breaks exactly-once. *)

  val reorder_stream : Trace.record list -> Trace.record list
  (** Swap two consecutive applies in one site's ticket stream. *)

  val overcharge : Trace.record list -> Trace.record list
  (** Bump the first bounded query's charge past its epsilon. *)
end
