(** Post-hoc run reports: terminal dashboard and self-contained HTML.

    Consumes dumps (trace records, an [esr-series/1] document) rather
    than live simulator state, so any earlier run or nemesis trace can be
    rendered.  The charts pick up the derived ESR probe columns (the
    ["esr/"] prefix: replica spread, oracle distance, epsilon budget,
    convergence lag, backlog) and shade fault windows reconstructed from
    the trace's crash/partition events. *)

type input = {
  label : string;
  records : Trace.record list;
  series : Series.dump option;
  profile : Prof.dump option;
  audit : Audit.report option;
}

val make :
  ?label:string ->
  ?series:Series.dump ->
  ?profile:Prof.dump ->
  ?audit:Audit.report ->
  Trace.record list ->
  input

val partial_banner : input -> string option
(** Loud warning when the trace ring dropped events: every derived view
    (spans, audit, counts) is an under-count.  Rendered at the top of
    both the terminal dashboard and the HTML report. *)

val sites_of : Trace.record list -> int
(** Largest site id referenced, plus one. *)

val fault_windows : Trace.record list -> (float * float) list
(** Intervals with any crashed site or an unhealed partition. *)

val dashboard : input -> string
(** Fixed-width tables: run summary with span accounting and critical-path
    means, fault timeline, downsampled divergence profile, resource growth
    (from [res/] series columns, with per-1k-ms rate annotations),
    host-time phase breakdown (when a profile dump is supplied), slowest
    spans. *)

val html : input -> string
(** One self-contained page (inline CSS + SVG, no external assets). *)
