(** Host-time and allocation phase profiler.

    Where {!Trace} records what the *simulation* did on virtual time, a
    {!t} records what the *host* spent executing it: wall-clock spans
    (via [Unix.gettimeofday] — the stdlib carries no monotonic clock, so
    a host clock step during a run can distort one span) and
    [Gc.allocated_bytes] deltas, bucketed into a fixed phase taxonomy:

    - [Engine_dispatch]: one simulator event body, inclusive of whatever
      nested phases it triggers;
    - [Apply]: a replica applying an MSet to its durable log + store;
    - [Propagate]: a method constructing and enqueueing outbound MSets;
    - [Net_delivery]: a delivered message's callback;
    - [Wal_append]: a durable receipt-journal append;
    - [Replay]: crash recovery replaying a durable log.

    The discipline mirrors {!Trace}: a disabled profiler allocates
    nothing, every accessor on it returns a zero, and instrumented sites
    guard with {!on} so simulation behaviour — and therefore every
    deterministic output — is byte-identical with profiling off.  Since
    the profiler only *reads* host clocks and GC counters, behaviour is
    identical with it on, too (the qcheck invisibility property in
    test_prof.ml checks exactly this).

    Per-phase aggregates are always kept; recent spans additionally land
    in a bounded ring for the Perfetto host-time track and the profile
    dump.  Enabled profilers also register themselves in a process-wide
    list so the timed bench sweep can total phases across every harness
    an experiment created, including ones built on pool worker domains
    ({!reset_totals} / {!totals}). *)

type phase =
  | Engine_dispatch
  | Apply
  | Propagate
  | Net_delivery
  | Wal_append
  | Replay

val all_phases : phase list
val phase_name : phase -> string
(** ["engine_dispatch"], ["apply"], ["propagate"], ["net_delivery"],
    ["wal_append"], ["replay"]. *)

val phase_of_name : string -> phase option

type agg = { count : int; seconds : float; alloc_bytes : float }

type span = {
  sp_phase : phase;
  sp_site : int;  (** -1 when the phase has no site *)
  sp_start : float;  (** host seconds since the profiler's epoch *)
  sp_dur : float;
  sp_bytes : float;
}

type t

val disabled : t
(** The shared always-off profiler; never registers globally. *)

val make : ?span_capacity:int -> enabled:bool -> unit -> t
(** [span_capacity] (default [16384]) bounds the span ring.
    [make ~enabled:false ()] returns {!disabled}. *)

val on : t -> bool
(** Fast-path guard, like {!Trace.on}: instrumentation sites do
    [if Prof.on p then begin let t0 = Prof.start p and a0 = Prof.alloc0 p in
    work (); Prof.record p phase ~t0 ~a0 end else work ()]. *)

val start : t -> float
(** Host seconds ([Unix.gettimeofday]); [0.] when disabled. *)

val alloc0 : t -> float
(** [Gc.allocated_bytes]; [0.] when disabled. *)

val record : t -> ?site:int -> phase -> t0:float -> a0:float -> unit
(** Close a span opened by {!start}/{!alloc0}: adds the wall-clock and
    allocation deltas to the phase aggregate and appends one ring span.
    No-op when disabled. *)

val agg : t -> phase -> agg
val aggs : t -> (phase * agg) list
(** Every phase, in {!all_phases} order (zero aggregates included). *)

val spans : t -> span list
val iter_spans : t -> (span -> unit) -> unit
(** Oldest to newest. *)

val span_count : t -> int
val spans_dropped : t -> int
(** Spans evicted because the ring wrapped. *)

(** {2 Sweep totals} *)

val reset_totals : unit -> unit
(** Forget every profiler registered so far.  The timed bench sweep calls
    this before each profiled experiment so {!totals} is per-experiment. *)

val totals : unit -> (phase * agg) list
(** Per-phase sums over every enabled profiler created since the last
    {!reset_totals}.  Only meaningful once the harnesses have finished
    running (worker domains joined): the underlying cells are plain
    mutable fields, not atomics. *)

(** {2 Exports} *)

val chrome_events : t -> string list
(** Chrome trace_event objects for the host-time track — pid 1 (the
    virtual-time trace is pid 0), one named thread per phase, "X" spans
    in host microseconds since the profiler epoch.  Splice into
    {!Trace.write_chrome} via [?extra]. *)

type dump = {
  d_phases : (phase * agg) list;
  d_spans : span list;
  d_spans_dropped : int;
}

val schema : string
(** ["esr-profile/1"]. *)

val dump : t -> dump

val write_json : out_channel -> t -> unit
(** One [esr-profile/1] object: per-phase aggregates plus the span ring
    ([[phase, site, start_s, dur_s, alloc_bytes]] rows). *)

val dump_of_json : string -> (dump, string) result
(** Parse a {!write_json} document (whole file contents). *)
