(** Seeded random fault-schedule generator (the nemesis).

    Produces {!Schedule.t} values that stress a run with crash/recover
    windows and partition/heal windows, deterministically from a seed.
    Generated schedules are always {e all-clear} ({!Schedule.all_clear}):
    every fault is undone before {!Schedule.clear_time}, so a system that
    is then driven to quiescence must converge — the property the fault
    tests and the CI fault matrix assert. *)

type profile = {
  max_faults : int;  (** fault windows to generate (at least 1) *)
  crash_bias : float;
      (** probability a window is a crash window rather than a partition
          window (partitions need at least 3 sites; with fewer, every
          window is a crash window) *)
  min_window : float;  (** shortest fault window, virtual ms *)
  max_window : float;  (** longest fault window, virtual ms *)
}

val default_profile : profile
(** 3 windows, 0.6 crash bias, windows of 100–600 virtual ms. *)

val generate :
  ?profile:profile -> seed:int -> sites:int -> duration:float -> unit -> Schedule.t
(** Deterministic in [(profile, seed, sites, duration)].  Fault windows
    are laid out sequentially (no overlap) inside [[0, duration]]; every
    crash has its recover and every partition its heal no later than
    [duration].  With [sites = 1] partitions are impossible and crashes
    target the only site. *)
