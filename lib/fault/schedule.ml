module Engine = Esr_sim.Engine
module Net = Esr_sim.Net

type action =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal

type step = { at : float; action : action }

type t = step list

let empty = []
let steps t = t
let is_empty t = t = []

let make steps = List.stable_sort (fun a b -> Float.compare a.at b.at) steps

let validate ?checkpoint ~sites t =
  let check_site s =
    if s < 0 || s >= sites then
      Error (Printf.sprintf "site %d out of range [0,%d)" s sites)
    else Ok ()
  in
  (* A crash at the exact virtual time of a checkpoint cut would leave
     the cut/crash interleaving to engine tie-breaking (scheduling
     order), which is deterministic but invisible in the schedule —
     reject it instead of leaving the semantics unspecified.  Cut times
     are the positive multiples of the interval; times are floats, so
     only an exact collision trips this. *)
  let check_crash_time at =
    match checkpoint with
    | Some interval
      when interval > 0.0 && at > 0.0 && Float.rem at interval = 0.0 ->
        Error
          (Printf.sprintf
             "crash at t=%g coincides with a checkpoint cut (interval %g): \
              move the crash off the cut time"
             at interval)
    | _ -> Ok ()
  in
  let rec check_steps = function
    | [] -> Ok ()
    | { at; action } :: rest -> (
        if not (Float.is_finite at) || at < 0.0 then
          Error (Printf.sprintf "step time %g is not a non-negative finite" at)
        else
          let step_ok =
            match action with
            | Crash s -> (
                match check_crash_time at with
                | Error _ as e -> e
                | Ok () -> check_site s)
            | Recover s -> check_site s
            | Heal -> Ok ()
            | Partition groups ->
                let seen = Hashtbl.create 8 in
                List.fold_left
                  (fun acc group ->
                    List.fold_left
                      (fun acc s ->
                        match acc with
                        | Error _ as e -> e
                        | Ok () ->
                            if Hashtbl.mem seen s then
                              Error
                                (Printf.sprintf
                                   "site %d listed twice in partition" s)
                            else begin
                              Hashtbl.replace seen s ();
                              check_site s
                            end)
                      acc group)
                  (Ok ()) groups
          in
          match step_ok with Error _ as e -> e | Ok () -> check_steps rest)
  in
  check_steps t

let all_clear t =
  (* Walk forward tracking which sites are down and whether a partition is
     in force; the schedule is all-clear iff the final state is whole. *)
  let down = Hashtbl.create 8 in
  let partitioned = ref false in
  List.iter
    (fun { action; _ } ->
      match action with
      | Crash s -> Hashtbl.replace down s ()
      | Recover s -> Hashtbl.remove down s
      | Partition _ -> partitioned := true
      | Heal -> partitioned := false)
    t;
  Hashtbl.length down = 0 && not !partitioned

let clear_time t = List.fold_left (fun acc { at; _ } -> Float.max acc at) 0.0 t

let time_repr v =
  (* Shortest representation that parses back to the same float. *)
  let s = Printf.sprintf "%.12g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

let action_to_string = function
  | Crash s -> Printf.sprintf "crash:%d" s
  | Recover s -> Printf.sprintf "recover:%d" s
  | Heal -> "heal"
  | Partition groups ->
      Printf.sprintf "partition:%s"
        (String.concat "|"
           (List.map
              (fun g -> String.concat " " (List.map string_of_int g))
              groups))

let step_to_spec { at; action } =
  match action with
  | Crash s -> Printf.sprintf "crash@%s:%d" (time_repr at) s
  | Recover s -> Printf.sprintf "recover@%s:%d" (time_repr at) s
  | Heal -> Printf.sprintf "heal@%s" (time_repr at)
  | Partition groups ->
      Printf.sprintf "partition@%s:%s" (time_repr at)
        (String.concat "|"
           (List.map
              (fun g -> String.concat " " (List.map string_of_int g))
              groups))

let to_spec t = String.concat ";" (List.map step_to_spec t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i { at; action } ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "t=%-8s %s" (time_repr at) (action_to_string action))
    t;
  Format.fprintf ppf "@]"

let parse_step s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "step %S: missing '@time'" s)
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let time_str, arg =
        match String.index_opt rest ':' with
        | None -> (rest, None)
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      match float_of_string_opt (String.trim time_str) with
      | None -> Error (Printf.sprintf "step %S: bad time %S" s time_str)
      | Some at -> (
          let site_arg name k =
            match arg with
            | None -> Error (Printf.sprintf "step %S: %s needs ':site'" s name)
            | Some a -> (
                match int_of_string_opt (String.trim a) with
                | Some site -> k site
                | None -> Error (Printf.sprintf "step %S: bad site %S" s a))
          in
          match String.lowercase_ascii (String.trim kind) with
          | "crash" -> site_arg "crash" (fun site -> Ok { at; action = Crash site })
          | "recover" ->
              site_arg "recover" (fun site -> Ok { at; action = Recover site })
          | "heal" -> Ok { at; action = Heal }
          | "partition" -> (
              match arg with
              | None -> Error (Printf.sprintf "step %S: partition needs groups" s)
              | Some a -> (
                  let groups = String.split_on_char '|' a in
                  let parse_group g =
                    String.split_on_char ' '
                      (String.map (fun c -> if c = ',' then ' ' else c) g)
                    |> List.filter (fun tok -> String.trim tok <> "")
                    |> List.map (fun tok -> int_of_string_opt (String.trim tok))
                  in
                  let parsed = List.map parse_group groups in
                  if
                    List.exists (fun g -> List.exists (fun x -> x = None) g) parsed
                  then Error (Printf.sprintf "step %S: bad partition groups" s)
                  else
                    let groups =
                      List.map (List.filter_map (fun x -> x)) parsed
                      |> List.filter (fun g -> g <> [])
                    in
                    if groups = [] then
                      Error (Printf.sprintf "step %S: empty partition" s)
                    else Ok { at; action = Partition groups }))
          | other -> Error (Printf.sprintf "step %S: unknown action %S" s other)))

let of_spec spec =
  let pieces =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if pieces = [] then Error "empty fault spec"
  else
    let rec parse acc = function
      | [] -> Ok (make (List.rev acc))
      | piece :: rest -> (
          match parse_step piece with
          | Ok step -> parse (step :: acc) rest
          | Error _ as e -> e)
    in
    parse [] pieces

let action_label = function
  | Crash site -> Printf.sprintf "crash:%d" site
  | Recover site -> Printf.sprintf "recover:%d" site
  | Partition groups ->
      Printf.sprintf "partition:%s"
        (String.concat "|"
           (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
  | Heal -> "heal"

let inject ?(on_crash = fun _ -> ()) ?(on_recover = fun _ -> ()) ?annotate engine
    net t =
  List.iter
    (fun { at; action } ->
      ignore
        (Engine.schedule_at engine ~time:at (fun () ->
             (match annotate with
             | Some f -> f ~time:at (action_label action)
             | None -> ());
             match action with
             | Crash site ->
                 if Net.site_up net site then begin
                   Net.crash net site;
                   on_crash site
                 end
             | Recover site ->
                 if not (Net.site_up net site) then begin
                   Net.recover net site;
                   on_recover site
                 end
             | Partition groups -> Net.partition net groups
             | Heal -> Net.heal net)))
    t
