(** Declarative, virtual-time fault schedules.

    A schedule is a time-ordered list of fault actions — site crashes and
    recoveries, network partitions and heals — that an injector arms onto
    the simulation {!Esr_sim.Engine} before a run starts.  Every action
    fires at its virtual time through {!Esr_sim.Net}'s fault primitives
    (which trace the injection through {!Esr_obs}), and crash/recover
    actions additionally invoke the caller's hooks so the replica-control
    method under test can drop its volatile state and run recovery.

    Schedules have a compact textual form (the [--faults] DSL):

    {v crash@400:2; recover@900:2; partition@1000:0 1|2 3; heal@1500 v}

    — steps separated by [';'], each [kind@time[:arg]].  [crash]/[recover]
    take a site id; [partition] takes groups of sites separated by ['|']
    (members separated by spaces or commas; sites left out of every group
    form one implicit leftover group, as in {!Esr_sim.Net.partition});
    [heal] takes no argument. *)

type action =
  | Crash of int
  | Recover of int
  | Partition of int list list
  | Heal

type step = { at : float;  (** virtual ms *) action : action }

type t
(** A validated schedule: steps in non-decreasing time order. *)

val empty : t
val steps : t -> step list
val is_empty : t -> bool

val make : step list -> t
(** Sort by time (stable, so equal-time steps keep list order). *)

val validate : ?checkpoint:float -> sites:int -> t -> (unit, string) result
(** Check every referenced site is in [[0, sites)], partition groups do
    not repeat a site, and times are non-negative and finite.  With
    [checkpoint] (a cut interval in virtual ms), additionally reject any
    crash scheduled at the {e exact} virtual time of a checkpoint cut (a
    positive multiple of the interval): the cut/crash interleaving at an
    identical timestamp would be decided by engine scheduling order, so
    the schedule must move the crash off the cut time instead.  Nemesis
    schedules draw crash times from a continuous PRNG, so they only
    collide if the caller picks a commensurate interval on purpose. *)

val all_clear : t -> bool
(** Whether the schedule leaves the system whole at the end: every crashed
    site has a later recover, and any partition is followed by a heal.
    The convergence property is only guaranteed for all-clear schedules. *)

val clear_time : t -> float
(** Virtual time of the last step (0 for an empty schedule). *)

val pp : Format.formatter -> t -> unit

val to_spec : t -> string
(** Render in the [--faults] DSL; [of_spec] parses it back exactly. *)

val of_spec : string -> (t, string) result

val action_label : action -> string
(** Compact one-step label in the [--faults] DSL vocabulary
    (["crash:2"], ["partition:0,1|2,3"], ...). *)

val inject :
  ?on_crash:(int -> unit) ->
  ?on_recover:(int -> unit) ->
  ?annotate:(time:float -> string -> unit) ->
  Esr_sim.Engine.t ->
  Esr_sim.Net.t ->
  t ->
  unit
(** Arm every step on the engine.  At fire time a [Crash site] calls
    {!Esr_sim.Net.crash} and then [on_crash site] (volatile-state wipe);
    a [Recover site] calls {!Esr_sim.Net.recover} — which kicks the
    stable-queue retransmission hooks — and then [on_recover site]
    (durable-log replay and catch-up).  [Partition]/[Heal] map onto the
    corresponding {!Esr_sim.Net} calls.  All actions are traced by the
    network layer; [annotate], when given, is additionally called at each
    step's fire time with its {!action_label} (the harness points it at
    {!Esr_obs.Series.annotate} so fault windows land in the series
    dump). *)
