module Prng = Esr_util.Prng

type profile = {
  max_faults : int;
  crash_bias : float;
  min_window : float;
  max_window : float;
}

let default_profile =
  { max_faults = 3; crash_bias = 0.6; min_window = 100.0; max_window = 600.0 }

let generate ?(profile = default_profile) ~seed ~sites ~duration () =
  if sites <= 0 then invalid_arg "Nemesis.generate: sites must be positive";
  if duration <= 0.0 then
    invalid_arg "Nemesis.generate: duration must be positive";
  let prng = Prng.create seed in
  let n_faults = Stdlib.max 1 profile.max_faults in
  let min_w = Float.max 1.0 profile.min_window in
  let max_w = Float.max min_w profile.max_window in
  (* Lay the windows out sequentially: cut [0, duration] into n slots and
     open one bounded fault window inside each, so recover/heal always
     lands before [duration] and windows never overlap. *)
  let slot = duration /. float_of_int n_faults in
  let steps = ref [] in
  for i = 0 to n_faults - 1 do
    let slot_start = float_of_int i *. slot in
    let width = Float.min max_w (Float.max min_w (slot *. 0.5)) in
    let width = Float.min width (slot *. 0.9) in
    let lead = Prng.float prng (Float.max 1.0 (slot -. width)) in
    let t0 = slot_start +. lead in
    let t1 = Float.min duration (t0 +. width) in
    let crash_window = sites < 3 || Prng.bernoulli prng profile.crash_bias in
    if crash_window then begin
      let site = Prng.int prng sites in
      steps := { Schedule.at = t1; action = Schedule.Recover site } :: !steps;
      steps := { Schedule.at = t0; action = Schedule.Crash site } :: !steps
    end
    else begin
      (* Split the sites in two around a random pivot: [0..pivot] vs the
         rest (both groups non-empty since 1 <= pivot+1 <= sites-1). *)
      let pivot = Prng.int prng (sites - 1) in
      let rec range a b = if a > b then [] else a :: range (a + 1) b in
      let groups = [ range 0 pivot; range (pivot + 1) (sites - 1) ] in
      steps := { Schedule.at = t1; action = Schedule.Heal } :: !steps;
      steps := { Schedule.at = t0; action = Schedule.Partition groups } :: !steps
    end
  done;
  Schedule.make !steps
