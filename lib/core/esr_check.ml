module Op = Esr_store.Op

let is_sr ?(mode = Conflict.Classic) hist =
  Sergraph.is_acyclic (Sergraph.of_history ~mode hist)

let serial_witness ?(mode = Conflict.Classic) hist =
  Sergraph.topological_order (Sergraph.of_history ~mode hist)

let update_subhistory hist =
  let kinds = Hist.ets hist in
  Hist.filter_ets hist ~keep:(fun id ->
      match List.assoc_opt id kinds with
      | Some Et.Update -> true
      | Some Et.Query | None -> false)

let is_epsilon_serial ?(mode = Conflict.Classic) hist =
  is_sr ~mode (update_subhistory hist)

let overlap hist ~query =
  (match Hist.kind_of hist query with
  | Et.Query -> ()
  | Et.Update -> invalid_arg (Printf.sprintf "Esr_check.overlap: ET%d is an update ET" query)
  | exception Not_found ->
      invalid_arg (Printf.sprintf "Esr_check.overlap: ET%d not in history" query));
  let q_first = Hist.first_pos hist query in
  let q_last = Hist.last_pos hist query in
  let q_keys = Hist.keys_of hist query in
  let overlaps_in_time id =
    let u_first = Hist.first_pos hist id and u_last = Hist.last_pos hist id in
    (* Unfinished at the query's first operation, or started during it. *)
    (u_first <= q_first && u_last >= q_first)
    || (u_first >= q_first && u_first <= q_last)
  in
  let touches_query_keys id =
    List.exists (fun k -> List.mem k q_keys) (Hist.keys_of hist id)
  in
  Hist.ets hist
  |> List.filter_map (fun (id, kind) ->
         match kind with
         | Et.Update when overlaps_in_time id && touches_query_keys id -> Some id
         | Et.Update | Et.Query -> None)

let overlap_bound hist ~query = List.length (overlap hist ~query)

let max_overlap hist =
  Hist.ets hist
  |> List.fold_left
       (fun acc (id, kind) ->
         match kind with
         | Et.Query -> Stdlib.max acc (overlap_bound hist ~query:id)
         | Et.Update -> acc)
       0
