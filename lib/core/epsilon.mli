(** Epsilon specifications and inconsistency counters.

    Every query ET carries an inconsistency counter; each time divergence
    control lets it observe the effect of an uncommitted/overlapping
    update, the counter is charged one unit.  The epsilon specification is
    the limit: once reached, further inconsistent observations are denied
    and the query must fall back to the consistent path (wait for global
    order, read at the VTNC, …).  [epsilon = 0] yields strictly SR
    queries; [unlimited] lets the error grow with the overlap (which
    still bounds it). *)

type spec = Unlimited | Limit of int

val spec_of_int : int -> spec
(** Negative means [Unlimited]. *)

val spec_to_string : spec -> string
val pp_spec : Format.formatter -> spec -> unit

type counter

val create : spec -> counter
val spec : counter -> spec
val value : counter -> int
(** Inconsistency accumulated so far. *)

val try_charge : counter -> int -> bool
(** [try_charge c n] adds [n] units if the limit allows and returns
    [true]; otherwise leaves the counter unchanged and returns [false].
    [n <= 0] raises [Invalid_argument]. *)

val charge_forced : counter -> int -> unit
(** Unconditional charge — used by backward methods (§4.2): compensations
    add inconsistency to conflicting queries whether or not they asked. *)

val exhausted : counter -> bool
(** No further unit can be charged. *)

val remaining : counter -> int option
(** [None] for [Unlimited]. *)
