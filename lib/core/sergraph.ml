module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

type t = { nodes : IntSet.t; succ : IntSet.t IntMap.t }

let of_history ?(mode = Conflict.Classic) hist =
  let nodes =
    List.fold_left (fun s (id, _) -> IntSet.add id s) IntSet.empty (Hist.ets hist)
  in
  let succ =
    List.fold_left
      (fun m (e : Conflict.edge) ->
        let existing = Option.value (IntMap.find_opt e.from_et m) ~default:IntSet.empty in
        IntMap.add e.from_et (IntSet.add e.to_et existing) m)
      IntMap.empty
      (Conflict.edges ~mode hist)
  in
  { nodes; succ }

let nodes t = IntSet.elements t.nodes

let succ t id =
  match IntMap.find_opt id t.succ with
  | Some s -> IntSet.elements s
  | None -> []

let has_edge t a b =
  match IntMap.find_opt a t.succ with
  | Some s -> IntSet.mem b s
  | None -> false

(* Iterative-enough DFS with colouring; histories have few ETs compared to
   operations so recursion depth is safe. *)
let find_cycle t =
  let color = Hashtbl.create 16 in
  (* 0 = white (absent), 1 = grey, 2 = black *)
  let rec visit path node =
    match Hashtbl.find_opt color node with
    | Some 2 -> None
    | Some 1 ->
        (* Found a back edge.  [path] is newest-first and starts with the
           re-visited node itself; the cycle is the segment from just
           below the head down to the first earlier occurrence. *)
        let rec cut = function
          | [] -> []
          | x :: rest -> if x = node then [ x ] else x :: cut rest
        in
        let tail = match path with [] -> [] | _ :: rest -> rest in
        Some (List.rev (cut tail))
    | Some _ | None ->
        Hashtbl.replace color node 1;
        let result =
          List.fold_left
            (fun found next ->
              match found with
              | Some _ -> found
              | None -> visit (next :: path) next)
            None (succ t node)
        in
        (match result with None -> Hashtbl.replace color node 2 | Some _ -> ());
        result
  in
  IntSet.fold
    (fun node found ->
      match found with Some _ -> found | None -> visit [ node ] node)
    t.nodes None

let is_acyclic t = Option.is_none (find_cycle t)

let topological_order t =
  if not (is_acyclic t) then None
  else begin
    let indegree = Hashtbl.create (Stdlib.max 16 (IntSet.cardinal t.nodes)) in
    IntSet.iter (fun n -> Hashtbl.replace indegree n 0) t.nodes;
    IntMap.iter
      (fun _ targets ->
        IntSet.iter
          (fun b ->
            Hashtbl.replace indegree b
              (Option.value (Hashtbl.find_opt indegree b) ~default:0 + 1))
          targets)
      t.succ;
    (* Kahn's algorithm.  The frontier of indegree-0 nodes is a min-ordered
       set maintained incrementally as indegrees drop, so each step costs
       O(log V) instead of re-scanning the whole indegree table; always
       popping the minimum id keeps the witness deterministic (same order
       the old sorted-rescan produced). *)
    let frontier =
      ref
        (IntSet.filter
           (fun n -> Hashtbl.find_opt indegree n = Some 0)
           t.nodes)
    in
    let rec loop acc =
      match IntSet.min_elt_opt !frontier with
      | None -> List.rev acc
      | Some node ->
          frontier := IntSet.remove node !frontier;
          List.iter
            (fun b ->
              match Hashtbl.find_opt indegree b with
              | Some d ->
                  let d = d - 1 in
                  Hashtbl.replace indegree b d;
                  if d = 0 then frontier := IntSet.add b !frontier
              | None -> ())
            (succ t node);
          loop (node :: acc)
    in
    Some (loop [])
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "ET%d -> {%s}@," n
        (String.concat "," (List.map string_of_int (succ t n))))
    (nodes t);
  Format.fprintf ppf "@]"
