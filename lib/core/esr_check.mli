(** The ESR correctness checker (§2.1–2.2).

    These are the executable definitions the integration tests use to
    validate the replica-control methods: methods emit the histories they
    actually scheduled, and the checker decides SR / ε-serial membership
    and computes overlaps. *)

val is_sr : ?mode:Conflict.mode -> Hist.t -> bool
(** Conflict-serializability of the whole history. *)

val serial_witness : ?mode:Conflict.mode -> Hist.t -> Et.id list option
(** An equivalent serial order, when one exists. *)

val is_epsilon_serial : ?mode:Conflict.mode -> Hist.t -> bool
(** "A log … is an ε-serial log if, after deleting query ETs from the
    log, the remaining update ETs form an SR log."  Vacuously true for a
    query-only history. *)

val update_subhistory : Hist.t -> Hist.t
(** The history with all query-ET operations deleted. *)

val overlap : Hist.t -> query:Et.id -> Et.id list
(** The overlap of a query ET (§2.1): update ETs that had not finished at
    the query's first operation or started during the query, restricted
    to updates with an R/W dependency on objects the query accesses.
    Raises [Invalid_argument] if [query] is not a query ET of the
    history. *)

val overlap_bound : Hist.t -> query:Et.id -> int
(** [List.length (overlap ...)] — the paper's upper bound on the query's
    accumulated inconsistency. *)

val max_overlap : Hist.t -> int
(** Maximum overlap bound across all query ETs; 0 for an update-only
    history.  A history with [max_overlap = 0] whose update subhistory is
    SR is fully SR. *)
