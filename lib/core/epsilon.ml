type spec = Unlimited | Limit of int

let spec_of_int n = if n < 0 then Unlimited else Limit n

let spec_to_string = function
  | Unlimited -> "inf"
  | Limit n -> string_of_int n

let pp_spec ppf s = Format.pp_print_string ppf (spec_to_string s)

type counter = { spec : spec; mutable value : int }

let create spec = { spec; value = 0 }
let spec c = c.spec
let value c = c.value

let try_charge c n =
  if n <= 0 then invalid_arg "Epsilon.try_charge: non-positive charge";
  match c.spec with
  | Unlimited ->
      c.value <- c.value + n;
      true
  | Limit limit ->
      if c.value + n <= limit then begin
        c.value <- c.value + n;
        true
      end
      else false

let charge_forced c n = c.value <- c.value + n

let exhausted c =
  match c.spec with Unlimited -> false | Limit limit -> c.value >= limit

let remaining c =
  match c.spec with
  | Unlimited -> None
  | Limit limit -> Some (Stdlib.max 0 (limit - c.value))
