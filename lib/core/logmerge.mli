(** Off-line merging of partition logs (the paper's §5.3 contrast).

    When a network partitions, optimistic 1SR schemes let both sides run
    and reconcile at reconnection time by merging their logs (Davidson's
    survey; Faissol's classes; Blaustein's log transformation; OSCAR's
    weak-consistency updates).  The paper's methods make this machinery
    unnecessary — they control divergence {e while} the partition is in
    force — but the comparison is instructive, so this module implements
    the merge rules the related work describes:

    - operations that commute with every operation on the same object in
      the other log merge cleanly (Faissol classes B/C; OSCAR
      "commutative and associative");
    - timestamped blind writes merge by latest-timestamp-wins (class A;
      OSCAR "overwrite");
    - anything else is a {e conflict}: following the log-transformation
      strategy, the conflicting update ETs of the {e minority} log are
      rolled back entirely (an ET is all-or-nothing) and reported for
      backward recovery / resubmission.

    Only update ETs participate; query actions in the inputs are
    ignored. *)

type outcome = {
  merged : Hist.t;
      (** equivalent serial history: the majority log followed by the
          surviving minority operations *)
  rolled_back : Et.id list;
      (** minority update ETs sacrificed to conflicts, ascending *)
  clean_keys : string list;
      (** keys whose operations merged without conflict *)
  conflict_keys : string list;
      (** keys that forced a rollback *)
}

val merge : majority:Hist.t -> minority:Hist.t -> outcome
(** Merge two partition logs taken from the same initial state.  The
    majority side's operations are all preserved; minority ETs survive
    iff none of their operations conflicts (same key, non-commuting,
    not timestamp-resolvable) with the majority log or with a rolled-back
    sibling operation. *)

val apply :
  ?base:Esr_store.Store.t ->
  ?keyspace:Esr_store.Keyspace.t ->
  ?size:int ->
  Hist.t ->
  Esr_store.Store.t
(** Execute a history's update operations against a fresh store (queries
    skipped) — used to validate merge results and by the tests.  With
    [base] the operations fold onto that store in place (and [base] is
    returned) instead of starting from scratch: checkpoint + tail-replay
    recovery hands in a copy of the newest snapshot, so the caller owns
    [base] and must not share it.  [keyspace]/[size] are ignored when
    [base] is given.  Raises [Invalid_argument] if an operation fails to
    apply. *)

val equivalent_states : Hist.t -> Hist.t -> bool
(** Whether two histories produce identical stores from scratch. *)
