type kind = Query | Update

let kind_to_string = function Query -> "query" | Update -> "update"
let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

type id = int

type action = { et : id; key : string; op : Esr_store.Op.t }

let action ~et ~key op = { et; key; op }

let pp_action ppf a =
  (* Compact class codes so histories render in the paper's notation
     (R1(a) W2(b) ...); operation arguments are irrelevant to dependency
     analysis and omitted. *)
  let code =
    match a.op with
    | Esr_store.Op.Read -> "R"
    | Esr_store.Op.Write _ -> "W"
    | Esr_store.Op.Incr _ -> "I"
    | Esr_store.Op.Mult _ -> "M"
    | Esr_store.Op.Div _ -> "D"
    | Esr_store.Op.Timed_write _ -> "T"
    | Esr_store.Op.Append _ -> "A"
  in
  Format.fprintf ppf "%s%d(%s)" code a.et a.key

let kind_of_actions actions =
  if List.exists (fun a -> Esr_store.Op.is_update a.op) actions then Update
  else Query
