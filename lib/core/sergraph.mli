(** Serialization graphs and the conflict-serializability test.

    Nodes are ETs; an edge [a -> b] means some operation of [a] precedes
    and conflicts with an operation of [b].  A history is (conflict-)
    serializable iff its graph is acyclic; a topological order of the
    acyclic graph is an equivalent serial order witness. *)

type t

val of_history : ?mode:Conflict.mode -> Hist.t -> t
val nodes : t -> Et.id list
val succ : t -> Et.id -> Et.id list
val has_edge : t -> Et.id -> Et.id -> bool

val find_cycle : t -> Et.id list option
(** A witness cycle (first node not repeated), or [None] if acyclic. *)

val is_acyclic : t -> bool

val topological_order : t -> Et.id list option
(** Some equivalent serial order, or [None] when cyclic.  Ties broken by
    ascending ET id, so the witness is deterministic. *)

val pp : Format.formatter -> t -> unit
