(** Operation conflicts (R/W and W/W dependencies, §2.1).

    Two operations conflict when they touch the same object, belong to
    different ETs, and cannot be swapped without changing the database.
    In the classic model that means "at least one is a write"; divergence
    control refines it with operation semantics: commuting updates do not
    conflict (this is what lets COMMU reorder MSets freely). *)

type mode =
  | Classic  (** reads vs writes only: any update conflicts with anything *)
  | Semantic  (** commuting update pairs do not conflict *)

val ops_conflict : mode -> Esr_store.Op.t -> Esr_store.Op.t -> bool

val actions_conflict : mode -> Et.action -> Et.action -> bool
(** Adds the same-key and different-ET requirements. *)

type edge = { from_et : Et.id; to_et : Et.id; pos_from : int; pos_to : int }
(** [from_et]'s operation at [pos_from] precedes and conflicts with
    [to_et]'s at [pos_to]. *)

val edges : ?mode:mode -> Hist.t -> edge list
(** All conflict dependencies of a history, in position order.
    [mode] defaults to [Classic]. *)

val pp_edge : Format.formatter -> edge -> unit
