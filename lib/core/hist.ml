module Op = Esr_store.Op

type t = Et.action list
(* Stored reversed (newest first) so [append] is O(1); all accessors
   normalise.  Histories in tests are small; experiment histories are
   consumed once by the checker. *)

let of_actions actions = List.rev actions
let empty = []
let append t action = action :: t
let length = List.length

(* Per-action retained-byte model: one list cons (3 words) + the action
   record (4 words) + a boxed operation payload (~3 words); key names are
   interned run-wide and not charged here. *)
let bytes_per_action = 10 * (Sys.word_size / 8)
let approx_bytes t = List.length t * bytes_per_action
let actions t = List.rev t
let nth t i = List.nth (actions t) i

let of_string s =
  let tokens =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  let parse tok =
    let fail () = invalid_arg (Printf.sprintf "Hist.of_string: bad token %S" tok) in
    let n = String.length tok in
    if n < 4 then fail ();
    let op_char = tok.[0] in
    (* find '(' *)
    let lparen = try String.index tok '(' with Not_found -> fail () in
    if tok.[n - 1] <> ')' || lparen < 2 then fail ();
    let et =
      match int_of_string_opt (String.sub tok 1 (lparen - 1)) with
      | Some i -> i
      | None -> fail ()
    in
    let key = String.sub tok (lparen + 1) (n - lparen - 2) in
    if key = "" then fail ();
    let op =
      match op_char with
      | 'R' -> Op.Read
      | 'W' -> Op.Write (Esr_store.Value.Int 0)
      | _ -> fail ()
    in
    Et.action ~et ~key op
  in
  of_actions (List.map parse tokens)

let ets t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (a : Et.action) ->
      let kind =
        match Hashtbl.find_opt table a.Et.et with
        | Some Et.Update -> Et.Update
        | Some Et.Query | None ->
            if Op.is_update a.Et.op then Et.Update else Et.Query
      in
      Hashtbl.replace table a.Et.et kind)
    (actions t);
  Hashtbl.fold (fun id kind acc -> (id, kind) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let kind_of t id =
  match List.assoc_opt id (ets t) with
  | Some k -> k
  | None -> raise Not_found

let keys_of t id =
  actions t
  |> List.filter_map (fun (a : Et.action) ->
         if a.Et.et = id then Some a.Et.key else None)
  |> List.sort_uniq String.compare

let positions_of t id =
  let hits =
    List.mapi (fun i (a : Et.action) -> (i, a)) (actions t)
    |> List.filter (fun (_, (a : Et.action)) -> a.Et.et = id)
    |> List.map fst
  in
  match hits with [] -> raise Not_found | _ -> hits

let first_pos t id = List.hd (positions_of t id)
let last_pos t id = List.hd (List.rev (positions_of t id))

let filter_ets t ~keep =
  of_actions (List.filter (fun (a : Et.action) -> keep a.Et.et) (actions t))

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
    Et.pp_action ppf (actions t)

let to_string t = Format.asprintf "%a" pp t
