module Op = Esr_store.Op

type mode = Classic | Semantic

let ops_conflict mode a b =
  match mode with
  | Classic -> Op.is_update a || Op.is_update b
  | Semantic -> (Op.is_update a || Op.is_update b) && not (Op.commutes a b)

let actions_conflict mode (a : Et.action) (b : Et.action) =
  a.Et.et <> b.Et.et && String.equal a.Et.key b.Et.key
  && ops_conflict mode a.Et.op b.Et.op

type edge = { from_et : Et.id; to_et : Et.id; pos_from : int; pos_to : int }

let edges ?(mode = Classic) hist =
  let ops = Array.of_list (Hist.actions hist) in
  let n = Array.length ops in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if actions_conflict mode ops.(i) ops.(j) then
        acc :=
          {
            from_et = ops.(i).Et.et;
            to_et = ops.(j).Et.et;
            pos_from = i;
            pos_to = j;
          }
          :: !acc
    done
  done;
  List.rev !acc

let pp_edge ppf e =
  Format.fprintf ppf "ET%d@%d -> ET%d@%d" e.from_et e.pos_from e.to_et e.pos_to
