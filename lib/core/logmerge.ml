module Op = Esr_store.Op
module Store = Esr_store.Store

type outcome = {
  merged : Hist.t;
  rolled_back : Et.id list;
  clean_keys : string list;
  conflict_keys : string list;
}

let update_actions hist =
  List.filter (fun (a : Et.action) -> Op.is_update a.Et.op) (Hist.actions hist)

(* Two operations on the same object merge cleanly iff they commute —
   which in our operation algebra already subsumes the related work's
   "overwrite" class: timestamped blind writes commute with each other
   because latest-timestamp-wins makes their order irrelevant. *)
let mergeable a b = Op.commutes a b

let merge ~majority ~minority =
  let maj = update_actions majority in
  let mins = update_actions minority in
  (* Index majority operations by key. *)
  let maj_by_key = Hashtbl.create 32 in
  List.iter
    (fun (a : Et.action) ->
      let existing = Option.value (Hashtbl.find_opt maj_by_key a.Et.key) ~default:[] in
      Hashtbl.replace maj_by_key a.Et.key (a.Et.op :: existing))
    maj;
  (* A minority ET survives iff every one of its operations merges with
     every majority operation on the same key. *)
  let doomed = Hashtbl.create 16 in
  let clean = Hashtbl.create 16 and dirty = Hashtbl.create 16 in
  List.iter
    (fun (a : Et.action) ->
      let against =
        Option.value (Hashtbl.find_opt maj_by_key a.Et.key) ~default:[]
      in
      if List.for_all (mergeable a.Et.op) against then
        Hashtbl.replace clean a.Et.key ()
      else begin
        Hashtbl.replace dirty a.Et.key ();
        Hashtbl.replace doomed a.Et.et ()
      end)
    mins;
  let survivors =
    List.filter (fun (a : Et.action) -> not (Hashtbl.mem doomed a.Et.et)) mins
  in
  let merged = Hist.of_actions (maj @ survivors) in
  let keys table =
    Hashtbl.fold (fun k () acc -> k :: acc) table [] |> List.sort String.compare
  in
  {
    merged;
    rolled_back =
      Hashtbl.fold (fun et () acc -> et :: acc) doomed [] |> List.sort Int.compare;
    clean_keys = List.filter (fun k -> not (Hashtbl.mem dirty k)) (keys clean);
    conflict_keys = keys dirty;
  }

let apply ?base ?keyspace ?size hist =
  let store =
    match base with
    | Some store -> store
    | None -> Store.create ?keyspace ?size ()
  in
  List.iter
    (fun (a : Et.action) ->
      if Op.is_update a.Et.op then
        match Store.apply_unit store a.Et.key a.Et.op with
        | Ok () -> ()
        | Error _ ->
            invalid_arg
              (Printf.sprintf "Logmerge.apply: %s failed on %s"
                 (Op.to_string a.Et.op) a.Et.key))
    (Hist.actions hist);
  store

let equivalent_states a b = Store.equal (apply a) (apply b)
