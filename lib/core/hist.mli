(** Histories (the paper's "logs"): sequences of ET operations.

    A history records the order in which a scheduler executed operations;
    the ESR checker analyses it after the fact.  ET kinds are derived:
    an ET is a query iff all of its operations in the history are reads.

    [of_string] accepts the paper's compact notation, e.g. the ε-serial
    example log (1) of §2.1:
    ["R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)"]. *)

type t

val of_actions : Et.action list -> t
val empty : t
val append : t -> Et.action -> t
(** O(1) amortised; histories are append-mostly. *)

val of_string : string -> t
(** Parse [R<et>(<key>)] / [W<et>(<key>)] tokens separated by spaces.
    [W] parses as [Op.Write (Int 0)] — the checker only looks at
    read/write classes and keys.  Raises [Invalid_argument] on a
    malformed token. *)

val length : t -> int

val approx_bytes : t -> int
(** Modelled retained bytes of the log: [length] times a fixed per-action
    cost (list cons + action record + boxed operation payload, ~10 words),
    excluding the interned key names shared with the run-wide keyspace.
    Resource probes chart its growth; it is an estimate, not a census. *)

val actions : t -> Et.action list
(** In execution order. *)

val nth : t -> int -> Et.action

val ets : t -> (Et.id * Et.kind) list
(** Every ET appearing in the history, ascending id, with derived kind. *)

val kind_of : t -> Et.id -> Et.kind
(** Raises [Not_found] for an id absent from the history. *)

val keys_of : t -> Et.id -> string list
(** Distinct keys the ET touches, sorted. *)

val first_pos : t -> Et.id -> int
val last_pos : t -> Et.id -> int
(** Positions of an ET's first/last operation.  Raise [Not_found]. *)

val filter_ets : t -> keep:(Et.id -> bool) -> t
(** Subhistory retaining only operations of chosen ETs, order preserved.
    This is the "deleting query ETs from the log" operation of §2.1. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
