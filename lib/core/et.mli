(** Epsilon-transactions (ETs), the paper's high-level interface to ESR.

    "An ET containing only reads is a query ET (Q-ET) and an ET containing
    at least one write is an update ET (U-ET)" (§2.1).  In histories the
    kind is derivable from the operations; this module fixes the
    vocabulary shared by the checker and the replica-control methods. *)

type kind = Query | Update

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type id = int
(** ETs are numbered; ids are unique within one history / one system run. *)

(** One operation issued by an ET against a logical object. *)
type action = { et : id; key : string; op : Esr_store.Op.t }

val action : et:id -> key:string -> Esr_store.Op.t -> action
val pp_action : Format.formatter -> action -> unit

val kind_of_actions : action list -> kind
(** [Update] iff at least one operation is an update. *)
