type t = { counter : int; site : int }

let make ~counter ~site = { counter; site }

let compare a b =
  match Int.compare a.counter b.counter with
  | 0 -> Int.compare a.site b.site
  | c -> c

let equal a b = compare a b = 0
let zero = { counter = 0; site = -1 }
let next clock ~site = { counter = Lamport.tick clock; site }
let witness clock t = ignore (Lamport.witness clock t.counter)
let pp ppf t = Format.fprintf ppf "%d.%d" t.counter t.site
let to_string t = Printf.sprintf "%d.%d" t.counter t.site
