type t = { mutable last : int }

let create () = { last = 0 }

let next t =
  t.last <- t.last + 1;
  t.last

let issued t = t.last
