type t = { mutable value : int }

let create () = { value = 0 }

let tick t =
  t.value <- t.value + 1;
  t.value

let witness t remote =
  t.value <- Stdlib.max t.value remote + 1;
  t.value

let peek t = t.value
