type t = int array

let create ~sites =
  if sites <= 0 then invalid_arg "Vclock.create: sites must be positive";
  Array.make sites 0

let check_compatible a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vclock: vectors of different size"

let tick t ~site =
  let t' = Array.copy t in
  t'.(site) <- t'.(site) + 1;
  t'

let merge a b =
  check_compatible a b;
  Array.init (Array.length a) (fun i -> Stdlib.max a.(i) b.(i))

let get t ~site = t.(site)

type relation = Before | After | Equal | Concurrent

let leq a b =
  check_compatible a b;
  let ok = ref true in
  Array.iteri (fun i ai -> if ai > b.(i) then ok := false) a;
  !ok

let equal a b =
  check_compatible a b;
  a = b

let relate a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let size t = Array.length t

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t)))
