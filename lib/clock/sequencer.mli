(** Centralized order server (§3.1: "such ordering can be generated easily
    by a centralized order server").  Hands out a dense sequence 1, 2, 3, …
    so replicas can execute update MSets strictly in ticket order, with no
    gaps to wait on.

    The alternative decentralized ordering source is {!Gtime} (Lamport
    timestamps); the ablation experiment A1 compares the two. *)

type t

val create : unit -> t
val next : t -> int
(** Strictly increasing from 1, no gaps. *)

val issued : t -> int
(** Number of tickets issued so far. *)
