(** Globally unique, totally ordered timestamps.

    A [Gtime.t] pairs a Lamport counter with the originating site id, which
    breaks counter ties deterministically.  This is the "global timestamp"
    that ORDUP attaches to update MSets so every replica executes them in
    the same order, and the version timestamp RITU uses for
    latest-writer-wins blind writes. *)

type t = { counter : int; site : int }

val make : counter:int -> site:int -> t
val compare : t -> t -> int
(** Lexicographic on (counter, site); a strict total order. *)

val equal : t -> t -> bool
val zero : t
(** Smaller than every timestamp produced by [next]. *)

val next : Lamport.t -> site:int -> t
(** Tick the site's Lamport clock and stamp. *)

val witness : Lamport.t -> t -> unit
(** Merge a received timestamp into the local clock. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
