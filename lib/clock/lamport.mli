(** Lamport scalar clocks [Lamport 1978], used by ORDUP and RITU to
    generate a distributed total order over update MSets (§3.1 of the
    paper: "we may use a Lamport-style global timestamp to mark the
    ordering"). *)

type t
(** One process's clock.  Mutable. *)

val create : unit -> t

val tick : t -> int
(** Local event: advance and return the new value. *)

val witness : t -> int -> int
(** [witness t remote] merges a timestamp received in a message
    ([max local remote + 1]) and returns the new local value. *)

val peek : t -> int
(** Current value without advancing. *)
