(** Vector clocks: the causal partial order over events.

    Used by the convergence checker to verify that replica states at
    quiescence dominate every update that was issued, and by the stable
    queue tests to characterise delivery reordering. *)

type t
(** Immutable vector of per-site counters. *)

val create : sites:int -> t
(** All-zero vector over [sites] components. *)

val tick : t -> site:int -> t
(** Increment one component. *)

val merge : t -> t -> t
(** Component-wise max. *)

val get : t -> site:int -> int

type relation = Before | After | Equal | Concurrent

val relate : t -> t -> relation
val leq : t -> t -> bool
(** [leq a b] iff every component of [a] is [<=] the one of [b]. *)

val equal : t -> t -> bool
val size : t -> int
val pp : Format.formatter -> t -> unit
