(* esrsim — command-line front end to the epsilon-serializability replica
   control simulator.

     esrsim methods                      list replica-control methods (Table 1)
     esrsim run --method COMMU ...       run one workload, print the summary
     esrsim check "R1(a) W1(b) ..."      ESR-check a history in paper notation
     esrsim overlap "..." --query 3      overlap of one query ET *)

open Cmdliner
module Stats = Esr_util.Stats
module Tablefmt = Esr_util.Tablefmt
module Json = Esr_util.Json
module Obs = Esr_obs.Obs
module Prof = Esr_obs.Prof
module Trace = Esr_obs.Trace
module Metrics = Esr_obs.Metrics
module Series = Esr_obs.Series
module Spans = Esr_obs.Spans
module Openmetrics = Esr_obs.Openmetrics
module Report = Esr_obs.Report
module Audit = Esr_obs.Audit
module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Epsilon = Esr_core.Epsilon
module Hist = Esr_core.Hist
module Esr_check = Esr_core.Esr_check
module Intf = Esr_replica.Intf
module Registry = Esr_replica.Registry
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario
module Schedule = Esr_fault.Schedule
module Nemesis = Esr_fault.Nemesis

(* --- tables / experiments --- *)

let tables_cmd =
  let doc = "Regenerate the paper's tables and worked examples from the implementation." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const Esr_bench.Tables.run_all $ const ())

let domains_arg =
  let doc =
    "Worker domains for the experiment job pool (default: ESR_DOMAINS or \
     the machine's recommended count minus one).  Tables are \
     byte-identical for any value; 1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "d"; "domains" ] ~docv:"N" ~doc)

let set_domains = function
  | None -> ()
  | Some d when d >= 1 -> Esr_exec.Pool.set_default_domains d
  | Some _ ->
      prerr_endline "--domains expects a positive integer";
      exit 1

let experiment_cmd =
  let doc = "Run one of the quantitative experiments (or 'all' / 'timed'); see 'esrsim experiment list'." in
  let target =
    Arg.(value & pos 0 string "list" & info [] ~docv:"ID" ~doc:"Experiment id, 'all', 'timed', or 'list'.")
  in
  let exp_profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Enable the host-time/allocation phase profiler in every \
                harness the experiments create.  Printed tables are \
                byte-identical either way; e16_soak additionally writes \
                per-method profile dumps when ESR_SOAK_DIR is set.")
  in
  let run domains profiling target =
    set_domains domains;
    Obs.set_default_profiling profiling;
    match target with
    | "list" ->
        print_endline "experiments:";
        List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Esr_bench.Experiments.all;
        print_endline "  timed  (timed sweep -> BENCH_experiments.json)"
    | "all" -> Esr_bench.Experiments.run_all ()
    | "timed" -> Esr_bench.Timing.run_timed ()
    | id -> (
        match List.assoc_opt id Esr_bench.Experiments.all with
        | Some f -> f ()
        | None ->
            Printf.eprintf "unknown experiment %S (try 'esrsim experiment list')\n" id;
            exit 1)
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run $ domains_arg $ exp_profile_arg $ target)

(* --- methods --- *)

let methods_cmd =
  let doc = "List the replica-control methods and their Table 1 characteristics." in
  let run () =
    let t =
      Tablefmt.create ~title:"Replica-control methods"
        ~headers:[ "Method"; "Family"; "Restriction"; "Async propagation"; "Sorting time" ]
    in
    List.iter
      (fun (m : Intf.meta) ->
        Tablefmt.add_row t
          [
            m.Intf.name;
            Intf.family_to_string m.Intf.family;
            m.Intf.restriction;
            m.Intf.async_propagation;
            m.Intf.sorting_time;
          ])
      Registry.metas;
    Tablefmt.print t
  in
  Cmd.v (Cmd.info "methods" ~doc) Term.(const run $ const ())

(* --- run --- *)

let method_arg =
  let doc = "Replica control method: ORDUP, COMMU, RITU, COMPE, 2PC, QUORUM, QUASI." in
  Arg.(value & opt string "COMMU" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let sites_arg =
  Arg.(value & opt int 4 & info [ "s"; "sites" ] ~docv:"N" ~doc:"Number of replica sites.")

let duration_arg =
  Arg.(value & opt float 2_000.0 & info [ "duration" ] ~docv:"MS" ~doc:"Virtual ms of workload arrivals.")

let update_rate_arg =
  Arg.(value & opt float 0.05 & info [ "update-rate" ] ~docv:"R" ~doc:"Update ETs per virtual ms.")

let query_rate_arg =
  Arg.(value & opt float 0.05 & info [ "query-rate" ] ~docv:"R" ~doc:"Query ETs per virtual ms.")

let keys_arg =
  Arg.(value & opt int 32 & info [ "keys" ] ~docv:"K" ~doc:"Size of the keyspace.")

let theta_arg =
  Arg.(value & opt float 0.6 & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew (0 = uniform).")

let epsilon_arg =
  Arg.(value & opt int (-1) & info [ "e"; "epsilon" ] ~docv:"E" ~doc:"Per-query inconsistency limit; negative = unlimited.")

let op_profile_arg =
  let doc =
    "Operation profile: auto (match the method's restriction), additive, \
     blind-set, or mixed:FRAC (FRAC = Mul share)."
  in
  Arg.(value & opt string "auto" & info [ "op-profile" ] ~docv:"P" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic run seed.")

let loss_arg =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Message loss probability.")

let latency_arg =
  Arg.(value & opt float 10.0 & info [ "latency" ] ~docv:"MS" ~doc:"Mean one-way link latency (exponential).")

let ordering_arg =
  Arg.(value & opt string "sequencer" & info [ "ordup-ordering" ] ~doc:"ORDUP order source: sequencer or lamport.")

let ritu_mode_arg =
  Arg.(value & opt string "single" & info [ "ritu-mode" ] ~doc:"RITU version mode: single or multi.")

let abort_arg =
  Arg.(value & opt float 0.0 & info [ "abort-probability" ] ~doc:"COMPE global abort probability.")

let placement_arg =
  Arg.(
    value & opt string "all"
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:"Replica placement policy: all (full replication, the \
              default), ring (each shard at consecutive sites) or hash.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:"Number of key shards (default: one per site under partial \
              placement).")

let replication_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "replication" ] ~docv:"R"
        ~doc:"Replication factor: copies of each shard (default: all \
              sites for --placement all, min 3 sites otherwise).  \
              R = sites reproduces full replication exactly.")

(* Build the shard map the CLI knobs describe.  [None] when the result is
   full replication, so the default env path — and the printed summary —
   stays byte-identical to the pre-sharding CLI. *)
let make_sharding ~sites ~placement ~shards ~replication =
  match Esr_store.Sharding.policy_of_string placement with
  | Error m ->
      Printf.eprintf "--placement: %s\n" m;
      exit 1
  | Ok policy -> (
      match
        Esr_store.Sharding.create ~policy ?shards ?factor:replication ~sites ()
      with
      | exception Invalid_argument m ->
          prerr_endline m;
          exit 1
      | s -> if Esr_store.Sharding.is_full s then None else Some s)

let parse_profile ~meth s =
  match String.lowercase_ascii s with
  | "auto" -> (
      match String.uppercase_ascii meth with
      | "RITU" | "QUORUM" -> Ok Spec.Blind_set
      | _ -> Ok Spec.Additive)
  | "additive" -> Ok Spec.Additive
  | "blind-set" | "blind_set" | "set" -> Ok Spec.Blind_set
  | other ->
      if String.length other > 6 && String.sub other 0 6 = "mixed:" then
        match float_of_string_opt (String.sub other 6 (String.length other - 6)) with
        | Some f when f >= 0.0 && f <= 1.0 -> Ok (Spec.Mixed_arith f)
        | Some _ | None -> Error (`Msg "mixed:FRAC needs FRAC in [0,1]")
      else Error (`Msg (Printf.sprintf "unknown profile %S" s))

(* Translate the shared CLI knobs into a scenario; both [run] and [trace]
   use it, so a traced replay sees exactly the run it replays. *)
let prepare_scenario ~meth ~duration ~update_rate ~query_rate ~keys ~theta
    ~epsilon ~profile ~loss ~latency ~ordering ~ritu_mode ~abort_p =
  match parse_profile ~meth profile with
  | Error _ as e -> e
  | Ok profile ->
      let spec =
        {
          Spec.duration;
          update_rate;
          query_rate;
          n_keys = keys;
          zipf_theta = theta;
          ops_per_update =
            (if String.uppercase_ascii meth = "QUORUM" then 1 else 2);
          keys_per_query = 2;
          epsilon = Epsilon.spec_of_int epsilon;
          profile;
        }
      in
      let net_config =
        {
          Net.latency = Dist.Exponential latency;
          drop_probability = loss;
          duplicate_probability = 0.0;
        }
      in
      let config =
        {
          Intf.default_config with
          Intf.ordup_ordering =
            (if String.lowercase_ascii ordering = "lamport" then `Lamport
             else `Sequencer);
          ritu_mode =
            (if String.lowercase_ascii ritu_mode = "multi" then `Multi
             else `Single);
          compe_abort_probability = abort_p;
        }
      in
      Ok (spec, net_config, config)

let write_trace ?(extra = []) ~file ~format ~sites (trace : Trace.t) =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      match format with
      | `Jsonl -> Trace.write_jsonl oc trace
      | `Chrome -> Trace.write_chrome ~extra oc ~sites trace);
  if Trace.dropped trace > 0 then
    Printf.eprintf
      "warning: trace ring buffer overflowed; %d oldest events dropped\n"
      (Trace.dropped trace)

let trace_format_conv =
  Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Record a structured event trace of the run into $(docv).")

let trace_format_arg =
  Arg.(
    value
    & opt trace_format_conv `Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: jsonl (one event per line) or chrome \
              (Chrome trace_event JSON, loadable in Perfetto).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"Inject a fault schedule, e.g. \"crash\\@400:2; recover\\@900:2; \
              partition\\@1000:0 1|2 3; heal\\@1500\".  Crashed sites lose \
              their volatile state and replay the durable log on recovery.")

let checkpoint_interval_arg =
  Arg.(
    value & opt float 0.0
    & info [ "checkpoint-interval" ] ~docv:"MS"
        ~doc:"Take an asynchronous checkpoint cut at every site every \
              $(docv) virtual ms: the site image is snapshotted at a \
              consistent cut without pausing traffic, and the durable \
              log and reclaimable journal records behind the cut are \
              truncated; crash recovery then replays checkpoint + tail. \
              0 (the default) disables checkpointing, which is \
              byte-identical to older builds.")

let checkpoint_retain_arg =
  Arg.(
    value
    & opt int Esr_replica.Checkpoint.default_retain
    & info [ "checkpoint-retain" ] ~docv:"N"
        ~doc:"Snapshots retained per site (newest is used for recovery).")

let make_checkpoint ~interval ~retain =
  if interval <= 0.0 then None
  else begin
    if retain < 1 then begin
      prerr_endline "--checkpoint-retain: must be at least 1";
      exit 1
    end;
    Some { Esr_replica.Checkpoint.interval; retain }
  end

let parse_faults = function
  | None -> None
  | Some s -> (
      match Schedule.of_spec s with
      | Ok schedule -> Some schedule
      | Error m ->
          Printf.eprintf "--faults: %s\n" m;
          exit 1)

let print_metrics_arg =
  Arg.(
    value & flag
    & info [ "print-metrics" ]
        ~doc:"Print the full metrics registry (engine, net, squeue, \
              harness and method groups) after the summary table.")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Export the final metrics registry to $(docv): JSON when the \
              extension is .json, OpenMetrics text exposition otherwise.")

let series_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "series" ] ~docv:"FILE"
        ~doc:"Sample the divergence time series during the run and dump it \
              to $(docv): CSV when the extension is .csv, the esr-series/1 \
              JSON document otherwise (what 'esrsim report' consumes).")

let series_interval_arg =
  Arg.(
    value & opt float 50.0
    & info [ "series-interval" ] ~docv:"MS"
        ~doc:"Virtual-time sampling cadence for --series.")

let prof_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:"Profile host wall-clock and GC allocation by phase (engine \
              dispatch, apply, propagate, net delivery, WAL append, \
              replay) during the run and write the esr-profile/1 JSON \
              dump to $(docv).  A chrome-format --trace export gains a \
              host-time track (pid 1) next to the virtual timeline.")

let with_out file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* Registry snapshot as a self-describing JSON document (the .json branch
   of --metrics; the default branch is the OpenMetrics exposition). *)
let write_metrics_json oc entries =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"esr-metrics/1\",\"metrics\":[\n";
  List.iteri
    (fun i (e : Metrics.entry) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "{\"group\":\"";
      Json.buf_add_escaped b e.group;
      Buffer.add_string b "\",\"name\":\"";
      Json.buf_add_escaped b e.name;
      Buffer.add_char b '"';
      (match e.site with
      | Some s -> Buffer.add_string b (Printf.sprintf ",\"site\":%d" s)
      | None -> ());
      (match e.view with
      | Metrics.Counter_v v ->
          Buffer.add_string b
            (Printf.sprintf ",\"kind\":\"counter\",\"value\":%s" (Json.float_repr v))
      | Metrics.Gauge_v v ->
          Buffer.add_string b
            (Printf.sprintf ",\"kind\":\"gauge\",\"value\":%s" (Json.float_repr v))
      | Metrics.Histogram_v { limits; counts; sum; count } ->
          Buffer.add_string b ",\"kind\":\"histogram\",\"limits\":[";
          Array.iteri
            (fun j l ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b (Json.float_repr l))
            limits;
          Buffer.add_string b "],\"counts\":[";
          Array.iteri
            (fun j c ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b (string_of_int c))
            counts;
          Buffer.add_string b
            (Printf.sprintf "],\"sum\":%s,\"count\":%d,\"p50\":%s,\"p99\":%s"
               (Json.float_repr sum) count
               (Json.float_repr (Metrics.view_percentile e.view 50.0))
               (Json.float_repr (Metrics.view_percentile e.view 99.0))));
      Buffer.add_char b '}')
    entries;
  Buffer.add_string b "\n]}\n";
  output_string oc (Buffer.contents b)

let export_metrics ~file metrics =
  let entries = Metrics.snapshot metrics in
  with_out file (fun oc ->
      if Filename.check_suffix file ".json" then write_metrics_json oc entries
      else Openmetrics.write_snapshot oc entries)

let export_series ~file series =
  with_out file (fun oc ->
      if Filename.check_suffix file ".csv" then Series.write_csv oc series
      else Series.write_json oc series)

let audit_flag_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:"Tap the runtime consistency auditor into the run (tracing is \
              forced on): delivery, ordering, epsilon, crash, checkpoint \
              and convergence invariants are checked online against the \
              live event stream, and the certificate is printed after the \
              summary.  Exit status 2 when any invariant is violated.")

let run_cmd =
  let doc = "Run one workload against one method and print the metrics." in
  let run meth sites duration update_rate query_rate keys theta epsilon profile
      seed loss latency ordering ritu_mode abort_p placement shards replication
      faults_spec checkpoint_interval checkpoint_retain trace_file trace_format
      show_metrics metrics_file series_file series_interval prof_file do_audit =
    match
      prepare_scenario ~meth ~duration ~update_rate ~query_rate ~keys ~theta
        ~epsilon ~profile ~loss ~latency ~ordering ~ritu_mode ~abort_p
    with
    | Error (`Msg m) ->
        prerr_endline m;
        exit 1
    | Ok (spec, net_config, config) ->
        let faults = parse_faults faults_spec in
        let sharding = make_sharding ~sites ~placement ~shards ~replication in
        let checkpoint =
          make_checkpoint ~interval:checkpoint_interval
            ~retain:checkpoint_retain
        in
        let obs =
          Obs.create
            ~tracing:(trace_file <> None || do_audit)
            ~series:(series_file <> None) ~series_interval
            ~profiling:(prof_file <> None) ()
        in
        (* A JSONL --trace streams through a file sink as events are
           emitted, so long horizons keep their full history even after
           the in-memory ring wraps.  Chrome exports still come from the
           ring (the format needs the whole timeline up front). *)
        let streamed =
          match (trace_file, trace_format) with
          | Some file, `Jsonl ->
              let oc = open_out file in
              Trace.file_sink obs.Obs.trace oc;
              Some oc
          | _ -> None
        in
        let audit =
          if do_audit then Some (Audit.create ~label:meth ()) else None
        in
        let r =
          Scenario.run ~seed ~config ~net_config ?sharding ~obs ?faults
            ?checkpoint ?audit ~sites ~method_name:meth spec
        in
        let t =
          Tablefmt.create
            ~title:(Printf.sprintf "%s on %d sites (seed %d)" meth sites seed)
            ~headers:[ "Metric"; "Value" ]
        in
        let add name v = Tablefmt.add_row t [ name; v ] in
        add "spec" (Format.asprintf "%a" Spec.pp spec);
        (match sharding with
        | Some s -> add "sharding" (Format.asprintf "%a" Esr_store.Sharding.pp s)
        | None -> ());
        (match faults with
        | Some schedule -> add "faults" (Schedule.to_spec schedule)
        | None -> ());
        (match checkpoint with
        | Some { Esr_replica.Checkpoint.interval; retain } ->
            add "checkpoint"
              (Printf.sprintf "interval %g ms, retain %d" interval retain)
        | None -> ());
        add "updates committed" (Printf.sprintf "%d / %d" r.Scenario.committed r.Scenario.submitted_updates);
        add "updates rejected" (string_of_int r.Scenario.rejected);
        add "queries served" (Printf.sprintf "%d / %d" r.Scenario.served r.Scenario.submitted_queries);
        add "update latency p50/p95 (ms)"
          (Printf.sprintf "%.1f / %.1f"
             (Stats.median r.Scenario.update_latency)
             (Stats.percentile r.Scenario.update_latency 95.0));
        add "query latency p50/p95 (ms)"
          (Printf.sprintf "%.1f / %.1f"
             (Stats.median r.Scenario.query_latency)
             (Stats.percentile r.Scenario.query_latency 95.0));
        add "query inconsistency units mean/max"
          (Printf.sprintf "%.2f / %.0f"
             (Stats.mean r.Scenario.charged)
             (if Stats.count r.Scenario.charged = 0 then 0.0 else Stats.max r.Scenario.charged));
        add "query value error mean" (Printf.sprintf "%.2f" (Stats.mean r.Scenario.value_error));
        add "SR-path queries" (string_of_int r.Scenario.fallback_queries);
        add "throughput (upd/s)" (Printf.sprintf "%.1f" (Scenario.throughput r));
        add "quiesce time (ms)" (Printf.sprintf "%.1f" r.Scenario.quiesce_time);
        add "settled / converged"
          (Printf.sprintf "%s / %s"
             (Tablefmt.cell_bool r.Scenario.settled)
             (Tablefmt.cell_bool r.Scenario.converged));
        List.iter (fun (k, v) -> add ("method: " ^ k) (Tablefmt.cell_float v)) r.Scenario.method_stats;
        Tablefmt.print t;
        (match trace_file with
        | Some file -> (
            match streamed with
            | Some oc ->
                close_out oc;
                Printf.printf "trace: %d events -> %s\n"
                  (Trace.length obs.Obs.trace + Trace.dropped obs.Obs.trace)
                  file
            | None ->
                (* With profiling on, a chrome export carries the host-time
                   phase spans as a second process track. *)
                let extra =
                  if Prof.on obs.Obs.prof then Prof.chrome_events obs.Obs.prof
                  else []
                in
                write_trace ~extra ~file ~format:trace_format ~sites
                  obs.Obs.trace;
                Printf.printf "trace: %d events -> %s\n"
                  (Trace.length obs.Obs.trace) file)
        | None -> ());
        if show_metrics then begin
          print_endline "metrics:";
          List.iter
            (fun e -> Format.printf "  %a@." Metrics.pp_entry e)
            (Metrics.snapshot obs.Obs.metrics)
        end;
        (match metrics_file with
        | Some file ->
            export_metrics ~file obs.Obs.metrics;
            Printf.printf "metrics -> %s\n" file
        | None -> ());
        (match series_file with
        | Some file ->
            export_series ~file obs.Obs.series;
            Printf.printf "series: %d samples -> %s\n"
              (Series.length obs.Obs.series) file
        | None -> ());
        (match prof_file with
        | Some file ->
            with_out file (fun oc -> Prof.write_json oc obs.Obs.prof);
            Printf.printf "profile: %d spans -> %s\n"
              (Prof.span_count obs.Obs.prof) file
        | None -> ());
        let audit_failed =
          match audit with
          | None -> false
          | Some a ->
              let report = Audit.finish a in
              Format.printf "%a" Audit.pp_report report;
              not (Audit.ok report)
        in
        (* A schedule that leaves a site crashed or a partition standing
           cannot converge; only all-clear runs gate the exit status. *)
        let expect_convergence =
          match faults with
          | Some s -> Schedule.all_clear s
          | None -> true
        in
        if audit_failed || (expect_convergence && not r.Scenario.converged)
        then exit 2
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ method_arg $ sites_arg $ duration_arg $ update_rate_arg
      $ query_rate_arg $ keys_arg $ theta_arg $ epsilon_arg $ op_profile_arg
      $ seed_arg $ loss_arg $ latency_arg $ ordering_arg $ ritu_mode_arg
      $ abort_arg $ placement_arg $ shards_arg $ replication_arg $ faults_arg
      $ checkpoint_interval_arg $ checkpoint_retain_arg $ trace_file_arg
      $ trace_format_arg $ print_metrics_arg $ metrics_file_arg
      $ series_file_arg $ series_interval_arg $ prof_file_arg $ audit_flag_arg)

(* --- nemesis --- *)

let nemesis_cmd =
  let doc =
    "Generate a seeded random fault schedule (crash/recover and \
     partition/heal windows, all healed before quiescence) and assert \
     that the method survives it: the system settles and the replicas \
     converge.  With --method all, every registered method faces the \
     same schedule; any failure makes the exit status non-zero."
  in
  let all_method_arg =
    let doc = "Method to stress, or 'all' for the whole registry." in
    Arg.(value & opt string "all" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
  in
  let windows_arg =
    Arg.(
      value & opt int Nemesis.default_profile.Nemesis.max_faults
      & info [ "windows" ] ~docv:"N" ~doc:"Fault windows to generate.")
  in
  let crash_bias_arg =
    Arg.(
      value
      & opt float Nemesis.default_profile.Nemesis.crash_bias
      & info [ "crash-bias" ] ~docv:"P"
          ~doc:"Probability a window is a crash rather than a partition.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Record each run's event trace into \
                $(docv)/nemesis_METHOD_seedN.jsonl.")
  in
  let series_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-dir" ] ~docv:"DIR"
          ~doc:"Dump each run's divergence series into \
                $(docv)/nemesis_METHOD_seedN.series.json.")
  in
  let metrics_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-dir" ] ~docv:"DIR"
          ~doc:"Export each run's final metrics registry (OpenMetrics) \
                into $(docv)/nemesis_METHOD_seedN.om.")
  in
  let run meth sites duration update_rate query_rate keys theta seed windows
      crash_bias trace_dir series_dir metrics_dir =
    let methods =
      if String.lowercase_ascii meth = "all" then
        List.map (fun (m : Intf.meta) -> m.Intf.name) Registry.metas
      else [ meth ]
    in
    let profile =
      { Nemesis.default_profile with Nemesis.max_faults = windows; crash_bias }
    in
    let schedule =
      Nemesis.generate ~profile ~seed ~sites ~duration:(duration *. 0.8) ()
    in
    Printf.printf "nemesis schedule (seed %d): %s\n" seed
      (Schedule.to_spec schedule);
    List.iter
      (function
        | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
        | Some _ | None -> ())
      [ trace_dir; series_dir; metrics_dir ];
    let t =
      Tablefmt.create
        ~title:
          (Printf.sprintf "nemesis on %d sites (seed %d, %d windows)" sites
             seed windows)
        ~headers:
          [
            "Method";
            "Settled";
            "Converged";
            "Replays";
            "Committed";
            "PeakDiv";
            "ConvLag(ms)";
          ]
    in
    let failures = ref [] in
    List.iter
      (fun meth ->
        match
          prepare_scenario ~meth ~duration ~update_rate ~query_rate ~keys
            ~theta ~epsilon:(-1) ~profile:"auto" ~loss:0.0 ~latency:10.0
            ~ordering:"sequencer" ~ritu_mode:"single" ~abort_p:0.0
        with
        | Error (`Msg m) ->
            prerr_endline m;
            exit 1
        | Ok (spec, net_config, config) ->
            (* Series always on here: the divergence columns come from it,
               and nemesis runs are already paying for tracing. *)
            let obs = Obs.create ~tracing:true ~series:true () in
            let r =
              Scenario.run ~seed ~config ~net_config ~obs ~faults:schedule
                ~sites ~method_name:meth spec
            in
            let replays = ref 0 in
            Trace.iter obs.Obs.trace (fun record ->
                match record.Trace.ev with
                | Trace.Recovery_replay _ -> incr replays
                | _ -> ());
            let dump_name ext =
              Printf.sprintf "nemesis_%s_seed%d%s"
                (String.lowercase_ascii
                   (String.map (function '/' -> '_' | c -> c) meth))
                seed ext
            in
            (match trace_dir with
            | Some dir ->
                write_trace
                  ~file:(Filename.concat dir (dump_name ".jsonl"))
                  ~format:`Jsonl ~sites obs.Obs.trace
            | None -> ());
            (match series_dir with
            | Some dir ->
                export_series
                  ~file:(Filename.concat dir (dump_name ".series.json"))
                  obs.Obs.series
            | None -> ());
            (match metrics_dir with
            | Some dir ->
                export_metrics
                  ~file:(Filename.concat dir (dump_name ".om"))
                  obs.Obs.metrics
            | None -> ());
            (* Peak replica spread over the run and how long past the last
               fault-schedule step the system needed to fully drain. *)
            let peak_div =
              match Series.column_index obs.Obs.series "esr/spread_max" with
              | None -> 0.0
              | Some i ->
                  let peak = ref 0.0 in
                  Series.iter obs.Obs.series (fun s ->
                      peak := Float.max !peak s.Series.values.(i));
                  !peak
            in
            let conv_lag =
              Float.max 0.0 (r.Scenario.quiesce_time -. Schedule.clear_time schedule)
            in
            let ok = r.Scenario.settled && r.Scenario.converged in
            if not ok then failures := meth :: !failures;
            Tablefmt.add_row t
              [
                meth;
                Tablefmt.cell_bool r.Scenario.settled;
                Tablefmt.cell_bool r.Scenario.converged;
                string_of_int !replays;
                Printf.sprintf "%d/%d" r.Scenario.committed
                  r.Scenario.submitted_updates;
                Tablefmt.cell_float peak_div;
                Tablefmt.cell_float conv_lag;
              ])
      methods;
    Tablefmt.print t;
    match List.rev !failures with
    | [] -> ()
    | fs ->
        Printf.eprintf "nemesis: %s did not converge\n" (String.concat ", " fs);
        exit 2
  in
  Cmd.v (Cmd.info "nemesis" ~doc)
    Term.(
      const run $ all_method_arg $ sites_arg $ duration_arg $ update_rate_arg
      $ query_rate_arg $ keys_arg $ theta_arg $ seed_arg $ windows_arg
      $ crash_bias_arg $ trace_dir_arg $ series_dir_arg $ metrics_dir_arg)

(* --- trace --- *)

let trace_cmd =
  let doc =
    "Replay a workload with tracing enabled and dump the event timeline \
     (human-readable to stdout, or jsonl/chrome with --output)."
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the trace to $(docv) instead of pretty-printing.")
  in
  let format_arg =
    Arg.(
      value
      & opt trace_format_conv `Chrome
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output file format: chrome (default; open in Perfetto) or \
                jsonl.")
  in
  let limit_arg =
    Arg.(
      value & opt int 40
      & info [ "limit" ] ~docv:"N"
          ~doc:"Pretty-print at most $(docv) events (0 = all).")
  in
  let run meth sites duration update_rate query_rate keys theta epsilon profile
      seed loss latency ordering ritu_mode abort_p output format limit =
    match
      prepare_scenario ~meth ~duration ~update_rate ~query_rate ~keys ~theta
        ~epsilon ~profile ~loss ~latency ~ordering ~ritu_mode ~abort_p
    with
    | Error (`Msg m) ->
        prerr_endline m;
        exit 1
    | Ok (spec, net_config, config) ->
        let obs = Obs.create ~tracing:true () in
        let r =
          Scenario.run ~seed ~config ~net_config ~obs ~sites ~method_name:meth
            spec
        in
        let trace = obs.Obs.trace in
        (match output with
        | Some file ->
            write_trace ~file ~format ~sites trace;
            Printf.printf "%s: %d events of %s on %d sites (seed %d)\n" file
              (Trace.length trace) meth sites seed
        | None ->
            Printf.printf "trace of %s on %d sites (seed %d): %d events%s\n"
              meth sites seed (Trace.length trace)
              (if Trace.dropped trace > 0 then
                 Printf.sprintf " (+%d dropped)" (Trace.dropped trace)
               else "");
            let total = Trace.length trace in
            let shown = if limit <= 0 then total else Stdlib.min limit total in
            let i = ref 0 in
            Trace.iter trace (fun record ->
                if !i < shown then
                  Printf.printf "%12.3f  %s\n" record.Trace.time
                    (Trace.record_to_json record);
                incr i);
            if shown < total then
              Printf.printf "... %d more events (use --limit 0 or -o FILE)\n"
                (total - shown));
        ignore r
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ method_arg $ sites_arg $ duration_arg $ update_rate_arg
      $ query_rate_arg $ keys_arg $ theta_arg $ epsilon_arg $ op_profile_arg
      $ seed_arg $ loss_arg $ latency_arg $ ordering_arg $ ritu_mode_arg
      $ abort_arg $ output_arg $ format_arg $ limit_arg)

(* --- report --- *)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse a JSONL trace dump back into records.  Unparseable lines are
   counted and reported rather than silently skipped. *)
let read_trace_jsonl file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let records = ref [] and bad = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Trace.record_of_json line with
             | Ok r -> records := r :: !records
             | Error _ -> incr bad
         done
       with End_of_file -> ());
      (List.rev !records, !bad))

(* --- audit --- *)

let audit_cmd =
  let doc =
    "Certify the paper's guarantees over a run.  With --trace, replay a \
     recorded JSONL dump through the auditor; otherwise drive live \
     seeded-nemesis runs (every method with -m all, optionally repeated \
     under ring-sharded partial replication with --sharded) with the \
     auditor tapped into the event stream.  Checks exactly-once gap-free \
     squeue delivery, in-order dense ORDUP apply streams, the epsilon \
     bound and the reconstructed overlap behind every charge, crash \
     discipline (no effects from down sites, complete log replay), \
     checkpoint cuts, and the convergence certificate.  Exit status 2 \
     when any invariant is violated; each violation pins the first \
     offending trace event."
  in
  let all_method_arg =
    let doc = "Method to audit, or 'all' for the whole registry." in
    Arg.(value & opt string "all" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)
  in
  let trace_in_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Audit a recorded JSONL trace dump instead of running live.")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Write the esr-audit/1 certificate of every audited run \
                (violations, summary and the per-query epsilon ledger) to \
                $(docv), one JSON document per line.")
  in
  let sharded_arg =
    Arg.(
      value & flag
      & info [ "sharded" ]
          ~doc:"Also audit each method under ring-sharded partial \
                replication (placement ring, default shard count).")
  in
  let windows_arg =
    Arg.(
      value & opt int Nemesis.default_profile.Nemesis.max_faults
      & info [ "windows" ] ~docv:"N" ~doc:"Fault windows to generate.")
  in
  let crash_bias_arg =
    Arg.(
      value
      & opt float Nemesis.default_profile.Nemesis.crash_bias
      & info [ "crash-bias" ] ~docv:"P"
          ~doc:"Probability a window is a crash rather than a partition.")
  in
  let label_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"NAME"
          ~doc:"Certificate label for --trace mode (default: file name).")
  in
  let run meth sites duration update_rate query_rate keys theta epsilon seed
      windows crash_bias sharded checkpoint_interval checkpoint_retain
      trace_in ledger_file label =
    let certs = ref [] and failed = ref false in
    let record report =
      certs := report :: !certs;
      if not (Audit.ok report) then failed := true
    in
    (match trace_in with
    | Some file ->
        let records, bad = read_trace_jsonl file in
        if records = [] then begin
          Printf.eprintf "audit: no parseable trace records in %s\n" file;
          exit 1
        end;
        if bad > 0 then
          Printf.eprintf "warning: %d unparseable trace lines skipped\n" bad;
        let label =
          match label with
          | Some l -> l
          | None -> Filename.remove_extension (Filename.basename file)
        in
        let report = Audit.audit_records ~label records in
        Format.printf "%a" Audit.pp_report report;
        record report
    | None ->
        let methods =
          if String.lowercase_ascii meth = "all" then
            List.map (fun (m : Intf.meta) -> m.Intf.name) Registry.metas
          else [ meth ]
        in
        let profile =
          {
            Nemesis.default_profile with
            Nemesis.max_faults = windows;
            crash_bias;
          }
        in
        let schedule =
          Nemesis.generate ~profile ~seed ~sites ~duration:(duration *. 0.8) ()
        in
        Printf.printf "nemesis schedule (seed %d): %s\n" seed
          (Schedule.to_spec schedule);
        let placements = `Full :: (if sharded then [ `Ring ] else []) in
        let t =
          Tablefmt.create
            ~title:
              (Printf.sprintf "audit on %d sites (seed %d, %d windows)" sites
                 seed windows)
            ~headers:
              [
                "Method";
                "Placement";
                "Events";
                "Queries";
                "Windows";
                "Exact";
                "Violations";
              ]
        in
        List.iter
          (fun meth ->
            List.iter
              (fun placement ->
                match
                  prepare_scenario ~meth ~duration ~update_rate ~query_rate
                    ~keys ~theta ~epsilon ~profile:"auto" ~loss:0.0
                    ~latency:10.0 ~ordering:"sequencer" ~ritu_mode:"single"
                    ~abort_p:0.0
                with
                | Error (`Msg m) ->
                    prerr_endline m;
                    exit 1
                | Ok (spec, net_config, config) ->
                    let placement_name, sharding =
                      match placement with
                      | `Full -> ("full", None)
                      | `Ring ->
                          ( "ring",
                            make_sharding ~sites ~placement:"ring" ~shards:None
                              ~replication:None )
                    in
                    let checkpoint =
                      make_checkpoint ~interval:checkpoint_interval
                        ~retain:checkpoint_retain
                    in
                    let obs = Obs.create ~tracing:true () in
                    let audit =
                      Audit.create
                        ~label:
                          (Printf.sprintf "%s/%s/seed%d" meth placement_name
                             seed)
                        ()
                    in
                    let r =
                      Scenario.run ~seed ~config ~net_config ?sharding ~obs
                        ~audit ?checkpoint ~faults:schedule ~sites
                        ~method_name:meth spec
                    in
                    ignore r;
                    let report = Audit.finish audit in
                    record report;
                    let s = report.Audit.summary in
                    Tablefmt.add_row t
                      [
                        meth;
                        placement_name;
                        string_of_int s.Audit.s_events;
                        string_of_int s.Audit.s_queries;
                        string_of_int s.Audit.s_windows;
                        string_of_int s.Audit.s_windows_exact;
                        string_of_int (List.length report.Audit.violations);
                      ];
                    List.iter
                      (fun v ->
                        Format.eprintf "%s: %a@." report.Audit.label
                          Audit.pp_violation v)
                      report.Audit.violations)
              placements)
          methods;
        Tablefmt.print t;
        print_endline
          (if !failed then "audit: VIOLATIONS found"
           else "audit: all runs certified"));
    (match ledger_file with
    | Some file ->
        with_out file (fun oc ->
            List.iter
              (fun report ->
                output_string oc (Audit.report_to_json report);
                output_char oc '\n')
              (List.rev !certs));
        Printf.printf "certificates -> %s\n" file
    | None -> ());
    if !failed then exit 2
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run $ all_method_arg $ sites_arg $ duration_arg $ update_rate_arg
      $ query_rate_arg $ keys_arg $ theta_arg $ epsilon_arg $ seed_arg
      $ windows_arg $ crash_bias_arg $ sharded_arg $ checkpoint_interval_arg
      $ checkpoint_retain_arg $ trace_in_arg $ ledger_arg $ label_arg)

let report_cmd =
  let doc =
    "Render a recorded run (a --trace JSONL dump, optionally with its \
     --series dump) as a terminal dashboard, and optionally as a \
     self-contained HTML report or a span-enriched Chrome trace."
  in
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"JSONL trace dump to analyze (from 'run --trace', 'trace -o' \
                or 'nemesis --trace-dir').")
  in
  let series_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"FILE"
          ~doc:"esr-series/1 dump matching the trace (enables the \
                divergence charts and profile table).")
  in
  let profile_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"esr-profile/1 dump matching the trace (from 'run \
                --profile'); enables the host-time phase breakdown \
                panel.")
  in
  let label_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"NAME" ~doc:"Report label (default: trace file name).")
  in
  let audit_report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:"esr-audit/1 certificate matching the trace (from 'audit \
                --ledger'; the first document when $(docv) holds several): \
                adds the audit certificate and epsilon-ledger panel.")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"Also write a self-contained HTML report to $(docv).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also write a Chrome trace enriched with span-tree flow \
                events (MSet propagation arrows) to $(docv).")
  in
  let run trace_file series_file profile_file label html_file chrome_file
      audit_file =
    let records, bad = read_trace_jsonl trace_file in
    if records = [] then begin
      Printf.eprintf "report: no parseable trace records in %s\n" trace_file;
      exit 1
    end;
    if bad > 0 then
      Printf.eprintf "warning: %d unparseable trace lines skipped\n" bad;
    let series =
      match series_file with
      | None -> None
      | Some f -> (
          match Series.dump_of_json (read_file f) with
          | Ok d -> Some d
          | Error m ->
              Printf.eprintf "report: %s: %s\n" f m;
              exit 1)
    in
    let profile =
      match profile_file with
      | None -> None
      | Some f -> (
          match Prof.dump_of_json (read_file f) with
          | Ok d -> Some d
          | Error m ->
              Printf.eprintf "report: %s: %s\n" f m;
              exit 1)
    in
    let audit =
      match audit_file with
      | None -> None
      | Some f -> (
          let text = read_file f in
          (* --ledger files hold one certificate per line; take the first. *)
          let first =
            match String.index_opt text '\n' with
            | Some i -> String.sub text 0 i
            | None -> text
          in
          match Audit.report_of_json first with
          | Ok r -> Some r
          | Error m ->
              Printf.eprintf "report: %s: %s\n" f m;
              exit 1)
    in
    let label =
      match label with
      | Some l -> l
      | None -> Filename.remove_extension (Filename.basename trace_file)
    in
    let input = Report.make ~label ?series ?profile ?audit records in
    print_string (Report.dashboard input);
    (match html_file with
    | Some f ->
        with_out f (fun oc -> output_string oc (Report.html input));
        Printf.printf "html report -> %s\n" f
    | None -> ());
    match chrome_file with
    | Some f ->
        let sites = Report.sites_of records in
        let spans = Spans.reconstruct records in
        (* Rebuild a sink so the standard exporter does the base timeline;
           the span flows ride in through [extra]. *)
        let sink =
          Trace.make ~capacity:(Stdlib.max 1 (List.length records)) ~enabled:true ()
        in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.ev with
            | Trace.Trace_meta _ -> ()
            | ev -> Trace.emit sink ~time:r.Trace.time ev)
          records;
        with_out f (fun oc ->
            Trace.write_chrome ~extra:(Spans.chrome_events ~sites spans) oc ~sites
              sink);
        Printf.printf "chrome trace -> %s\n" f
    | None -> ()
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ trace_arg $ series_arg $ profile_dump_arg $ label_arg
      $ html_arg $ chrome_arg $ audit_report_arg)

(* --- check --- *)

let log_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG" ~doc:"History in paper notation, e.g. \"R1(a) W1(b) W2(b)\".")

let check_cmd =
  let doc = "Check a history for serializability and epsilon-serializability." in
  let run log =
    match Hist.of_string log with
    | exception Invalid_argument m ->
        prerr_endline m;
        exit 1
    | h ->
        let t = Tablefmt.create ~title:"ESR check" ~headers:[ "Property"; "Value" ] in
        Tablefmt.add_row t [ "log"; Hist.to_string h ];
        Tablefmt.add_row t [ "conflict-SR"; Tablefmt.cell_bool (Esr_check.is_sr h) ];
        Tablefmt.add_row t
          [ "epsilon-serial"; Tablefmt.cell_bool (Esr_check.is_epsilon_serial h) ];
        Tablefmt.add_row t
          [ "update subhistory"; Hist.to_string (Esr_check.update_subhistory h) ];
        (match Esr_check.serial_witness h with
        | Some order ->
            Tablefmt.add_row t
              [ "serial witness"; String.concat " ; " (List.map string_of_int order) ]
        | None -> Tablefmt.add_row t [ "serial witness"; "(cyclic)" ]);
        Tablefmt.add_row t
          [ "max query overlap"; Tablefmt.cell_int (Esr_check.max_overlap h) ];
        Tablefmt.print t;
        if not (Esr_check.is_epsilon_serial h) then exit 2
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ log_arg)

let query_arg =
  Arg.(required & opt (some int) None & info [ "q"; "query" ] ~docv:"ET" ~doc:"Query ET id.")

let overlap_cmd =
  let doc = "Compute the overlap (inconsistency bound) of one query ET." in
  let run log query =
    match Hist.of_string log with
    | exception Invalid_argument m ->
        prerr_endline m;
        exit 1
    | h -> (
        match Esr_check.overlap h ~query with
        | exception Invalid_argument m ->
            prerr_endline m;
            exit 1
        | overlap ->
            Printf.printf "overlap(Q%d) = {%s}  bound = %d\n" query
              (String.concat ", " (List.map (Printf.sprintf "U%d") overlap))
              (List.length overlap))
  in
  Cmd.v (Cmd.info "overlap" ~doc) Term.(const run $ log_arg $ query_arg)

let main_cmd =
  let doc = "epsilon-serializability replica control simulator (Pu & Leff 1991)" in
  let info = Cmd.info "esrsim" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      methods_cmd;
      run_cmd;
      nemesis_cmd;
      audit_cmd;
      trace_cmd;
      report_cmd;
      check_cmd;
      overlap_cmd;
      tables_cmd;
      experiment_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
