(* Bench harness entry point.

   Regenerates every table and worked example of the paper plus the
   quantitative experiments indexed in DESIGN.md / EXPERIMENTS.md, then
   runs the Bechamel microbenchmarks.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- tables       # just the paper tables
     dune exec bench/main.exe -- e2_epsilon   # one experiment
     dune exec bench/main.exe -- micro        # just the microbenches
     dune exec bench/main.exe -- timed        # timed sweep -> BENCH_experiments.json
     dune exec bench/main.exe -- list         # list available targets

   Experiments fan their independent simulation jobs out over an OCaml 5
   domain pool; control the worker count with --domains N (or the
   ESR_DOMAINS environment variable) — the default is the machine's core
   count minus one (min 1).  The E15 scale tier shrinks or grows with
   --scale F (or ESR_SCALE).  Tables are byte-identical for any worker
   count. *)

module Pool = Esr_exec.Pool

let targets =
  [ ("tables", Esr_bench.Tables.run_all) ]
  @ Esr_bench.Experiments.all
  @ [
      ("timed", fun () -> Esr_bench.Timing.run_timed ());
      ("micro", Micro.run_all);
    ]

let list_targets () =
  print_endline "available bench targets:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) targets

let run_target name =
  match List.assoc_opt name targets with
  | Some f -> f ()
  | None ->
      Printf.eprintf "unknown bench target %S\n" name;
      list_targets ();
      exit 1

(* Strip --domains N / --scale F anywhere in the argument list; remaining
   arguments are target names. *)
let rec parse_args = function
  | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some d when d >= 1 ->
          Pool.set_default_domains d;
          parse_args rest
      | Some _ | None ->
          Printf.eprintf "--domains expects a positive integer, got %S\n" n;
          exit 1)
  | [ "--domains" ] ->
      prerr_endline "--domains expects a positive integer";
      exit 1
  | "--scale" :: f :: rest -> (
      match float_of_string_opt f with
      | Some s when s > 0.0 ->
          Esr_bench.Experiments.set_scale s;
          parse_args rest
      | Some _ | None ->
          Printf.eprintf "--scale expects a positive number, got %S\n" f;
          exit 1)
  | [ "--scale" ] ->
      prerr_endline "--scale expects a positive number";
      exit 1
  | x :: rest -> x :: parse_args rest
  | [] -> []

let () =
  match parse_args (List.tl (Array.to_list Sys.argv)) with
  | [] ->
      print_endline
        "Replica Control in Distributed Systems: An Asynchronous Approach \
         (Pu & Leff, 1991)";
      print_endline
        "Reproduction bench harness - all tables, experiments, microbenches.";
      Printf.printf "(experiment jobs run on %d domain(s); --domains N or \
                     ESR_DOMAINS overrides)\n"
        (Pool.default_domains ());
      print_newline ();
      List.iter (fun (_, f) -> f ()) targets
  | [ "list" ] -> list_targets ()
  | args -> List.iter run_target args
