(* Bench harness entry point.

   Regenerates every table and worked example of the paper plus the
   quantitative experiments indexed in DESIGN.md / EXPERIMENTS.md, then
   runs the Bechamel microbenchmarks.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- tables       # just the paper tables
     dune exec bench/main.exe -- e2_epsilon   # one experiment
     dune exec bench/main.exe -- micro        # just the microbenches
     dune exec bench/main.exe -- list         # list available targets *)

let targets =
  [ ("tables", Esr_bench.Tables.run_all) ]
  @ Esr_bench.Experiments.all
  @ [ ("micro", Micro.run_all) ]

let list_targets () =
  print_endline "available bench targets:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) targets

let run_target name =
  match List.assoc_opt name targets with
  | Some f -> f ()
  | None ->
      Printf.eprintf "unknown bench target %S\n" name;
      list_targets ();
      exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      print_endline
        "Replica Control in Distributed Systems: An Asynchronous Approach \
         (Pu & Leff, 1991)";
      print_endline
        "Reproduction bench harness - all tables, experiments, microbenches.";
      print_newline ();
      List.iter (fun (_, f) -> f ()) targets
  | _ :: [ "list" ] -> list_targets ()
  | _ :: args -> List.iter run_target args
  | [] -> assert false
