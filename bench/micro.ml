(* Bechamel microbenchmarks of the hot paths: the ESR checker, the lock
   manager, the simulation engine, the stores, and the PRNG. *)

open Bechamel
open Toolkit
module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Gtime = Esr_clock.Gtime
module Et = Esr_core.Et
module Hist = Esr_core.Hist
module Esr_check = Esr_core.Esr_check
module Lock_table = Esr_cc.Lock_table
module Lock_mgr = Esr_cc.Lock_mgr
module Engine = Esr_sim.Engine
module Prng = Esr_util.Prng

(* A representative mixed history: 12 ETs, 6 keys, 120 operations. *)
let bench_history =
  let prng = Prng.create 7 in
  let actions =
    List.init 120 (fun i ->
        let et = 1 + Prng.int prng 12 in
        let key = String.make 1 (Char.chr (Char.code 'a' + Prng.int prng 6)) in
        let op = if Prng.bool prng then Op.Read else Op.Write (Value.int i) in
        Et.action ~et ~key op)
  in
  Hist.of_actions actions

let test_esr_checker =
  Test.make ~name:"esr_check/is_epsilon_serial (120 ops)"
    (Staged.stage (fun () -> ignore (Esr_check.is_epsilon_serial bench_history)))

let test_overlap =
  Test.make ~name:"esr_check/max_overlap (120 ops)"
    (Staged.stage (fun () -> ignore (Esr_check.max_overlap bench_history)))

let test_lock_mgr =
  Test.make ~name:"lock_mgr/acquire+release x8"
    (Staged.stage (fun () ->
         let m = Lock_mgr.create ~table:Lock_table.ordup () in
         for txn = 1 to 8 do
           ignore
             (Lock_mgr.acquire m ~txn ~key:"k" ~mode:Lock_table.R_q ~op:Op.Read ())
         done;
         for txn = 1 to 8 do
           Lock_mgr.release_all m ~txn
         done))

let test_engine =
  Test.make ~name:"engine/schedule+run 1000 events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 0 to 999 do
           ignore (Engine.schedule e ~delay:(float_of_int (i mod 97)) (fun () -> ()))
         done;
         Engine.run e))

let test_store_apply =
  Test.make ~name:"store/apply Incr x100"
    (Staged.stage (fun () ->
         let s = Store.create () in
         for i = 1 to 100 do
           ignore (Store.apply s "x" (Op.Incr i))
         done))

let test_mvstore =
  Test.make ~name:"mvstore/append+read x50"
    (Staged.stage (fun () ->
         let m = Mvstore.create () in
         for i = 1 to 50 do
           ignore
             (Mvstore.append m "x" ~ts:(Gtime.make ~counter:i ~site:0) (Value.int i))
         done;
         ignore (Mvstore.read_latest m "x")))

let test_prng =
  Test.make ~name:"prng/bits64 x1000"
    (Staged.stage
       (let prng = Prng.create 1 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Prng.bits64 prng)
          done))

let benchmarks =
  [
    test_esr_checker; test_overlap; test_lock_mgr; test_engine;
    test_store_apply; test_mvstore; test_prng;
  ]

let run_all () =
  print_endline "== Microbenchmarks (Bechamel OLS, monotonic clock) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let stats = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) stats []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "  %-44s %12.1f ns/run\n" name est
          | Some [] | None -> Printf.printf "  %-44s (no estimate)\n" name)
        rows)
    benchmarks;
  print_newline ()
