(* Bechamel microbenchmarks of the hot paths: the ESR checker, the lock
   manager, the simulation engine, the stores, and the PRNG — plus a
   bytes-per-op section (plain Gc.allocated_bytes deltas) that proves the
   apply/propagate path stays allocation-free once warm.  The ns/op and
   bytes/op numbers together are what guided the interned-key store work:
   a path is only "stripped" when its bytes/op column reads 0. *)

open Bechamel
open Toolkit
module Op = Esr_store.Op
module Value = Esr_store.Value
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Keyspace = Esr_store.Keyspace
module Sharding = Esr_store.Sharding
module Gtime = Esr_clock.Gtime
module Et = Esr_core.Et
module Hist = Esr_core.Hist
module Esr_check = Esr_core.Esr_check
module Lock_table = Esr_cc.Lock_table
module Lock_mgr = Esr_cc.Lock_mgr
module Engine = Esr_sim.Engine
module Heap = Esr_sim.Heap
module Prng = Esr_util.Prng

(* A representative mixed history: 12 ETs, 6 keys, 120 operations. *)
let bench_history =
  let prng = Prng.create 7 in
  let actions =
    List.init 120 (fun i ->
        let et = 1 + Prng.int prng 12 in
        let key = String.make 1 (Char.chr (Char.code 'a' + Prng.int prng 6)) in
        let op = if Prng.bool prng then Op.Read else Op.Write (Value.int i) in
        Et.action ~et ~key op)
  in
  Hist.of_actions actions

let test_esr_checker =
  Test.make ~name:"esr_check/is_epsilon_serial (120 ops)"
    (Staged.stage (fun () -> ignore (Esr_check.is_epsilon_serial bench_history)))

let test_overlap =
  Test.make ~name:"esr_check/max_overlap (120 ops)"
    (Staged.stage (fun () -> ignore (Esr_check.max_overlap bench_history)))

let test_lock_mgr =
  Test.make ~name:"lock_mgr/acquire+release x8"
    (Staged.stage (fun () ->
         let m = Lock_mgr.create ~table:Lock_table.ordup () in
         for txn = 1 to 8 do
           ignore
             (Lock_mgr.acquire m ~txn ~key:"k" ~mode:Lock_table.R_q ~op:Op.Read ())
         done;
         for txn = 1 to 8 do
           Lock_mgr.release_all m ~txn
         done))

let test_engine =
  Test.make ~name:"engine/schedule+run 1000 events"
    (Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 0 to 999 do
           ignore (Engine.schedule e ~delay:(float_of_int (i mod 97)) (fun () -> ()))
         done;
         Engine.run e))

let test_heap =
  let h = Heap.create ~hint:1024 () in
  Test.make ~name:"heap/push+drop_min x1000 (warm)"
    (Staged.stage (fun () ->
         for i = 0 to 999 do
           Heap.push h ~time:(float_of_int (i mod 97)) ~seq:i i
         done;
         while not (Heap.is_empty h) do
           ignore (Heap.min_payload h);
           Heap.drop_min h
         done))

(* Shared fixtures for the store benches: one keyspace, keys interned
   once, stores pre-warmed so the timed loops measure steady state. *)
let bench_keys = Array.init 64 (fun i -> Printf.sprintf "key%02d" i)

let warm_store () =
  let ks = Keyspace.create ~hint:64 () in
  let s = Store.create ~size:64 ~keyspace:ks () in
  Array.iter (fun k -> Store.set s k (Value.int 1)) bench_keys;
  s

let test_store_get =
  let s = warm_store () in
  Test.make ~name:"store/get (string key) x64"
    (Staged.stage (fun () ->
         Array.iter (fun k -> ignore (Store.get s k)) bench_keys))

let test_store_get_id =
  let s = warm_store () in
  Test.make ~name:"store/get_id (interned) x64"
    (Staged.stage (fun () ->
         for id = 0 to 63 do
           ignore (Store.get_id s id)
         done))

let test_store_set_id =
  let s = warm_store () in
  let v = Value.int 7 in
  Test.make ~name:"store/set_id (interned) x64"
    (Staged.stage (fun () ->
         for id = 0 to 63 do
           Store.set_id s id v
         done))

let test_store_apply =
  Test.make ~name:"store/apply Incr x100 (result API)"
    (Staged.stage (fun () ->
         let s = Store.create () in
         for i = 1 to 100 do
           ignore (Store.apply s "x" (Op.Incr i))
         done))

let test_store_apply_unit =
  let s = warm_store () in
  let op = Op.Incr 1 in
  Test.make ~name:"store/apply_unit Incr x64 (string key)"
    (Staged.stage (fun () ->
         Array.iter (fun k -> ignore (Store.apply_unit s k op)) bench_keys))

let test_store_apply_id_unit =
  let s = warm_store () in
  let op = Op.Incr 1 in
  Test.make ~name:"store/apply_id_unit Incr x64 (interned)"
    (Staged.stage (fun () ->
         for id = 0 to 63 do
           ignore (Store.apply_id_unit s id op)
         done))

let test_keyspace_intern =
  let ks = Keyspace.create ~hint:64 () in
  Array.iter (fun k -> ignore (Keyspace.intern ks k)) bench_keys;
  Test.make ~name:"keyspace/intern hit x64"
    (Staged.stage (fun () ->
         Array.iter (fun k -> ignore (Keyspace.intern ks k)) bench_keys))

(* The propagate inner loop as the methods run it: an MSet's worth of
   pre-interned ops applied at one replica via the id path. *)
let test_mset_apply =
  let ks = Keyspace.create ~hint:64 () in
  let s = Store.create ~size:64 ~keyspace:ks () in
  let ops =
    Array.to_list
      (Array.map (fun k -> (Keyspace.intern ks k, Op.Incr 1)) bench_keys)
  in
  List.iter (fun (id, _) -> Store.set_id s id (Value.int 0)) ops;
  Test.make ~name:"mset/apply 64 interned ops at a replica"
    (Staged.stage (fun () ->
         List.iter (fun (id, op) -> ignore (Store.apply_id_unit s id op)) ops))

let test_mset_build =
  let ks = Keyspace.create ~hint:64 () in
  Array.iter (fun k -> ignore (Keyspace.intern ks k)) bench_keys;
  Test.make ~name:"mset/build 8 iops (intern + cons)"
    (Staged.stage (fun () ->
         let rec build i acc =
           if i < 0 then acc
           else
             build (i - 1)
               ((Keyspace.intern ks bench_keys.(i), Op.Incr 1) :: acc)
         in
         ignore (build 7 [])))

let test_mvstore =
  Test.make ~name:"mvstore/append+read x50"
    (Staged.stage (fun () ->
         let m = Mvstore.create () in
         for i = 1 to 50 do
           ignore
             (Mvstore.append m "x" ~ts:(Gtime.make ~counter:i ~site:0) (Value.int i))
         done;
         ignore (Mvstore.read_latest m "x")))

(* Sharded-routing hot path: the per-op membership test every method
   runs when applying a routed MSet, and the per-MSet destination-set
   union (reset + add the touched ids + iterate the replica union) that
   replaces a broadcast under partial replication. *)
let bench_sharding () =
  Sharding.create ~policy:Sharding.Ring ~shards:64 ~factor:3 ~sites:64 ()

let test_shard_lookup =
  let sh = bench_sharding () in
  Test.make ~name:"shard/replicates_id x64"
    (Staged.stage (fun () ->
         for id = 0 to 63 do
           ignore (Sharding.replicates_id sh ~site:(id land 7) ~id)
         done))

let test_shard_dests =
  let sh = bench_sharding () in
  let c = Sharding.Dests.cursor sh in
  Test.make ~name:"shard/dests reset+union 8 ids+iter"
    (Staged.stage (fun () ->
         Sharding.Dests.reset c;
         for id = 0 to 7 do
           Sharding.Dests.add_id c id
         done;
         Sharding.Dests.iter c ignore))

let test_prng =
  Test.make ~name:"prng/bits64 x1000"
    (Staged.stage
       (let prng = Prng.create 1 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Prng.bits64 prng)
          done))

let benchmarks =
  [
    test_esr_checker; test_overlap; test_lock_mgr; test_engine; test_heap;
    test_store_get; test_store_get_id; test_store_set_id; test_store_apply;
    test_store_apply_unit; test_store_apply_id_unit; test_keyspace_intern;
    test_mset_apply; test_mset_build; test_mvstore; test_shard_lookup;
    test_shard_dests; test_prng;
  ]

(* --- bytes per operation -------------------------------------------- *)

(* Minor-heap bytes allocated per call of [f], measured as a plain
   [Gc.allocated_bytes] delta over [n] warm iterations.  This is exact
   (the counter advances at every allocation), so a 0 here means the
   path genuinely does not allocate. *)
let bytes_per_op ?(n = 10_000) f =
  f ();
  (* warm: first call may grow tables/arrays *)
  let before = Gc.allocated_bytes () in
  for _ = 1 to n do
    f ()
  done;
  let after = Gc.allocated_bytes () in
  (after -. before) /. float_of_int n

let bytes_report () =
  print_endline "== Bytes/op (Gc.allocated_bytes delta, warm) ==";
  let row name per_call ops =
    (* per_call covers [ops] logical operations; report per-op. *)
    Printf.printf "  %-44s %10.1f bytes/op\n" name (per_call /. float_of_int ops)
  in
  let s = warm_store () in
  let op = Op.Incr 1 in
  row "store/get (string key)"
    (bytes_per_op (fun () ->
         Array.iter (fun k -> ignore (Store.get s k)) bench_keys))
    64;
  row "store/get_id (interned)"
    (bytes_per_op (fun () ->
         for id = 0 to 63 do
           ignore (Store.get_id s id)
         done))
    64;
  row "store/set_id (interned)"
    (let v = Value.int 7 in
     bytes_per_op (fun () ->
         for id = 0 to 63 do
           Store.set_id s id v
         done))
    64;
  row "store/apply_unit (string key)"
    (bytes_per_op (fun () ->
         Array.iter (fun k -> ignore (Store.apply_unit s k op)) bench_keys))
    64;
  row "store/apply_id_unit (interned)"
    (bytes_per_op (fun () ->
         for id = 0 to 63 do
           ignore (Store.apply_id_unit s id op)
         done))
    64;
  row "store/apply (result API, undo record)"
    (bytes_per_op (fun () ->
         Array.iter (fun k -> ignore (Store.apply s k op)) bench_keys))
    64;
  (let ks = Keyspace.create ~hint:64 () in
   Array.iter (fun k -> ignore (Keyspace.intern ks k)) bench_keys;
   row "keyspace/intern hit"
     (bytes_per_op (fun () ->
          Array.iter (fun k -> ignore (Keyspace.intern ks k)) bench_keys))
     64);
  (let sh = bench_sharding () in
   row "shard/replicates_id"
     (bytes_per_op (fun () ->
          for id = 0 to 63 do
            ignore (Sharding.replicates_id sh ~site:(id land 7) ~id)
          done))
     64;
   let c = Sharding.Dests.cursor sh in
   row "shard/dests reset+union 8 ids+iter"
     (bytes_per_op (fun () ->
          Sharding.Dests.reset c;
          for id = 0 to 7 do
            Sharding.Dests.add_id c id
          done;
          Sharding.Dests.iter c ignore))
     8);
  (let h = Heap.create ~hint:1024 () in
   row "heap/push+drop_min"
     (bytes_per_op (fun () ->
          for i = 0 to 63 do
            Heap.push h ~time:(float_of_int i) ~seq:i i
          done;
          while not (Heap.is_empty h) do
            ignore (Heap.min_payload h);
            Heap.drop_min h
          done))
     128);
  print_newline ()

let run_all () =
  print_endline "== Microbenchmarks (Bechamel OLS, monotonic clock) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let stats = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold (fun name result acc -> (name, result) :: acc) stats []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "  %-44s %12.1f ns/run\n" name est
          | Some [] | None -> Printf.printf "  %-44s (no estimate)\n" name)
        rows)
    benchmarks;
  print_newline ();
  bytes_report ()
