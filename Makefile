.PHONY: all build test bench bench-all clean

all: build

build:
	dune build @all

test:
	dune runtest

# Timed experiment sweep: runs every experiment on 1 domain and on the
# configured pool (ESR_DOMAINS or cores-1), byte-compares the outputs,
# and writes BENCH_experiments.json. Same as `dune build @bench`.
bench:
	dune exec bench/main.exe -- timed

# Every table, experiment, and microbench, sequentially printed.
bench-all:
	dune exec bench/main.exe

clean:
	dune clean
