.PHONY: all build test bench bench-all bench-scale trace report soak audit clean

all: build

build:
	dune build @all

test:
	dune runtest

# Timed experiment sweep: runs every experiment on 1 domain and on the
# configured pool (ESR_DOMAINS or cores-1), byte-compares the outputs,
# and writes BENCH_experiments.json. Same as `dune build @bench`.
bench:
	dune exec bench/main.exe -- timed

# Every table, experiment, and microbench, sequentially printed.
bench-all:
	dune exec bench/main.exe

# The E15 million-op scale tier on its own: ~100 sites, ~10^5 keys,
# >10^6 applied update operations per method. Wall-clock throughput is
# printed to stderr; shrink or grow the tier with ESR_SCALE (or pass
# `--scale F` through SCALE=F).
bench-scale:
	dune exec bench/main.exe -- $(if $(SCALE),--scale $(SCALE),) e15_scale

# Capture a 3-site ORDUP run as a Chrome trace_event file and load it at
# https://ui.perfetto.dev — one track per site plus a system track.
# Same smoke as `dune build @trace` (which keeps its output in _build).
trace:
	dune exec bin/esrsim.exe -- trace -m ORDUP -s 3 -o trace.json --format chrome

# Divergence observatory end to end: a faulty 4-site ORDUP run recorded
# as trace + series, rendered as a terminal dashboard plus report.html
# (inline SVG, fault windows shaded) and a span-enriched Perfetto trace.
report:
	dune exec bin/esrsim.exe -- run -m ORDUP -s 4 \
	  --faults 'crash@400:2;recover@900:2' \
	  --trace report-run.jsonl --series report-run.series.json
	dune exec bin/esrsim.exe -- report --trace report-run.jsonl \
	  --series report-run.series.json --html report.html --chrome report.json

# The CI audit gate, locally: three seeded nemesis schedules against
# all seven methods, full and ring-sharded placement, with the runtime
# consistency auditor tapped into every run. Exits 2 on any violation;
# per-run esr-audit/1 certificates land in audit-certs/.
audit:
	mkdir -p audit-certs
	for seed in 7 23 47; do \
	  dune exec bin/esrsim.exe -- audit -m all --sharded --seed $$seed \
	    --ledger audit-certs/certs-$$seed.jsonl || exit 2; \
	done

# E16 long soak at a reduced scale with the host-time profiler on:
# resource-growth table on stdout, per-method artifact dumps (series
# JSON, OpenMetrics, HTML report, esr-profile/1 dump) under soak-out/.
# Grow the horizon with ESR_SCALE.
soak:
	ESR_SCALE=$(or $(ESR_SCALE),0.1) ESR_SOAK_DIR=soak-out \
	  dune exec bin/esrsim.exe -- experiment --profile e16_soak

clean:
	dune clean
