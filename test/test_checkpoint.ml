(* Asynchronous checkpointing (DESIGN.md §12): cut mechanics and
   retention, WAL sizing/high-water, stable-queue dedup GC, the
   crash-at-cut schedule guard, and the headline equivalence property —
   for every method and any seeded nemesis, recovery from checkpoint +
   tail converges to the same final stores as full-log replay. *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng
module Dist = Esr_util.Dist
module Store = Esr_store.Store
module Value = Esr_store.Value
module Hist = Esr_core.Hist
module Squeue = Esr_squeue.Squeue
module Metrics = Esr_obs.Metrics
module Obs = Esr_obs.Obs
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Registry = Esr_replica.Registry
module Recovery = Esr_replica.Recovery
module Checkpoint = Esr_replica.Checkpoint
module Schedule = Esr_fault.Schedule
module Nemesis = Esr_fault.Nemesis

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- cut mechanics --- *)

let test_create_validates () =
  List.iter
    (fun (interval, retain) ->
      checkb
        (Printf.sprintf "rejects interval %g retain %d" interval retain)
        true
        (try
           ignore
             (Checkpoint.create ~sites:2 { Checkpoint.interval; retain });
           false
         with Invalid_argument _ -> true))
    [ (0.0, 2); (-5.0, 2); (Float.nan, 2); (Float.infinity, 2); (10.0, 0) ]

let test_cut_mechanics () =
  let engine = Engine.create () in
  let c = Checkpoint.create ~sites:2 { Checkpoint.interval = 10.0; retain = 2 } in
  checkb "no base before the first cut" true (Checkpoint.base c ~site:0 = None);
  let store = Store.create () in
  Store.set store "a" (Value.Int 1);
  let hist = Hist.of_string "W1(a) W2(a)" in
  let tail = Checkpoint.cut c ~engine ~site:0 ~store ~hist ~reclaimed:3 () in
  checki "returned tail is empty" 0 (Hist.length tail);
  checki "one cut" 1 (Checkpoint.cuts c ~site:0);
  checki "folded both log entries" 2 (Checkpoint.truncated_log c ~site:0);
  checki "accounted the reclaimed journal records" 3
    (Checkpoint.truncated_journal c ~site:0);
  checki "baseline is the newest snapshot's log position" 2
    (Checkpoint.baseline c ~site:0);
  checki "other site untouched" 0 (Checkpoint.cuts c ~site:1);
  (* The snapshot is a private copy: mutating the live store afterwards
     must not leak into the recovery base, and the returned base is
     itself a fresh copy each time. *)
  Store.set store "a" (Value.Int 99);
  (match Checkpoint.base c ~site:0 with
  | None -> Alcotest.fail "no base after a cut"
  | Some b ->
      checkb "snapshot isolated from the live store" true
        (Store.get b "a" = Value.Int 1);
      Store.set b "a" (Value.Int 7));
  match Checkpoint.base c ~site:0 with
  | Some b2 ->
      checkb "base re-copies the pristine image" true
        (Store.get b2 "a" = Value.Int 1)
  | None -> Alcotest.fail "no base after a cut"

let test_retention_and_tail_stats () =
  let engine = Engine.create () in
  let c = Checkpoint.create ~sites:1 { Checkpoint.interval = 10.0; retain = 2 } in
  let store = Store.create () in
  let hist = Hist.of_string "W1(a)" in
  for i = 1 to 3 do
    Store.set store "a" (Value.Int i);
    ignore (Checkpoint.cut c ~engine ~site:0 ~store ~hist ~reclaimed:0 ())
  done;
  checki "3 cuts" 3 (Checkpoint.cuts c ~site:0);
  checki "retention trims to 2" 2 (Checkpoint.retained c ~site:0);
  checki "baseline accumulates" 3 (Checkpoint.baseline c ~site:0);
  (match Checkpoint.base c ~site:0 with
  | Some b ->
      checkb "newest snapshot wins" true (Store.get b "a" = Value.Int 3)
  | None -> Alcotest.fail "no base");
  Checkpoint.note_tail_replay c ~site:0 ~len:5;
  Checkpoint.note_tail_replay c ~site:0 ~len:2;
  checki "tail replays" 2 (Checkpoint.tail_replays c ~site:0);
  checki "last tail" 2 (Checkpoint.last_tail c ~site:0);
  checki "max tail" 5 (Checkpoint.max_tail c ~site:0)

(* --- WAL: size hint and high-water tracking --- *)

let test_wal_hint_and_high_water () =
  let wal = Recovery.Wal.create ~hint:4096 ~sites:2 () in
  for i = 0 to 9 do
    Recovery.Wal.append wal ~site:0 ~key:i (Printf.sprintf "m%d" i)
  done;
  checki "10 live records" 10 (Recovery.Wal.size wal ~site:0);
  checki "high water tracks the peak" 10 (Recovery.Wal.high_water wal ~site:0);
  for i = 0 to 7 do
    Recovery.Wal.consume wal ~site:0 ~key:i
  done;
  checki "2 left after consumption" 2 (Recovery.Wal.size wal ~site:0);
  checki "high water is sticky" 10 (Recovery.Wal.high_water wal ~site:0);
  checki "per-site isolation" 0 (Recovery.Wal.high_water wal ~site:1)

(* --- stable queues: dedup-journal GC preserves exactly-once --- *)

let duplicating_net engine =
  let config =
    {
      Net.latency = Dist.Uniform (5.0, 25.0);
      drop_probability = 0.0;
      duplicate_probability = 0.3;
    }
  in
  Net.create ~config engine ~sites:2 ~prng:(Prng.create 7)

let test_squeue_gc_exactly_once () =
  let engine = Engine.create () in
  let net = duplicating_net engine in
  let got = ref 0 in
  let q =
    Squeue.create ~mode:Squeue.Unordered net ~handler:(fun ~site:_ ~src:_ () ->
        incr got)
  in
  for _ = 1 to 20 do
    Squeue.send q ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  checki "first batch delivered exactly once each" 20 !got;
  let depth = Squeue.dedup_depth q ~site:1 in
  checkb "dedup journal grew" true (depth > 0);
  let reclaimed = Squeue.gc_site q ~site:1 in
  checki "GC reclaims the whole delivered prefix" depth reclaimed;
  checki "dedup journal compacted" 0 (Squeue.dedup_depth q ~site:1);
  (* Exactly-once must survive the compaction: the watermark suppresses
     retransmissions below it just as per-seq records used to. *)
  for _ = 1 to 20 do
    Squeue.send q ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  checki "second batch still exactly once" 40 !got;
  checkb "duplicates were actually suppressed" true
    ((Squeue.counters q).Squeue.duplicates_suppressed > 0)

let test_squeue_gc_fifo_noop () =
  let engine = Engine.create () in
  let net = duplicating_net engine in
  let q =
    Squeue.create ~mode:Squeue.Fifo net ~handler:(fun ~site:_ ~src:_ () -> ())
  in
  for _ = 1 to 10 do
    Squeue.send q ~src:0 ~dst:1 ()
  done;
  Engine.run engine;
  checki "fifo retains nothing per-seq" 0 (Squeue.gc_site q ~site:1)

(* --- schedule guard: no crash at the exact time of a cut --- *)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_validate_rejects_crash_on_cut () =
  let s =
    Schedule.make
      [
        { Schedule.at = 300.0; action = Schedule.Crash 1 };
        { Schedule.at = 450.0; action = Schedule.Recover 1 };
      ]
  in
  checkb "fine without checkpointing" true
    (Result.is_ok (Schedule.validate ~sites:4 s));
  (match Schedule.validate ~checkpoint:100.0 ~sites:4 s with
  | Ok () -> Alcotest.fail "crash at a cut time must be rejected"
  | Error m ->
      checkb "error names the collision" true (contains_sub m "coincides"));
  checkb "fine off the cut grid" true
    (Result.is_ok (Schedule.validate ~checkpoint:70.0 ~sites:4 s));
  (* Only crashes are constrained: a recover landing on a cut is fine. *)
  let r =
    Schedule.make
      [
        { Schedule.at = 150.0; action = Schedule.Crash 0 };
        { Schedule.at = 200.0; action = Schedule.Recover 0 };
      ]
  in
  checkb "recover on a cut accepted" true
    (Result.is_ok (Schedule.validate ~checkpoint:100.0 ~sites:4 r))

(* --- harness wiring: gauges appear only when checkpointing is on --- *)

let quiet_harness ?checkpoint ?obs ?(sites = 4) ?(seed = 3) name =
  let net_config =
    {
      Net.latency = Dist.Uniform (5.0, 25.0);
      drop_probability = 0.0;
      duplicate_probability = 0.0;
    }
  in
  Harness.create ~net_config ~seed ?obs ?checkpoint ~sites ~method_name:name ()

let ckpt_gauges h =
  List.filter (fun e -> e.Metrics.group = "ckpt") (Harness.stats h)

let test_gauges_conditional () =
  let off = quiet_harness "ORDUP" in
  checki "no ckpt gauges by default" 0 (List.length (ckpt_gauges off));
  checkb "no checkpoint state by default" true
    ((Harness.env off).Intf.checkpoint = None);
  let on =
    quiet_harness ~checkpoint:{ Checkpoint.interval = 50.0; retain = 2 } "ORDUP"
  in
  checkb "ckpt gauges registered when enabled" true
    (List.length (ckpt_gauges on) > 0)

(* --- per-method workload plumbing (mirrors test_fault) --- *)

let methods = Registry.names

let intents_for name i =
  let key = Printf.sprintf "k%d" (i mod 4) in
  match name with
  | "RITU" | "QUORUM" -> [ Intf.Set (key, Value.Int (100 + i)) ]
  | _ -> [ Intf.Add (key, 1 + (i mod 5)) ]

let schedule_updates h ~sites ~name ~gap ~until =
  let engine = Harness.engine h in
  let base = Harness.now h in
  let i = ref 0 in
  let t = ref gap in
  while !t < until do
    let n = !i in
    ignore
      (Engine.schedule_at engine ~time:(base +. !t) (fun () ->
           Harness.submit_update h ~origin:(n mod sites) (intents_for name n)
             (fun _ -> ())));
    incr i;
    t := !t +. gap
  done

(* --- double crash during the checkpoint window: idempotent recovery --- *)

let test_double_crash_between_cuts name () =
  let sites = 3 in
  let h =
    quiet_harness ~sites
      ~checkpoint:{ Checkpoint.interval = 40.0; retain = 2 }
      name
  in
  Harness.arm_checkpoints h ~until:400.0;
  let system = Harness.system h in
  let net = Harness.net h in
  schedule_updates h ~sites ~name ~gap:17.0 ~until:200.0;
  Harness.run_for h 250.0;
  let c =
    match (Harness.env h).Intf.checkpoint with
    | Some c -> c
    | None -> Alcotest.fail "checkpoint state missing"
  in
  checkb "cuts were taken" true (Checkpoint.cuts c ~site:2 > 0);
  (* Two crash/recover rounds with no traffic in between: both
     recoveries must start from the same pristine snapshot copy (the
     base re-copies), so the second replay is as good as the first. *)
  Net.crash net 2;
  Intf.boxed_on_crash system ~site:2;
  Net.recover net 2;
  Intf.boxed_on_recover system ~site:2;
  Net.crash net 2;
  Intf.boxed_on_crash system ~site:2;
  Net.recover net 2;
  Intf.boxed_on_recover system ~site:2;
  checki "both recoveries replayed a tail" 2 (Checkpoint.tail_replays c ~site:2);
  schedule_updates h ~sites ~name ~gap:13.0 ~until:80.0;
  checkb "drained" true (Harness.settle h);
  checkb "converged" true (Harness.converged h)

(* --- the headline property: checkpoint + tail ≡ full-log replay --- *)

let prop_checkpoint_equiv name =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: checkpoint+tail recovery matches full-log replay"
         name)
    ~count:8
    QCheck.(int_range 0 9999)
    (fun seed ->
      let sites = 4 in
      let schedule = Nemesis.generate ~seed ~sites ~duration:500.0 () in
      let run ?checkpoint () =
        let h = quiet_harness ~seed:(seed + 1) ?checkpoint ~sites name in
        if checkpoint <> None then Harness.arm_checkpoints h ~until:700.0;
        (match
           Harness.run_with_faults h ~schedule ~workload:(fun h ->
               schedule_updates h ~sites ~name ~gap:29.0 ~until:600.0)
         with
        | Harness.Drained -> ()
        | Harness.Stuck reason ->
            QCheck.Test.fail_reportf "seed %d stuck (%s): %s" seed
              (if checkpoint = None then "full-log" else "checkpointed")
              (Harness.stuck_reason_to_string reason));
        h
      in
      let h_off = run () in
      let h_on =
        run ~checkpoint:{ Checkpoint.interval = 73.0; retain = 2 } ()
      in
      (Harness.converged h_on
      || QCheck.Test.fail_reportf "seed %d: checkpointed run diverged" seed)
      && List.for_all
           (fun i ->
             Store.equal (Harness.store h_off ~site:i)
               (Harness.store h_on ~site:i)
             || QCheck.Test.fail_reportf
                  "seed %d: site %d differs from the full-log run (schedule \
                   %s)"
                  seed i
                  (Schedule.to_spec schedule))
           (List.init sites Fun.id))

let per_method mk = List.map (fun name -> mk name) methods

let () =
  Alcotest.run "esr_checkpoint"
    [
      ( "cut",
        [
          Alcotest.test_case "create validates" `Quick test_create_validates;
          Alcotest.test_case "cut mechanics" `Quick test_cut_mechanics;
          Alcotest.test_case "retention + tail stats" `Quick
            test_retention_and_tail_stats;
        ] );
      ( "wal",
        [
          Alcotest.test_case "hint + high water" `Quick
            test_wal_hint_and_high_water;
        ] );
      ( "squeue-gc",
        [
          Alcotest.test_case "exactly-once across GC" `Quick
            test_squeue_gc_exactly_once;
          Alcotest.test_case "fifo no-op" `Quick test_squeue_gc_fifo_noop;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "crash-at-cut rejected" `Quick
            test_validate_rejects_crash_on_cut;
        ] );
      ( "harness",
        [
          Alcotest.test_case "gauges conditional" `Quick test_gauges_conditional;
        ] );
      ( "double-crash",
        per_method (fun name ->
            Alcotest.test_case
              (name ^ " double crash between cuts")
              `Quick
              (test_double_crash_between_cuts name)) );
      ( "equivalence",
        per_method (fun name ->
            QCheck_alcotest.to_alcotest (prop_checkpoint_equiv name)) );
    ]
