(* Tests for Esr_workload: the oracle and the scenario driver machinery. *)

module Value = Esr_store.Value
module Intf = Esr_replica.Intf
module Spec = Esr_workload.Spec
module Oracle = Esr_workload.Oracle
module Scenario = Esr_workload.Scenario
module Stats = Esr_util.Stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let value_t = Alcotest.testable Value.pp Value.equal

(* --- Oracle --- *)

let test_oracle_applies_intents () =
  let o = Oracle.create () in
  Oracle.apply o [ Intf.Add ("x", 3); Intf.Add ("x", 4) ];
  Alcotest.check value_t "sum" (Value.int 7) (Oracle.get o "x");
  Oracle.apply o [ Intf.Mul ("x", 2) ];
  Alcotest.check value_t "doubled" (Value.int 14) (Oracle.get o "x");
  Oracle.apply o [ Intf.Set ("x", Value.str "done") ];
  Alcotest.check value_t "overwritten" (Value.str "done") (Oracle.get o "x")

let test_oracle_missing_key_zero () =
  let o = Oracle.create () in
  Alcotest.check value_t "zero" Value.zero (Oracle.get o "absent")

let test_oracle_error_distance () =
  let o = Oracle.create () in
  Oracle.apply o [ Intf.Add ("x", 10); Intf.Add ("y", 5) ];
  checkf "distance" 7.0
    (Oracle.error o [ ("x", Value.int 5); ("y", Value.int 3) ]);
  checkf "exact" 0.0 (Oracle.error o [ ("x", Value.int 10); ("y", Value.int 5) ])

let test_oracle_error_mismatch () =
  let o = Oracle.create () in
  Oracle.apply o [ Intf.Set ("x", Value.int 100) ];
  checkf "mismatch is 1" 1.0
    (Oracle.error ~metric:`Mismatch o [ ("x", Value.int 99) ]);
  checkf "match is 0" 0.0
    (Oracle.error ~metric:`Mismatch o [ ("x", Value.int 100) ])

(* --- Spec --- *)

let test_spec_render () =
  let s = Format.asprintf "%a" Spec.pp Spec.default in
  checkb "nonempty" true (String.length s > 0)

(* --- Scenario determinism and bookkeeping --- *)

let small_spec =
  {
    Spec.default with
    Spec.duration = 600.0;
    update_rate = 0.03;
    query_rate = 0.03;
    n_keys = 8;
  }

let test_scenario_deterministic () =
  let r1 = Scenario.run ~seed:5 ~sites:3 ~method_name:"COMMU" small_spec in
  let r2 = Scenario.run ~seed:5 ~sites:3 ~method_name:"COMMU" small_spec in
  checki "same committed" r1.Scenario.committed r2.Scenario.committed;
  checki "same served" r1.Scenario.served r2.Scenario.served;
  checkf "same quiesce time" r1.Scenario.quiesce_time r2.Scenario.quiesce_time;
  checkf "same mean latency"
    (Stats.mean r1.Scenario.update_latency)
    (Stats.mean r2.Scenario.update_latency)

let test_scenario_seed_changes_run () =
  let r1 = Scenario.run ~seed:5 ~sites:3 ~method_name:"COMMU" small_spec in
  let r2 = Scenario.run ~seed:6 ~sites:3 ~method_name:"COMMU" small_spec in
  checkb "different runs" true
    (r1.Scenario.quiesce_time <> r2.Scenario.quiesce_time
    || Stats.mean r1.Scenario.update_latency
       <> Stats.mean r2.Scenario.update_latency)

let test_scenario_accounts_for_everything () =
  let r = Scenario.run ~seed:9 ~sites:4 ~method_name:"ORDUP" small_spec in
  checki "updates all resolved" r.Scenario.submitted_updates
    (r.Scenario.committed + r.Scenario.rejected);
  checki "queries all served" r.Scenario.submitted_queries r.Scenario.served;
  checkb "settled" true r.Scenario.settled;
  checkb "converged" true r.Scenario.converged

let test_scenario_throughput () =
  let r = Scenario.run ~seed:9 ~sites:3 ~method_name:"COMMU" small_spec in
  checkb "positive throughput" true (Scenario.throughput r > 0.0)

let test_scenario_window_counts () =
  let partition =
    { Scenario.p_start = 200.0; p_end = 400.0; groups = [ [ 0; 1 ]; [ 2 ] ] }
  in
  let r =
    Scenario.run ~seed:3 ~sites:3 ~method_name:"COMMU" ~partition small_spec
  in
  match r.Scenario.window with
  | None -> Alcotest.fail "window expected"
  | Some w ->
      checkb "submissions happened in window" true (w.Scenario.w_updates_submitted > 0);
      checkb "async commits continue during partition" true
        (w.Scenario.w_updates_committed > 0);
      checkb "converged after heal" true r.Scenario.converged

let test_scenario_blind_profile_for_ritu () =
  let spec = { small_spec with Spec.profile = Spec.Blind_set } in
  let r = Scenario.run ~seed:11 ~sites:3 ~method_name:"RITU" spec in
  checki "nothing rejected" 0 r.Scenario.rejected;
  checkb "converged" true r.Scenario.converged

let test_scenario_profile_mismatch_rejects () =
  (* COMMU under a blind-set profile must reject every update ET. *)
  let spec = { small_spec with Spec.profile = Spec.Blind_set } in
  let r = Scenario.run ~seed:11 ~sites:3 ~method_name:"COMMU" spec in
  checki "all rejected" r.Scenario.submitted_updates r.Scenario.rejected;
  checki "none committed" 0 r.Scenario.committed

let () =
  Alcotest.run "esr_workload"
    [
      ( "oracle",
        [
          Alcotest.test_case "applies intents" `Quick test_oracle_applies_intents;
          Alcotest.test_case "missing key" `Quick test_oracle_missing_key_zero;
          Alcotest.test_case "distance error" `Quick test_oracle_error_distance;
          Alcotest.test_case "mismatch error" `Quick test_oracle_error_mismatch;
        ] );
      ("spec", [ Alcotest.test_case "render" `Quick test_spec_render ]);
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_scenario_seed_changes_run;
          Alcotest.test_case "full accounting" `Quick
            test_scenario_accounts_for_everything;
          Alcotest.test_case "throughput" `Quick test_scenario_throughput;
          Alcotest.test_case "partition window counts" `Quick
            test_scenario_window_counts;
          Alcotest.test_case "blind profile for RITU" `Quick
            test_scenario_blind_profile_for_ritu;
          Alcotest.test_case "profile mismatch rejects" `Quick
            test_scenario_profile_mismatch_rejects;
        ] );
    ]
