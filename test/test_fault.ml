(* Fault layer: schedule DSL, nemesis generator, the network/transport
   fault semantics they drive, and the crash-recovery contract of every
   replica-control method (all-clear faults => settle + converge). *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Prng = Esr_util.Prng
module Dist = Esr_util.Dist
module Value = Esr_store.Value
module Epsilon = Esr_core.Epsilon
module Squeue = Esr_squeue.Squeue
module Obs = Esr_obs.Obs
module Trace = Esr_obs.Trace
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Registry = Esr_replica.Registry
module Schedule = Esr_fault.Schedule
module Nemesis = Esr_fault.Nemesis

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- schedule DSL --- *)

let test_spec_roundtrip () =
  let spec = "crash@400:2;recover@900:2;partition@1000:0 1|2 3;heal@1500" in
  match Schedule.of_spec spec with
  | Error m -> Alcotest.fail m
  | Ok s ->
      Alcotest.(check string) "round-trips" spec (Schedule.to_spec s);
      checkb "all clear" true (Schedule.all_clear s);
      Alcotest.(check (float 1e-9)) "clear time" 1500.0 (Schedule.clear_time s);
      checkb "validates on 4 sites" true
        (Result.is_ok (Schedule.validate ~sites:4 s))

let test_spec_rejects_garbage () =
  List.iter
    (fun spec -> checkb spec true (Result.is_error (Schedule.of_spec spec)))
    [ "crash@"; "crash@x:1"; "explode@10:1"; "crash@10"; "partition@5" ]

let test_validate_rejects_out_of_range () =
  let s = Schedule.make [ { Schedule.at = 10.0; action = Schedule.Crash 5 } ] in
  checkb "site 5 of 3" true (Result.is_error (Schedule.validate ~sites:3 s));
  checkb "site 5 of 6" true (Result.is_ok (Schedule.validate ~sites:6 s))

let test_all_clear_negative () =
  let s = Schedule.make [ { Schedule.at = 10.0; action = Schedule.Crash 1 } ] in
  checkb "unrecovered crash" false (Schedule.all_clear s);
  let s =
    Schedule.make
      [ { Schedule.at = 10.0; action = Schedule.Partition [ [ 0 ]; [ 1 ] ] } ]
  in
  checkb "unhealed partition" false (Schedule.all_clear s)

(* --- nemesis generator --- *)

let test_nemesis_deterministic () =
  let gen () = Nemesis.generate ~seed:11 ~sites:4 ~duration:1000.0 () in
  Alcotest.(check string)
    "same seed, same schedule"
    (Schedule.to_spec (gen ()))
    (Schedule.to_spec (gen ()))

let test_nemesis_always_all_clear () =
  for seed = 1 to 30 do
    let s = Nemesis.generate ~seed ~sites:4 ~duration:1000.0 () in
    checkb (Printf.sprintf "seed %d all clear" seed) true (Schedule.all_clear s);
    checkb
      (Printf.sprintf "seed %d valid" seed)
      true
      (Result.is_ok (Schedule.validate ~sites:4 s));
    checkb
      (Printf.sprintf "seed %d within duration" seed)
      true
      (Schedule.clear_time s <= 1000.0)
  done

(* --- network: partitions cut messages already in flight --- *)

let quiet_net ?(sites = 2) ?(latency = Dist.Constant 20.0) engine =
  let config =
    { Net.latency; drop_probability = 0.0; duplicate_probability = 0.0 }
  in
  Net.create ~config engine ~sites ~prng:(Prng.create 5)

let test_partition_cuts_inflight () =
  let engine = Engine.create () in
  let net = quiet_net engine in
  let delivered = ref false in
  Net.send net ~src:0 ~dst:1 (fun () -> delivered := true);
  (* The message is in flight (arrives at t=20); the partition fires
     first, so the arrival-time re-check must cut it off. *)
  ignore
    (Engine.schedule_at engine ~time:5.0 (fun () ->
         Net.partition net [ [ 0 ]; [ 1 ] ]));
  Engine.run engine;
  checkb "not delivered across the split" false !delivered;
  checki "counted as blocked" 1 (Net.counters net).Net.blocked_partition

let test_crash_drops_inflight_arrival () =
  let engine = Engine.create () in
  let net = quiet_net engine in
  let delivered = ref false in
  Net.send net ~src:0 ~dst:1 (fun () -> delivered := true);
  ignore (Engine.schedule_at engine ~time:5.0 (fun () -> Net.crash net 1));
  Engine.run engine;
  checkb "not delivered to the crashed site" false !delivered;
  checki "counted as crashed dst" 1 (Net.counters net).Net.crashed_dst

(* --- stable queues: retry backoff + recovery kick --- *)

(* One message into a long crash window.  Fixed-interval retries hammer
   the dead site; exponential backoff sends far fewer.  Either way the
   recovery hook kicks an immediate retransmission, so the message is
   delivered exactly once shortly after the site returns. *)
let retx_through_crash ~backoff () =
  let engine = Engine.create () in
  let net = quiet_net engine in
  let got = ref 0 in
  let q =
    Squeue.create ?backoff ~retry_interval:10.0 net
      ~handler:(fun ~site:_ ~src:_ () -> incr got)
  in
  Net.crash net 1;
  Squeue.send q ~src:0 ~dst:1 ();
  Engine.run ~until:4000.0 engine;
  checki "nothing delivered while down" 0 !got;
  Net.recover net 1;
  Engine.run ~until:4100.0 engine;
  checki "delivered once after recovery" 1 !got;
  (Squeue.counters q).Squeue.retransmissions

let test_backoff_reduces_retransmissions () =
  let fixed = retx_through_crash ~backoff:None () in
  let eased =
    retx_through_crash ~backoff:(Some Squeue.default_backoff) ()
  in
  checkb
    (Printf.sprintf "backoff retransmits less (%d < %d)" eased fixed)
    true
    (eased < fixed / 3)

(* --- per-method crash-recovery contract --- *)

let methods = Registry.names

(* QUORUM takes single-key blind Sets only; RITU rejects read-dependent
   ops.  Everyone accepts both shapes used here. *)
let intents_for name i =
  let key = Printf.sprintf "k%d" (i mod 4) in
  match name with
  | "RITU" | "QUORUM" -> [ Intf.Set (key, Value.Int (100 + i)) ]
  | _ -> [ Intf.Add (key, 1 + (i mod 5)) ]

let quiet_harness ?obs ?(sites = 4) ?(seed = 3) name =
  let net_config =
    {
      Net.latency = Dist.Uniform (5.0, 25.0);
      drop_probability = 0.0;
      duplicate_probability = 0.0;
    }
  in
  Harness.create ~net_config ~seed ?obs ~sites ~method_name:name ()

(* Updates every [gap] ms from rotating origins for the next [until] ms
   of virtual time; origins down at submission time are simply rejected. *)
let schedule_updates h ~sites ~name ~gap ~until =
  let engine = Harness.engine h in
  let base = Harness.now h in
  let i = ref 0 in
  let t = ref gap in
  while !t < until do
    let n = !i in
    ignore
      (Engine.schedule_at engine ~time:(base +. !t) (fun () ->
           Harness.submit_update h ~origin:(n mod sites) (intents_for name n)
             (fun _ -> ())));
    incr i;
    t := !t +. gap
  done

let drained = function
  | Harness.Drained -> true
  | Harness.Stuck reason ->
      Alcotest.failf "stuck: %s" (Harness.stuck_reason_to_string reason)

let test_crash_recover_converges name () =
  let obs = Obs.create ~tracing:true () in
  let sites = 4 in
  let h = quiet_harness ~obs ~sites name in
  let schedule =
    Schedule.make
      [
        { Schedule.at = 100.0; action = Schedule.Crash 1 };
        { Schedule.at = 450.0; action = Schedule.Recover 1 };
      ]
  in
  let outcome =
    Harness.run_with_faults h ~schedule ~workload:(fun h ->
        schedule_updates h ~sites ~name ~gap:23.0 ~until:600.0)
  in
  checkb "drained" true (drained outcome);
  checkb "converged" true (Harness.converged h);
  let wiped = ref 0 and replayed = ref 0 in
  Trace.iter obs.Obs.trace (fun r ->
      match r.Trace.ev with
      | Trace.Volatile_dropped { site; _ } ->
          checki "wipe at the crashed site" 1 site;
          incr wiped
      | Trace.Recovery_replay { site; _ } ->
          checki "replay at the crashed site" 1 site;
          incr replayed
      | _ -> ());
  checki "one volatile wipe" 1 !wiped;
  checki "one recovery replay" 1 !replayed

let test_double_crash_recover_idempotent name () =
  let sites = 3 in
  let h = quiet_harness ~sites name in
  let system = Harness.system h in
  let net = Harness.net h in
  schedule_updates h ~sites ~name ~gap:17.0 ~until:200.0;
  Harness.run_for h 250.0;
  Net.crash net 2;
  Intf.boxed_on_crash system ~site:2;
  Intf.boxed_on_crash system ~site:2;
  (* second call must be a no-op *)
  Harness.run_for h 100.0;
  Net.recover net 2;
  Intf.boxed_on_recover system ~site:2;
  Intf.boxed_on_recover system ~site:2;
  schedule_updates h ~sites ~name ~gap:13.0 ~until:80.0;
  checkb "drained" true (Harness.settle h);
  checkb "converged" true (Harness.converged h)

let test_crashed_site_degrades_gracefully name () =
  let sites = 3 in
  let h = quiet_harness ~sites name in
  let system = Harness.system h in
  schedule_updates h ~sites ~name ~gap:19.0 ~until:150.0;
  Harness.run_for h 400.0;
  Net.crash (Harness.net h) 2;
  Intf.boxed_on_crash system ~site:2;
  (* A query at the crashed site answers immediately from the last local
     image, flagged as off the consistent path. *)
  let served = ref 0 in
  Harness.submit_query h ~site:2 ~keys:[ "k0"; "k1" ]
    ~epsilon:(Epsilon.Limit 0) (fun outcome ->
      incr served;
      checkb "degraded" false outcome.Intf.consistent_path;
      checki "free of charge" 0 outcome.Intf.charged);
  checki "query answered synchronously" 1 !served;
  (* An update originating at the crashed site is rejected outright. *)
  let rejected = ref 0 in
  Harness.submit_update h ~origin:2 (intents_for name 0) (function
    | Intf.Rejected _ -> incr rejected
    | Intf.Committed _ -> Alcotest.fail "committed at a crashed site");
  checki "update rejected" 1 !rejected;
  (* The rest of the system keeps going and still drains. *)
  Net.recover (Harness.net h) 2;
  Intf.boxed_on_recover system ~site:2;
  checkb "drained" true (Harness.settle h);
  checkb "converged" true (Harness.converged h)

(* --- the headline property: all-clear nemesis => settle + converge --- *)

let prop_nemesis_converges name =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s survives any all-clear nemesis" name)
    ~count:12
    QCheck.(int_range 0 9999)
    (fun seed ->
      let sites = 4 in
      let schedule = Nemesis.generate ~seed ~sites ~duration:500.0 () in
      let h = quiet_harness ~seed:(seed + 1) ~sites name in
      let outcome =
        Harness.run_with_faults h ~schedule ~workload:(fun h ->
            schedule_updates h ~sites ~name ~gap:29.0 ~until:600.0)
      in
      (match outcome with
      | Harness.Drained -> ()
      | Harness.Stuck reason ->
          QCheck.Test.fail_reportf "seed %d stuck: %s (schedule %s)" seed
            (Harness.stuck_reason_to_string reason)
            (Schedule.to_spec schedule));
      Harness.converged h
      || QCheck.Test.fail_reportf "seed %d diverged (schedule %s)" seed
           (Schedule.to_spec schedule))

let per_method mk = List.map (fun name -> mk name) methods

let () =
  Alcotest.run "esr_fault"
    [
      ( "schedule",
        [
          Alcotest.test_case "DSL round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
          Alcotest.test_case "validate range" `Quick
            test_validate_rejects_out_of_range;
          Alcotest.test_case "all-clear detection" `Quick test_all_clear_negative;
        ] );
      ( "nemesis",
        [
          Alcotest.test_case "deterministic" `Quick test_nemesis_deterministic;
          Alcotest.test_case "always all-clear" `Quick
            test_nemesis_always_all_clear;
        ] );
      ( "net",
        [
          Alcotest.test_case "partition cuts in-flight" `Quick
            test_partition_cuts_inflight;
          Alcotest.test_case "crash drops at arrival" `Quick
            test_crash_drops_inflight_arrival;
        ] );
      ( "squeue",
        [
          Alcotest.test_case "backoff + recovery kick" `Quick
            test_backoff_reduces_retransmissions;
        ] );
      ( "crash-recovery",
        per_method (fun name ->
            Alcotest.test_case
              (name ^ " crash mid-stream converges")
              `Quick
              (test_crash_recover_converges name)) );
      ( "idempotence",
        per_method (fun name ->
            Alcotest.test_case
              (name ^ " double crash/recover")
              `Quick
              (test_double_crash_recover_idempotent name)) );
      ( "degraded",
        per_method (fun name ->
            Alcotest.test_case
              (name ^ " crashed site degrades")
              `Quick
              (test_crashed_site_degrades_gracefully name)) );
      ( "nemesis-property",
        per_method (fun name ->
            QCheck_alcotest.to_alcotest (prop_nemesis_converges name)) );
    ]
