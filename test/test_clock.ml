(* Tests for Esr_clock: Lamport clocks, global timestamps, vector clocks,
   and the central sequencer. *)

module Lamport = Esr_clock.Lamport
module Gtime = Esr_clock.Gtime
module Vclock = Esr_clock.Vclock
module Sequencer = Esr_clock.Sequencer

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* --- Lamport --- *)

let test_lamport_tick () =
  let c = Lamport.create () in
  checki "initial" 0 (Lamport.peek c);
  checki "first tick" 1 (Lamport.tick c);
  checki "second tick" 2 (Lamport.tick c);
  checki "peek stable" 2 (Lamport.peek c)

let test_lamport_witness () =
  let c = Lamport.create () in
  ignore (Lamport.tick c);
  checki "witness ahead" 11 (Lamport.witness c 10);
  checki "witness behind" 12 (Lamport.witness c 3);
  checki "peek" 12 (Lamport.peek c)

let test_lamport_happened_before () =
  (* Message exchange: a's send stamp < b's receive stamp. *)
  let a = Lamport.create () and b = Lamport.create () in
  let send_stamp = Lamport.tick a in
  let recv_stamp = Lamport.witness b send_stamp in
  checkb "causality" true (send_stamp < recv_stamp)

(* --- Gtime --- *)

let test_gtime_total_order () =
  let a = Gtime.make ~counter:1 ~site:0 in
  let b = Gtime.make ~counter:1 ~site:1 in
  let c = Gtime.make ~counter:2 ~site:0 in
  checkb "tie broken by site" true (Gtime.compare a b < 0);
  checkb "counter dominates" true (Gtime.compare b c < 0);
  checkb "zero below all" true (Gtime.compare Gtime.zero a < 0);
  checkb "equal" true (Gtime.equal a (Gtime.make ~counter:1 ~site:0))

let test_gtime_next_monotone () =
  let clock = Lamport.create () in
  let prev = ref Gtime.zero in
  for _ = 1 to 50 do
    let t = Gtime.next clock ~site:3 in
    checkb "strictly increasing" true (Gtime.compare t !prev > 0);
    prev := t
  done

let test_gtime_witness_pushes_clock () =
  let clock = Lamport.create () in
  Gtime.witness clock (Gtime.make ~counter:41 ~site:9);
  let t = Gtime.next clock ~site:0 in
  checkb "next exceeds witnessed" true (t.Gtime.counter > 41)

let prop_gtime_order_is_total =
  QCheck.Test.make ~name:"gtime compare is a total order" ~count:500
    QCheck.(triple (pair small_nat small_nat) (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((c1, s1), (c2, s2), (c3, s3)) ->
      let a = Gtime.make ~counter:c1 ~site:s1 in
      let b = Gtime.make ~counter:c2 ~site:s2 in
      let c = Gtime.make ~counter:c3 ~site:s3 in
      let antisym = not (Gtime.compare a b < 0 && Gtime.compare b a < 0) in
      let trans =
        if Gtime.compare a b <= 0 && Gtime.compare b c <= 0 then
          Gtime.compare a c <= 0
        else true
      in
      antisym && trans)

(* --- Vclock --- *)

let test_vclock_basic () =
  let v = Vclock.create ~sites:3 in
  checki "initial" 0 (Vclock.get v ~site:0);
  let v1 = Vclock.tick v ~site:1 in
  checki "ticked" 1 (Vclock.get v1 ~site:1);
  checki "others untouched" 0 (Vclock.get v1 ~site:0);
  checki "original immutable" 0 (Vclock.get v ~site:1)

let test_vclock_relations () =
  let base = Vclock.create ~sites:2 in
  let a = Vclock.tick base ~site:0 in
  let b = Vclock.tick base ~site:1 in
  let ab = Vclock.merge a b in
  checkb "a before ab" true (Vclock.relate a ab = Vclock.Before);
  checkb "ab after b" true (Vclock.relate ab b = Vclock.After);
  checkb "a concurrent b" true (Vclock.relate a b = Vclock.Concurrent);
  checkb "a equal a" true (Vclock.relate a a = Vclock.Equal)

let test_vclock_merge_is_lub () =
  let base = Vclock.create ~sites:3 in
  let a = Vclock.tick (Vclock.tick base ~site:0) ~site:0 in
  let b = Vclock.tick base ~site:2 in
  let m = Vclock.merge a b in
  checkb "a <= m" true (Vclock.leq a m);
  checkb "b <= m" true (Vclock.leq b m);
  checki "component max" 2 (Vclock.get m ~site:0);
  checki "component max" 1 (Vclock.get m ~site:2)

let test_vclock_size_mismatch () =
  let a = Vclock.create ~sites:2 and b = Vclock.create ~sites:3 in
  checkb "raises" true
    (try
       ignore (Vclock.merge a b);
       false
     with Invalid_argument _ -> true)

let vclock_gen sites =
  QCheck.Gen.(
    map
      (fun ticks ->
        List.fold_left
          (fun v site -> Vclock.tick v ~site)
          (Vclock.create ~sites) ticks)
      (list_size (int_range 0 12) (int_range 0 (sites - 1))))

let prop_vclock_leq_partial_order =
  let gen = QCheck.make (QCheck.Gen.pair (vclock_gen 4) (vclock_gen 4)) in
  QCheck.Test.make ~name:"vclock leq: reflexive + antisymmetric" ~count:300 gen
    (fun (a, b) ->
      Vclock.leq a a
      && if Vclock.leq a b && Vclock.leq b a then Vclock.equal a b else true)

let prop_vclock_merge_commutes =
  let gen = QCheck.make (QCheck.Gen.pair (vclock_gen 4) (vclock_gen 4)) in
  QCheck.Test.make ~name:"vclock merge commutes" ~count:300 gen (fun (a, b) ->
      Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

(* --- Sequencer --- *)

let test_sequencer_dense () =
  let s = Sequencer.create () in
  checki "issued 0" 0 (Sequencer.issued s);
  checki "1" 1 (Sequencer.next s);
  checki "2" 2 (Sequencer.next s);
  checki "3" 3 (Sequencer.next s);
  checki "issued 3" 3 (Sequencer.issued s)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_gtime_order_is_total; prop_vclock_leq_partial_order; prop_vclock_merge_commutes ]

let () =
  Alcotest.run "esr_clock"
    [
      ( "lamport",
        [
          Alcotest.test_case "tick" `Quick test_lamport_tick;
          Alcotest.test_case "witness" `Quick test_lamport_witness;
          Alcotest.test_case "happened-before" `Quick test_lamport_happened_before;
        ] );
      ( "gtime",
        [
          Alcotest.test_case "total order" `Quick test_gtime_total_order;
          Alcotest.test_case "next monotone" `Quick test_gtime_next_monotone;
          Alcotest.test_case "witness pushes clock" `Quick
            test_gtime_witness_pushes_clock;
        ] );
      ( "vclock",
        [
          Alcotest.test_case "basic" `Quick test_vclock_basic;
          Alcotest.test_case "relations" `Quick test_vclock_relations;
          Alcotest.test_case "merge is lub" `Quick test_vclock_merge_is_lub;
          Alcotest.test_case "size mismatch" `Quick test_vclock_size_mismatch;
        ] );
      ("sequencer", [ Alcotest.test_case "dense tickets" `Quick test_sequencer_dense ]);
      ("properties", qcheck_tests);
    ]
