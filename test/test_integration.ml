(* Whole-system integration tests: every method driven by adversarial
   workloads (lossy, duplicating, reordering networks; partitions), then
   checked against the paper's guarantees — convergence at quiescence,
   ε-serial per-site histories, epsilon bounds, availability shapes. *)

module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Stats = Esr_util.Stats
module Store = Esr_store.Store
module Epsilon = Esr_core.Epsilon
module Conflict = Esr_core.Conflict
module Esr_check = Esr_core.Esr_check
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Spec = Esr_workload.Spec
module Scenario = Esr_workload.Scenario

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let chaos_net =
  {
    Net.latency = Dist.Uniform (2.0, 120.0);
    drop_probability = 0.08;
    duplicate_probability = 0.05;
  }

let spec_for name =
  let base =
    {
      Spec.default with
      Spec.duration = 1_500.0;
      update_rate = 0.04;
      query_rate = 0.04;
      n_keys = 12;
      ops_per_update = (if name = "QUORUM" then 1 else 2);
      epsilon = Epsilon.Unlimited;
      profile =
        (match name with
        | "RITU" | "QUORUM" -> Spec.Blind_set
        | _ -> Spec.Additive);
    }
  in
  base

(* --- E3-style convergence: every method, hostile network --- *)

let convergence_case name () =
  let r =
    Scenario.run ~seed:101 ~net_config:chaos_net ~sites:4 ~method_name:name
      (spec_for name)
  in
  checkb "settled" true r.Scenario.settled;
  checkb "converged at quiescence" true r.Scenario.converged;
  checkb "committed work" true (r.Scenario.committed > 0);
  checki "all queries served" r.Scenario.submitted_queries r.Scenario.served

let convergence_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " converges under chaos") `Slow
        (convergence_case name))
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* Convergence additionally means: final state equals the serial
   application of exactly the committed updates (checked for the additive
   profile, where the committed sum is order-independent). *)
let test_convergence_matches_committed_effects () =
  List.iter
    (fun name ->
      let r =
        Scenario.run ~seed:77 ~net_config:chaos_net ~sites:3 ~method_name:name
          (spec_for name)
      in
      checkb (name ^ " value error zero at quiescence") true r.Scenario.converged)
    [ "ORDUP"; "COMMU"; "COMPE" ]

(* --- per-site histories are ε-serial (ESR checker in the loop) --- *)

let history_case ~mode name () =
  let h =
    Harness.create ~net_config:chaos_net ~seed:303 ~sites:3 ~method_name:name ()
  in
  let prng = Esr_util.Prng.create 909 in
  for i = 0 to 39 do
    let origin = i mod 3 in
    let key = Printf.sprintf "k%d" (Esr_util.Prng.int prng 4) in
    (match name with
    | "RITU" ->
        Harness.submit_update h ~origin
          [ Intf.Set (key, Esr_store.Value.int i) ]
          ignore
    | _ -> Harness.submit_update h ~origin [ Intf.Add (key, 1) ] ignore);
    if i mod 2 = 0 then
      Harness.submit_query h ~site:((i + 1) mod 3) ~keys:[ key; "k0" ]
        ~epsilon:(Epsilon.Limit 3) ignore
  done;
  checkb "settled" true (Harness.settle h);
  for s = 0 to 2 do
    checkb
      (Printf.sprintf "%s site %d ε-serial" name s)
      true
      (Esr_check.is_epsilon_serial ~mode (Harness.history h ~site:s))
  done

let history_tests =
  [
    Alcotest.test_case "ORDUP histories ε-serial (classic)" `Slow
      (history_case ~mode:Conflict.Classic "ORDUP");
    Alcotest.test_case "COMMU histories ε-serial (semantic)" `Slow
      (history_case ~mode:Conflict.Semantic "COMMU");
    Alcotest.test_case "RITU histories ε-serial (semantic)" `Slow
      (history_case ~mode:Conflict.Semantic "RITU");
    Alcotest.test_case "2PC histories ε-serial (classic)" `Slow
      (history_case ~mode:Conflict.Classic "2PC");
  ]

(* --- epsilon bounds hold under load (E2 shape) --- *)

let test_epsilon_bound_holds_per_query () =
  List.iter
    (fun (name, eps) ->
      let spec =
        { (spec_for name) with Spec.epsilon = Epsilon.Limit eps; query_rate = 0.08 }
      in
      let r =
        Scenario.run ~seed:505 ~net_config:chaos_net ~sites:4 ~method_name:name spec
      in
      let worst =
        if Stats.count r.Scenario.charged = 0 then 0.0 else Stats.max r.Scenario.charged
      in
      checkb
        (Printf.sprintf "%s: max charged %.0f <= eps %d" name worst eps)
        true
        (worst <= float_of_int eps))
    [ ("ORDUP", 2); ("COMMU", 3); ("RITU", 1) ]

let test_epsilon_zero_gives_zero_error_ordup () =
  (* ε=0 ORDUP queries always take the consistent path: exact answers. *)
  let spec =
    { (spec_for "ORDUP") with Spec.epsilon = Epsilon.Limit 0; query_rate = 0.06 }
  in
  let r = Scenario.run ~seed:606 ~sites:4 ~method_name:"ORDUP" spec in
  checkb "all served" true (r.Scenario.served = r.Scenario.submitted_queries);
  let worst = if Stats.count r.Scenario.charged = 0 then 0.0 else Stats.max r.Scenario.charged in
  Alcotest.check (Alcotest.float 1e-9) "zero units" 0.0 worst

let test_epsilon_tradeoff_latency () =
  (* Smaller ε must not make queries faster (they wait more). *)
  let lat eps =
    let spec =
      { (spec_for "ORDUP") with Spec.epsilon = eps; query_rate = 0.06; update_rate = 0.08 }
    in
    let r =
      Scenario.run ~seed:707 ~net_config:chaos_net ~sites:4 ~method_name:"ORDUP" spec
    in
    Stats.mean r.Scenario.query_latency
  in
  let strict = lat (Epsilon.Limit 0) in
  let loose = lat Epsilon.Unlimited in
  checkb
    (Printf.sprintf "strict (%.2f) >= loose (%.2f)" strict loose)
    true (strict >= loose)

(* --- partition availability (E4 shape) --- *)

let test_partition_async_stays_available_sync_stalls () =
  let partition =
    { Scenario.p_start = 300.0; p_end = 900.0; groups = [ [ 0; 1 ]; [ 2; 3 ] ] }
  in
  let run name =
    let spec =
      { (spec_for name) with Spec.duration = 1_200.0; update_rate = 0.05 }
    in
    let config = { Intf.default_config with twopc_timeout = 10_000.0 } in
    Scenario.run ~seed:808 ~config ~sites:4 ~method_name:name ~partition spec
  in
  let commu = run "COMMU" in
  let twopc = run "2PC" in
  let window r =
    match r.Scenario.window with Some w -> w | None -> Alcotest.fail "window"
  in
  let wc = window commu and wt = window twopc in
  checkb "COMMU commits during partition" true (wc.Scenario.w_updates_committed > 0);
  checki "2PC commits nothing during partition" 0 wt.Scenario.w_updates_committed;
  checkb "COMMU converges after heal" true commu.Scenario.converged;
  checkb "2PC converges after heal" true twopc.Scenario.converged

let test_partition_quorum_minority_blocked () =
  (* 1-vs-4 split: the majority side keeps committing, the minority site's
     updates stall until heal. *)
  let partition =
    { Scenario.p_start = 200.0; p_end = 800.0; groups = [ [ 0 ]; [ 1; 2; 3; 4 ] ] }
  in
  let spec =
    { (spec_for "QUORUM") with Spec.duration = 1_000.0; update_rate = 0.05 }
  in
  let r = Scenario.run ~seed:909 ~sites:5 ~method_name:"QUORUM" ~partition spec in
  checkb "settled after heal" true r.Scenario.settled;
  checkb "converged" true r.Scenario.converged;
  let w = match r.Scenario.window with Some w -> w | None -> Alcotest.fail "w" in
  checkb "majority side kept committing" true (w.Scenario.w_updates_committed > 0);
  checkb "but not everything submitted" true
    (w.Scenario.w_updates_committed < w.Scenario.w_updates_submitted)

(* --- site crash and recovery --- *)

(* The stable queues journal unacknowledged MSets, so a site that crashes
   mid-propagation catches up after recovery and the system still
   converges (the paper's §2.2 robustness "in face of … site failures"). *)
let crash_recovery_case name () =
  let h =
    Harness.create ~seed:404 ~sites:4 ~method_name:name
      ~config:{ Intf.default_config with Intf.twopc_timeout = 30_000.0 }
      ()
  in
  let engine = Harness.engine h in
  let net = Harness.net h in
  let committed = ref 0 in
  let prng = Esr_util.Prng.create 8 in
  for i = 0 to 39 do
    ignore
      (Esr_sim.Engine.schedule_at engine
         ~time:(float_of_int i *. 50.0)
         (fun () ->
           (* Crashed sites cannot originate work; pick a live one. *)
           let origin =
             let candidate = Esr_util.Prng.int prng 4 in
             if Net.site_up net candidate then candidate else 0
           in
           let intents =
             match name with
             | "RITU" | "QUORUM" -> [ Intf.Set ("k", Esr_store.Value.int i) ]
             | _ -> [ Intf.Add ("k", 1) ]
           in
           Harness.submit_update h ~origin intents (function
             | Intf.Committed _ -> incr committed
             | Intf.Rejected _ -> ())))
  done;
  ignore (Esr_sim.Engine.schedule_at engine ~time:500.0 (fun () -> Net.crash net 2));
  ignore (Esr_sim.Engine.schedule_at engine ~time:1_500.0 (fun () -> Net.recover net 2));
  checkb "settled" true (Harness.settle h);
  checkb "committed through the crash" true (!committed > 0);
  checkb "converged including the recovered site" true (Harness.converged h)

let crash_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " survives site crash") `Slow
        (crash_recovery_case name))
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* --- determinism across the whole stack --- *)

let test_full_stack_determinism () =
  List.iter
    (fun name ->
      let spec = spec_for name in
      let a = Scenario.run ~seed:42 ~net_config:chaos_net ~sites:4 ~method_name:name spec in
      let b = Scenario.run ~seed:42 ~net_config:chaos_net ~sites:4 ~method_name:name spec in
      checki (name ^ " committed") a.Scenario.committed b.Scenario.committed;
      Alcotest.check (Alcotest.float 0.0) (name ^ " quiesce")
        a.Scenario.quiesce_time b.Scenario.quiesce_time;
      Alcotest.check (Alcotest.float 0.0)
        (name ^ " mean query latency")
        (Stats.mean a.Scenario.query_latency)
        (Stats.mean b.Scenario.query_latency))
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* --- whole-stack fuzz: random parameters, the guarantees must hold --- *)

let prop_fuzz_convergence =
  QCheck.Test.make ~name:"random scenarios settle, converge, respect epsilon"
    ~count:25
    QCheck.(
      quad (int_range 1 100_000) (int_range 2 6) (int_range 0 3)
        (pair (int_range 0 5) bool))
    (fun (seed, sites, method_idx, (eps, lossy)) ->
      let name = List.nth [ "ORDUP"; "COMMU"; "RITU"; "COMPE" ] method_idx in
      let net_config =
        if lossy then chaos_net
        else { Net.default_config with Net.latency = Dist.Uniform (1.0, 60.0) }
      in
      let spec =
        {
          (spec_for name) with
          Spec.duration = 800.0;
          update_rate = 0.05;
          query_rate = 0.05;
          n_keys = 6;
          epsilon = Epsilon.Limit eps;
        }
      in
      let r = Scenario.run ~seed ~net_config ~sites ~method_name:name spec in
      let worst =
        if Stats.count r.Scenario.charged = 0 then 0.0
        else Stats.max r.Scenario.charged
      in
      r.Scenario.settled && r.Scenario.converged
      && r.Scenario.served = r.Scenario.submitted_queries
      && worst <= float_of_int eps)

(* --- cross-method equivalence: all additive methods agree on final state --- *)

let test_additive_methods_agree_when_nothing_aborts () =
  (* Same submission schedule, no failures: ORDUP, COMMU, COMPE(p=0) and
     2PC must all end in the same replicated state. *)
  let final name =
    let h = Harness.create ~seed:11 ~sites:3 ~method_name:name () in
    for i = 1 to 12 do
      Harness.submit_update h ~origin:(i mod 3)
        [ Intf.Add ("x", i); Intf.Add ("y", 2 * i) ]
        ignore
    done;
    checkb (name ^ " settled") true (Harness.settle h);
    (Store.get (Harness.store h ~site:0) "x", Store.get (Harness.store h ~site:0) "y")
  in
  let expected = final "ORDUP" in
  List.iter
    (fun name ->
      let got = final name in
      checkb (name ^ " same x") true (fst got = fst expected);
      checkb (name ^ " same y") true (snd got = snd expected))
    [ "COMMU"; "COMPE"; "2PC" ]

(* --- integrity constraints (the §2.1 consistency statement) --- *)

(* Update ETs preserve consistency: multi-key transfer ETs keep
   sum(x, y) = 0 invariant.  Strict queries must always see the invariant
   hold mid-run; at quiescence every replica satisfies it exactly. *)
let invariant_case name () =
  let h =
    Harness.create ~net_config:chaos_net ~seed:606 ~sites:4 ~method_name:name
      ~config:{ Intf.default_config with Intf.twopc_timeout = 30_000.0 }
      ()
  in
  let engine = Harness.engine h in
  let prng = Esr_util.Prng.create 33 in
  for i = 0 to 59 do
    ignore
      (Esr_sim.Engine.schedule_at engine
         ~time:(float_of_int i *. 40.0)
         (fun () ->
           let d = 1 + Esr_util.Prng.int prng 20 in
           Harness.submit_update h
             ~origin:(Esr_util.Prng.int prng 4)
             [ Intf.Add ("x", d); Intf.Add ("y", -d) ]
             ignore))
  done;
  let strict_violations = ref 0 and strict_served = ref 0 in
  for i = 1 to 8 do
    ignore
      (Esr_sim.Engine.schedule_at engine
         ~time:(float_of_int i *. 300.0)
         (fun () ->
           Harness.submit_query h
             ~site:(Esr_util.Prng.int prng 4)
             ~keys:[ "x"; "y" ] ~epsilon:(Epsilon.Limit 0) (fun o ->
               incr strict_served;
               let get k =
                 Option.value
                   (Esr_store.Value.as_int (List.assoc k o.Intf.values))
                   ~default:0
               in
               if get "x" + get "y" <> 0 then incr strict_violations)))
  done;
  checkb "settled" true (Harness.settle h);
  checki "all strict audits served" 8 !strict_served;
  checki (name ^ ": strict audits never see a broken invariant") 0
    !strict_violations;
  for site = 0 to 3 do
    let store = Harness.store h ~site in
    let get k =
      Option.value (Esr_store.Value.as_int (Store.get store k)) ~default:0
    in
    checki (Printf.sprintf "%s site %d invariant at quiescence" name site) 0
      (get "x" + get "y")
  done

let invariant_tests =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " preserves integrity constraints") `Slow
        (invariant_case name))
    [ "ORDUP"; "COMMU"; "COMPE"; "2PC" ]

(* --- soak: larger scale, longer run --- *)

let test_soak_large_system () =
  List.iter
    (fun name ->
      let spec =
        {
          (spec_for name) with
          Spec.duration = 20_000.0;
          update_rate = 0.2;
          query_rate = 0.1;
          n_keys = 64;
        }
      in
      let r =
        Scenario.run ~seed:1234 ~net_config:chaos_net ~sites:12 ~method_name:name
          spec
      in
      checkb (name ^ " settled") true r.Scenario.settled;
      checkb (name ^ " converged") true r.Scenario.converged;
      checkb
        (Printf.sprintf "%s committed %d of %d" name r.Scenario.committed
           r.Scenario.submitted_updates)
        true
        (r.Scenario.committed = r.Scenario.submitted_updates);
      checki (name ^ " all queries served") r.Scenario.submitted_queries
        r.Scenario.served)
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE" ]

(* --- flush_every drives mid-run progress for decentralized ordering --- *)

let test_flush_every_improves_lamport_latency () =
  let config = { Intf.default_config with Intf.ordup_ordering = `Lamport } in
  let spec =
    { (spec_for "ORDUP") with Spec.duration = 2_000.0; update_rate = 0.03 }
  in
  let slow = Scenario.run ~seed:5 ~config ~sites:4 ~method_name:"ORDUP" spec in
  let fast =
    Scenario.run ~seed:5 ~config ~sites:4 ~method_name:"ORDUP"
      ~flush_every:50.0 spec
  in
  checkb "both converge" true (slow.Scenario.converged && fast.Scenario.converged);
  checkb
    (Printf.sprintf "heartbeats cut commit latency (%.1f -> %.1f)"
       (Stats.mean slow.Scenario.update_latency)
       (Stats.mean fast.Scenario.update_latency))
    true
    (Stats.mean fast.Scenario.update_latency
    < Stats.mean slow.Scenario.update_latency)

let () =
  Alcotest.run "integration"
    [
      ("convergence", convergence_tests);
      ( "convergence effects",
        [
          Alcotest.test_case "matches committed effects" `Slow
            test_convergence_matches_committed_effects;
        ] );
      ("histories", history_tests);
      ( "epsilon",
        [
          Alcotest.test_case "bound holds per query" `Slow
            test_epsilon_bound_holds_per_query;
          Alcotest.test_case "ε=0 gives zero units" `Slow
            test_epsilon_zero_gives_zero_error_ordup;
          Alcotest.test_case "latency tradeoff" `Slow test_epsilon_tradeoff_latency;
        ] );
      ( "partition",
        [
          Alcotest.test_case "async available, sync stalls" `Slow
            test_partition_async_stays_available_sync_stalls;
          Alcotest.test_case "quorum minority blocked" `Slow
            test_partition_quorum_minority_blocked;
        ] );
      ("crash recovery", crash_tests);
      ( "determinism",
        [ Alcotest.test_case "full stack deterministic" `Slow test_full_stack_determinism ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_fuzz_convergence ]);
      ("integrity", invariant_tests);
      ( "soak",
        [
          Alcotest.test_case "12 sites, 4000 updates, chaos" `Slow
            test_soak_large_system;
          Alcotest.test_case "flush_every heartbeats" `Slow
            test_flush_every_improves_lamport_latency;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "additive methods agree" `Slow
            test_additive_methods_agree_when_nothing_aborts;
        ] );
    ]
