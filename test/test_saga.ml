(* Saga tests (COMPE, paper §4.2): multi-step update ETs whose
   lock-counters are held until the saga ends, with backward recovery
   (revocation of committed steps) when a later step aborts. *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Prng = Esr_util.Prng
module Value = Esr_store.Value
module Store = Esr_store.Store
module Epsilon = Esr_core.Epsilon
module Intf = Esr_replica.Intf
module Compe = Esr_replica.Compe

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let value_t = Alcotest.testable Value.pp Value.equal

let mk ?(config = Intf.default_config) ?(net_config = Net.default_config)
    ?(seed = 5) ?(sites = 3) () =
  let engine = Engine.create () in
  let prng = Prng.create seed in
  let net = Net.create ~config:net_config engine ~sites ~prng:(Prng.split prng) in
  let env = Intf.make_env ~config ~engine ~net ~prng () in
  (engine, Compe.create env)

let settle engine sys =
  let rec loop n =
    if n = 0 then false
    else begin
      Engine.run engine;
      if Compe.quiescent sys then true
      else begin
        Compe.flush sys;
        loop (n - 1)
      end
    end
  in
  loop 10

let stat sys name =
  match List.assoc_opt name (Compe.stats sys) with
  | Some v -> int_of_float v
  | None -> Alcotest.fail ("missing stat " ^ name)

let test_saga_commits_all_steps () =
  let config = { Intf.default_config with Intf.compe_abort_probability = 0.0 } in
  let engine, sys = mk ~config () in
  let outcome = ref None in
  Compe.submit_saga sys ~origin:0
    [
      [ Intf.Add ("stock", -2) ];
      [ Intf.Add ("reserved", 2) ];
      [ Intf.Add ("shipped", 2) ];
    ]
    (fun o -> outcome := Some o);
  checkb "settled" true (settle engine sys);
  (match !outcome with
  | Some (Intf.Committed _) -> ()
  | Some (Intf.Rejected m) -> Alcotest.fail m
  | None -> Alcotest.fail "saga never finished");
  for site = 0 to 2 do
    Alcotest.check value_t "stock" (Value.int (-2)) (Store.get (Compe.store sys ~site) "stock");
    Alcotest.check value_t "reserved" (Value.int 2) (Store.get (Compe.store sys ~site) "reserved");
    Alcotest.check value_t "shipped" (Value.int 2) (Store.get (Compe.store sys ~site) "shipped")
  done;
  checkb "converged" true (Compe.converged sys);
  checki "one saga" 1 (stat sys "sagas");
  checki "no revokes" 0 (stat sys "revokes")

let test_saga_holds_counters_until_end () =
  (* Counters of a committed step stay up until the saga ends, so a query
     between step decisions is still charged for it — the conservative
     upper bound of §4.2. *)
  let config =
    { Intf.default_config with Intf.compe_abort_probability = 0.0; compe_decision_delay = 100.0 }
  in
  let engine, sys = mk ~config () in
  Compe.submit_saga sys ~origin:0
    [ [ Intf.Add ("x", 1) ]; [ Intf.Add ("y", 1) ] ]
    ignore;
  let mid_units = ref (-1) in
  (* t=150: step 1 (on x) has committed, step 2 (on y) is undecided; a
     query on x at the origin must still be charged for step 1. *)
  ignore
    (Engine.schedule engine ~delay:150.0 (fun () ->
         Compe.submit_query sys ~site:0 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
           (fun o -> mid_units := o.Intf.charged)));
  checkb "settled" true (settle engine sys);
  checki "mid-saga query charged for the decided step" 1 !mid_units;
  (* Contrast: two independent updates release their counters at their own
     completion, so the same probe sees a zero charge. *)
  let engine2, sys2 = mk ~config () in
  Compe.submit_update sys2 ~origin:0 [ Intf.Add ("x", 1) ] ignore;
  ignore
    (Engine.schedule engine2 ~delay:150.0 (fun () ->
         Compe.submit_update sys2 ~origin:0 [ Intf.Add ("y", 1) ] ignore));
  let solo_units = ref (-1) in
  ignore
    (Engine.schedule engine2 ~delay:160.0 (fun () ->
         Compe.submit_query sys2 ~site:0 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
           (fun o -> solo_units := o.Intf.charged)));
  checkb "settled" true (settle engine2 sys2);
  checki "independent update already released" 0 !solo_units

let test_saga_abort_at_first_step_is_clean () =
  let config = { Intf.default_config with Intf.compe_abort_probability = 1.0 } in
  let engine, sys = mk ~config () in
  let outcome = ref None in
  Compe.submit_saga sys ~origin:1
    [ [ Intf.Add ("a", 5) ]; [ Intf.Add ("b", 5) ] ]
    (fun o -> outcome := Some o);
  checkb "settled" true (settle engine sys);
  (match !outcome with
  | Some (Intf.Rejected m) ->
      Alcotest.(check string) "aborted at step 1" "saga aborted at step 1" m
  | Some (Intf.Committed _) -> Alcotest.fail "cannot commit with p=1"
  | None -> Alcotest.fail "saga never finished");
  for site = 0 to 2 do
    Alcotest.check value_t "a reverted" Value.zero (Store.get (Compe.store sys ~site) "a");
    Alcotest.check value_t "b untouched" Value.zero (Store.get (Compe.store sys ~site) "b")
  done;
  checkb "converged" true (Compe.converged sys);
  checki "second step never launched" 0 (stat sys "revokes")

(* Drive many sagas under a mixed abort rate: committed sagas' effects and
   only those must survive, revocation must actually fire, and the system
   must converge. *)
let test_saga_mixed_outcomes_converge () =
  let config =
    {
      Intf.default_config with
      Intf.compe_abort_probability = 0.35;
      compe_decision_delay = 40.0;
    }
  in
  let net_config = { Net.default_config with Net.latency = Dist.Uniform (2.0, 30.0) } in
  let engine, sys = mk ~config ~net_config ~seed:31 () in
  let committed_total = ref 0 in
  let prng = Prng.create 77 in
  for i = 0 to 29 do
    let amount = 1 + Prng.int prng 9 in
    ignore
      (Engine.schedule engine ~delay:(float_of_int i *. 120.0) (fun () ->
           Compe.submit_saga sys ~origin:(i mod 3)
             [ [ Intf.Add ("ledger", amount) ]; [ Intf.Add ("ledger", amount) ] ]
             (function
               | Intf.Committed _ -> committed_total := !committed_total + (2 * amount)
               | Intf.Rejected _ -> ())))
  done;
  checkb "settled" true (settle engine sys);
  checkb "some sagas aborted" true (stat sys "saga_aborts" > 0);
  checkb "some sagas committed" true (!committed_total > 0);
  checkb "revocation fired" true (stat sys "revokes" > 0);
  for site = 0 to 2 do
    Alcotest.check value_t
      (Printf.sprintf "ledger at site %d" site)
      (Value.int !committed_total)
      (Store.get (Compe.store sys ~site) "ledger")
  done;
  checkb "converged" true (Compe.converged sys)

let test_saga_revoke_non_commutative_step () =
  (* A committed Mul step revoked after later commutative traffic forces
     the full-rollback path during revocation. *)
  let config =
    { Intf.default_config with Intf.compe_abort_probability = 0.5; compe_decision_delay = 50.0 }
  in
  let engine, sys = mk ~config ~seed:13 () in
  let prng = Prng.create 3 in
  for i = 0 to 19 do
    ignore
      (Engine.schedule engine ~delay:(float_of_int i *. 80.0) (fun () ->
           Compe.submit_saga sys ~origin:(i mod 3)
             [ [ Intf.Add ("v", 1 + Prng.int prng 5) ]; [ Intf.Mul ("v", 2) ] ]
             ignore))
  done;
  checkb "settled" true (settle engine sys);
  checkb "converged" true (Compe.converged sys);
  checkb "sagas aborted" true (stat sys "saga_aborts" > 0)

(* Internal-consistency invariant: every store mutation is a log entry,
   so folding a site's remaining log over an empty store reproduces its
   store exactly — the property that keeps full-rollback before-image
   chains accurate (a bug here once made replicas diverge). *)
let test_log_fold_invariant () =
  let config =
    {
      Intf.default_config with
      Intf.compe_abort_probability = 0.3;
      compe_decision_delay = 60.0;
    }
  in
  let net_config = { Net.default_config with Net.latency = Dist.Uniform (2.0, 60.0) } in
  let engine, sys = mk ~config ~net_config ~seed:91 () in
  let prng = Prng.create 17 in
  for i = 0 to 39 do
    ignore
      (Engine.schedule engine ~delay:(float_of_int i *. 70.0) (fun () ->
           if i mod 7 = 6 then
             Compe.submit_update sys ~origin:(i mod 3) [ Intf.Mul ("m", 2) ] ignore
           else
             Compe.submit_saga sys ~origin:(i mod 3)
               [ [ Intf.Add ("m", 1 + Prng.int prng 4) ]; [ Intf.Add ("n", 1) ] ]
               ignore))
  done;
  checkb "settled" true (settle engine sys);
  for site = 0 to 2 do
    let folded = Store.create () in
    List.iter
      (fun (_, _, ops) ->
        List.iter
          (fun (k, op) ->
            match Store.apply folded k op with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "fold failed")
          ops)
      (Compe.log_entries sys ~site);
    checkb
      (Printf.sprintf "site %d: store = fold(log)" site)
      true
      (Store.equal folded (Compe.store sys ~site))
  done;
  checkb "converged" true (Compe.converged sys)

let test_saga_empty_rejected () =
  let engine, sys = mk () in
  let rejections = ref 0 in
  Compe.submit_saga sys ~origin:0 [] (function
    | Intf.Rejected _ -> incr rejections
    | Intf.Committed _ -> ());
  Compe.submit_saga sys ~origin:0 [ [ Intf.Add ("x", 1) ]; [] ] (function
    | Intf.Rejected _ -> incr rejections
    | Intf.Committed _ -> ());
  checkb "settled" true (settle engine sys);
  checki "both rejected" 2 !rejections

let () =
  Alcotest.run "esr_saga"
    [
      ( "sagas",
        [
          Alcotest.test_case "commits all steps" `Quick test_saga_commits_all_steps;
          Alcotest.test_case "holds counters until end" `Quick
            test_saga_holds_counters_until_end;
          Alcotest.test_case "abort at first step" `Quick
            test_saga_abort_at_first_step_is_clean;
          Alcotest.test_case "mixed outcomes converge" `Quick
            test_saga_mixed_outcomes_converge;
          Alcotest.test_case "revokes non-commutative step" `Quick
            test_saga_revoke_non_commutative_step;
          Alcotest.test_case "store = fold(log) invariant" `Quick
            test_log_fold_invariant;
          Alcotest.test_case "empty saga rejected" `Quick test_saga_empty_rejected;
        ] );
    ]
