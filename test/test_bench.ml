(* Smoke tests for the esr_bench library: the table generators and the
   cheapest experiments must run without raising (their numeric content
   is validated by the unit/integration suites; here we guard the
   generators themselves, which dune runtest would otherwise never
   execute). *)

let run_silently f () =
  (* The generators print their tables; divert stdout so test output
     stays readable. *)
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  let finish () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close devnull
  in
  (try f ()
   with exn ->
     finish ();
     raise exn);
  finish ()

let () =
  Alcotest.run "esr_bench"
    [
      ( "generators",
        [
          Alcotest.test_case "paper tables" `Quick
            (run_silently Esr_bench.Tables.run_all);
          Alcotest.test_case "a2 squeue ablation" `Quick
            (run_silently (fun () ->
                 match List.assoc_opt "a2_squeue_retry" Esr_bench.Experiments.all with
                 | Some f -> f ()
                 | None -> Alcotest.fail "a2 target missing"));
          Alcotest.test_case "e12 partition merge" `Slow
            (run_silently (fun () ->
                 match
                   List.assoc_opt "e12_partition_merge" Esr_bench.Experiments.all
                 with
                 | Some f -> f ()
                 | None -> Alcotest.fail "e12 target missing"));
        ] );
    ]
