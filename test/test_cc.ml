(* Tests for Esr_cc: the paper's lock compatibility tables (Tables 2 and 3)
   verified entry by entry, the lock manager, lock-counters, timestamp
   ordering, and the wait-for graph. *)

module Op = Esr_store.Op
module Value = Esr_store.Value
module Lock_table = Esr_cc.Lock_table
module Lock_mgr = Esr_cc.Lock_mgr
module Lock_counter = Esr_cc.Lock_counter
module Tso = Esr_cc.Tso
module Waitfor = Esr_cc.Waitfor
module Prng = Esr_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let verdict_t =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Lock_table.verdict_to_string v))
    ( = )

(* --- Lock tables: the paper's Tables 2 and 3, entry by entry --- *)

let test_standard_table () =
  let check_entry held requested expected =
    Alcotest.check verdict_t "entry" expected
      (Lock_table.check Lock_table.standard ~held ~requested)
  in
  check_entry Lock_table.R Lock_table.R Lock_table.Compatible;
  check_entry Lock_table.R Lock_table.W Lock_table.Conflict;
  check_entry Lock_table.W Lock_table.R Lock_table.Conflict;
  check_entry Lock_table.W Lock_table.W Lock_table.Conflict

(* Paper Table 2: rows/columns RU, WU, RQ.
       RU  WU  RQ
   RU  OK      OK
   WU          OK
   RQ  OK  OK  OK  *)
let test_table2_ordup () =
  let entry held requested =
    Lock_table.check Lock_table.ordup ~held ~requested
  in
  let ok = Lock_table.Compatible and no = Lock_table.Conflict in
  Alcotest.check verdict_t "RU/RU" ok (entry Lock_table.R_u Lock_table.R_u);
  Alcotest.check verdict_t "RU/WU" no (entry Lock_table.R_u Lock_table.W_u);
  Alcotest.check verdict_t "RU/RQ" ok (entry Lock_table.R_u Lock_table.R_q);
  Alcotest.check verdict_t "WU/RU" no (entry Lock_table.W_u Lock_table.R_u);
  Alcotest.check verdict_t "WU/WU" no (entry Lock_table.W_u Lock_table.W_u);
  Alcotest.check verdict_t "WU/RQ" ok (entry Lock_table.W_u Lock_table.R_q);
  Alcotest.check verdict_t "RQ/RU" ok (entry Lock_table.R_q Lock_table.R_u);
  Alcotest.check verdict_t "RQ/WU" ok (entry Lock_table.R_q Lock_table.W_u);
  Alcotest.check verdict_t "RQ/RQ" ok (entry Lock_table.R_q Lock_table.R_q)

(* Paper Table 3:
       RU    WU    RQ
   RU  OK    Comm  OK
   WU  Comm  Comm  OK
   RQ  OK    OK    OK  *)
let test_table3_commu () =
  let entry held requested =
    Lock_table.check Lock_table.commu ~held ~requested
  in
  let ok = Lock_table.Compatible and comm = Lock_table.If_commutes in
  Alcotest.check verdict_t "RU/RU" ok (entry Lock_table.R_u Lock_table.R_u);
  Alcotest.check verdict_t "RU/WU" comm (entry Lock_table.R_u Lock_table.W_u);
  Alcotest.check verdict_t "RU/RQ" ok (entry Lock_table.R_u Lock_table.R_q);
  Alcotest.check verdict_t "WU/RU" comm (entry Lock_table.W_u Lock_table.R_u);
  Alcotest.check verdict_t "WU/WU" comm (entry Lock_table.W_u Lock_table.W_u);
  Alcotest.check verdict_t "WU/RQ" ok (entry Lock_table.W_u Lock_table.R_q);
  Alcotest.check verdict_t "RQ/RU" ok (entry Lock_table.R_q Lock_table.R_u);
  Alcotest.check verdict_t "RQ/WU" ok (entry Lock_table.R_q Lock_table.W_u);
  Alcotest.check verdict_t "RQ/RQ" ok (entry Lock_table.R_q Lock_table.R_q)

let test_table_mode_domain () =
  checkb "ordup rejects plain R" true
    (try
       ignore (Lock_table.check Lock_table.ordup ~held:Lock_table.R ~requested:Lock_table.R_u);
       false
     with Invalid_argument _ -> true)

let test_resolve_commutativity () =
  let incr = Op.Incr 1 and mult = Op.Mult 2 in
  checkb "commuting WU/WU compatible" true
    (Lock_table.resolve Lock_table.commu
       ~held:(Lock_table.W_u, Some incr)
       ~requested:(Lock_table.W_u, Some (Op.Incr 5)));
  checkb "non-commuting WU/WU conflicts" false
    (Lock_table.resolve Lock_table.commu
       ~held:(Lock_table.W_u, Some incr)
       ~requested:(Lock_table.W_u, Some mult));
  checkb "missing op is conservative" false
    (Lock_table.resolve Lock_table.commu
       ~held:(Lock_table.W_u, None)
       ~requested:(Lock_table.W_u, Some incr));
  (* "few examples of commutativity between WU and RU": a read never
     commutes with an increment, so the Comm entry degenerates to
     conflict exactly as the paper notes. *)
  checkb "WU/RU comm degenerates" false
    (Lock_table.resolve Lock_table.commu
       ~held:(Lock_table.W_u, Some incr)
       ~requested:(Lock_table.R_u, Some Op.Read))

(* --- Lock manager --- *)

let test_mgr_grant_and_conflict () =
  let m = Lock_mgr.create () in
  checkb "grant" true (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W () = Lock_mgr.Granted);
  checkb "conflicting blocks" true
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.R () = Lock_mgr.Blocked);
  checkb "holds" true (Lock_mgr.holds m ~txn:1 ~key:"x");
  checki "queue length" 1 (Lock_mgr.queue_length m ~key:"x")

let test_mgr_shared_reads () =
  let m = Lock_mgr.create () in
  checkb "r1" true (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.R () = Lock_mgr.Granted);
  checkb "r2" true (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.R () = Lock_mgr.Granted);
  checki "two holders" 2 (List.length (Lock_mgr.holders m ~key:"x"))

let test_mgr_reentrant () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W ());
  checkb "own lock compatible" true
    (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.R () = Lock_mgr.Granted)

let test_mgr_release_wakes_fifo () =
  let m = Lock_mgr.create () in
  let woken = ref [] in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W ());
  ignore
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.W
       ~on_grant:(fun () -> woken := 2 :: !woken)
       ());
  ignore
    (Lock_mgr.acquire m ~txn:3 ~key:"x" ~mode:Lock_table.W
       ~on_grant:(fun () -> woken := 3 :: !woken)
       ());
  Lock_mgr.release_all m ~txn:1;
  Alcotest.(check (list int)) "only head granted" [ 2 ] !woken;
  Lock_mgr.release_all m ~txn:2;
  Alcotest.(check (list int)) "then next" [ 3; 2 ] !woken

let test_mgr_release_grants_compatible_prefix () =
  let m = Lock_mgr.create () in
  let woken = ref [] in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W ());
  ignore
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.R
       ~on_grant:(fun () -> woken := 2 :: !woken) ());
  ignore
    (Lock_mgr.acquire m ~txn:3 ~key:"x" ~mode:Lock_table.R
       ~on_grant:(fun () -> woken := 3 :: !woken) ());
  Lock_mgr.release_all m ~txn:1;
  Alcotest.(check (list int)) "both readers granted" [ 3; 2 ] !woken

let test_mgr_deadlock_detection () =
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W ());
  ignore (Lock_mgr.acquire m ~txn:2 ~key:"y" ~mode:Lock_table.W ());
  checkb "t1 waits for y" true
    (Lock_mgr.acquire m ~txn:1 ~key:"y" ~mode:Lock_table.W () = Lock_mgr.Blocked);
  checkb "t2 asking x would deadlock" true
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.W () = Lock_mgr.Deadlock);
  checki "deadlocks counted" 1 (Lock_mgr.counters m).Lock_mgr.deadlocks

let test_mgr_deadlock_victim_can_release () =
  let m = Lock_mgr.create () in
  let t1_got_y = ref false in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W ());
  ignore (Lock_mgr.acquire m ~txn:2 ~key:"y" ~mode:Lock_table.W ());
  ignore
    (Lock_mgr.acquire m ~txn:1 ~key:"y" ~mode:Lock_table.W
       ~on_grant:(fun () -> t1_got_y := true) ());
  ignore (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.W ());
  (* txn 2 aborts: its y lock is released and txn 1 proceeds. *)
  Lock_mgr.release_all m ~txn:2;
  checkb "t1 unblocked" true !t1_got_y

let test_mgr_commu_table_commuting_writes () =
  let m = Lock_mgr.create ~table:Lock_table.commu () in
  checkb "wu incr" true
    (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W_u ~op:(Op.Incr 1) ()
     = Lock_mgr.Granted);
  checkb "second commuting incr granted" true
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.W_u ~op:(Op.Incr 2) ()
     = Lock_mgr.Granted);
  checkb "non-commuting mult blocks" true
    (Lock_mgr.acquire m ~txn:3 ~key:"x" ~mode:Lock_table.W_u ~op:(Op.Mult 2) ()
     = Lock_mgr.Blocked)

let test_mgr_ordup_table_query_never_blocks () =
  let m = Lock_mgr.create ~table:Lock_table.ordup () in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.W_u ~op:(Op.Incr 1) ());
  checkb "query read sails through" true
    (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.R_q ~op:Op.Read ()
     = Lock_mgr.Granted)

let test_mgr_queued_fairness_blocks_new_compatible () =
  (* A new request compatible with holders but behind a queued writer must
     not jump the queue (no starvation). *)
  let m = Lock_mgr.create () in
  ignore (Lock_mgr.acquire m ~txn:1 ~key:"x" ~mode:Lock_table.R ());
  ignore (Lock_mgr.acquire m ~txn:2 ~key:"x" ~mode:Lock_table.W ());
  checkb "late reader queues behind writer" true
    (Lock_mgr.acquire m ~txn:3 ~key:"x" ~mode:Lock_table.R () = Lock_mgr.Blocked)

(* Safety invariant under random traffic: at no point do two transactions
   hold incompatible locks on the same key, and releasing everything
   always drains every queue. *)
let prop_mgr_holders_always_compatible =
  let table_gen =
    QCheck.Gen.oneofl [ Lock_table.standard; Lock_table.ordup; Lock_table.commu ]
  in
  let gen = QCheck.make QCheck.Gen.(pair table_gen (pair int (int_range 10 60))) in
  QCheck.Test.make ~name:"no incompatible co-holders, queues drain" ~count:150 gen
    (fun (table, (seed, steps)) ->
      let prng = Prng.create seed in
      let m = Lock_mgr.create ~table () in
      let keys = [| "a"; "b"; "c" |] in
      let et_modes = List.mem Lock_table.R_q (Lock_table.modes table) in
      let live = ref [] in
      let ok = ref true in
      let check_invariant () =
        Array.iter
          (fun key ->
            let holders = Lock_mgr.holders m ~key in
            List.iter
              (fun (t1, m1) ->
                List.iter
                  (fun (t2, m2) ->
                    if t1 < t2 then begin
                      (* Modes must be pairwise non-Conflict; If_commutes
                         entries were discharged at grant time, so only a
                         hard Conflict verdict is a violation. *)
                      let v = Lock_table.check table ~held:m1 ~requested:m2 in
                      if v = Lock_table.Conflict then ok := false
                    end)
                  holders)
              holders)
          keys
      in
      for txn = 1 to steps do
        let key = keys.(Prng.int prng 3) in
        let mode, op =
          if et_modes then
            match Prng.int prng 3 with
            | 0 -> (Lock_table.R_u, Some Op.Read)
            | 1 -> (Lock_table.W_u, Some (Op.Incr 1))
            | _ -> (Lock_table.R_q, Some Op.Read)
          else if Prng.int prng 2 = 0 then (Lock_table.R, Some Op.Read)
          else (Lock_table.W, Some (Op.Incr 1))
        in
        (match Lock_mgr.acquire m ~txn ~key ~mode ?op () with
        | Lock_mgr.Granted | Lock_mgr.Blocked -> live := txn :: !live
        | Lock_mgr.Deadlock -> ());
        check_invariant ();
        (* Occasionally finish a random live transaction. *)
        if Prng.int prng 3 = 0 && !live <> [] then begin
          let victim = List.nth !live (Prng.int prng (List.length !live)) in
          live := List.filter (fun t -> t <> victim) !live;
          Lock_mgr.release_all m ~txn:victim;
          check_invariant ()
        end
      done;
      List.iter (fun txn -> Lock_mgr.release_all m ~txn) !live;
      Array.iter
        (fun key ->
          if Lock_mgr.queue_length m ~key <> 0 then ok := false)
        keys;
      !ok)

(* --- Lock counters --- *)

let test_counter_basic () =
  let c = Lock_counter.create () in
  checki "zero" 0 (Lock_counter.count c "x");
  checki "one" 1 (Lock_counter.incr c "x");
  checki "two" 2 (Lock_counter.incr c "x");
  checki "one again" 1 (Lock_counter.decr c "x");
  checki "zero again" 0 (Lock_counter.decr c "x");
  checkb "underflow raises" true
    (try
       ignore (Lock_counter.decr c "x");
       false
     with Invalid_argument _ -> true)

let test_counter_nonzero_tracking () =
  let c = Lock_counter.create () in
  ignore (Lock_counter.incr c "x");
  ignore (Lock_counter.incr c "y");
  checki "two nonzero" 2 (Lock_counter.total_nonzero c);
  ignore (Lock_counter.decr c "x");
  checki "one nonzero" 1 (Lock_counter.total_nonzero c)

let test_counter_limit () =
  let c = Lock_counter.create () in
  ignore (Lock_counter.incr c "x");
  checkb "at limit" true (Lock_counter.would_exceed c "x" ~limit:1);
  checkb "below limit" false (Lock_counter.would_exceed c "x" ~limit:2)

let test_counter_weights () =
  let c = Lock_counter.create () in
  Alcotest.check (Alcotest.float 1e-9) "zero" 0.0 (Lock_counter.weight c "x");
  Alcotest.check (Alcotest.float 1e-9) "add" 5.0 (Lock_counter.add_weight c "x" 5.0);
  Alcotest.check (Alcotest.float 1e-9) "abs of negative" 8.0
    (Lock_counter.add_weight c "x" (-3.0));
  Alcotest.check (Alcotest.float 1e-9) "remove" 3.0
    (Lock_counter.remove_weight c "x" 5.0);
  Alcotest.check (Alcotest.float 1e-9) "clamped at zero" 0.0
    (Lock_counter.remove_weight c "x" 100.0);
  checkb "exceed check" true
    (Lock_counter.weight_would_exceed c "x" ~added:2.0 ~limit:1.5);
  checkb "within check" false
    (Lock_counter.weight_would_exceed c "x" ~added:1.0 ~limit:1.5)

let prop_counter_weight_never_negative =
  QCheck.Test.make ~name:"pending weight never negative" ~count:300
    QCheck.(list (pair bool (float_range (-50.) 50.)))
    (fun events ->
      let c = Lock_counter.create () in
      List.iter
        (fun (add, w) ->
          if add then ignore (Lock_counter.add_weight c "k" w)
          else ignore (Lock_counter.remove_weight c "k" w))
        events;
      Lock_counter.weight c "k" >= 0.0)

(* --- Tso --- *)

let test_tso_update_rules () =
  let t = Tso.create () in
  checkb "write ts5" true (Tso.check_update_write t ~key:"x" ~ts:5 = Tso.Accept);
  checkb "older write rejected" true
    (Tso.check_update_write t ~key:"x" ~ts:3 = Tso.Reject_stale);
  checkb "older read rejected" true
    (Tso.check_update_read t ~key:"x" ~ts:3 = Tso.Reject_stale);
  checkb "newer read ok" true (Tso.check_update_read t ~key:"x" ~ts:7 = Tso.Accept);
  checkb "write below read rejected" true
    (Tso.check_update_write t ~key:"x" ~ts:6 = Tso.Reject_stale);
  checkb "write above read ok" true
    (Tso.check_update_write t ~key:"x" ~ts:8 = Tso.Accept)

let test_tso_query_reads_dont_constrain () =
  let t = Tso.create () in
  ignore (Tso.check_update_write t ~key:"x" ~ts:10);
  checkb "stale query read flagged" true
    (Tso.check_query_read t ~key:"x" ~ts:5 = Tso.Out_of_order);
  checkb "fresh query read in order" true
    (Tso.check_query_read t ~key:"x" ~ts:15 = Tso.In_order);
  (* Unlike an update read, the query read must not have bumped the read
     timestamp: a ts-12 write is still admissible. *)
  checkb "updates unconstrained by query" true
    (Tso.check_update_write t ~key:"x" ~ts:12 = Tso.Accept)

(* --- Waitfor --- *)

let test_waitfor_cycle_rejected () =
  let g = Waitfor.create () in
  checkb "1->2" true (Waitfor.add_edge g ~waiter:1 ~holder:2);
  checkb "2->3" true (Waitfor.add_edge g ~waiter:2 ~holder:3);
  checkb "3->1 closes cycle" false (Waitfor.add_edge g ~waiter:3 ~holder:1);
  checkb "self edge rejected" false (Waitfor.add_edge g ~waiter:1 ~holder:1)

let test_waitfor_remove_unblocks () =
  let g = Waitfor.create () in
  ignore (Waitfor.add_edge g ~waiter:1 ~holder:2);
  ignore (Waitfor.add_edge g ~waiter:2 ~holder:3);
  Waitfor.remove_node g 2;
  checkb "edge through removed node gone" false (Waitfor.reachable g ~src:1 ~dst:3);
  checkb "cycle now allowed" true (Waitfor.add_edge g ~waiter:3 ~holder:1)

let test_waitfor_reachability () =
  let g = Waitfor.create () in
  ignore (Waitfor.add_edge g ~waiter:1 ~holder:2);
  ignore (Waitfor.add_edge g ~waiter:2 ~holder:3);
  ignore (Waitfor.add_edge g ~waiter:2 ~holder:4);
  checkb "transitive" true (Waitfor.reachable g ~src:1 ~dst:4);
  checkb "no back path" false (Waitfor.reachable g ~src:4 ~dst:1);
  Alcotest.(check (list int)) "waits_on" [ 3; 4 ] (Waitfor.waits_on g ~waiter:2)

(* qcheck: random edge insertions never create a cycle. *)
let prop_waitfor_stays_acyclic =
  QCheck.Test.make ~name:"waitfor graph stays acyclic" ~count:200
    QCheck.(list (pair (int_range 0 8) (int_range 0 8)))
    (fun edges ->
      let g = Waitfor.create () in
      List.iter
        (fun (a, b) -> ignore (Waitfor.add_edge g ~waiter:a ~holder:b))
        edges;
      (* Acyclicity: no node reaches itself through at least one edge. *)
      List.for_all
        (fun n ->
          List.for_all
            (fun next -> not (Waitfor.reachable g ~src:next ~dst:n))
            (Waitfor.waits_on g ~waiter:n))
        (List.init 9 Fun.id))

let () =
  ignore (Value.zero);
  Alcotest.run "esr_cc"
    [
      ( "lock tables",
        [
          Alcotest.test_case "standard 2PL" `Quick test_standard_table;
          Alcotest.test_case "Table 2 (ORDUP)" `Quick test_table2_ordup;
          Alcotest.test_case "Table 3 (COMMU)" `Quick test_table3_commu;
          Alcotest.test_case "mode domain" `Quick test_table_mode_domain;
          Alcotest.test_case "resolve commutativity" `Quick test_resolve_commutativity;
        ] );
      ( "lock manager",
        [
          Alcotest.test_case "grant/conflict" `Quick test_mgr_grant_and_conflict;
          Alcotest.test_case "shared reads" `Quick test_mgr_shared_reads;
          Alcotest.test_case "reentrant" `Quick test_mgr_reentrant;
          Alcotest.test_case "release wakes FIFO" `Quick test_mgr_release_wakes_fifo;
          Alcotest.test_case "grants compatible prefix" `Quick
            test_mgr_release_grants_compatible_prefix;
          Alcotest.test_case "deadlock detection" `Quick test_mgr_deadlock_detection;
          Alcotest.test_case "victim release unblocks" `Quick
            test_mgr_deadlock_victim_can_release;
          Alcotest.test_case "commu commuting writes" `Quick
            test_mgr_commu_table_commuting_writes;
          Alcotest.test_case "ordup query never blocks" `Quick
            test_mgr_ordup_table_query_never_blocks;
          Alcotest.test_case "FIFO fairness" `Quick
            test_mgr_queued_fairness_blocks_new_compatible;
          QCheck_alcotest.to_alcotest prop_mgr_holders_always_compatible;
        ] );
      ( "lock counters",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "nonzero tracking" `Quick test_counter_nonzero_tracking;
          Alcotest.test_case "limit" `Quick test_counter_limit;
          Alcotest.test_case "weights" `Quick test_counter_weights;
          QCheck_alcotest.to_alcotest prop_counter_weight_never_negative;
        ] );
      ( "tso",
        [
          Alcotest.test_case "update rules" `Quick test_tso_update_rules;
          Alcotest.test_case "query reads free" `Quick
            test_tso_query_reads_dont_constrain;
        ] );
      ( "waitfor",
        [
          Alcotest.test_case "cycle rejected" `Quick test_waitfor_cycle_rejected;
          Alcotest.test_case "remove unblocks" `Quick test_waitfor_remove_unblocks;
          Alcotest.test_case "reachability" `Quick test_waitfor_reachability;
          QCheck_alcotest.to_alcotest prop_waitfor_stays_acyclic;
        ] );
    ]
