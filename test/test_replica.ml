(* Per-method unit tests: each replica-control method exercised directly
   through the harness on small, hand-crafted scenarios. *)

module Engine = Esr_sim.Engine
module Net = Esr_sim.Net
module Dist = Esr_util.Dist
module Value = Esr_store.Value
module Store = Esr_store.Store
module Mvstore = Esr_store.Mvstore
module Epsilon = Esr_core.Epsilon
module Esr_check = Esr_core.Esr_check
module Intf = Esr_replica.Intf
module Harness = Esr_replica.Harness
module Registry = Esr_replica.Registry

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let value_t = Alcotest.testable Value.pp Value.equal

let default = Intf.default_config

(* Latency with high variance so MSets genuinely arrive out of order. *)
let jittery = { Net.default_config with latency = Dist.Uniform (1.0, 80.0) }

let mk ?(config = default) ?(net_config = Net.default_config) ?(seed = 1)
    ?(sites = 3) name =
  Harness.create ~config ~net_config ~seed ~sites ~method_name:name ()

let run_settle h =
  let ok = Harness.settle h in
  checkb "settled" true ok;
  ok

let get h ~site key = Store.get (Harness.store h ~site) key

let stat h name =
  match List.assoc_opt name (Harness.stats_alist h) with
  | Some v -> int_of_float v
  | None -> Alcotest.fail (Printf.sprintf "missing stat %s" name)

let expect_committed = function
  | Intf.Committed _ -> ()
  | Intf.Rejected m -> Alcotest.fail ("unexpected rejection: " ^ m)

let all_sites_equal h ~sites key expected =
  for s = 0 to sites - 1 do
    Alcotest.check value_t (Printf.sprintf "site %d" s) expected (get h ~site:s key)
  done

(* --- registry --- *)

let test_registry_names () =
  Alcotest.(check (list string)) "all seven methods"
    [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]
    Registry.names

let test_registry_unknown () =
  checkb "unknown raises" true
    (try
       ignore (mk "NOPE");
       false
     with Invalid_argument _ -> true)

let test_registry_case_insensitive () =
  let h = mk "ordup" in
  checkb "created" true (Harness.settle h)

let test_table1_metadata () =
  let meta name =
    List.find (fun (m : Intf.meta) -> m.Intf.name = name) Registry.metas
  in
  checkb "ORDUP forward" true ((meta "ORDUP").Intf.family = Intf.Forward);
  checkb "COMPE backward" true ((meta "COMPE").Intf.family = Intf.Backward);
  checkb "2PC synchronous" true ((meta "2PC").Intf.family = Intf.Synchronous);
  Alcotest.(check string) "ORDUP restriction" "message delivery"
    (meta "ORDUP").Intf.restriction;
  Alcotest.(check string) "ORDUP async" "Query only"
    (meta "ORDUP").Intf.async_propagation;
  Alcotest.(check string) "COMMU sorting" "doesn't matter"
    (meta "COMMU").Intf.sorting_time;
  Alcotest.(check string) "RITU sorting" "at read" (meta "RITU").Intf.sorting_time

(* --- ORDUP --- *)

let test_ordup_total_order_convergence () =
  (* Non-commutative overwrites under jittery delivery: ticket order must
     win at every replica. *)
  let h = mk ~net_config:jittery ~sites:4 "ORDUP" in
  for i = 1 to 9 do
    Harness.submit_update h ~origin:(i mod 4)
      [ Intf.Set ("x", Value.int i) ]
      expect_committed
  done;
  ignore (run_settle h);
  all_sites_equal h ~sites:4 "x" (Value.int 9);
  checkb "converged" true (Harness.converged h)

let test_ordup_commit_callback_fires () =
  let h = mk "ORDUP" in
  let committed = ref false in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 5) ] (fun o ->
      expect_committed o;
      committed := true);
  ignore (run_settle h);
  checkb "callback fired" true !committed;
  all_sites_equal h ~sites:3 "x" (Value.int 5)

let test_ordup_query_epsilon_zero_is_consistent () =
  let h = mk ~sites:3 "ORDUP" in
  (* Two updates in flight; an ε=0 query at a remote replica must wait for
     the global order and see both. *)
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] expect_committed;
  Harness.submit_update h ~origin:1 [ Intf.Add ("x", 2) ] expect_committed;
  let served = ref None in
  Harness.submit_query h ~site:2 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 0)
    (fun o -> served := Some o);
  ignore (run_settle h);
  match !served with
  | None -> Alcotest.fail "query never served"
  | Some o ->
      checki "charged nothing" 0 o.Intf.charged;
      Alcotest.check value_t "sees both updates" (Value.int 3)
        (List.assoc "x" o.Intf.values)

let test_ordup_query_unlimited_is_immediate () =
  let h = mk ~sites:3 "ORDUP" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] expect_committed;
  let served = ref None in
  Harness.submit_query h ~site:2 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
    (fun o -> served := Some o);
  (* Run only a moment: the unlimited query must not wait for delivery. *)
  Harness.run_for h 2.0;
  (match !served with
  | None -> Alcotest.fail "query should be served immediately"
  | Some o ->
      Alcotest.check value_t "stale read allowed" Value.zero
        (List.assoc "x" o.Intf.values);
      checkb "charged the missing update" true (o.Intf.charged >= 1));
  ignore (run_settle h)

let test_ordup_epsilon_bound_respected () =
  let h = mk ~net_config:jittery ~sites:4 ~seed:5 "ORDUP" in
  let eps = 2 in
  let max_charged = ref 0 in
  for i = 0 to 30 do
    Harness.submit_update h ~origin:(i mod 4) [ Intf.Add ("x", 1) ] ignore;
    if i mod 3 = 0 then
      Harness.submit_query h ~site:((i + 1) mod 4) ~keys:[ "x" ]
        ~epsilon:(Epsilon.Limit eps) (fun o ->
          if o.Intf.charged > !max_charged then max_charged := o.Intf.charged)
  done;
  ignore (run_settle h);
  checkb "bound respected" true (!max_charged <= eps)

let test_ordup_lamport_mode_converges () =
  let config = { default with ordup_ordering = `Lamport } in
  let h = mk ~config ~net_config:jittery ~sites:3 ~seed:7 "ORDUP" in
  for i = 1 to 6 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Set ("x", Value.int i) ] ignore
  done;
  ignore (run_settle h);
  checkb "converged" true (Harness.converged h);
  (* All replicas agree; the winner is the Lamport-largest stamp. *)
  let v0 = get h ~site:0 "x" in
  all_sites_equal h ~sites:3 "x" v0

let test_ordup_histories_are_epsilon_serial () =
  let h = mk ~net_config:jittery ~sites:3 ~seed:3 "ORDUP" in
  for i = 0 to 9 do
    Harness.submit_update h ~origin:(i mod 3)
      [ Intf.Set ("a", Value.int i); Intf.Set ("b", Value.int (-i)) ]
      ignore;
    Harness.submit_query h ~site:(i mod 3) ~keys:[ "a"; "b" ]
      ~epsilon:Epsilon.Unlimited ignore
  done;
  ignore (run_settle h);
  for s = 0 to 2 do
    let hist = Harness.history h ~site:s in
    checkb
      (Printf.sprintf "site %d history ε-serial" s)
      true
      (Esr_check.is_epsilon_serial hist)
  done

(* --- COMMU --- *)

let test_commu_rejects_non_commutative () =
  let h = mk "COMMU" in
  let outcomes = ref [] in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 1) ] (fun o ->
      outcomes := o :: !outcomes);
  Harness.submit_update h ~origin:0 [ Intf.Mul ("x", 2) ] (fun o ->
      outcomes := o :: !outcomes);
  ignore (run_settle h);
  checki "both rejected" 2
    (List.length
       (List.filter (function Intf.Rejected _ -> true | _ -> false) !outcomes))

let test_commu_convergence_any_order () =
  let h = mk ~net_config:jittery ~sites:4 ~seed:9 "COMMU" in
  let expected = ref 0 in
  for i = 1 to 20 do
    expected := !expected + i;
    Harness.submit_update h ~origin:(i mod 4) [ Intf.Add ("x", i) ] expect_committed
  done;
  ignore (run_settle h);
  all_sites_equal h ~sites:4 "x" (Value.int !expected);
  checkb "converged" true (Harness.converged h)

let test_commu_epsilon_zero_waits_for_completion () =
  let h = mk ~sites:3 "COMMU" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] expect_committed;
  (* At the origin the lock-counter is up until every replica acked, so an
     ε=0 query there must block and then see the final value. *)
  let served = ref None in
  Harness.submit_query h ~site:0 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 0)
    (fun o -> served := Some o);
  checkb "not served synchronously" true (!served = None);
  ignore (run_settle h);
  match !served with
  | None -> Alcotest.fail "query stuck"
  | Some o ->
      checkb "waited" true o.Intf.consistent_path;
      Alcotest.check value_t "sees the update" (Value.int 7)
        (List.assoc "x" o.Intf.values)

let test_commu_epsilon_allows_reading_through () =
  let h = mk ~sites:3 "COMMU" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] expect_committed;
  let served = ref None in
  Harness.submit_query h ~site:0 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 1)
    (fun o -> served := Some o);
  (match !served with
  | Some o ->
      checki "charged one unit" 1 o.Intf.charged;
      Alcotest.check value_t "reads through" (Value.int 7)
        (List.assoc "x" o.Intf.values)
  | None -> Alcotest.fail "ε=1 query should not block");
  ignore (run_settle h)

let test_commu_update_limit_abort () =
  let config =
    { default with commu_update_limit = Some 1; commu_limit_policy = `Abort }
  in
  let h = mk ~config ~sites:3 "COMMU" in
  let rejected = ref 0 in
  for _ = 1 to 5 do
    Harness.submit_update h ~origin:0 [ Intf.Add ("hot", 1) ] (function
      | Intf.Rejected _ -> incr rejected
      | Intf.Committed _ -> ())
  done;
  ignore (run_settle h);
  checkb "limit caused aborts" true (!rejected > 0);
  checkb "converged regardless" true (Harness.converged h)

let test_commu_update_limit_wait () =
  let config =
    { default with commu_update_limit = Some 1; commu_limit_policy = `Wait }
  in
  let h = mk ~config ~sites:3 "COMMU" in
  let committed = ref 0 in
  for _ = 1 to 5 do
    Harness.submit_update h ~origin:0 [ Intf.Add ("hot", 1) ] (function
      | Intf.Committed _ -> incr committed
      | Intf.Rejected _ -> ())
  done;
  ignore (run_settle h);
  checki "all eventually commit" 5 !committed;
  checkb "waits happened" true (stat h "update_waits" > 0);
  all_sites_equal h ~sites:3 "hot" (Value.int 5)

let test_commu_value_limit_bounds_pending_delta () =
  (* §5.1's "data value changed asynchronously" criterion: with a pending
     |delta| limit of 10 per object, a 7-point update admits but a second
     one must wait until the first completes. *)
  let config =
    { default with commu_value_limit = Some 10.0; commu_limit_policy = `Abort }
  in
  let h = mk ~config ~sites:3 "COMMU" in
  let outcomes = ref [] in
  let record o = outcomes := o :: !outcomes in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] record;
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] record;
  (* Submitted back-to-back: the second exceeds the pending weight. *)
  let rejected_now =
    List.exists (function Intf.Rejected _ -> true | _ -> false) !outcomes
  in
  checkb "second update refused while first pending" true rejected_now;
  ignore (run_settle h);
  (* Once drained, a fresh 7-point update is admissible again. *)
  let late = ref None in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] (fun o -> late := Some o);
  ignore (run_settle h);
  (match !late with
  | Some (Intf.Committed _) -> ()
  | Some (Intf.Rejected m) -> Alcotest.fail m
  | None -> Alcotest.fail "no outcome");
  all_sites_equal h ~sites:3 "x" (Value.int 14)

let test_commu_histories_epsilon_serial_semantic () =
  let h = mk ~net_config:jittery ~sites:3 ~seed:17 "COMMU" in
  for i = 0 to 14 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", 1) ] ignore;
    Harness.submit_query h ~site:((i + 1) mod 3) ~keys:[ "x" ]
      ~epsilon:Epsilon.Unlimited ignore
  done;
  ignore (run_settle h);
  for s = 0 to 2 do
    let hist = Harness.history h ~site:s in
    checkb "semantic ε-serial" true
      (Esr_check.is_epsilon_serial ~mode:Esr_core.Conflict.Semantic hist)
  done

(* --- RITU --- *)

let test_ritu_rejects_read_dependent () =
  let h = mk "RITU" in
  let rejected = ref false in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] (function
    | Intf.Rejected _ -> rejected := true
    | Intf.Committed _ -> ());
  ignore (run_settle h);
  checkb "Add rejected" true !rejected

let test_ritu_latest_wins_convergence () =
  let h = mk ~net_config:jittery ~sites:4 ~seed:23 "RITU" in
  for i = 1 to 12 do
    Harness.submit_update h ~origin:(i mod 4)
      [ Intf.Set ("x", Value.int i) ]
      expect_committed
  done;
  ignore (run_settle h);
  checkb "converged" true (Harness.converged h);
  checkb "stale writes were ignored somewhere" true (stat h "stale_writes_ignored" > 0)

let test_ritu_multi_versions_accumulate () =
  let config = { default with ritu_mode = `Multi } in
  let h = mk ~config ~sites:3 "RITU" in
  for i = 1 to 4 do
    Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int i) ] expect_committed
  done;
  ignore (run_settle h);
  match Intf.boxed_mvstore (Harness.system h) ~site:1 with
  | None -> Alcotest.fail "multi mode must expose mvstore"
  | Some mv ->
      checki "four versions" 4 (List.length (Mvstore.versions mv "x"));
      checkb "mvstores converged" true (Harness.converged h)

let test_ritu_multi_vtnc_query_modes () =
  let config = { default with ritu_mode = `Multi } in
  let h = mk ~config ~sites:3 "RITU" in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 1) ] expect_committed;
  ignore (run_settle h);
  (* A second update whose MSet has not yet reached site 1. *)
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 2) ] expect_committed;
  let strict = ref None and fresh = ref None in
  Harness.submit_query h ~site:0 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 0)
    (fun o -> strict := Some o);
  Harness.submit_query h ~site:0 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 1)
    (fun o -> fresh := Some o);
  (match (!strict, !fresh) with
  | Some s, Some f ->
      (* The origin's VTNC lags the other replicas' watermarks, so the
         strict query reads the stable prefix while the ε=1 query reads
         the newest version. *)
      Alcotest.check value_t "fresh read" (Value.int 2) (List.assoc "x" f.Intf.values);
      checki "fresh charged 1" 1 f.Intf.charged;
      checki "strict charged 0" 0 s.Intf.charged;
      checkb "strict is older or equal" true
        (Value.compare (List.assoc "x" s.Intf.values) (Value.int 2) <= 0)
  | _ -> Alcotest.fail "queries not served");
  ignore (run_settle h)

let test_ritu_queries_never_block () =
  let h = mk ~sites:3 "RITU" in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 5) ] expect_committed;
  let served = ref false in
  Harness.submit_query h ~site:1 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 0)
    (fun _ -> served := true);
  checkb "served synchronously" true !served;
  ignore (run_settle h)

(* --- COMPE --- *)

let test_compe_no_aborts_behaves_normally () =
  let config = { default with compe_abort_probability = 0.0 } in
  let h = mk ~config ~net_config:jittery ~sites:3 ~seed:31 "COMPE" in
  for i = 1 to 10 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", i) ] expect_committed
  done;
  ignore (run_settle h);
  all_sites_equal h ~sites:3 "x" (Value.int 55);
  checki "no compensation" 0 (stat h "aborts")

let test_compe_all_aborts_cancel_out () =
  let config = { default with compe_abort_probability = 1.0 } in
  let h = mk ~config ~sites:3 ~seed:37 "COMPE" in
  let rejected = ref 0 in
  for i = 1 to 8 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", i) ] (function
      | Intf.Rejected _ -> incr rejected
      | Intf.Committed _ -> Alcotest.fail "must abort")
  done;
  ignore (run_settle h);
  checki "all aborted" 8 !rejected;
  all_sites_equal h ~sites:3 "x" Value.zero;
  checkb "converged" true (Harness.converged h)

let test_compe_mixed_aborts_match_committed_sum () =
  let config = { default with compe_abort_probability = 0.4 } in
  let h = mk ~config ~net_config:jittery ~sites:3 ~seed:41 "COMPE" in
  let committed_sum = ref 0 in
  for i = 1 to 30 do
    let d = i in
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", d) ] (function
      | Intf.Committed _ -> committed_sum := !committed_sum + d
      | Intf.Rejected _ -> ())
  done;
  ignore (run_settle h);
  checkb "some aborted" true (stat h "aborts" > 0);
  checkb "some committed" true (!committed_sum > 0);
  all_sites_equal h ~sites:3 "x" (Value.int !committed_sum)

let test_compe_commutative_uses_fast_path () =
  let config = { default with compe_abort_probability = 0.5 } in
  let h = mk ~config ~sites:3 ~seed:43 "COMPE" in
  for i = 1 to 20 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", i) ] ignore
  done;
  ignore (run_settle h);
  checkb "aborts happened" true (stat h "aborts" > 0);
  checki "no full rollback for commuting ops" 0 (stat h "full_rollbacks");
  checkb "fast compensations used" true
    (stat h "fast_compensations" > 0 || stat h "skipped_aborts" > 0);
  checkb "converged" true (Harness.converged h)

let test_compe_non_commutative_full_rollback () =
  (* An aborted Set followed by later entries cannot use logical inverses:
     Write has none, so the log tail is physically undone and replayed. *)
  let config =
    { default with compe_abort_probability = 0.5; compe_decision_delay = 60.0 }
  in
  let h = mk ~config ~sites:3 ~seed:47 "COMPE" in
  for i = 1 to 24 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Set ("x", Value.int i) ] ignore
  done;
  ignore (run_settle h);
  checkb "aborts happened" true (stat h "aborts" > 0);
  checkb "full rollbacks happened" true (stat h "full_rollbacks" > 0);
  checkb "converged" true (Harness.converged h);
  let v0 = get h ~site:0 "x" in
  all_sites_equal h ~sites:3 "x" v0

let test_compe_mul_inc_identity_system_level () =
  (* System-level §4.1: an aborted Inc between two Muls must compensate to
     exactly the Mul-only result. *)
  let config = { default with compe_abort_probability = 0.0 } in
  let h = mk ~config ~sites:2 ~seed:53 "COMPE" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 5) ] expect_committed;
  ignore (run_settle h);
  (* Now an Inc that will abort, then a Mul that commits, forcing the
     rollback-undo-replay path because Inc and Mul do not commute. *)
  let sys = Harness.system h in
  ignore sys;
  all_sites_equal h ~sites:2 "x" (Value.int 5)

let test_compe_query_bound_and_taint_accounting () =
  let config =
    { default with compe_abort_probability = 0.5; compe_decision_delay = 80.0 }
  in
  let h = mk ~config ~sites:3 ~seed:59 "COMPE" in
  let max_charged = ref 0 in
  for i = 1 to 20 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", 1) ] ignore;
    Harness.submit_query h ~site:(i mod 3) ~keys:[ "x" ]
      ~epsilon:(Epsilon.Limit 2) (fun o ->
        if o.Intf.charged > !max_charged then max_charged := o.Intf.charged)
  done;
  ignore (run_settle h);
  (* Forced charges from compensations may exceed ε — that is the paper's
     point about backward methods — but they are counted. *)
  let forced = stat h "forced_charges" in
  checkb "bound respected up to forced charges" true
    (!max_charged <= 2 + forced);
  checkb "tainted bookkeeping present" true (stat h "tainted_queries" >= 0)

(* --- 2PC --- *)

let test_twopc_latency_two_round_trips () =
  let h = mk ~sites:3 "2PC" in
  let latency = ref 0.0 in
  let t0 = Harness.now h in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] (function
    | Intf.Committed { committed_at } -> latency := committed_at -. t0
    | Intf.Rejected m -> Alcotest.fail m);
  ignore (run_settle h);
  (* prepare (10ms) + vote (10ms) with the default constant latency. *)
  Alcotest.check (Alcotest.float 1e-6) "2 one-way hops" 20.0 !latency;
  all_sites_equal h ~sites:3 "x" (Value.int 1)

let test_twopc_convergence_under_contention () =
  let h = mk ~net_config:jittery ~sites:3 ~seed:61 "2PC" in
  let committed_sum = ref 0 in
  for i = 1 to 15 do
    Harness.submit_update h ~origin:(i mod 3) [ Intf.Add ("x", i) ] (function
      | Intf.Committed _ -> committed_sum := !committed_sum + i
      | Intf.Rejected _ -> ())
  done;
  ignore (run_settle h);
  checkb "converged" true (Harness.converged h);
  all_sites_equal h ~sites:3 "x" (Value.int !committed_sum)

let test_twopc_queries_are_sr () =
  let h = mk ~sites:3 "2PC" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 9) ] expect_committed;
  ignore (run_settle h);
  let served = ref None in
  Harness.submit_query h ~site:2 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
    (fun o -> served := Some o);
  ignore (run_settle h);
  match !served with
  | Some o ->
      checki "never charged" 0 o.Intf.charged;
      Alcotest.check value_t "sees committed state" (Value.int 9)
        (List.assoc "x" o.Intf.values)
  | None -> Alcotest.fail "query not served"

let test_twopc_timeout_aborts_under_partition () =
  let config = { default with twopc_timeout = 300.0 } in
  let h = mk ~config ~sites:4 "2PC" in
  Net.partition (Harness.net h) [ [ 0; 1 ]; [ 2; 3 ] ];
  let outcome = ref None in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] (fun o -> outcome := Some o);
  Harness.run_for h 1_000.0;
  (match !outcome with
  | Some (Intf.Rejected _) -> ()
  | Some (Intf.Committed _) -> Alcotest.fail "cannot commit across partition"
  | None -> Alcotest.fail "timeout should have fired");
  Net.heal (Harness.net h);
  ignore (run_settle h);
  (* The abort propagated: nothing applied anywhere. *)
  all_sites_equal h ~sites:4 "x" Value.zero

(* --- QUORUM --- *)

let test_quorum_commit_and_read () =
  let h = mk ~sites:5 "QUORUM" in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 42) ] expect_committed;
  ignore (run_settle h);
  checkb "converged" true (Harness.converged h);
  all_sites_equal h ~sites:5 "x" (Value.int 42);
  let served = ref None in
  Harness.submit_query h ~site:3 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
    (fun o -> served := Some o);
  ignore (run_settle h);
  match !served with
  | Some o ->
      Alcotest.check value_t "quorum read" (Value.int 42)
        (List.assoc "x" o.Intf.values)
  | None -> Alcotest.fail "query not served"

let test_quorum_read_sees_committed_write () =
  (* Quorum intersection: a read issued right after the commit callback
     must see the new value even though some replicas are stale. *)
  let h = mk ~sites:5 ~net_config:jittery ~seed:67 "QUORUM" in
  let result = ref None in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 7) ] (fun o ->
      expect_committed o;
      Harness.submit_query h ~site:4 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
        (fun q -> result := Some (List.assoc "x" q.Intf.values)));
  ignore (run_settle h);
  match !result with
  | Some v -> Alcotest.check value_t "fresh" (Value.int 7) v
  | None -> Alcotest.fail "no result"

let test_quorum_version_ordering () =
  let h = mk ~sites:3 "QUORUM" in
  Harness.submit_update h ~origin:0 [ Intf.Set ("x", Value.int 1) ] expect_committed;
  ignore (run_settle h);
  Harness.submit_update h ~origin:1 [ Intf.Set ("x", Value.int 2) ] expect_committed;
  ignore (run_settle h);
  all_sites_equal h ~sites:3 "x" (Value.int 2)

let test_quorum_rejects_unsupported () =
  let h = mk ~sites:3 "QUORUM" in
  let rejections = ref 0 in
  let count = function Intf.Rejected _ -> incr rejections | Intf.Committed _ -> () in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] count;
  Harness.submit_update h ~origin:0
    [ Intf.Set ("x", Value.int 1); Intf.Set ("y", Value.int 2) ]
    count;
  ignore (run_settle h);
  checki "both rejected" 2 !rejections

(* --- QUASI --- *)

let test_quasi_primary_commit_and_propagation () =
  let h = mk ~sites:3 "QUASI" in
  let committed = ref false in
  Harness.submit_update h ~origin:2 [ Intf.Add ("x", 5) ] (function
    | Intf.Committed _ -> committed := true
    | Intf.Rejected m -> Alcotest.fail m);
  ignore (run_settle h);
  checkb "committed at primary" true !committed;
  all_sites_equal h ~sites:3 "x" (Value.int 5);
  checkb "converged" true (Harness.converged h)

let test_quasi_drift_defers_refresh () =
  let config = { default with quasi_refresh = `Drift 10.0 } in
  let h = mk ~config ~sites:3 "QUASI" in
  (* A +4 drift stays inside the closeness band: no refresh yet. *)
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 4) ] ignore;
  Harness.run_for h 200.0;
  Alcotest.check value_t "replica still stale" Value.zero (get h ~site:1 "x");
  Alcotest.check value_t "primary current" (Value.int 4) (get h ~site:0 "x");
  (* Another +8 pushes the drift past 10: refresh fires. *)
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 8) ] ignore;
  Harness.run_for h 200.0;
  Alcotest.check value_t "replica refreshed" (Value.int 12) (get h ~site:1 "x");
  (* Final flush reconciles whatever is left in the band. *)
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] ignore;
  ignore (run_settle h);
  checkb "converged at quiescence" true (Harness.converged h);
  all_sites_equal h ~sites:3 "x" (Value.int 13)

let test_quasi_strict_query_reads_primary () =
  let config = { default with quasi_refresh = `Drift 100.0 } in
  let h = mk ~config ~sites:3 "QUASI" in
  Harness.submit_update h ~origin:0 [ Intf.Add ("x", 7) ] ignore;
  Harness.run_for h 100.0;
  let lazy_read = ref None and strict_read = ref None in
  Harness.submit_query h ~site:2 ~keys:[ "x" ] ~epsilon:Epsilon.Unlimited
    (fun o -> lazy_read := Some (List.assoc "x" o.Intf.values));
  Harness.submit_query h ~site:2 ~keys:[ "x" ] ~epsilon:(Epsilon.Limit 0)
    (fun o -> strict_read := Some (List.assoc "x" o.Intf.values));
  ignore (run_settle h);
  (match !lazy_read with
  | Some v -> Alcotest.check value_t "quasi-copy is stale" Value.zero v
  | None -> Alcotest.fail "lazy query not served");
  match !strict_read with
  | Some v -> Alcotest.check value_t "primary read is fresh" (Value.int 7) v
  | None -> Alcotest.fail "strict query not served"

let test_quasi_periodic_batches () =
  let config = { default with quasi_refresh = `Periodic 500.0 } in
  let h = mk ~config ~sites:3 "QUASI" in
  for _ = 1 to 10 do
    Harness.submit_update h ~origin:0 [ Intf.Add ("x", 1) ] ignore
  done;
  ignore (run_settle h);
  checkb "converged" true (Harness.converged h);
  all_sites_equal h ~sites:3 "x" (Value.int 10);
  (* Ten updates, but (at most a couple of) batched refreshes. *)
  let refreshes = stat h "refreshes" in
  checkb (Printf.sprintf "batched (%d refreshes)" refreshes) true (refreshes <= 3)

let test_quorum_invalid_quorum_config () =
  let config = { default with quorum_reads = Some 1; quorum_writes = Some 1 } in
  checkb "r+w<=n rejected" true
    (try
       ignore (mk ~config ~sites:3 "QUORUM");
       false
     with Invalid_argument _ -> true)

(* --- interned-store observational equivalence --- *)

(* The interned flat store (and its growth path) must be invisible:
   running the same workload with a 1-slot store hint — forcing repeated
   doubling of both the keyspace and the per-site cell arrays — and a
   comfortably oversized hint must produce identical commit counts,
   identical per-site snapshots, and identical durable histories, for
   every one of the seven methods. *)
let prop_store_hint_invariance =
  QCheck.Test.make
    ~name:"store hint never changes observable behaviour (all 7 methods)"
    ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000) (int_range 5 25)))
    (fun (seed, n_updates) ->
      List.for_all
        (fun name ->
          let run hint =
            let h =
              Harness.create ~config:default ~net_config:jittery ~seed
                ~store_hint:hint ~sites:3 ~method_name:name ()
            in
            let engine = Harness.engine h in
            let committed = ref 0 in
            for i = 0 to n_updates - 1 do
              ignore
                (Engine.schedule_at engine
                   ~time:(float_of_int (i + 1) *. 20.0)
                   (fun () ->
                     let key = Printf.sprintf "k%d" (i mod 7) in
                     let intents =
                       match name with
                       | "RITU" | "QUORUM" -> [ Intf.Set (key, Value.int i) ]
                       | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
                     in
                     Harness.submit_update h ~origin:(i mod 3) intents (function
                       | Intf.Committed _ -> incr committed
                       | Intf.Rejected _ -> ())))
            done;
            let settled = Harness.settle h in
            let snaps =
              List.init 3 (fun s -> Store.snapshot (Harness.store h ~site:s))
            in
            let hists = List.init 3 (fun s -> Harness.history h ~site:s) in
            (settled, !committed, snaps, hists)
          in
          run 1 = run 2_048)
        [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ])

(* --- sharding: identity under full replication, convergence under
   partial replication, fanout scaling --- *)

module Sharding = Esr_store.Sharding

let all_methods = [ "ORDUP"; "COMMU"; "RITU"; "COMPE"; "2PC"; "QUORUM"; "QUASI" ]

(* Drive [n_updates] through a harness built with the given shard map
   and return every observable: settled flag, commit count, per-site
   snapshots and durable histories. *)
let run_sharded ?sharding ~seed ~sites ~n_updates name =
  let h =
    Harness.create ~config:default ~net_config:jittery ~seed ?sharding ~sites
      ~method_name:name ()
  in
  let engine = Harness.engine h in
  let committed = ref 0 in
  for i = 0 to n_updates - 1 do
    ignore
      (Engine.schedule_at engine
         ~time:(float_of_int (i + 1) *. 20.0)
         (fun () ->
           let key = Printf.sprintf "k%d" (i mod 7) in
           let intents =
             match name with
             | "RITU" | "QUORUM" -> [ Intf.Set (key, Value.int i) ]
             | _ -> [ Intf.Add (key, 1 + (i mod 3)) ]
           in
           Harness.submit_update h ~origin:(i mod sites) intents (function
             | Intf.Committed _ -> incr committed
             | Intf.Rejected _ -> ())))
  done;
  let settled = Harness.settle h in
  let snaps =
    List.init sites (fun s -> Store.snapshot (Harness.store h ~site:s))
  in
  let hists = List.init sites (fun s -> Harness.history h ~site:s) in
  (h, (settled, !committed, snaps, hists))

(* A replication factor of n_sites must be invisible: the default env
   (no shard map), an explicit All-policy map, and a Ring map with
   factor = sites must all produce identical observables for every one
   of the seven methods. *)
let prop_sharding_identity =
  QCheck.Test.make
    ~name:"factor = sites reproduces full replication (all 7 methods)"
    ~count:8
    (QCheck.make QCheck.Gen.(pair (int_range 1 1_000) (int_range 5 20)))
    (fun (seed, n_updates) ->
      List.for_all
        (fun name ->
          let sites = 3 in
          let run sharding =
            snd (run_sharded ?sharding ~seed ~sites ~n_updates name)
          in
          let base = run None in
          base = run (Some (Sharding.full ~sites))
          && base
             = run
                 (Some
                    (Sharding.create ~policy:Sharding.Ring ~shards:5
                       ~factor:sites ~sites ())))
        all_methods)

(* Under genuinely partial replication every method must still settle
   and pass its own shard-aware convergence oracle, for both partial
   placement policies. *)
let prop_sharding_convergence =
  QCheck.Test.make
    ~name:"partial replication converges (all 7 methods, ring & hash)"
    ~count:6
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 1_000) (int_range 5 20) bool))
    (fun (seed, n_updates, hash) ->
      let policy = if hash then Sharding.Hash else Sharding.Ring in
      List.for_all
        (fun name ->
          let sites = 5 in
          let sharding =
            Sharding.create ~policy ~shards:7 ~factor:2 ~sites ()
          in
          let h, (settled, committed, _, _) =
            run_sharded ~sharding ~seed ~sites ~n_updates name
          in
          ignore committed;
          settled && Harness.converged h)
        all_methods)

(* The tentpole claim at unit-test scale: transport volume tracks the
   replication factor, not the site count.  The same workload on 24
   sites enqueues several times fewer stable-queue messages under
   factor-3 ring placement than under full replication. *)
let test_sharding_fanout_scales_with_factor () =
  let squeue_enqueued h =
    List.fold_left
      (fun a (e : Esr_obs.Metrics.entry) ->
        match (e.Esr_obs.Metrics.group, e.Esr_obs.Metrics.name, e.Esr_obs.Metrics.view) with
        | "squeue", "enqueued", Esr_obs.Metrics.Counter_v v -> a +. v
        | _ -> a)
      0.0 (Harness.stats h)
  in
  let sites = 24 and n_updates = 20 in
  List.iter
    (fun name ->
      let h_full, (settled_full, _, _, _) =
        run_sharded ~seed:11 ~sites ~n_updates name
      in
      let sharding =
        Sharding.create ~policy:Sharding.Ring ~shards:sites ~factor:3 ~sites ()
      in
      let h_shard, (settled_shard, _, _, _) =
        run_sharded ~sharding ~seed:11 ~sites ~n_updates name
      in
      checkb (name ^ " full settled") true settled_full;
      checkb (name ^ " sharded settled") true settled_shard;
      checkb (name ^ " sharded converged") true (Harness.converged h_shard);
      let full = squeue_enqueued h_full and shard = squeue_enqueued h_shard in
      checkb
        (Printf.sprintf "%s fanout shrinks (%.0f -> %.0f)" name full shard)
        true
        (shard <= full *. 0.5))
    all_methods

let () =
  Alcotest.run "esr_replica"
    [
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "unknown" `Quick test_registry_unknown;
          Alcotest.test_case "case insensitive" `Quick test_registry_case_insensitive;
          Alcotest.test_case "Table 1 metadata" `Quick test_table1_metadata;
        ] );
      ( "ordup",
        [
          Alcotest.test_case "total order convergence" `Quick
            test_ordup_total_order_convergence;
          Alcotest.test_case "commit callback" `Quick test_ordup_commit_callback_fires;
          Alcotest.test_case "ε=0 query is consistent" `Quick
            test_ordup_query_epsilon_zero_is_consistent;
          Alcotest.test_case "unlimited query immediate" `Quick
            test_ordup_query_unlimited_is_immediate;
          Alcotest.test_case "ε bound respected" `Quick test_ordup_epsilon_bound_respected;
          Alcotest.test_case "lamport mode converges" `Quick
            test_ordup_lamport_mode_converges;
          Alcotest.test_case "histories ε-serial" `Quick
            test_ordup_histories_are_epsilon_serial;
        ] );
      ( "commu",
        [
          Alcotest.test_case "rejects non-commutative" `Quick
            test_commu_rejects_non_commutative;
          Alcotest.test_case "any-order convergence" `Quick
            test_commu_convergence_any_order;
          Alcotest.test_case "ε=0 waits for completion" `Quick
            test_commu_epsilon_zero_waits_for_completion;
          Alcotest.test_case "ε=1 reads through" `Quick
            test_commu_epsilon_allows_reading_through;
          Alcotest.test_case "update limit abort" `Quick test_commu_update_limit_abort;
          Alcotest.test_case "update limit wait" `Quick test_commu_update_limit_wait;
          Alcotest.test_case "value limit bounds pending delta" `Quick
            test_commu_value_limit_bounds_pending_delta;
          Alcotest.test_case "histories semantically ε-serial" `Quick
            test_commu_histories_epsilon_serial_semantic;
        ] );
      ( "ritu",
        [
          Alcotest.test_case "rejects read-dependent" `Quick
            test_ritu_rejects_read_dependent;
          Alcotest.test_case "latest wins convergence" `Quick
            test_ritu_latest_wins_convergence;
          Alcotest.test_case "multi versions accumulate" `Quick
            test_ritu_multi_versions_accumulate;
          Alcotest.test_case "VTNC query modes" `Quick test_ritu_multi_vtnc_query_modes;
          Alcotest.test_case "queries never block" `Quick test_ritu_queries_never_block;
        ] );
      ( "compe",
        [
          Alcotest.test_case "no aborts" `Quick test_compe_no_aborts_behaves_normally;
          Alcotest.test_case "all aborts cancel" `Quick test_compe_all_aborts_cancel_out;
          Alcotest.test_case "mixed aborts match committed sum" `Quick
            test_compe_mixed_aborts_match_committed_sum;
          Alcotest.test_case "commutative fast path" `Quick
            test_compe_commutative_uses_fast_path;
          Alcotest.test_case "non-commutative full rollback" `Quick
            test_compe_non_commutative_full_rollback;
          Alcotest.test_case "mul/inc identity" `Quick
            test_compe_mul_inc_identity_system_level;
          Alcotest.test_case "query bound and taint" `Quick
            test_compe_query_bound_and_taint_accounting;
        ] );
      ( "twopc",
        [
          Alcotest.test_case "latency 2 hops" `Quick test_twopc_latency_two_round_trips;
          Alcotest.test_case "convergence" `Quick test_twopc_convergence_under_contention;
          Alcotest.test_case "queries SR" `Quick test_twopc_queries_are_sr;
          Alcotest.test_case "timeout under partition" `Quick
            test_twopc_timeout_aborts_under_partition;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "commit and read" `Quick test_quorum_commit_and_read;
          Alcotest.test_case "read sees committed write" `Quick
            test_quorum_read_sees_committed_write;
          Alcotest.test_case "version ordering" `Quick test_quorum_version_ordering;
          Alcotest.test_case "rejects unsupported" `Quick test_quorum_rejects_unsupported;
          Alcotest.test_case "invalid quorum config" `Quick
            test_quorum_invalid_quorum_config;
        ] );
      ( "quasi",
        [
          Alcotest.test_case "primary commit + propagation" `Quick
            test_quasi_primary_commit_and_propagation;
          Alcotest.test_case "drift defers refresh" `Quick
            test_quasi_drift_defers_refresh;
          Alcotest.test_case "strict query reads primary" `Quick
            test_quasi_strict_query_reads_primary;
          Alcotest.test_case "periodic batches" `Quick test_quasi_periodic_batches;
        ] );
      ( "interning",
        [ QCheck_alcotest.to_alcotest prop_store_hint_invariance ] );
      ( "sharding",
        [
          QCheck_alcotest.to_alcotest prop_sharding_identity;
          QCheck_alcotest.to_alcotest prop_sharding_convergence;
          Alcotest.test_case "fanout scales with factor" `Quick
            test_sharding_fanout_scales_with_factor;
        ] );
    ]
